#include "data/tuple.h"

namespace wsv::data {

std::string Tuple::ToString(const Interner& interner) const {
  std::string out = "(";
  for (size_t i = 0; i < arity(); ++i) {
    if (i > 0) out += ", ";
    out += interner.Text((*this)[i]);
  }
  out += ")";
  return out;
}

}  // namespace wsv::data
