#include "data/tuple.h"

namespace wsv::data {

std::string Tuple::ToString(const Interner& interner) const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += interner.Text(values_[i]);
  }
  out += ")";
  return out;
}

}  // namespace wsv::data
