#include "data/schema.h"

#include <cassert>

namespace wsv::data {

Status Schema::AddRelation(RelationSchema relation) {
  if (index_.count(relation.name) > 0) {
    return Status::InvalidSpec("duplicate relation name: " + relation.name);
  }
  index_.emplace(relation.name, relations_.size());
  relations_.push_back(std::move(relation));
  return Status::Ok();
}

size_t Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNpos : it->second;
}

size_t Schema::ArityOf(const std::string& name) const {
  size_t i = IndexOf(name);
  assert(i != kNpos && "relation not in schema");
  return relations_[i].arity();
}

Result<Schema> Schema::Merge(const Schema& other) const {
  Schema merged = *this;
  for (const RelationSchema& r : other.relations_) {
    WSV_RETURN_IF_ERROR(merged.AddRelation(r));
  }
  return merged;
}

}  // namespace wsv::data
