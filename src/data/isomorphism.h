#ifndef WSVERIFY_DATA_ISOMORPHISM_H_
#define WSVERIFY_DATA_ISOMORPHISM_H_

#include <unordered_map>
#include <vector>

#include "data/instance.h"
#include "data/value.h"

namespace wsv::data {

/// A mapping of domain elements (a partial bijection); elements absent from
/// the map are fixed points. Used to rename pseudo-domain elements while
/// keeping specification constants fixed.
using ValueRenaming = std::unordered_map<Value, Value>;

/// Returns `t` with every value renamed through `renaming` (identity for
/// values not in the map).
Tuple RenameTuple(const Tuple& t, const ValueRenaming& renaming);

/// Returns `r` with every tuple renamed (re-sorted).
Relation RenameRelation(const Relation& r, const ValueRenaming& renaming);

/// Returns `inst` with every relation renamed.
Instance RenameInstance(const Instance& inst, const ValueRenaming& renaming);

/// True iff `inst` is the lexicographically least element of its orbit under
/// permutations of `movable` (all other domain elements — the specification
/// constants — stay fixed). Two input-bounded verification problems whose
/// databases differ by such a permutation have identical answers (genericity
/// of FO queries), so the database enumerator keeps only canonical
/// representatives.
///
/// `movable.size()` should be small (the pseudo-domain has a handful of fresh
/// elements); the check enumerates all |movable|! permutations.
bool IsCanonicalUnderPermutations(const Instance& inst,
                                  const std::vector<Value>& movable);

/// Joint variant: canonicality of a tuple of instances (e.g. the databases
/// of all peers of a composition) under a single shared permutation.
bool IsCanonicalUnderPermutationsJoint(
    const std::vector<const Instance*>& instances,
    const std::vector<Value>& movable);

/// Serializes an instance into an integer vector usable as an orbit-orderable
/// key (relation index, tuple contents, separators).
std::vector<uint64_t> SerializeForOrbit(const Instance& inst);

}  // namespace wsv::data

#endif  // WSVERIFY_DATA_ISOMORPHISM_H_
