#ifndef WSVERIFY_DATA_SCHEMA_H_
#define WSVERIFY_DATA_SCHEMA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace wsv::data {

/// Declaration of one relation symbol: a name plus named attributes.
/// Arity-0 relations model propositions (e.g. queue-state `emptyQ`).
struct RelationSchema {
  std::string name;
  std::vector<std::string> attributes;

  size_t arity() const { return attributes.size(); }

  friend bool operator==(const RelationSchema& a, const RelationSchema& b) {
    return a.name == b.name && a.attributes == b.attributes;
  }
};

/// An ordered collection of relation schemas with by-name lookup.
/// Relation order is the declaration order; Instances align to it.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation; fails if the name is already declared.
  Status AddRelation(RelationSchema relation);

  /// Index of `name`, or npos if absent.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return IndexOf(name) != kNpos;
  }

  size_t size() const { return relations_.size(); }
  const RelationSchema& relation(size_t i) const { return relations_[i]; }
  const std::vector<RelationSchema>& relations() const { return relations_; }

  /// Arity of `name`; the relation must exist.
  size_t ArityOf(const std::string& name) const;

  /// Union of this schema and `other`; fails on duplicate names.
  Result<Schema> Merge(const Schema& other) const;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace wsv::data

#endif  // WSVERIFY_DATA_SCHEMA_H_
