#include "data/relation.h"

#include <algorithm>
#include <cassert>

namespace wsv::data {

Relation::Relation(size_t arity, std::vector<Tuple> tuples)
    : arity_(arity), tuples_(std::move(tuples)) {
  for ([[maybe_unused]] const Tuple& t : tuples_) {
    assert(t.arity() == arity_ && "tuple arity mismatch");
  }
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

bool Relation::Insert(const Tuple& t) {
  assert(t.arity() == arity_ && "tuple arity mismatch");
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, t);
  return true;
}

bool Relation::Erase(const Tuple& t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || !(*it == t)) return false;
  tuples_.erase(it);
  return true;
}

void Relation::AssignSorted(std::vector<Tuple> tuples) {
  tuples_ = std::move(tuples);
#ifndef NDEBUG
  for (size_t i = 0; i < tuples_.size(); ++i) {
    assert(tuples_[i].arity() == arity_ && "tuple arity mismatch");
    assert((i == 0 || tuples_[i - 1] < tuples_[i]) &&
           "AssignSorted requires sorted unique tuples");
  }
#endif
}

bool Relation::Contains(const Tuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

void Relation::CollectActiveDomain(Domain& domain) const {
  for (const Tuple& t : tuples_) {
    for (Value v : t) domain.Add(v);
  }
}

Relation Relation::Union(const Relation& other) const {
  assert(arity_ == other.arity_);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::set_union(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                 other.tuples_.end(), std::back_inserter(merged));
  Relation out(arity_);
  out.tuples_ = std::move(merged);
  return out;
}

Relation Relation::Difference(const Relation& other) const {
  assert(arity_ == other.arity_);
  std::vector<Tuple> diff;
  std::set_difference(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                      other.tuples_.end(), std::back_inserter(diff));
  Relation out(arity_);
  out.tuples_ = std::move(diff);
  return out;
}

Relation Relation::Intersection(const Relation& other) const {
  assert(arity_ == other.arity_);
  std::vector<Tuple> inter;
  std::set_intersection(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
                        other.tuples_.end(), std::back_inserter(inter));
  Relation out(arity_);
  out.tuples_ = std::move(inter);
  return out;
}

std::string Relation::ToString(const Interner& interner) const {
  std::string out = "{";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuples_[i].ToString(interner);
  }
  out += "}";
  return out;
}

size_t Relation::Hash() const {
  size_t seed = 0x100003bULL + arity_;
  TupleHash th;
  for (const Tuple& t : tuples_) HashCombine(seed, th(t));
  return seed;
}

}  // namespace wsv::data
