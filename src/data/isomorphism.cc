#include "data/isomorphism.h"

#include <algorithm>

namespace wsv::data {

Tuple RenameTuple(const Tuple& t, const ValueRenaming& renaming) {
  std::vector<Value> values;
  values.reserve(t.arity());
  for (Value v : t) {
    auto it = renaming.find(v);
    values.push_back(it == renaming.end() ? v : it->second);
  }
  return Tuple(std::move(values));
}

Relation RenameRelation(const Relation& r, const ValueRenaming& renaming) {
  std::vector<Tuple> tuples;
  tuples.reserve(r.size());
  for (const Tuple& t : r) tuples.push_back(RenameTuple(t, renaming));
  return Relation(r.arity(), std::move(tuples));
}

Instance RenameInstance(const Instance& inst, const ValueRenaming& renaming) {
  Instance out(inst.schema());
  for (size_t i = 0; i < inst.size(); ++i) {
    out.SetRelation(i, RenameRelation(inst.relation(i), renaming));
  }
  return out;
}

std::vector<uint64_t> SerializeForOrbit(const Instance& inst) {
  std::vector<uint64_t> key;
  for (size_t i = 0; i < inst.size(); ++i) {
    key.push_back(~static_cast<uint64_t>(0));  // relation separator
    for (const Tuple& t : inst.relation(i)) {
      for (Value v : t) key.push_back(v);
      key.push_back(~static_cast<uint64_t>(1));  // tuple separator
    }
  }
  return key;
}

bool IsCanonicalUnderPermutationsJoint(
    const std::vector<const Instance*>& instances,
    const std::vector<Value>& movable) {
  if (movable.size() <= 1) return true;
  std::vector<uint64_t> base_key;
  for (const Instance* inst : instances) {
    std::vector<uint64_t> part = SerializeForOrbit(*inst);
    base_key.insert(base_key.end(), part.begin(), part.end());
  }

  std::vector<Value> perm = movable;
  std::sort(perm.begin(), perm.end());
  std::vector<Value> sorted = perm;
  do {
    ValueRenaming renaming;
    bool identity = true;
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] != perm[i]) identity = false;
      renaming[sorted[i]] = perm[i];
    }
    if (identity) continue;
    std::vector<uint64_t> key;
    for (const Instance* inst : instances) {
      std::vector<uint64_t> part =
          SerializeForOrbit(RenameInstance(*inst, renaming));
      key.insert(key.end(), part.begin(), part.end());
    }
    if (key < base_key) return false;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return true;
}

bool IsCanonicalUnderPermutations(const Instance& inst,
                                  const std::vector<Value>& movable) {
  if (movable.size() <= 1) return true;
  std::vector<uint64_t> base_key = SerializeForOrbit(inst);

  std::vector<Value> perm = movable;  // sorted input assumed not required
  std::sort(perm.begin(), perm.end());
  std::vector<Value> sorted = perm;
  do {
    ValueRenaming renaming;
    bool identity = true;
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] != perm[i]) identity = false;
      renaming[sorted[i]] = perm[i];
    }
    if (identity) continue;
    Instance renamed = RenameInstance(inst, renaming);
    if (SerializeForOrbit(renamed) < base_key) return false;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return true;
}

}  // namespace wsv::data
