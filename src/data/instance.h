#ifndef WSVERIFY_DATA_INSTANCE_H_
#define WSVERIFY_DATA_INSTANCE_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "data/relation.h"
#include "data/schema.h"
#include "data/value.h"

namespace wsv::data {

/// An instance of a Schema: one Relation per declared symbol, aligned by
/// index. Instances are value types copied during state-space search, so the
/// representation is a flat vector of sorted relations with cheap equality
/// and hashing.
///
/// The referenced Schema must outlive the instance (schemas are owned by the
/// specification and live for the whole verification task).
class Instance {
 public:
  Instance() : schema_(nullptr) {}

  /// Constructs the all-empty instance of `schema`.
  explicit Instance(const Schema* schema);

  const Schema* schema() const { return schema_; }

  const Relation& relation(size_t i) const { return relations_[i]; }
  Relation& relation(size_t i) { return relations_[i]; }

  /// Relation by name; the name must exist in the schema.
  const Relation& relation(const std::string& name) const;
  Relation& relation(const std::string& name);

  size_t size() const { return relations_.size(); }

  /// Replaces relation `i` wholesale (arity must match).
  void SetRelation(size_t i, Relation r);

  /// Empties every relation.
  void Clear();

  /// True iff every relation is empty.
  bool AllEmpty() const;

  /// Adds all elements appearing anywhere in the instance to `domain`.
  void CollectActiveDomain(Domain& domain) const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.relations_ == b.relations_;
  }

  size_t Hash() const;

  /// Multi-line rendering "name{(..),..}" per non-empty relation.
  std::string ToString(const Interner& interner) const;

 private:
  const Schema* schema_;
  std::vector<Relation> relations_;
};

struct InstanceHash {
  size_t operator()(const Instance& inst) const { return inst.Hash(); }
};

}  // namespace wsv::data

#endif  // WSVERIFY_DATA_INSTANCE_H_
