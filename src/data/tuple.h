#ifndef WSVERIFY_DATA_TUPLE_H_
#define WSVERIFY_DATA_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/interner.h"
#include "data/value.h"

namespace wsv::data {

/// A fixed-arity tuple of domain elements. Tuples compare lexicographically,
/// which gives relations (sorted tuple sets) a canonical order.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  Value operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

  /// Renders "(a, b, c)" using `interner` for element names.
  std::string ToString(const Interner& interner) const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return HashRange(t.begin(), t.end());
  }
};

}  // namespace wsv::data

#endif  // WSVERIFY_DATA_TUPLE_H_
