#ifndef WSVERIFY_DATA_TUPLE_H_
#define WSVERIFY_DATA_TUPLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/interner.h"
#include "data/value.h"

namespace wsv::data {

/// A fixed-arity tuple of domain elements. Tuples compare lexicographically,
/// which gives relations (sorted tuple sets) a canonical order.
///
/// Storage is inline for arities up to kInline (which covers every schema in
/// the paper's compositions), so copying a tuple is a 24-byte memcpy instead
/// of a heap round-trip. Snapshot copies in the transition generator clone
/// millions of tuples per run; keeping them allocation-free is what makes
/// the flat hot path flat. Wider tuples transparently spill to the heap.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(const std::vector<Value>& values) {
    Assign(values.data(), values.size());
  }
  Tuple(std::initializer_list<Value> values) {
    Assign(values.begin(), values.size());
  }
  /// Copies `n` values starting at `data` (used by decode/eval loops that
  /// build rows in scratch buffers).
  Tuple(const Value* data, size_t n) { Assign(data, n); }

  Tuple(const Tuple& other) { Assign(other.data(), other.size_); }
  Tuple(Tuple&& other) noexcept { StealFrom(other); }
  Tuple& operator=(const Tuple& other) {
    if (this != &other) {
      Release();
      Assign(other.data(), other.size_);
    }
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      Release();
      StealFrom(other);
    }
    return *this;
  }
  ~Tuple() { Release(); }

  size_t arity() const { return size_; }
  Value operator[](size_t i) const { return data()[i]; }
  Value& operator[](size_t i) { return data()[i]; }

  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

  /// Renders "(a, b, c)" using `interner` for element names.
  std::string ToString(const Interner& interner) const;

 private:
  // 5 inline Values (20 bytes) + 4-byte size packs into the same 24 bytes
  // std::vector<Value> occupied, with zero indirection.
  static constexpr uint32_t kInline = 5;

  Value* data() { return size_ <= kInline ? inline_ : heap_; }
  const Value* data() const { return size_ <= kInline ? inline_ : heap_; }

  void Assign(const Value* src, size_t n) {
    size_ = static_cast<uint32_t>(n);
    Value* dst = size_ <= kInline ? inline_ : (heap_ = new Value[n]);
    std::copy(src, src + n, dst);
  }
  void StealFrom(Tuple& other) noexcept {
    size_ = other.size_;
    if (size_ > kInline) {
      heap_ = other.heap_;
      other.size_ = 0;
    } else {
      std::copy(other.inline_, other.inline_ + size_, inline_);
    }
  }
  void Release() {
    if (size_ > kInline) delete[] heap_;
  }

  union {
    Value inline_[kInline];
    Value* heap_;
  };
  uint32_t size_ = 0;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return HashRange(t.begin(), t.end());
  }
};

}  // namespace wsv::data

#endif  // WSVERIFY_DATA_TUPLE_H_
