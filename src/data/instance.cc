#include "data/instance.h"

#include <cassert>

namespace wsv::data {

Instance::Instance(const Schema* schema) : schema_(schema) {
  assert(schema != nullptr);
  relations_.reserve(schema->size());
  for (size_t i = 0; i < schema->size(); ++i) {
    relations_.emplace_back(schema->relation(i).arity());
  }
}

const Relation& Instance::relation(const std::string& name) const {
  size_t i = schema_->IndexOf(name);
  assert(i != Schema::kNpos && "relation not in schema");
  return relations_[i];
}

Relation& Instance::relation(const std::string& name) {
  size_t i = schema_->IndexOf(name);
  assert(i != Schema::kNpos && "relation not in schema");
  return relations_[i];
}

void Instance::SetRelation(size_t i, Relation r) {
  assert(i < relations_.size());
  assert(r.arity() == relations_[i].arity());
  relations_[i] = std::move(r);
}

void Instance::Clear() {
  for (Relation& r : relations_) r.Clear();
}

bool Instance::AllEmpty() const {
  for (const Relation& r : relations_) {
    if (!r.empty()) return false;
  }
  return true;
}

void Instance::CollectActiveDomain(Domain& domain) const {
  for (const Relation& r : relations_) r.CollectActiveDomain(domain);
}

size_t Instance::Hash() const {
  size_t seed = 0x51ce5ULL;
  for (const Relation& r : relations_) HashCombine(seed, r.Hash());
  return seed;
}

std::string Instance::ToString(const Interner& interner) const {
  std::string out;
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].empty()) continue;
    out += schema_->relation(i).name;
    out += relations_[i].ToString(interner);
    out += "\n";
  }
  return out;
}

}  // namespace wsv::data
