#include "data/value.h"

#include <algorithm>

namespace wsv::data {

Domain::Domain(std::vector<Value> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

void Domain::Add(Value v) {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it == values_.end() || *it != v) values_.insert(it, v);
}

bool Domain::Contains(Value v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

void Domain::UnionWith(const Domain& other) {
  std::vector<Value> merged;
  merged.reserve(values_.size() + other.values_.size());
  std::merge(values_.begin(), values_.end(), other.values_.begin(),
             other.values_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  values_ = std::move(merged);
}

}  // namespace wsv::data
