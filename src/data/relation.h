#ifndef WSVERIFY_DATA_RELATION_H_
#define WSVERIFY_DATA_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/interner.h"
#include "data/tuple.h"
#include "data/value.h"

namespace wsv::data {

/// A finite relation instance: a set of same-arity tuples, kept sorted for
/// canonical comparison and hashing. Set semantics (no duplicates).
class Relation {
 public:
  /// Constructs the empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  /// Constructs from tuples (must all have arity `arity`); sorts and dedups.
  Relation(size_t arity, std::vector<Tuple> tuples);

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t`; returns true if it was not already present.
  /// `t.arity()` must equal `arity()`.
  bool Insert(const Tuple& t);

  /// Removes `t`; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const;

  const std::vector<Tuple>& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// Removes all tuples.
  void Clear() { tuples_.clear(); }

  /// Replaces the contents wholesale with `tuples`, which must already be
  /// sorted, duplicate-free, and of matching arity (checked in debug
  /// builds). The flat-snapshot decode path rebuilds relations from their
  /// canonical encodings, which are sorted by construction, so re-sorting
  /// per decode would be pure waste.
  void AssignSorted(std::vector<Tuple> tuples);

  /// Adds every element appearing in some tuple to `domain`.
  void CollectActiveDomain(Domain& domain) const;

  /// Set union / difference / intersection with a same-arity relation.
  Relation Union(const Relation& other) const;
  Relation Difference(const Relation& other) const;
  Relation Intersection(const Relation& other) const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.tuples_ == b.tuples_;
  }
  friend bool operator<(const Relation& a, const Relation& b) {
    return a.tuples_ < b.tuples_;
  }

  /// Renders "{(a,b), (c,d)}".
  std::string ToString(const Interner& interner) const;

  size_t Hash() const;

 private:
  size_t arity_;
  std::vector<Tuple> tuples_;  // sorted, unique
};

struct RelationHash {
  size_t operator()(const Relation& r) const { return r.Hash(); }
};

}  // namespace wsv::data

#endif  // WSVERIFY_DATA_RELATION_H_
