#ifndef WSVERIFY_DATA_VALUE_H_
#define WSVERIFY_DATA_VALUE_H_

#include <cstdint>
#include <vector>

#include "common/interner.h"

namespace wsv::data {

/// A domain element. The paper's data domain is an infinite set of
/// uninterpreted constants; we represent elements as interned symbol ids.
/// Elements are totally ordered by id, which gives relations a canonical
/// sorted representation.
using Value = SymbolId;

/// A finite set of domain elements, kept sorted and deduplicated.
class Domain {
 public:
  Domain() = default;
  explicit Domain(std::vector<Value> values);

  /// Adds `v` if not already present.
  void Add(Value v);
  bool Contains(Value v) const;
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const std::vector<Value>& values() const { return values_; }
  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  /// Set union with another domain.
  void UnionWith(const Domain& other);

  friend bool operator==(const Domain& a, const Domain& b) {
    return a.values_ == b.values_;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace wsv::data

#endif  // WSVERIFY_DATA_VALUE_H_
