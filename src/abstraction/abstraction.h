#ifndef WSVERIFY_ABSTRACTION_ABSTRACTION_H_
#define WSVERIFY_ABSTRACTION_ABSTRACTION_H_

#include "ltl/property.h"

namespace wsv::abstraction {

/// The conventional software-verification baseline the paper argues against
/// (Introduction, "Relationship to Software Verification"): abstract data
/// values away and model-check the propositional skeleton.
///
/// DataAgnosticAbstraction rewrites a property so every atom R(t1..tk)
/// becomes "some R-fact holds" (exists y1..yk: R(y1..yk)) and every
/// equality between data terms becomes true; universally-quantified
/// property variables are dropped. The result can certify that "upon
/// receiving SOME credit request, the agency sends SOME reply", but cannot
/// require the reply to reflect the request's content — verifying the
/// abstraction may succeed while the data-aware property fails
/// (bench_baseline reproduces this gap on the loan example).
ltl::Property DataAgnosticAbstraction(const ltl::Property& property);

/// Abstracts a single FO formula the same way (exposed for tests).
fo::FormulaPtr AbstractFormula(const fo::FormulaPtr& formula);

}  // namespace wsv::abstraction

#endif  // WSVERIFY_ABSTRACTION_ABSTRACTION_H_
