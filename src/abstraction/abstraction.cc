#include "abstraction/abstraction.h"

#include <cassert>

namespace wsv::abstraction {

namespace {

/// Fresh variable names for the existential closure of atom arguments.
std::string FreshVar(size_t counter) {
  return "_abs" + std::to_string(counter);
}

fo::FormulaPtr AbstractRec(const fo::FormulaPtr& f, size_t& counter) {
  using fo::Formula;
  using fo::FormulaKind;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kAtom: {
      if (f->terms().empty()) return f;  // propositions survive abstraction
      std::vector<std::string> vars;
      std::vector<fo::Term> terms;
      for (size_t i = 0; i < f->terms().size(); ++i) {
        vars.push_back(FreshVar(counter++));
        terms.push_back(fo::Term::Variable(vars.back()));
      }
      return Formula::Exists(std::move(vars),
                             Formula::Atom(f->relation(), std::move(terms)));
    }
    case FormulaKind::kEquality:
      // Data comparisons are meaningless after abstraction.
      return Formula::True();
    case FormulaKind::kNot:
      return Formula::Not(AbstractRec(f->child(0), counter));
    case FormulaKind::kAnd: {
      std::vector<fo::FormulaPtr> kids;
      for (const fo::FormulaPtr& c : f->children()) {
        kids.push_back(AbstractRec(c, counter));
      }
      return Formula::And(std::move(kids));
    }
    case FormulaKind::kOr: {
      std::vector<fo::FormulaPtr> kids;
      for (const fo::FormulaPtr& c : f->children()) {
        kids.push_back(AbstractRec(c, counter));
      }
      return Formula::Or(std::move(kids));
    }
    case FormulaKind::kImplies:
      return Formula::Implies(AbstractRec(f->child(0), counter),
                              AbstractRec(f->child(1), counter));
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      // Quantified variables no longer occur after atom abstraction.
      return AbstractRec(f->body(), counter);
  }
  assert(false && "unreachable");
  return f;
}

ltl::LtlPtr AbstractLtl(const ltl::LtlPtr& f, size_t& counter) {
  using ltl::LtlFormula;
  using ltl::LtlKind;
  if (f->kind() == LtlKind::kLeaf) {
    return LtlFormula::Leaf(AbstractRec(f->leaf(), counter));
  }
  std::vector<ltl::LtlPtr> kids;
  for (const ltl::LtlPtr& c : f->children()) {
    kids.push_back(AbstractLtl(c, counter));
  }
  switch (f->kind()) {
    case LtlKind::kNot:
      return LtlFormula::Not(kids[0]);
    case LtlKind::kAnd:
      return LtlFormula::And(kids[0], kids[1]);
    case LtlKind::kOr:
      return LtlFormula::Or(kids[0], kids[1]);
    case LtlKind::kImplies:
      return LtlFormula::Implies(kids[0], kids[1]);
    case LtlKind::kNext:
      return LtlFormula::Next(kids[0]);
    case LtlKind::kUntil:
      return LtlFormula::Until(kids[0], kids[1]);
    case LtlKind::kRelease:
      return LtlFormula::Release(kids[0], kids[1]);
    case LtlKind::kForallQ:
    case LtlKind::kExistsQ:
      return AbstractLtl(f->body(), counter);  // variables vanish
    case LtlKind::kLeaf:
      break;
  }
  assert(false && "unreachable");
  return f;
}

}  // namespace

fo::FormulaPtr AbstractFormula(const fo::FormulaPtr& formula) {
  size_t counter = 0;
  return AbstractRec(formula, counter);
}

ltl::Property DataAgnosticAbstraction(const ltl::Property& property) {
  size_t counter = 0;
  ltl::LtlPtr abstracted = AbstractLtl(property.formula(), counter);
  // Closure variables no longer occur free; drop them.
  return ltl::Property({}, std::move(abstracted));
}

}  // namespace wsv::abstraction
