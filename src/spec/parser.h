#ifndef WSVERIFY_SPEC_PARSER_H_
#define WSVERIFY_SPEC_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "spec/composition.h"

namespace wsv::spec {

/// Parses a composition from the specification DSL and validates it.
///
/// The DSL mirrors Definition 2.1/2.5. Example (excerpt of the paper's
/// Example 2.2):
///
///   peer Officer {
///     database { customer(cId, ssn, name); }
///     state    { application(cId, loan); }
///     input    { reccom(cId, recommendation); }
///     action   { letter(cId, name, loan, decision); }
///     inqueue flat    { apply(cId, loan); rating(ssn, category); }
///     inqueue nested  { history(ssn, account, balance); }
///     outqueue flat   { getRating(ssn); }
///     rules {
///       options reccom(id, rec) :-
///         exists ssn, name: customer(id, ssn, name)
///           and (rec = "approve" or rec = "deny");
///       insert application(id, loan) :- ?apply(id, loan);
///       send getRating(ssn) :-
///         exists id, loan, name: ?apply(id, loan)
///           and customer(id, ssn, name);
///     }
///   }
///
///   composition Loan { peers Officer, CreditAgency; }
///
/// Channels are derived by queue-name matching across the listed peers. If
/// no `composition` block is present, all declared peers form an anonymous
/// composition.
Result<Composition> ParseComposition(std::string_view source);

}  // namespace wsv::spec

#endif  // WSVERIFY_SPEC_PARSER_H_
