#ifndef WSVERIFY_SPEC_PEER_H_
#define WSVERIFY_SPEC_PEER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "fo/classify.h"
#include "fo/formula.h"
#include "fo/input_bounded.h"

namespace wsv::spec {

/// Queue flavor (Section 2): flat queues carry single-tuple messages, nested
/// queues carry set-of-tuples messages.
enum class QueueKind { kFlat, kNested };

/// Declaration of one message queue relation.
struct QueueDecl {
  std::string name;
  QueueKind kind;
  std::vector<std::string> attributes;

  size_t arity() const { return attributes.size(); }
};

/// The rule flavors of Definition 2.1.
enum class RuleKind {
  kInputOptions,  // Options_I(x̄) <- phi
  kStateInsert,   // S(x̄) <- phi+
  kStateDelete,   // not S(x̄) <- phi-
  kAction,        // A(x̄) <- phi
  kSend,          // Q(x̄) <- phi
};

const char* RuleKindName(RuleKind kind);

/// One peer rule: head relation, head variable tuple, FO body.
struct Rule {
  RuleKind kind;
  std::string relation;
  std::vector<std::string> head_vars;
  fo::FormulaPtr body;

  std::string ToString() const;
};

/// A Web service peer (Definition 2.1): database, state, input and action
/// schemas, in/out queues, and the reaction rules. After construction call
/// Validate(), which also derives the runtime schemas (queue-state
/// propositions `empty_Q`, previous-input relations `prev_I`, ...).
class Peer : public fo::SymbolClassifier {
 public:
  explicit Peer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- Schema declaration -----------------------------------------------
  Status AddDatabaseRelation(std::string name,
                             std::vector<std::string> attributes);
  Status AddStateRelation(std::string name,
                          std::vector<std::string> attributes);
  Status AddInputRelation(std::string name,
                          std::vector<std::string> attributes);
  Status AddActionRelation(std::string name,
                           std::vector<std::string> attributes);
  Status AddInQueue(std::string name, QueueKind kind,
                    std::vector<std::string> attributes);
  Status AddOutQueue(std::string name, QueueKind kind,
                     std::vector<std::string> attributes);

  /// Sets the input lookback window k >= 1 (peers with k-lookback, Section
  /// 3.1): rules may consult prev_I == prev1_I through prev<k>_I.
  void SetLookback(int k) { lookback_ = k; }
  int lookback() const { return lookback_; }

  // --- Rules --------------------------------------------------------------
  /// Adds a rule; Definition 2.1 allows at most one rule per (kind,
  /// relation) pair, which is enforced here.
  Status AddRule(RuleKind kind, const std::string& relation,
                 std::vector<std::string> head_vars, fo::FormulaPtr body);

  /// Returns the rule for (kind, relation) or nullptr (missing rules behave
  /// as `false`, i.e. never fire / produce no options).
  const Rule* FindRule(RuleKind kind, const std::string& relation) const;
  const std::vector<Rule>& rules() const { return rules_; }

  // --- Declared schemas ----------------------------------------------------
  const data::Schema& database_schema() const { return database_; }
  const data::Schema& input_schema() const { return input_; }
  const data::Schema& action_schema() const { return action_; }
  /// User-declared states only (no queue-state propositions).
  const data::Schema& declared_state_schema() const { return state_; }
  const std::vector<QueueDecl>& in_queues() const { return in_queues_; }
  const std::vector<QueueDecl>& out_queues() const { return out_queues_; }
  const QueueDecl* FindInQueue(const std::string& name) const;
  const QueueDecl* FindOutQueue(const std::string& name) const;

  // --- Derived runtime schemas (available after Validate) ------------------
  /// States plus one `empty_<Q>` proposition per in-queue.
  const data::Schema& runtime_state_schema() const { return runtime_state_; }
  /// prev_<I> (and prev2_<I>.. up to lookback) per input relation.
  const data::Schema& prev_input_schema() const { return prev_input_; }

  /// Checks well-formedness per Definition 2.1: disjoint relation names,
  /// distinct head variables, rule bodies over the permitted vocabulary with
  /// free variables contained in the head. Builds the derived schemas.
  Status Validate();

  /// All constant spellings used in rule bodies.
  std::set<std::string> Constants() const;

  /// fo::SymbolClassifier over this peer's local (unqualified) names.
  fo::RelClass Classify(const std::string& relation_name) const override;

  /// Checks the input-boundedness conditions of Section 3.1 for this peer:
  /// state, action and nested-send rule bodies are input-bounded formulas;
  /// input rules and flat-send rules are existential with ground
  /// state/nested-queue atoms.
  Status CheckInputBounded(const fo::InputBoundedOptions& options = {}) const;

 private:
  Status CheckNameFresh(const std::string& name) const;
  Status ValidateRule(const Rule& rule) const;

  std::string name_;
  data::Schema database_;
  data::Schema state_;
  data::Schema input_;
  data::Schema action_;
  std::vector<QueueDecl> in_queues_;
  std::vector<QueueDecl> out_queues_;
  std::vector<Rule> rules_;
  int lookback_ = 1;

  data::Schema runtime_state_;
  data::Schema prev_input_;
  bool validated_ = false;
};

/// Name of the queue-state proposition for in-queue `queue` ("empty_Q").
std::string QueueEmptyStateName(const std::string& queue);

/// Name of the i-th previous-input relation for input `input` (i >= 1;
/// i == 1 yields "prev_I", otherwise "prev<i>_I").
std::string PrevInputName(const std::string& input, int i = 1);

}  // namespace wsv::spec

#endif  // WSVERIFY_SPEC_PEER_H_
