#ifndef WSVERIFY_SPEC_PRINTER_H_
#define WSVERIFY_SPEC_PRINTER_H_

#include <string>

#include "spec/composition.h"

namespace wsv::spec {

/// Serializes a peer back into the specification DSL; the output re-parses
/// to an equivalent peer (round-trip tested).
std::string PrintPeer(const Peer& peer);

/// Serializes a whole composition (peers + composition block) into DSL
/// text. Useful for persisting programmatically-built compositions (e.g.
/// CFSM embeddings) and for diffing specifications.
std::string PrintComposition(const Composition& comp);

}  // namespace wsv::spec

#endif  // WSVERIFY_SPEC_PRINTER_H_
