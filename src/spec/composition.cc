#include "spec/composition.h"

#include <map>

#include "common/strings.h"

namespace wsv::spec {

Status Composition::AddPeer(Peer peer) {
  if (FindPeer(peer.name()) != nullptr) {
    return Status::InvalidSpec("composition " + name_ + ": duplicate peer '" +
                               peer.name() + "'");
  }
  peers_.push_back(std::move(peer));
  return Status::Ok();
}

const Peer* Composition::FindPeer(const std::string& name) const {
  for (const Peer& p : peers_) {
    if (p.name() == name) return &p;
  }
  return nullptr;
}

size_t Composition::PeerIndex(const std::string& name) const {
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].name() == name) return i;
  }
  return kNpos;
}

Status Composition::Validate() {
  channels_.clear();
  for (Peer& p : peers_) {
    WSV_RETURN_IF_ERROR(p.Validate());
  }

  // Queue-name uniqueness across peers: at most one sender and one receiver
  // per queue name (Definition 2.5).
  std::map<std::string, Channel> by_name;
  for (size_t i = 0; i < peers_.size(); ++i) {
    for (const QueueDecl& q : peers_[i].out_queues()) {
      Channel& ch = by_name[q.name];
      if (ch.name.empty()) {
        ch.name = q.name;
        ch.kind = q.kind;
        ch.attributes = q.attributes;
      } else if (ch.sender != Channel::kEnvironment) {
        return Status::InvalidSpec(
            "composition " + name_ + ": queue '" + q.name +
            "' is an out-queue of two peers (each queue has a unique sender)");
      } else if (ch.kind != q.kind || ch.attributes.size() != q.arity()) {
        return Status::InvalidSpec("composition " + name_ + ": queue '" +
                                   q.name +
                                   "' declared with mismatched kind/arity");
      }
      ch.sender = i;
    }
    for (const QueueDecl& q : peers_[i].in_queues()) {
      Channel& ch = by_name[q.name];
      if (ch.name.empty()) {
        ch.name = q.name;
        ch.kind = q.kind;
        ch.attributes = q.attributes;
      } else if (ch.receiver != Channel::kEnvironment) {
        return Status::InvalidSpec(
            "composition " + name_ + ": queue '" + q.name +
            "' is an in-queue of two peers (each queue has a unique "
            "receiver)");
      } else if (ch.kind != q.kind || ch.attributes.size() != q.arity()) {
        return Status::InvalidSpec("composition " + name_ + ": queue '" +
                                   q.name +
                                   "' declared with mismatched kind/arity");
      }
      ch.receiver = i;
    }
  }
  for (auto& [name, ch] : by_name) {
    if (ch.sender != Channel::kEnvironment &&
        ch.sender == ch.receiver) {
      return Status::InvalidSpec("composition " + name_ + ": queue '" + name +
                                 "' loops back to its own peer");
    }
    channels_.push_back(std::move(ch));
  }
  validated_ = true;
  return Status::Ok();
}

const Channel* Composition::FindChannel(const std::string& name) const {
  for (const Channel& ch : channels_) {
    if (ch.name == name) return &ch;
  }
  return nullptr;
}

bool Composition::IsClosed() const {
  for (const Channel& ch : channels_) {
    if (ch.FromEnvironment() || ch.ToEnvironment()) return false;
  }
  return true;
}

std::set<std::string> Composition::Constants() const {
  std::set<std::string> out;
  for (const Peer& p : peers_) {
    auto c = p.Constants();
    out.insert(c.begin(), c.end());
  }
  return out;
}

Interner Composition::BuildInterner() const {
  Interner interner;
  for (const std::string& c : Constants()) interner.Intern(c);
  return interner;
}

fo::RelClass Composition::Classify(const std::string& name) const {
  // Run propositions.
  if (name == EnvMovePropName()) return fo::RelClass::kMove;
  for (const Peer& p : peers_) {
    if (name == MovePropName(p.name())) return fo::RelClass::kMove;
  }
  for (const Channel& ch : channels_) {
    if (name == ReceivedPropName(ch.name)) return fo::RelClass::kReceived;
  }
  // Qualified name?
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    const Peer* peer = FindPeer(name.substr(0, dot));
    if (peer == nullptr) return fo::RelClass::kUnknown;
    return peer->Classify(name.substr(dot + 1));
  }
  // Unqualified: unambiguous only for single-peer compositions.
  if (peers_.size() == 1) return peers_[0].Classify(name);
  return fo::RelClass::kUnknown;
}

namespace {

/// Looks up `name` across all of a peer's schemas (declared + derived).
size_t PeerArityOf(const Peer& peer, const std::string& name) {
  for (const data::Schema* schema :
       {&peer.database_schema(), &peer.runtime_state_schema(),
        &peer.input_schema(), &peer.prev_input_schema(),
        &peer.action_schema()}) {
    size_t i = schema->IndexOf(name);
    if (i != data::Schema::kNpos) return schema->relation(i).arity();
  }
  if (const QueueDecl* q = peer.FindInQueue(name)) return q->arity();
  if (const QueueDecl* q = peer.FindOutQueue(name)) return q->arity();
  for (const QueueDecl& q : peer.out_queues()) {
    if (name == "error_" + q.name) return 0;
  }
  return data::Schema::kNpos;
}

}  // namespace

size_t Composition::ArityOfQualified(const std::string& name) const {
  // Run propositions.
  if (name == EnvMovePropName()) return 0;
  for (const Peer& p : peers_) {
    if (name == MovePropName(p.name())) return 0;
  }
  for (const Channel& ch : channels_) {
    if (name == ReceivedPropName(ch.name) || name == "sent_" + ch.name) {
      return 0;
    }
    if (name == "env." + ch.name &&
        (ch.FromEnvironment() || ch.ToEnvironment())) {
      return ch.arity();
    }
  }
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    const Peer* peer = FindPeer(name.substr(0, dot));
    if (peer == nullptr) return data::Schema::kNpos;
    return PeerArityOf(*peer, name.substr(dot + 1));
  }
  if (peers_.size() == 1) return PeerArityOf(peers_[0], name);
  return data::Schema::kNpos;
}

Status Composition::CheckInputBounded(
    const fo::InputBoundedOptions& options) const {
  for (const Peer& p : peers_) {
    WSV_RETURN_IF_ERROR(p.CheckInputBounded(options));
  }
  return Status::Ok();
}

}  // namespace wsv::spec
