#include "spec/peer.h"

#include <algorithm>

#include "fo/input_bounded.h"

namespace wsv::spec {

const char* RuleKindName(RuleKind kind) {
  switch (kind) {
    case RuleKind::kInputOptions: return "options";
    case RuleKind::kStateInsert: return "insert";
    case RuleKind::kStateDelete: return "delete";
    case RuleKind::kAction: return "action";
    case RuleKind::kSend: return "send";
  }
  return "?";
}

std::string Rule::ToString() const {
  std::string out = RuleKindName(kind);
  out += " ";
  out += relation;
  out += "(";
  for (size_t i = 0; i < head_vars.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_vars[i];
  }
  out += ") :- ";
  out += body->ToString();
  return out;
}

std::string QueueEmptyStateName(const std::string& queue) {
  return "empty_" + queue;
}

std::string PrevInputName(const std::string& input, int i) {
  if (i == 1) return "prev_" + input;
  return "prev" + std::to_string(i) + "_" + input;
}

Status Peer::CheckNameFresh(const std::string& name) const {
  if (database_.Contains(name) || state_.Contains(name) ||
      input_.Contains(name) || action_.Contains(name) ||
      FindInQueue(name) != nullptr || FindOutQueue(name) != nullptr) {
    return Status::InvalidSpec("peer " + name_ + ": relation name '" + name +
                               "' is declared twice (Definition 2.1 requires "
                               "disjoint schemas)");
  }
  return Status::Ok();
}

Status Peer::AddDatabaseRelation(std::string name,
                                 std::vector<std::string> attributes) {
  WSV_RETURN_IF_ERROR(CheckNameFresh(name));
  return database_.AddRelation({std::move(name), std::move(attributes)});
}

Status Peer::AddStateRelation(std::string name,
                              std::vector<std::string> attributes) {
  WSV_RETURN_IF_ERROR(CheckNameFresh(name));
  return state_.AddRelation({std::move(name), std::move(attributes)});
}

Status Peer::AddInputRelation(std::string name,
                              std::vector<std::string> attributes) {
  WSV_RETURN_IF_ERROR(CheckNameFresh(name));
  return input_.AddRelation({std::move(name), std::move(attributes)});
}

Status Peer::AddActionRelation(std::string name,
                               std::vector<std::string> attributes) {
  WSV_RETURN_IF_ERROR(CheckNameFresh(name));
  return action_.AddRelation({std::move(name), std::move(attributes)});
}

Status Peer::AddInQueue(std::string name, QueueKind kind,
                        std::vector<std::string> attributes) {
  WSV_RETURN_IF_ERROR(CheckNameFresh(name));
  in_queues_.push_back(QueueDecl{std::move(name), kind, std::move(attributes)});
  return Status::Ok();
}

Status Peer::AddOutQueue(std::string name, QueueKind kind,
                         std::vector<std::string> attributes) {
  WSV_RETURN_IF_ERROR(CheckNameFresh(name));
  out_queues_.push_back(
      QueueDecl{std::move(name), kind, std::move(attributes)});
  return Status::Ok();
}

const QueueDecl* Peer::FindInQueue(const std::string& name) const {
  for (const QueueDecl& q : in_queues_) {
    if (q.name == name) return &q;
  }
  return nullptr;
}

const QueueDecl* Peer::FindOutQueue(const std::string& name) const {
  for (const QueueDecl& q : out_queues_) {
    if (q.name == name) return &q;
  }
  return nullptr;
}

Status Peer::AddRule(RuleKind kind, const std::string& relation,
                     std::vector<std::string> head_vars, fo::FormulaPtr body) {
  if (FindRule(kind, relation) != nullptr) {
    return Status::InvalidSpec("peer " + name_ + ": duplicate " +
                               RuleKindName(kind) + " rule for '" + relation +
                               "'");
  }
  rules_.push_back(Rule{kind, relation, std::move(head_vars), std::move(body)});
  return Status::Ok();
}

const Rule* Peer::FindRule(RuleKind kind, const std::string& relation) const {
  for (const Rule& r : rules_) {
    if (r.kind == kind && r.relation == relation) return &r;
  }
  return nullptr;
}

fo::RelClass Peer::Classify(const std::string& name) const {
  if (database_.Contains(name)) return fo::RelClass::kDatabase;
  if (state_.Contains(name)) return fo::RelClass::kState;
  if (input_.Contains(name)) return fo::RelClass::kInput;
  if (action_.Contains(name)) return fo::RelClass::kAction;
  if (const QueueDecl* q = FindInQueue(name)) {
    return q->kind == QueueKind::kFlat ? fo::RelClass::kInFlat
                                       : fo::RelClass::kInNested;
  }
  if (const QueueDecl* q = FindOutQueue(name)) {
    return q->kind == QueueKind::kFlat ? fo::RelClass::kOutFlat
                                       : fo::RelClass::kOutNested;
  }
  // Derived symbols: queue states, send-error flags (Theorem 3.8: "it can
  // be consulted by the peer rules and the properties") and previous
  // inputs.
  for (const QueueDecl& q : in_queues_) {
    if (name == QueueEmptyStateName(q.name)) return fo::RelClass::kQueueState;
  }
  for (const QueueDecl& q : out_queues_) {
    if (q.kind == QueueKind::kFlat && name == "error_" + q.name) {
      return fo::RelClass::kQueueState;
    }
  }
  for (size_t i = 0; i < input_.size(); ++i) {
    const std::string& input = input_.relation(i).name;
    for (int k = 1; k <= lookback_; ++k) {
      if (name == PrevInputName(input, k)) return fo::RelClass::kPrevInput;
    }
  }
  return fo::RelClass::kUnknown;
}

namespace {

/// Relation classes a rule body of the given kind may mention
/// (Definition 2.1). Input rules see D, S, PrevI, Qin; state/action/send
/// rules additionally see I.
bool ClassAllowedInBody(RuleKind kind, fo::RelClass c) {
  switch (c) {
    case fo::RelClass::kDatabase:
    case fo::RelClass::kState:
    case fo::RelClass::kQueueState:
    case fo::RelClass::kPrevInput:
    case fo::RelClass::kInFlat:
    case fo::RelClass::kInNested:
      return true;
    case fo::RelClass::kInput:
      return kind != RuleKind::kInputOptions;
    default:
      return false;
  }
}

}  // namespace

Status Peer::ValidateRule(const Rule& rule) const {
  // Head target exists and has the right kind.
  size_t arity;
  switch (rule.kind) {
    case RuleKind::kInputOptions: {
      size_t i = input_.IndexOf(rule.relation);
      if (i == data::Schema::kNpos) {
        return Status::InvalidSpec("peer " + name_ + ": options rule for '" +
                                   rule.relation + "' which is not an input");
      }
      arity = input_.relation(i).arity();
      break;
    }
    case RuleKind::kStateInsert:
    case RuleKind::kStateDelete: {
      size_t i = state_.IndexOf(rule.relation);
      if (i == data::Schema::kNpos) {
        return Status::InvalidSpec("peer " + name_ + ": " +
                                   RuleKindName(rule.kind) + " rule for '" +
                                   rule.relation + "' which is not a state");
      }
      arity = state_.relation(i).arity();
      break;
    }
    case RuleKind::kAction: {
      size_t i = action_.IndexOf(rule.relation);
      if (i == data::Schema::kNpos) {
        return Status::InvalidSpec("peer " + name_ + ": action rule for '" +
                                   rule.relation + "' which is not an action");
      }
      arity = action_.relation(i).arity();
      break;
    }
    case RuleKind::kSend: {
      const QueueDecl* q = FindOutQueue(rule.relation);
      if (q == nullptr) {
        return Status::InvalidSpec("peer " + name_ + ": send rule for '" +
                                   rule.relation +
                                   "' which is not an out-queue");
      }
      arity = q->arity();
      break;
    }
    default:
      return Status::Internal("bad rule kind");
  }

  if (rule.head_vars.size() != arity) {
    return Status::InvalidSpec(
        "peer " + name_ + ": rule head " + rule.relation + " expects " +
        std::to_string(arity) + " variables, got " +
        std::to_string(rule.head_vars.size()));
  }
  std::set<std::string> distinct(rule.head_vars.begin(),
                                 rule.head_vars.end());
  if (distinct.size() != rule.head_vars.size()) {
    return Status::InvalidSpec("peer " + name_ + ": rule head " +
                               rule.relation +
                               " must use distinct variables");
  }

  // Body free variables must appear in the head.
  for (const std::string& v : rule.body->FreeVariables()) {
    if (distinct.count(v) == 0) {
      return Status::InvalidSpec("peer " + name_ + ": rule " +
                                 rule.ToString() + " has free variable '" + v +
                                 "' not bound by the head");
    }
  }

  // Body vocabulary check.
  for (const std::string& rel : rule.body->RelationNames()) {
    fo::RelClass c = Classify(rel);
    if (c == fo::RelClass::kUnknown) {
      return Status::InvalidSpec("peer " + name_ + ": rule body references "
                                 "undeclared relation '" +
                                 rel + "'");
    }
    if (!ClassAllowedInBody(rule.kind, c)) {
      return Status::InvalidSpec(
          "peer " + name_ + ": rule " + rule.ToString() + " references " +
          fo::RelClassName(c) + " relation '" + rel +
          "', which Definition 2.1 does not allow in " +
          RuleKindName(rule.kind) + " rule bodies");
    }
  }
  return Status::Ok();
}

Status Peer::Validate() {
  if (lookback_ < 1) {
    return Status::InvalidSpec("peer " + name_ + ": lookback must be >= 1");
  }
  // Build derived schemas.
  runtime_state_ = state_;
  for (const QueueDecl& q : in_queues_) {
    WSV_RETURN_IF_ERROR(
        runtime_state_.AddRelation({QueueEmptyStateName(q.name), {}}));
  }
  prev_input_ = data::Schema();
  for (size_t i = 0; i < input_.size(); ++i) {
    const data::RelationSchema& r = input_.relation(i);
    for (int k = 1; k <= lookback_; ++k) {
      WSV_RETURN_IF_ERROR(
          prev_input_.AddRelation({PrevInputName(r.name, k), r.attributes}));
    }
  }

  for (const Rule& rule : rules_) {
    WSV_RETURN_IF_ERROR(ValidateRule(rule));
  }
  validated_ = true;
  return Status::Ok();
}

std::set<std::string> Peer::Constants() const {
  std::set<std::string> out;
  for (const Rule& rule : rules_) {
    auto c = rule.body->Constants();
    out.insert(c.begin(), c.end());
  }
  return out;
}

Status Peer::CheckInputBounded(const fo::InputBoundedOptions& options) const {
  for (const Rule& rule : rules_) {
    bool flat_send = false;
    if (rule.kind == RuleKind::kSend) {
      const QueueDecl* q = FindOutQueue(rule.relation);
      flat_send = q != nullptr && q->kind == QueueKind::kFlat;
    }
    if (rule.kind == RuleKind::kInputOptions || flat_send) {
      // Section 3.1 condition 2.
      Status s = fo::CheckExistentialGroundRule(rule.body, *this);
      if (!s.ok()) {
        return Status(s.code(),
                      "peer " + name_ + ", rule [" + rule.ToString() + "]: " +
                          s.message());
      }
    } else {
      // Section 3.1 condition 1.
      Status s = fo::CheckInputBounded(rule.body, *this, options);
      if (!s.ok()) {
        return Status(s.code(),
                      "peer " + name_ + ", rule [" + rule.ToString() + "]: " +
                          s.message());
      }
    }
  }
  return Status::Ok();
}

}  // namespace wsv::spec
