#include "spec/printer.h"

namespace wsv::spec {

namespace {

void PrintRelationBlock(std::string& out, const char* keyword,
                        const data::Schema& schema) {
  if (schema.size() == 0) return;
  out += "  ";
  out += keyword;
  out += " {\n";
  for (size_t i = 0; i < schema.size(); ++i) {
    const data::RelationSchema& r = schema.relation(i);
    out += "    " + r.name + "(";
    for (size_t a = 0; a < r.attributes.size(); ++a) {
      if (a > 0) out += ", ";
      out += r.attributes[a];
    }
    out += ");\n";
  }
  out += "  }\n";
}

void PrintQueueBlock(std::string& out, const char* keyword,
                     const std::vector<QueueDecl>& queues, QueueKind kind) {
  bool any = false;
  for (const QueueDecl& q : queues) any = any || q.kind == kind;
  if (!any) return;
  out += "  ";
  out += keyword;
  out += kind == QueueKind::kFlat ? " flat {\n" : " nested {\n";
  for (const QueueDecl& q : queues) {
    if (q.kind != kind) continue;
    out += "    " + q.name + "(";
    for (size_t a = 0; a < q.attributes.size(); ++a) {
      if (a > 0) out += ", ";
      out += q.attributes[a];
    }
    out += ");\n";
  }
  out += "  }\n";
}

}  // namespace

std::string PrintPeer(const Peer& peer) {
  std::string out = "peer " + peer.name() + " {\n";
  PrintRelationBlock(out, "database", peer.database_schema());
  PrintRelationBlock(out, "input", peer.input_schema());
  PrintRelationBlock(out, "state", peer.declared_state_schema());
  PrintRelationBlock(out, "action", peer.action_schema());
  PrintQueueBlock(out, "inqueue", peer.in_queues(), QueueKind::kFlat);
  PrintQueueBlock(out, "inqueue", peer.in_queues(), QueueKind::kNested);
  PrintQueueBlock(out, "outqueue", peer.out_queues(), QueueKind::kFlat);
  PrintQueueBlock(out, "outqueue", peer.out_queues(), QueueKind::kNested);
  if (peer.lookback() > 1) {
    out += "  lookback " + std::to_string(peer.lookback()) + ";\n";
  }
  if (!peer.rules().empty()) {
    out += "  rules {\n";
    for (const Rule& rule : peer.rules()) {
      // Rule::ToString emits DSL-compatible "kind head(vars) :- body".
      out += "    " + rule.ToString() + ";\n";
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

std::string PrintComposition(const Composition& comp) {
  std::string out;
  for (const Peer& peer : comp.peers()) {
    out += PrintPeer(peer);
    out += "\n";
  }
  out += "composition " + comp.name() + " { peers ";
  for (size_t i = 0; i < comp.peers().size(); ++i) {
    if (i > 0) out += ", ";
    out += comp.peers()[i].name();
  }
  out += "; }\n";
  return out;
}

}  // namespace wsv::spec
