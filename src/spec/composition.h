#ifndef WSVERIFY_SPEC_COMPOSITION_H_
#define WSVERIFY_SPEC_COMPOSITION_H_

#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "fo/classify.h"
#include "spec/peer.h"

namespace wsv::spec {

/// A communication channel: a queue relation connecting a unique sender to a
/// unique receiver (Section 2). Open compositions have channels whose sender
/// or receiver is the environment (kEnvironment).
struct Channel {
  static constexpr size_t kEnvironment = static_cast<size_t>(-1);

  std::string name;
  size_t sender = kEnvironment;    // peer index, or kEnvironment
  size_t receiver = kEnvironment;  // peer index, or kEnvironment
  QueueKind kind = QueueKind::kFlat;
  std::vector<std::string> attributes;

  size_t arity() const { return attributes.size(); }
  bool FromEnvironment() const { return sender == kEnvironment; }
  bool ToEnvironment() const { return receiver == kEnvironment; }
};

/// A composition of peers (Definition 2.5). Channels are derived by matching
/// out-queue and in-queue names across peers: queue names are global, each
/// with a unique sender and receiver. Unmatched queues connect to the
/// environment (the composition is then open, Section 5).
class Composition : public fo::SymbolClassifier {
 public:
  explicit Composition(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a peer (peers are stored by value; add fully-built peers).
  Status AddPeer(Peer peer);

  const std::vector<Peer>& peers() const { return peers_; }
  const Peer* FindPeer(const std::string& name) const;
  size_t PeerIndex(const std::string& name) const;
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  /// Validates every peer, checks cross-peer queue uniqueness and arity/kind
  /// agreement, and derives the channel list.
  Status Validate();

  const std::vector<Channel>& channels() const { return channels_; }
  const Channel* FindChannel(const std::string& name) const;

  /// True iff every channel has both a sender and a receiver inside the
  /// composition (Definition 2.5).
  bool IsClosed() const;

  /// All constant spellings in any peer's rules.
  std::set<std::string> Constants() const;

  /// Builds an interner seeded with every constant of the composition.
  Interner BuildInterner() const;

  /// Classifier over composition-qualified names ("Officer.customer"),
  /// the run propositions move_<peer>, move_env, and received_<queue>
  /// (Sections 3 and 5). Unqualified names resolve only in single-peer
  /// compositions.
  fo::RelClass Classify(const std::string& name) const override;

  /// Input-boundedness of every peer (Section 3.1).
  Status CheckInputBounded(const fo::InputBoundedOptions& options = {}) const;

  /// Arity of a relation name as used in properties (qualified "Peer.rel",
  /// derived prev_/empty_ names, run propositions, env.Q channel views);
  /// kNpos when the name does not resolve.
  size_t ArityOfQualified(const std::string& name) const;

  /// "peer.relation" qualification used in properties.
  static std::string Qualify(const std::string& peer,
                             const std::string& relation) {
    return peer + "." + relation;
  }

  /// Name of the move proposition for a peer / the environment (Section 3).
  static std::string MovePropName(const std::string& peer) {
    return "move_" + peer;
  }
  static std::string EnvMovePropName() { return "move_env"; }
  /// Name of the receivedQ proposition (Section 5).
  static std::string ReceivedPropName(const std::string& queue) {
    return "received_" + queue;
  }

 private:
  std::string name_;
  std::vector<Peer> peers_;
  std::vector<Channel> channels_;
  bool validated_ = false;
};

}  // namespace wsv::spec

#endif  // WSVERIFY_SPEC_COMPOSITION_H_
