#ifndef WSVERIFY_SPEC_LIBRARY_H_
#define WSVERIFY_SPEC_LIBRARY_H_

#include <string>

#include "common/status.h"
#include "spec/composition.h"

namespace wsv::spec::library {

/// The paper's running example (Figure 1, Example 2.2): the bank loan
/// application composition with peers Customer, Officer, Manager and
/// CreditAgency, communicating over the channels apply, getRating, rating,
/// getHistory, history, recommend and decision. The Officer's rules are the
/// paper's rules (1)-(10); the other peers are reconstructed from the
/// prose (their specifications are not given in the paper) under the
/// input-boundedness discipline of Section 3.1.
Result<Composition> LoanComposition();

/// The DSL source of the loan composition (for tests of the parser and for
/// display in examples).
const char* LoanCompositionSource();

/// Property (11): every received application from a known customer
/// eventually results in an approval or denial letter.
std::string LoanProperty11();

/// The safety side of the bank policy (Example 3.2, second property):
/// approval letters only after an excellent rating or a manager approval.
std::string LoanPropertyPolicy();

/// The officer peer alone, as an *open* composition (Section 5): channels
/// apply, getRating/rating, getHistory/history, recommend/decision face the
/// environment.
Result<Composition> OfficerOnlyComposition();

/// Example 5.1's environment specification: the credit agency answers
/// rating requests with one of the four categories.
std::string OfficerEnvironmentSpec();

/// A single-peer e-commerce site in the spirit of the Dell-like computer
/// shop modeled with WAVE [11]: catalog browsing, cart, order placement and
/// shipment actions. No queues — the degenerate case of Lemma 3.5.
Result<Composition> ShopComposition(int lookback = 1);

/// An online bookstore composition (Barnes&Noble-like, per Section 3.1's
/// modeling claims): a storefront peer and a warehouse peer exchanging
/// order / pickList / shipped messages.
Result<Composition> BookstoreComposition();

/// An airline-reservation composition (Expedia-like, per Section 3.1's
/// modeling claims): a travel front-end searching flights and holding
/// seats against an airline inventory peer.
Result<Composition> AirlineComposition();

/// The Motorcycle Grand Prix fan site (the fourth WAVE-modeled site,
/// Section 3.1): a single peer with race browsing, rider following and a
/// previous-input-driven poll.
Result<Composition> MotoGpComposition();

}  // namespace wsv::spec::library

#endif  // WSVERIFY_SPEC_LIBRARY_H_
