#include "spec/parser.h"

#include <optional>
#include <vector>

#include "fo/lexer.h"
#include "fo/parser.h"

namespace wsv::spec {

namespace {

using fo::Token;
using fo::TokenCursor;
using fo::TokenKind;

class SpecParser {
 public:
  explicit SpecParser(TokenCursor& cursor) : cur_(cursor) {}

  Result<Composition> Parse() {
    std::vector<Peer> peers;
    std::optional<std::string> comp_name;
    std::vector<std::string> comp_peers;

    while (!cur_.AtEnd()) {
      if (cur_.TryConsumeIdent("peer")) {
        WSV_ASSIGN_OR_RETURN(Peer peer, ParsePeer());
        peers.push_back(std::move(peer));
        continue;
      }
      if (cur_.TryConsumeIdent("composition")) {
        WSV_ASSIGN_OR_RETURN(Token name,
                             cur_.Expect(TokenKind::kIdent, "composition"));
        comp_name = name.text;
        WSV_RETURN_IF_ERROR(
            cur_.Expect(TokenKind::kLBrace, "composition").status());
        while (!cur_.TryConsume(TokenKind::kRBrace)) {
          WSV_RETURN_IF_ERROR(cur_.ExpectIdent("peers", "composition body"));
          while (true) {
            WSV_ASSIGN_OR_RETURN(Token p,
                                 cur_.Expect(TokenKind::kIdent, "peer list"));
            comp_peers.push_back(p.text);
            if (!cur_.TryConsume(TokenKind::kComma)) break;
          }
          WSV_RETURN_IF_ERROR(
              cur_.Expect(TokenKind::kSemicolon, "peer list").status());
        }
        continue;
      }
      return cur_.ErrorHere("expected 'peer' or 'composition', found '" +
                            cur_.Peek().text + "'");
    }

    Composition comp(comp_name.value_or("composition"));
    if (comp_peers.empty()) {
      for (Peer& p : peers) {
        WSV_RETURN_IF_ERROR(comp.AddPeer(std::move(p)));
      }
    } else {
      for (const std::string& wanted : comp_peers) {
        bool found = false;
        for (Peer& p : peers) {
          if (p.name() == wanted) {
            WSV_RETURN_IF_ERROR(comp.AddPeer(std::move(p)));
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::ParseError("composition references undeclared peer '" +
                                    wanted + "'");
        }
      }
    }
    WSV_RETURN_IF_ERROR(comp.Validate());
    return comp;
  }

 private:
  Result<Peer> ParsePeer() {
    WSV_ASSIGN_OR_RETURN(Token name, cur_.Expect(TokenKind::kIdent, "peer"));
    Peer peer(name.text);
    WSV_RETURN_IF_ERROR(cur_.Expect(TokenKind::kLBrace, "peer body").status());
    while (!cur_.TryConsume(TokenKind::kRBrace)) {
      WSV_ASSIGN_OR_RETURN(Token section,
                           cur_.Expect(TokenKind::kIdent, "peer section"));
      if (section.text == "database") {
        WSV_RETURN_IF_ERROR(ParseRelationBlock(
            [&](std::string n, std::vector<std::string> a) {
              return peer.AddDatabaseRelation(std::move(n), std::move(a));
            }));
      } else if (section.text == "state") {
        WSV_RETURN_IF_ERROR(ParseRelationBlock(
            [&](std::string n, std::vector<std::string> a) {
              return peer.AddStateRelation(std::move(n), std::move(a));
            }));
      } else if (section.text == "input") {
        WSV_RETURN_IF_ERROR(ParseRelationBlock(
            [&](std::string n, std::vector<std::string> a) {
              return peer.AddInputRelation(std::move(n), std::move(a));
            }));
      } else if (section.text == "action") {
        WSV_RETURN_IF_ERROR(ParseRelationBlock(
            [&](std::string n, std::vector<std::string> a) {
              return peer.AddActionRelation(std::move(n), std::move(a));
            }));
      } else if (section.text == "inqueue" || section.text == "outqueue") {
        bool is_in = section.text == "inqueue";
        QueueKind kind;
        if (cur_.TryConsumeIdent("flat")) {
          kind = QueueKind::kFlat;
        } else if (cur_.TryConsumeIdent("nested")) {
          kind = QueueKind::kNested;
        } else {
          return cur_.ErrorHere("expected 'flat' or 'nested' after '" +
                                section.text + "'");
        }
        WSV_RETURN_IF_ERROR(ParseRelationBlock(
            [&](std::string n, std::vector<std::string> a) {
              return is_in ? peer.AddInQueue(std::move(n), kind, std::move(a))
                           : peer.AddOutQueue(std::move(n), kind,
                                              std::move(a));
            }));
      } else if (section.text == "lookback") {
        WSV_ASSIGN_OR_RETURN(Token k,
                             cur_.Expect(TokenKind::kNumber, "lookback"));
        peer.SetLookback(std::stoi(k.text));
        WSV_RETURN_IF_ERROR(
            cur_.Expect(TokenKind::kSemicolon, "lookback").status());
      } else if (section.text == "rules") {
        WSV_RETURN_IF_ERROR(ParseRules(peer));
      } else {
        return cur_.ErrorHere("unknown peer section '" + section.text + "'");
      }
    }
    return peer;
  }

  template <typename AddFn>
  Status ParseRelationBlock(AddFn add) {
    WSV_RETURN_IF_ERROR(
        cur_.Expect(TokenKind::kLBrace, "relation block").status());
    while (!cur_.TryConsume(TokenKind::kRBrace)) {
      Result<Token> name = cur_.Expect(TokenKind::kIdent, "relation");
      if (!name.ok()) return name.status();
      std::vector<std::string> attributes;
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kLParen, "relation").status());
      if (cur_.Peek().kind != TokenKind::kRParen) {
        while (true) {
          Result<Token> attr = cur_.Expect(TokenKind::kIdent, "attribute");
          if (!attr.ok()) return attr.status();
          attributes.push_back(attr.value().text);
          if (!cur_.TryConsume(TokenKind::kComma)) break;
        }
      }
      WSV_RETURN_IF_ERROR(cur_.Expect(TokenKind::kRParen, "relation").status());
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kSemicolon, "relation").status());
      WSV_RETURN_IF_ERROR(add(name.value().text, std::move(attributes)));
    }
    return Status::Ok();
  }

  Status ParseRules(Peer& peer) {
    WSV_RETURN_IF_ERROR(cur_.Expect(TokenKind::kLBrace, "rules").status());
    while (!cur_.TryConsume(TokenKind::kRBrace)) {
      Result<Token> kind_tok = cur_.Expect(TokenKind::kIdent, "rule kind");
      if (!kind_tok.ok()) return kind_tok.status();
      RuleKind kind;
      const std::string& k = kind_tok.value().text;
      if (k == "options") {
        kind = RuleKind::kInputOptions;
      } else if (k == "insert") {
        kind = RuleKind::kStateInsert;
      } else if (k == "delete") {
        kind = RuleKind::kStateDelete;
      } else if (k == "action") {
        kind = RuleKind::kAction;
      } else if (k == "send") {
        kind = RuleKind::kSend;
      } else {
        return cur_.ErrorHere(
            "expected rule kind (options/insert/delete/action/send), found '" +
            k + "'");
      }
      Result<Token> rel = cur_.Expect(TokenKind::kIdent, "rule head");
      if (!rel.ok()) return rel.status();
      std::vector<std::string> head_vars;
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kLParen, "rule head").status());
      if (cur_.Peek().kind != TokenKind::kRParen) {
        while (true) {
          Result<Token> v = cur_.Expect(TokenKind::kIdent, "head variable");
          if (!v.ok()) return v.status();
          head_vars.push_back(v.value().text);
          if (!cur_.TryConsume(TokenKind::kComma)) break;
        }
      }
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kRParen, "rule head").status());
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kColonDash, "rule").status());
      Result<fo::FormulaPtr> body = fo::ParseFormulaAt(cur_);
      if (!body.ok()) return body.status();
      WSV_RETURN_IF_ERROR(cur_.Expect(TokenKind::kSemicolon, "rule").status());
      WSV_RETURN_IF_ERROR(
          peer.AddRule(kind, fo::NormalizeRelationName(rel.value().text),
                       std::move(head_vars), std::move(body).value()));
    }
    return Status::Ok();
  }

  TokenCursor& cur_;
};

}  // namespace

Result<Composition> ParseComposition(std::string_view source) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, fo::Tokenize(source));
  TokenCursor cursor(std::move(tokens));
  SpecParser parser(cursor);
  return parser.Parse();
}

}  // namespace wsv::spec
