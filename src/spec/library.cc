#include "spec/library.h"

#include "spec/parser.h"

namespace wsv::spec::library {

namespace {

constexpr char kLoanSource[] = R"(
// The bank loan application composition (Figure 1 / Example 2.2).

peer Customer {
  database { wants(cId, loan); }
  input    { submit(cId, loan); }
  outqueue flat { apply(cId, loan); }
  rules {
    options submit(c, l) :- wants(c, l);
    send apply(c, l) :- submit(c, l);
  }
}

peer Officer {
  database { customer(cId, ssn, name); }
  input    { reccom(cId, recommendation); }
  state {
    application(cId, loan);
    awaitsHist(cId, ssn, name, loan, rating);
    awaitsMgr(cId, ssn, name, loan, rating, account, balance);
  }
  action { letter(cId, name, loan, decision); }
  inqueue flat {
    apply(cId, loan);
    rating(ssn, category);
    decision(cId, dec);
  }
  inqueue nested  { history(ssn, account, balance); }
  outqueue flat   { getRating(ssn); getHistory(ssn); }
  outqueue nested {
    recommend(cId, ssn, name, loan, rec, rating, account, balance);
  }
  rules {
    // (1) the officer recommends approval or denial for known customers
    options reccom(id, rec) :-
      exists ssn, name: customer(id, ssn, name)
        and (rec = "approve" or rec = "deny");
    // (2) arriving applications are recorded
    insert application(id, loan) :- ?apply(id, loan);
    // (3) and a credit rating request is sent, translating id -> ssn
    send getRating(ssn) :-
      exists id, loan, name: ?apply(id, loan) and customer(id, ssn, name);
    // (4)-(6) letters: excellent -> approved, poor -> denied,
    //         otherwise the manager's decision
    action letter(id, name, loan, dec) :-
      exists ssn: customer(id, ssn, name) and application(id, loan) and
        [ ?rating(ssn, "excellent") and dec = "approved"
          or ?rating(ssn, "poor") and dec = "denied"
          or ?decision(id, dec) ];
    // (7) middling ratings trigger a history request
    send getHistory(ssn) :-
      exists r: ?rating(ssn, r)
        and not (r = "excellent" or r = "poor");
    // (8) ... and the applicant waits for the history
    insert awaitsHist(id, ssn, name, l, r) :-
      ?rating(ssn, r) and not (r = "excellent" or r = "poor")
        and application(id, l) and customer(id, ssn, name);
    // (9) history received: ready for the manager
    insert awaitsMgr(id, ssn, name, loan, rating, acc, bal) :-
      ?history(ssn, acc, bal)
        and awaitsHist(id, ssn, name, loan, rating);
    // (10) the officer's recommendation goes to the manager
    send recommend(id, ssn, name, loan, rec, rating, acc, bal) :-
      reccom(id, rec) and awaitsMgr(id, ssn, name, loan, rating, acc, bal);
  }
}

peer Manager {
  database { client(cId, ssn, name); }
  input    { decide(cId, dec); }
  state {
    pending(cId, ssn, name, loan, rec, rating, account, balance);
  }
  inqueue nested {
    recommend(cId, ssn, name, loan, rec, rating, account, balance);
  }
  outqueue flat { decision(cId, dec); }
  rules {
    insert pending(id, ssn, name, loan, rec, rating, acc, bal) :-
      ?recommend(id, ssn, name, loan, rec, rating, acc, bal);
    // Input-boundedness (Section 3.1, condition 2) forbids non-ground state
    // atoms in options rules, so the menu is driven by the client database;
    // the officer's letter rule only reacts to decisions for recorded
    // applications.
    options decide(id, dec) :-
      exists ssn, name: client(id, ssn, name)
        and (dec = "approved" or dec = "denied");
    send decision(id, dec) :- decide(id, dec);
  }
}

peer CreditAgency {
  database {
    creditRecord(ssn, category);
    accounts(ssn, account, balance);
  }
  inqueue flat  { getRating(ssn); getHistory(ssn); }
  outqueue flat { rating(ssn, category); }
  outqueue nested { history(ssn, account, balance); }
  rules {
    send rating(s, cat) :- ?getRating(s) and creditRecord(s, cat);
    send history(s, acc, bal) :- ?getHistory(s) and accounts(s, acc, bal);
  }
}

composition Loan { peers Customer, Officer, Manager, CreditAgency; }
)";

constexpr char kOfficerOnlySource[] = R"(
// The Officer peer of Example 2.2 in isolation: an open composition whose
// channels face the environment (customer, manager and credit agency are
// undisclosed outside peers, Section 5).

peer Officer {
  database { customer(cId, ssn, name); }
  input    { reccom(cId, recommendation); }
  state {
    application(cId, loan);
    awaitsHist(cId, ssn, name, loan, rating);
    awaitsMgr(cId, ssn, name, loan, rating, account, balance);
  }
  action { letter(cId, name, loan, decision); }
  inqueue flat {
    apply(cId, loan);
    rating(ssn, category);
    decision(cId, dec);
  }
  inqueue nested  { history(ssn, account, balance); }
  outqueue flat   { getRating(ssn); getHistory(ssn); }
  outqueue nested {
    recommend(cId, ssn, name, loan, rec, rating, account, balance);
  }
  rules {
    options reccom(id, rec) :-
      exists ssn, name: customer(id, ssn, name)
        and (rec = "approve" or rec = "deny");
    insert application(id, loan) :- ?apply(id, loan);
    send getRating(ssn) :-
      exists id, loan, name: ?apply(id, loan) and customer(id, ssn, name);
    action letter(id, name, loan, dec) :-
      exists ssn: customer(id, ssn, name) and application(id, loan) and
        [ ?rating(ssn, "excellent") and dec = "approved"
          or ?rating(ssn, "poor") and dec = "denied"
          or ?decision(id, dec) ];
    send getHistory(ssn) :-
      exists r: ?rating(ssn, r)
        and not (r = "excellent" or r = "poor");
    insert awaitsHist(id, ssn, name, l, r) :-
      ?rating(ssn, r) and not (r = "excellent" or r = "poor")
        and application(id, l) and customer(id, ssn, name);
    insert awaitsMgr(id, ssn, name, loan, rating, acc, bal) :-
      ?history(ssn, acc, bal)
        and awaitsHist(id, ssn, name, loan, rating);
    send recommend(id, ssn, name, loan, rec, rating, acc, bal) :-
      reccom(id, rec) and awaitsMgr(id, ssn, name, loan, rating, acc, bal);
  }
}

composition OfficerOnly { peers Officer; }
)";

constexpr char kShopSource[] = R"(
// A single-peer computer-shopping site in the spirit of the WAVE demos
// (Dell-like store): the degenerate no-queue case of Lemma 3.5.

peer Shop {
  database {
    product(pId, price);
    inStock(pId);
  }
  input {
    view(pId);
    addToCart(pId);
    checkout();
  }
  state {
    viewed(pId);
    cart(pId);
    ordered(pId);
  }
  action {
    ship(pId);
    confirm(pId);
  }
  rules {
    options view(p) :- exists price: product(p, price);
    options addToCart(p) :- prev_view(p) and inStock(p);
    options checkout() :- true;
    insert viewed(p) :- view(p);
    insert cart(p) :- addToCart(p);
    delete cart(p) :- cart(p) and checkout();
    insert ordered(p) :- cart(p) and checkout();
    action ship(p) :- cart(p) and checkout() and inStock(p);
    action confirm(p) :- cart(p) and checkout();
  }
}

composition ShopOnly { peers Shop; }
)";

constexpr char kBookstoreSource[] = R"(
// An online bookstore in the spirit of Barnes & Noble (Section 3.1 claims
// such sites are input-bounded-modelable): a storefront peer takes orders
// and a warehouse peer picks and ships them.

peer Storefront {
  database { book(bId, title); }
  input    { order(bId); }
  state    { placed(bId); shipped(bId); }
  action   { notifyShipped(bId); }
  inqueue flat  { shipNotice(bId); }
  outqueue flat { pickRequest(bId); }
  rules {
    options order(b) :- exists t: book(b, t);
    insert placed(b) :- order(b);
    send pickRequest(b) :- order(b);
    insert shipped(b) :- ?shipNotice(b);
    action notifyShipped(b) :- ?shipNotice(b) and placed(b);
  }
}

peer Warehouse {
  database { stock(bId, shelf); }
  state    { picked(bId); }
  inqueue flat  { pickRequest(bId); }
  outqueue flat { shipNotice(bId); }
  rules {
    insert picked(b) :- exists s: ?pickRequest(b) and stock(b, s);
    send shipNotice(b) :- exists s: ?pickRequest(b) and stock(b, s);
  }
}

composition Bookstore { peers Storefront, Warehouse; }
)";

constexpr char kAirlineSource[] = R"(
// An airline-reservation composition in the spirit of Expedia (Section 3.1
// claims such sites are input-bounded-modelable): a travel front-end
// searches flights, places holds with the airline's inventory service, and
// confirms bookings from the acknowledgments.

peer Travel {
  database { flight(fId, dest); }
  input    { searchDest(dest); book(fId); }
  state    { results(fId, dest); held(fId); confirmed(fId); }
  action   { itinerary(fId); }
  inqueue flat  { bookAck(fId, status); }
  outqueue flat { hold(fId); }
  rules {
    options searchDest(d) :- exists f: flight(f, d);
    insert results(f, d) :- searchDest(d) and flight(f, d);
    // Booking is offered for flights matching the previous search
    // (previous-input guards keep the rule input-bounded).
    options book(f) :- exists d: prev_searchDest(d) and flight(f, d);
    send hold(f) :- book(f);
    insert held(f) :- book(f);
    insert confirmed(f) :- ?bookAck(f, "ok") and held(f);
    delete held(f) :- ?bookAck(f, "ok") or ?bookAck(f, "full");
    action itinerary(f) :- ?bookAck(f, "ok") and held(f);
  }
}

peer Airline {
  database { seats(fId); }
  inqueue flat  { hold(fId); }
  outqueue flat { bookAck(fId, status); }
  rules {
    send bookAck(f, st) :-
      ?hold(f) and (seats(f) and st = "ok"
                    or not seats(f) and st = "full");
  }
}

composition Airline { peers Travel, Airline; }
)";

constexpr char kMotoGpSource[] = R"(
// A Motorcycle Grand Prix fan site (the fourth site modeled with WAVE,
// Section 3.1): race browsing, rider following, and a poll whose options
// depend on the race the fan just viewed.

peer MotoGP {
  database {
    race(raceId, circuit);
    result(raceId, rider, position);
    rider(riderId, team);
  }
  input {
    viewRace(raceId);
    follow(riderId);
    vote(riderId);
  }
  state {
    viewing(raceId);
    followed(riderId);
    votes(riderId);
  }
  action { notify(riderId, raceId); }
  rules {
    options viewRace(r) :- exists c: race(r, c);
    options follow(rd) :- exists t: rider(rd, t);
    // The poll offers the winner of the race the fan viewed last —
    // a previous-input guard keeps the rule input-bounded.
    options vote(rd) :-
      exists r: prev_viewRace(r) and result(r, rd, "p1");
    insert viewing(r) :- viewRace(r);
    delete viewing(r) :- viewing(r) and not viewRace(r);
    insert followed(rd) :- follow(rd);
    insert votes(rd) :- vote(rd);
    action notify(rd, r) :-
      followed(rd) and viewRace(r) and result(r, rd, "p1");
  }
}

composition MotoGP { peers MotoGP; }
)";

}  // namespace

const char* LoanCompositionSource() { return kLoanSource; }

Result<Composition> LoanComposition() { return ParseComposition(kLoanSource); }

std::string LoanProperty11() {
  return "forall id, l, name, ssn: "
         "G[(Officer.apply(id, l) and Officer.customer(id, ssn, name)) -> "
         "F(Officer.letter(id, name, l, \"denied\") or "
         "Officer.letter(id, name, l, \"approved\"))]";
}

std::string LoanPropertyPolicy() {
  // Causal form of the bank policy (Example 3.2): a *fresh* approval letter
  // at the next snapshot requires, now, either an excellent rating at the
  // head of the rating queue or an approved manager decision at the head of
  // the decision queue. (The paper displays this with the B operator over
  // out-queue views; under the formal queue semantics the consumed message
  // is no longer visible in l(q) when the letter appears, so the displayed
  // form is violated by every approving run — see EXPERIMENTS.md.)
  return "forall id, name, loan: "
         "G[(X Officer.letter(id, name, loan, \"approved\")) -> "
         "(Officer.letter(id, name, loan, \"approved\") "
         "or Officer.decision(id, \"approved\") "
         "or (exists s: Officer.rating(s, \"excellent\")))]";
}

Result<Composition> OfficerOnlyComposition() {
  return ParseComposition(kOfficerOnlySource);
}

std::string OfficerEnvironmentSpec() {
  return "G forall ssn: env.getRating(ssn) -> "
         "(env.rating(ssn, \"poor\") or env.rating(ssn, \"fair\") or "
         "env.rating(ssn, \"good\") or env.rating(ssn, \"excellent\"))";
}

Result<Composition> ShopComposition(int lookback) {
  WSV_ASSIGN_OR_RETURN(Composition comp, ParseComposition(kShopSource));
  if (lookback > 1) {
    // Rebuild with the requested lookback window (peers with k-lookback,
    // Section 3.1 / Lemma 3.5).
    Composition rebuilt(comp.name());
    for (const Peer& p : comp.peers()) {
      Peer copy = p;
      copy.SetLookback(lookback);
      WSV_RETURN_IF_ERROR(rebuilt.AddPeer(std::move(copy)));
    }
    WSV_RETURN_IF_ERROR(rebuilt.Validate());
    return rebuilt;
  }
  return comp;
}

Result<Composition> BookstoreComposition() {
  return ParseComposition(kBookstoreSource);
}

Result<Composition> AirlineComposition() {
  return ParseComposition(kAirlineSource);
}

Result<Composition> MotoGpComposition() {
  return ParseComposition(kMotoGpSource);
}

}  // namespace wsv::spec::library
