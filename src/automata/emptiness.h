#ifndef WSVERIFY_AUTOMATA_EMPTINESS_H_
#define WSVERIFY_AUTOMATA_EMPTINESS_H_

#include <optional>
#include <vector>

#include "automata/buchi.h"

namespace wsv::automata {

/// An accepting lasso witness: a finite prefix of states followed by a cycle
/// (repeated forever) that visits an accepting state. States are listed in
/// order; `cycle` starts at the state the prefix ends in.
struct Lasso {
  std::vector<StateId> prefix;  // from an initial state, inclusive
  std::vector<StateId> cycle;   // cycle[0] == prefix.back()
};

/// Searches a plain (1 acceptance set) Büchi automaton for an accepting
/// lasso, considering only transitions whose guards are satisfiable.
/// Returns nullopt iff the language is empty.
std::optional<Lasso> FindAcceptingLasso(const BuchiAutomaton& automaton);

/// True iff the automaton's language is empty.
inline bool IsEmptyLanguage(const BuchiAutomaton& automaton) {
  return !FindAcceptingLasso(automaton).has_value();
}

}  // namespace wsv::automata

#endif  // WSVERIFY_AUTOMATA_EMPTINESS_H_
