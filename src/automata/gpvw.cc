#include "automata/gpvw.h"

#include <cassert>
#include <map>
#include <set>
#include <vector>

namespace wsv::automata {

namespace {

/// Marker for the virtual initial node in incoming-edge sets.
constexpr int kInitMarker = -1;

struct TableauNode {
  std::set<int> incoming;
  std::set<PRef> to_process;  // "New" in the paper
  std::set<PRef> old;
  std::set<PRef> next;
};

/// Iterative GPVW tableau construction (the classical presentation is
/// recursive; environment-spec expansions produce formulas deep enough to
/// overflow the call stack, so the pending nodes live on an explicit
/// worklist).
class GpvwBuilder {
 public:
  GpvwBuilder(PLtlManager& manager, size_t max_nodes)
      : m_(manager), max_nodes_(max_nodes) {}

  Result<const std::vector<TableauNode>*> Build(PRef formula) {
    TableauNode init;
    init.incoming.insert(kInitMarker);
    init.to_process.insert(formula);
    std::vector<TableauNode> work;
    work.push_back(std::move(init));

    while (!work.empty()) {
      TableauNode node = std::move(work.back());
      work.pop_back();

      if (node.to_process.empty()) {
        // Fully processed: merge with an existing node having the same Old
        // and Next sets, or commit and seed its successor.
        bool merged = false;
        for (size_t i = 0; i < nodes_.size(); ++i) {
          if (nodes_[i].old == node.old && nodes_[i].next == node.next) {
            nodes_[i].incoming.insert(node.incoming.begin(),
                                      node.incoming.end());
            merged = true;
            break;
          }
        }
        if (merged) continue;
        if (nodes_.size() >= max_nodes_) {
          return Status::BudgetExceeded(
              "LTL-to-Buchi translation exceeded " +
              std::to_string(max_nodes_) + " tableau nodes");
        }
        nodes_.push_back(node);
        int id = static_cast<int>(nodes_.size() - 1);
        TableauNode successor;
        successor.incoming.insert(id);
        successor.to_process = node.next;
        work.push_back(std::move(successor));
        continue;
      }

      PRef eta = *node.to_process.begin();
      node.to_process.erase(node.to_process.begin());
      if (node.old.count(eta) > 0) {
        work.push_back(std::move(node));
        continue;
      }

      switch (m_.kind(eta)) {
        case PLtlKind::kFalse:
          break;  // contradiction: discard node
        case PLtlKind::kTrue:
          work.push_back(std::move(node));
          break;
        case PLtlKind::kLit: {
          PRef negated = m_.Lit(m_.prop(eta), !m_.negated(eta));
          if (node.old.count(negated) > 0) break;  // p and !p: discard
          node.old.insert(eta);
          work.push_back(std::move(node));
          break;
        }
        case PLtlKind::kAnd: {
          node.old.insert(eta);
          if (node.old.count(m_.left(eta)) == 0) {
            node.to_process.insert(m_.left(eta));
          }
          if (node.old.count(m_.right(eta)) == 0) {
            node.to_process.insert(m_.right(eta));
          }
          work.push_back(std::move(node));
          break;
        }
        case PLtlKind::kNext: {
          node.old.insert(eta);
          node.next.insert(m_.left(eta));
          work.push_back(std::move(node));
          break;
        }
        case PLtlKind::kOr: {
          TableauNode q1 = node;
          q1.old.insert(eta);
          if (q1.old.count(m_.left(eta)) == 0) {
            q1.to_process.insert(m_.left(eta));
          }
          TableauNode q2 = std::move(node);
          q2.old.insert(eta);
          if (q2.old.count(m_.right(eta)) == 0) {
            q2.to_process.insert(m_.right(eta));
          }
          work.push_back(std::move(q1));
          work.push_back(std::move(q2));
          break;
        }
        case PLtlKind::kUntil: {
          // a U b  ==  b  or  (a and X(a U b)).
          TableauNode q1 = node;
          q1.old.insert(eta);
          if (q1.old.count(m_.left(eta)) == 0) {
            q1.to_process.insert(m_.left(eta));
          }
          q1.next.insert(eta);
          TableauNode q2 = std::move(node);
          q2.old.insert(eta);
          if (q2.old.count(m_.right(eta)) == 0) {
            q2.to_process.insert(m_.right(eta));
          }
          work.push_back(std::move(q1));
          work.push_back(std::move(q2));
          break;
        }
        case PLtlKind::kRelease: {
          // a R b  ==  (b and a)  or  (b and X(a R b)).
          TableauNode q1 = node;
          q1.old.insert(eta);
          if (q1.old.count(m_.right(eta)) == 0) {
            q1.to_process.insert(m_.right(eta));
          }
          q1.next.insert(eta);
          TableauNode q2 = std::move(node);
          q2.old.insert(eta);
          if (q2.old.count(m_.left(eta)) == 0) {
            q2.to_process.insert(m_.left(eta));
          }
          if (q2.old.count(m_.right(eta)) == 0) {
            q2.to_process.insert(m_.right(eta));
          }
          work.push_back(std::move(q1));
          work.push_back(std::move(q2));
          break;
        }
      }
    }
    return &nodes_;
  }

 private:
  PLtlManager& m_;
  size_t max_nodes_;
  std::vector<TableauNode> nodes_;
};

}  // namespace

Result<BuchiAutomaton> TranslateToGeneralizedBuchi(PLtlManager& manager,
                                                   PRef formula,
                                                   size_t num_props,
                                                   size_t max_nodes) {
  GpvwBuilder builder(manager, max_nodes);
  WSV_ASSIGN_OR_RETURN(const std::vector<TableauNode>* nodes_ptr,
                       builder.Build(formula));
  const std::vector<TableauNode>& nodes = *nodes_ptr;

  BuchiAutomaton automaton(num_props);
  // State 0 is the virtual initial state; tableau node i becomes state i+1.
  StateId init = automaton.AddState();
  automaton.AddInitial(init);
  for (size_t i = 0; i < nodes.size(); ++i) automaton.AddState();

  for (size_t i = 0; i < nodes.size(); ++i) {
    // Guard: the literals this node requires of the letter read on entry.
    std::vector<PropId> pos;
    std::vector<PropId> neg;
    for (PRef f : nodes[i].old) {
      if (manager.kind(f) == PLtlKind::kLit) {
        (manager.negated(f) ? neg : pos).push_back(manager.prop(f));
      }
    }
    PropExprPtr guard = PropExpr::LiteralCube(pos, neg);
    StateId to = static_cast<StateId>(i + 1);
    for (int from : nodes[i].incoming) {
      StateId from_state =
          from == kInitMarker ? init : static_cast<StateId>(from + 1);
      automaton.AddTransition(from_state, to, guard);
    }
  }

  // One acceptance set per Until subformula: states where the eventuality is
  // fulfilled (right operand in Old) or the Until is not pending.
  for (PRef until : manager.CollectUntils(formula)) {
    std::vector<StateId> set;
    for (size_t i = 0; i < nodes.size(); ++i) {
      bool pending = nodes[i].old.count(until) > 0;
      bool fulfilled = nodes[i].old.count(manager.right(until)) > 0;
      if (!pending || fulfilled) set.push_back(static_cast<StateId>(i + 1));
    }
    automaton.AddAcceptingSet(std::move(set));
  }
  return automaton;
}

Result<BuchiAutomaton> TranslateToBuchi(PLtlManager& manager, PRef formula,
                                        size_t num_props, size_t max_nodes) {
  WSV_ASSIGN_OR_RETURN(
      BuchiAutomaton generalized,
      TranslateToGeneralizedBuchi(manager, formula, num_props, max_nodes));
  return generalized.Degeneralize();
}

}  // namespace wsv::automata
