#ifndef WSVERIFY_AUTOMATA_PLTL_H_
#define WSVERIFY_AUTOMATA_PLTL_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "automata/prop_expr.h"

namespace wsv::automata {

/// Reference to a hash-consed propositional LTL node.
using PRef = uint32_t;

/// Node kinds of propositional LTL in negation normal form (the GPVW input
/// language): literals, conjunction, disjunction, X, U, R.
enum class PLtlKind : uint8_t {
  kTrue,
  kFalse,
  kLit,  // proposition or negated proposition
  kAnd,
  kOr,
  kNext,
  kUntil,
  kRelease,
};

/// Arena of hash-consed propositional-LTL nodes. Structural sharing makes
/// node references (PRef) usable as set elements during the GPVW tableau
/// construction.
class PLtlManager {
 public:
  PLtlManager();

  PRef True() const { return kTrueRef; }
  PRef False() const { return kFalseRef; }
  PRef Lit(PropId prop, bool negated);
  PRef And(PRef a, PRef b);
  PRef Or(PRef a, PRef b);
  PRef Next(PRef a);
  PRef Until(PRef a, PRef b);
  PRef Release(PRef a, PRef b);
  /// G f = false R f; F f = true U f.
  PRef Globally(PRef a) { return Release(False(), a); }
  PRef Finally(PRef a) { return Until(True(), a); }
  /// The negation in NNF (dualizes through the tree).
  PRef Negate(PRef a);

  PLtlKind kind(PRef r) const { return nodes_[r].kind; }
  PropId prop(PRef r) const { return nodes_[r].prop; }
  bool negated(PRef r) const { return nodes_[r].negated; }
  PRef left(PRef r) const { return nodes_[r].left; }
  PRef right(PRef r) const { return nodes_[r].right; }

  /// All Until nodes reachable from `root` (for generalized acceptance).
  std::vector<PRef> CollectUntils(PRef root) const;

  std::string ToString(PRef r) const;

  static constexpr PRef kTrueRef = 0;
  static constexpr PRef kFalseRef = 1;

 private:
  struct Node {
    PLtlKind kind;
    bool negated = false;
    PropId prop = 0;
    PRef left = 0;
    PRef right = 0;
  };
  using Key = std::tuple<uint8_t, bool, PropId, PRef, PRef>;

  PRef Intern(Node node);

  std::vector<Node> nodes_;
  std::map<Key, PRef> index_;
};

}  // namespace wsv::automata

#endif  // WSVERIFY_AUTOMATA_PLTL_H_
