#ifndef WSVERIFY_AUTOMATA_BUCHI_H_
#define WSVERIFY_AUTOMATA_BUCHI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/prop_expr.h"
#include "common/status.h"

namespace wsv::automata {

using StateId = uint32_t;

/// One guarded transition of a Büchi automaton: enabled on letters (prop
/// valuations) satisfying `guard`.
struct BuchiTransition {
  StateId to;
  PropExprPtr guard;
};

/// A (generalized) Büchi automaton over the alphabet of proposition
/// valuations. With zero acceptance sets every infinite run is accepting;
/// with k sets, a run is accepting iff it visits each set infinitely often;
/// a plain Büchi automaton has exactly one set.
class BuchiAutomaton {
 public:
  /// `num_props` is the size of the proposition space the guards range over.
  explicit BuchiAutomaton(size_t num_props = 0) : num_props_(num_props) {}

  size_t num_props() const { return num_props_; }
  void set_num_props(size_t n) { num_props_ = n; }

  StateId AddState();
  size_t num_states() const { return transitions_.size(); }

  void AddInitial(StateId s);
  const std::vector<StateId>& initial_states() const { return initial_; }

  void AddTransition(StateId from, StateId to, PropExprPtr guard);
  const std::vector<BuchiTransition>& transitions_from(StateId s) const {
    return transitions_[s];
  }

  /// Appends one (generalized) acceptance set.
  void AddAcceptingSet(std::vector<StateId> states);
  size_t num_accepting_sets() const { return accepting_sets_.size(); }
  const std::vector<StateId>& accepting_set(size_t i) const {
    return accepting_sets_[i];
  }
  bool InAcceptingSet(StateId s, size_t set_index) const;

  /// Convenience for plain automata (exactly one set).
  bool IsAccepting(StateId s) const { return InAcceptingSet(s, 0); }

  /// True iff from every state, for every letter, at most one satisfiable
  /// transition is enabled, and there is at most one initial state.
  /// (Used to pick the cheap complementation path.)
  bool IsDeterministic() const;

  /// True iff from every state every letter enables at least one transition.
  bool IsComplete() const;

  /// Degeneralizes k acceptance sets into a plain (1-set) automaton using
  /// the standard counter construction. Zero sets become "all states
  /// accepting".
  BuchiAutomaton Degeneralize() const;

  /// Synchronous product: accepts the intersection of the two languages.
  /// Both operands must be plain (1 acceptance set) automata over the same
  /// proposition space; the result is plain.
  static Result<BuchiAutomaton> Intersect(const BuchiAutomaton& a,
                                          const BuchiAutomaton& b);

  /// Human-readable dump for debugging and tests.
  std::string ToString() const;

 private:
  size_t num_props_;
  std::vector<StateId> initial_;
  std::vector<std::vector<BuchiTransition>> transitions_;
  std::vector<std::vector<StateId>> accepting_sets_;
};

/// Enumerates all letters (valuations) over `props`; each letter is returned
/// as a full valuation vector of size `num_props`, with unlisted props false.
std::vector<std::vector<bool>> EnumerateLetters(const std::set<PropId>& props,
                                                size_t num_props);

/// The set of propositions mentioned by any guard of `automaton`.
std::set<PropId> MentionedProps(const BuchiAutomaton& automaton);

}  // namespace wsv::automata

#endif  // WSVERIFY_AUTOMATA_BUCHI_H_
