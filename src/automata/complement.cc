#include "automata/complement.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

namespace wsv::automata {

namespace {

/// Builds, per state and per letter index, the successor state set.
std::vector<std::vector<std::vector<StateId>>> BuildLetterEdges(
    const BuchiAutomaton& automaton,
    const std::vector<std::vector<bool>>& letters) {
  std::vector<std::vector<std::vector<StateId>>> edges(
      automaton.num_states(),
      std::vector<std::vector<StateId>>(letters.size()));
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    for (const BuchiTransition& t :
         automaton.transitions_from(static_cast<StateId>(s))) {
      for (size_t l = 0; l < letters.size(); ++l) {
        if (t.guard->Eval(letters[l])) edges[s][l].push_back(t.to);
      }
    }
  }
  return edges;
}

/// Guard expressing "the letter equals letters[l]" over the mentioned props
/// (unmentioned propositions are unconstrained).
PropExprPtr LetterGuard(const std::vector<bool>& letter,
                        const std::set<PropId>& props) {
  std::vector<PropId> pos;
  std::vector<PropId> neg;
  for (PropId p : props) {
    (letter[p] ? pos : neg).push_back(p);
  }
  return PropExpr::LiteralCube(pos, neg);
}

/// Complement of a deterministic complete automaton: the unique run must
/// visit F only finitely often. Phase 0 follows the run; the automaton
/// nondeterministically moves to phase 1 and from then on all visited states
/// must avoid F. Accepting = phase 1.
BuchiAutomaton ComplementDeterministic(const BuchiAutomaton& automaton) {
  BuchiAutomaton out(automaton.num_props());
  size_t n = automaton.num_states();
  auto phase0 = [&](StateId q) { return q; };
  auto phase1 = [&](StateId q) { return static_cast<StateId>(q + n); };
  for (size_t i = 0; i < 2 * n; ++i) out.AddState();
  for (StateId q0 : automaton.initial_states()) out.AddInitial(phase0(q0));
  std::vector<StateId> accepting;
  for (size_t q = 0; q < n; ++q) {
    for (const BuchiTransition& t :
         automaton.transitions_from(static_cast<StateId>(q))) {
      out.AddTransition(phase0(static_cast<StateId>(q)), phase0(t.to),
                        t.guard);
      if (!automaton.IsAccepting(t.to)) {
        out.AddTransition(phase0(static_cast<StateId>(q)), phase1(t.to),
                          t.guard);
        out.AddTransition(phase1(static_cast<StateId>(q)), phase1(t.to),
                          t.guard);
      }
    }
    accepting.push_back(phase1(static_cast<StateId>(q)));
  }
  out.AddAcceptingSet(std::move(accepting));
  return out;
}

/// A state of the rank-based construction: a level ranking (rank[q] == -1
/// when q is absent) plus the obligation set O.
struct RankState {
  std::vector<int8_t> ranks;
  std::vector<uint8_t> obligations;

  bool operator<(const RankState& other) const {
    if (ranks != other.ranks) return ranks < other.ranks;
    return obligations < other.obligations;
  }
  bool IsAccepting() const {
    return std::all_of(obligations.begin(), obligations.end(),
                       [](uint8_t o) { return o == 0; });
  }
};

}  // namespace

Result<BuchiAutomaton> ComplementBuchi(const BuchiAutomaton& automaton,
                                       const ComplementOptions& options) {
  if (automaton.num_accepting_sets() != 1) {
    return Status::Internal("ComplementBuchi requires a plain automaton");
  }
  if (automaton.IsDeterministic() && automaton.IsComplete()) {
    return ComplementDeterministic(automaton);
  }

  size_t n = automaton.num_states();
  if (n > 24) {
    return Status::BudgetExceeded(
        "rank-based complementation limited to 24 states; got " +
        std::to_string(n));
  }
  int max_rank = options.max_rank > 0 ? static_cast<int>(options.max_rank)
                                      : static_cast<int>(2 * n);

  std::set<PropId> props = MentionedProps(automaton);
  if (props.size() > 12) {
    return Status::BudgetExceeded(
        "complementation alphabet limited to 2^12 letters");
  }
  std::vector<std::vector<bool>> letters =
      EnumerateLetters(props, automaton.num_props());
  auto edges = BuildLetterEdges(automaton, letters);

  std::vector<bool> is_accepting(n, false);
  for (StateId q : automaton.accepting_set(0)) is_accepting[q] = true;

  BuchiAutomaton out(automaton.num_props());
  std::map<RankState, StateId> ids;
  std::vector<RankState> worklist;

  auto intern = [&](RankState rs) -> Result<StateId> {
    auto it = ids.find(rs);
    if (it != ids.end()) return it->second;
    if (out.num_states() >= options.max_states) {
      return Status::BudgetExceeded(
          "complementation exceeded max_states = " +
          std::to_string(options.max_states));
    }
    StateId id = out.AddState();
    ids.emplace(rs, id);
    worklist.push_back(std::move(rs));
    return id;
  };

  // Initial state: initials ranked max_rank (even for accepting states is
  // fine since max_rank = 2n is even), O empty.
  RankState init;
  init.ranks.assign(n, -1);
  init.obligations.assign(n, 0);
  for (StateId q0 : automaton.initial_states()) {
    init.ranks[q0] = static_cast<int8_t>(max_rank);
    if (is_accepting[q0] && (max_rank % 2) != 0) {
      init.ranks[q0] = static_cast<int8_t>(max_rank - 1);
    }
  }
  WSV_ASSIGN_OR_RETURN(StateId init_id, intern(init));
  out.AddInitial(init_id);

  while (!worklist.empty()) {
    RankState current = worklist.back();
    worklist.pop_back();
    StateId current_id = ids.at(current);

    for (size_t l = 0; l < letters.size(); ++l) {
      // Successor support set and per-state rank bounds.
      std::vector<int> bound(n, -1);
      bool any_source = false;
      for (size_t q = 0; q < n; ++q) {
        if (current.ranks[q] < 0) continue;
        any_source = true;
        for (StateId q2 : edges[q][l]) {
          int b = current.ranks[q];
          bound[q2] = bound[q2] < 0 ? b : std::min(bound[q2], b);
        }
      }
      (void)any_source;
      std::vector<size_t> support;
      for (size_t q = 0; q < n; ++q) {
        if (bound[q] >= 0) support.push_back(q);
      }

      // Enumerate all rankings g' with g'(q) <= bound[q], even on accepting
      // states. An empty support yields the empty ranking once (the
      // accepting sink for non-complete source automata).
      std::vector<int> choice(support.size(), 0);
      while (true) {
        // Materialize candidate.
        RankState succ;
        succ.ranks.assign(n, -1);
        succ.obligations.assign(n, 0);
        bool valid = true;
        for (size_t i = 0; i < support.size(); ++i) {
          size_t q = support[i];
          int r = choice[i];
          if (is_accepting[q] && (r % 2) != 0) valid = false;
          succ.ranks[q] = static_cast<int8_t>(r);
        }
        if (valid) {
          // Obligation set update.
          bool o_empty = std::all_of(current.obligations.begin(),
                                     current.obligations.end(),
                                     [](uint8_t o) { return o == 0; });
          if (o_empty) {
            for (size_t q = 0; q < n; ++q) {
              if (succ.ranks[q] >= 0 && succ.ranks[q] % 2 == 0) {
                succ.obligations[q] = 1;
              }
            }
          } else {
            for (size_t q = 0; q < n; ++q) {
              if (current.obligations[q] == 0) continue;
              for (StateId q2 : edges[q][l]) {
                if (succ.ranks[q2] >= 0 && succ.ranks[q2] % 2 == 0) {
                  succ.obligations[q2] = 1;
                }
              }
            }
          }
          WSV_ASSIGN_OR_RETURN(StateId succ_id, intern(succ));
          out.AddTransition(current_id, succ_id, LetterGuard(letters[l], props));
        }
        // Advance the odometer; a wrap (or empty support) terminates.
        size_t i = 0;
        while (i < choice.size()) {
          if (++choice[i] <= bound[support[i]]) break;
          choice[i] = 0;
          ++i;
        }
        if (i == choice.size()) break;
      }
    }
  }

  std::vector<StateId> accepting;
  for (const auto& [rs, id] : ids) {
    if (rs.IsAccepting()) accepting.push_back(id);
  }
  out.AddAcceptingSet(std::move(accepting));
  return out;
}

}  // namespace wsv::automata
