#include "automata/prop_expr.h"

namespace wsv::automata {

struct PropExprBuilder {
  static PropExprPtr Make(PropExpr::Kind kind, PropId prop,
                          std::vector<PropExprPtr> children) {
    auto node = std::shared_ptr<PropExpr>(new PropExpr());
    node->kind_ = kind;
    node->prop_ = prop;
    node->children_ = std::move(children);
    return node;
  }
};

PropExprPtr PropExpr::True() {
  return PropExprBuilder::Make(Kind::kTrue, 0, {});
}
PropExprPtr PropExpr::False() {
  return PropExprBuilder::Make(Kind::kFalse, 0, {});
}
PropExprPtr PropExpr::Lit(PropId p) {
  return PropExprBuilder::Make(Kind::kLit, p, {});
}
PropExprPtr PropExpr::Not(PropExprPtr e) {
  return PropExprBuilder::Make(Kind::kNot, 0, {std::move(e)});
}
PropExprPtr PropExpr::And(PropExprPtr a, PropExprPtr b) {
  return PropExprBuilder::Make(Kind::kAnd, 0, {std::move(a), std::move(b)});
}
PropExprPtr PropExpr::Or(PropExprPtr a, PropExprPtr b) {
  return PropExprBuilder::Make(Kind::kOr, 0, {std::move(a), std::move(b)});
}

PropExprPtr PropExpr::LiteralCube(const std::vector<PropId>& pos,
                                  const std::vector<PropId>& neg) {
  PropExprPtr acc = True();
  bool first = true;
  for (PropId p : pos) {
    PropExprPtr lit = Lit(p);
    acc = first ? lit : And(acc, lit);
    first = false;
  }
  for (PropId p : neg) {
    PropExprPtr lit = Not(Lit(p));
    acc = first ? lit : And(acc, lit);
    first = false;
  }
  return acc;
}

PropExprPtr PropExpr::Remap(const PropExprPtr& expr,
                            const std::vector<PropId>& mapping) {
  switch (expr->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return expr;
    case Kind::kLit:
      return Lit(mapping[expr->prop()]);
    case Kind::kNot:
      return Not(Remap(expr->children()[0], mapping));
    case Kind::kAnd:
      return And(Remap(expr->children()[0], mapping),
                 Remap(expr->children()[1], mapping));
    case Kind::kOr:
      return Or(Remap(expr->children()[0], mapping),
                Remap(expr->children()[1], mapping));
  }
  return expr;
}

PropExprPtr PropExpr::PartialEval(const PropExprPtr& expr,
                                  const std::vector<int8_t>& truths) {
  switch (expr->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
      return expr;
    case Kind::kLit: {
      PropId p = expr->prop();
      if (p < truths.size() && truths[p] >= 0) {
        return truths[p] ? True() : False();
      }
      return expr;
    }
    case Kind::kNot: {
      PropExprPtr inner = PartialEval(expr->children()[0], truths);
      if (inner->kind() == Kind::kTrue) return False();
      if (inner->kind() == Kind::kFalse) return True();
      return Not(std::move(inner));
    }
    case Kind::kAnd: {
      PropExprPtr a = PartialEval(expr->children()[0], truths);
      PropExprPtr b = PartialEval(expr->children()[1], truths);
      if (a->kind() == Kind::kFalse || b->kind() == Kind::kFalse) {
        return False();
      }
      if (a->kind() == Kind::kTrue) return b;
      if (b->kind() == Kind::kTrue) return a;
      return And(std::move(a), std::move(b));
    }
    case Kind::kOr: {
      PropExprPtr a = PartialEval(expr->children()[0], truths);
      PropExprPtr b = PartialEval(expr->children()[1], truths);
      if (a->kind() == Kind::kTrue || b->kind() == Kind::kTrue) return True();
      if (a->kind() == Kind::kFalse) return b;
      if (b->kind() == Kind::kFalse) return a;
      return Or(std::move(a), std::move(b));
    }
  }
  return expr;
}

bool PropExpr::Eval(const std::vector<bool>& valuation) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kLit:
      return prop_ < valuation.size() && valuation[prop_];
    case Kind::kNot:
      return !children_[0]->Eval(valuation);
    case Kind::kAnd:
      return children_[0]->Eval(valuation) && children_[1]->Eval(valuation);
    case Kind::kOr:
      return children_[0]->Eval(valuation) || children_[1]->Eval(valuation);
  }
  return false;
}

void PropExpr::CollectProps(std::set<PropId>& out) const {
  if (kind_ == Kind::kLit) out.insert(prop_);
  for (const PropExprPtr& c : children_) c->CollectProps(out);
}

bool PropExpr::IsSatisfiable() const {
  std::set<PropId> props;
  CollectProps(props);
  std::vector<PropId> list(props.begin(), props.end());
  if (list.size() > 24) return true;  // give up counting; assume satisfiable
  size_t combos = static_cast<size_t>(1) << list.size();
  PropId max_prop = list.empty() ? 0 : list.back();
  std::vector<bool> valuation(max_prop + 1, false);
  for (size_t mask = 0; mask < combos; ++mask) {
    for (size_t i = 0; i < list.size(); ++i) {
      valuation[list[i]] = (mask >> i) & 1;
    }
    if (Eval(valuation)) return true;
  }
  return false;
}

std::string PropExpr::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kLit:
      return "p" + std::to_string(prop_);
    case Kind::kNot:
      return "!" + children_[0]->ToString();
    case Kind::kAnd:
      return "(" + children_[0]->ToString() + " & " +
             children_[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString() + " | " +
             children_[1]->ToString() + ")";
  }
  return "?";
}

}  // namespace wsv::automata
