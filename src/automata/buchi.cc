#include "automata/buchi.h"

#include <algorithm>
#include <cassert>

namespace wsv::automata {

StateId BuchiAutomaton::AddState() {
  transitions_.emplace_back();
  return static_cast<StateId>(transitions_.size() - 1);
}

void BuchiAutomaton::AddInitial(StateId s) {
  assert(s < transitions_.size());
  if (std::find(initial_.begin(), initial_.end(), s) == initial_.end()) {
    initial_.push_back(s);
  }
}

void BuchiAutomaton::AddTransition(StateId from, StateId to,
                                   PropExprPtr guard) {
  assert(from < transitions_.size() && to < transitions_.size());
  transitions_[from].push_back(BuchiTransition{to, std::move(guard)});
}

void BuchiAutomaton::AddAcceptingSet(std::vector<StateId> states) {
  std::sort(states.begin(), states.end());
  states.erase(std::unique(states.begin(), states.end()), states.end());
  accepting_sets_.push_back(std::move(states));
}

bool BuchiAutomaton::InAcceptingSet(StateId s, size_t set_index) const {
  if (set_index >= accepting_sets_.size()) return false;
  const auto& set = accepting_sets_[set_index];
  return std::binary_search(set.begin(), set.end(), s);
}

std::vector<std::vector<bool>> EnumerateLetters(const std::set<PropId>& props,
                                                size_t num_props) {
  std::vector<PropId> list(props.begin(), props.end());
  std::vector<std::vector<bool>> letters;
  size_t combos = static_cast<size_t>(1) << list.size();
  letters.reserve(combos);
  for (size_t mask = 0; mask < combos; ++mask) {
    std::vector<bool> letter(num_props, false);
    for (size_t i = 0; i < list.size(); ++i) {
      if ((mask >> i) & 1) letter[list[i]] = true;
    }
    letters.push_back(std::move(letter));
  }
  return letters;
}

std::set<PropId> MentionedProps(const BuchiAutomaton& automaton) {
  std::set<PropId> props;
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    for (const BuchiTransition& t :
         automaton.transitions_from(static_cast<StateId>(s))) {
      t.guard->CollectProps(props);
    }
  }
  return props;
}

bool BuchiAutomaton::IsDeterministic() const {
  if (initial_.size() > 1) return false;
  std::set<PropId> props = MentionedProps(*this);
  if (props.size() > 16) return false;  // too large to check; be conservative
  std::vector<std::vector<bool>> letters = EnumerateLetters(props, num_props_);
  for (const auto& outgoing : transitions_) {
    for (const auto& letter : letters) {
      int enabled = 0;
      for (const BuchiTransition& t : outgoing) {
        if (t.guard->Eval(letter) && ++enabled > 1) return false;
      }
    }
  }
  return true;
}

bool BuchiAutomaton::IsComplete() const {
  std::set<PropId> props = MentionedProps(*this);
  if (props.size() > 16) return false;
  std::vector<std::vector<bool>> letters = EnumerateLetters(props, num_props_);
  for (const auto& outgoing : transitions_) {
    for (const auto& letter : letters) {
      bool enabled = false;
      for (const BuchiTransition& t : outgoing) {
        if (t.guard->Eval(letter)) {
          enabled = true;
          break;
        }
      }
      if (!enabled) return false;
    }
  }
  return !transitions_.empty();
}

BuchiAutomaton BuchiAutomaton::Degeneralize() const {
  size_t k = accepting_sets_.size();
  BuchiAutomaton out(num_props_);
  if (k == 0) {
    // Every run accepting: single copy, all states in the acceptance set.
    std::vector<StateId> all;
    for (size_t s = 0; s < num_states(); ++s) {
      out.AddState();
      all.push_back(static_cast<StateId>(s));
    }
    for (StateId s : initial_) out.AddInitial(s);
    for (size_t s = 0; s < num_states(); ++s) {
      for (const BuchiTransition& t : transitions_[s]) {
        out.AddTransition(static_cast<StateId>(s), t.to, t.guard);
      }
    }
    out.AddAcceptingSet(std::move(all));
    return out;
  }
  if (k == 1) {
    BuchiAutomaton copy = *this;
    return copy;
  }
  // States (q, i): waiting to see acceptance set i. The counter advances on
  // leaving a state in F_i; accepting = {(q, k-1) : q in F_{k-1}}.
  auto encode = [&](StateId q, size_t i) -> StateId {
    return static_cast<StateId>(q * k + i);
  };
  for (size_t s = 0; s < num_states() * k; ++s) out.AddState();
  for (StateId s : initial_) out.AddInitial(encode(s, 0));
  for (size_t q = 0; q < num_states(); ++q) {
    for (size_t i = 0; i < k; ++i) {
      size_t next_i = InAcceptingSet(static_cast<StateId>(q), i) ? (i + 1) % k
                                                                 : i;
      for (const BuchiTransition& t : transitions_[q]) {
        out.AddTransition(encode(static_cast<StateId>(q), i),
                          encode(t.to, next_i), t.guard);
      }
    }
  }
  std::vector<StateId> accepting;
  for (StateId q : accepting_sets_[k - 1]) accepting.push_back(encode(q, k - 1));
  out.AddAcceptingSet(std::move(accepting));
  return out;
}

Result<BuchiAutomaton> BuchiAutomaton::Intersect(const BuchiAutomaton& a,
                                                 const BuchiAutomaton& b) {
  if (a.num_accepting_sets() != 1 || b.num_accepting_sets() != 1) {
    return Status::Internal(
        "Intersect requires plain (degeneralized) automata");
  }
  size_t num_props = std::max(a.num_props(), b.num_props());
  BuchiAutomaton product(num_props);
  auto encode = [&](StateId qa, StateId qb) -> StateId {
    return static_cast<StateId>(qa * b.num_states() + qb);
  };
  for (size_t s = 0; s < a.num_states() * b.num_states(); ++s) {
    product.AddState();
  }
  for (StateId qa : a.initial_states()) {
    for (StateId qb : b.initial_states()) {
      product.AddInitial(encode(qa, qb));
    }
  }
  std::vector<StateId> acc_a;
  std::vector<StateId> acc_b;
  for (size_t qa = 0; qa < a.num_states(); ++qa) {
    for (size_t qb = 0; qb < b.num_states(); ++qb) {
      StateId from = encode(static_cast<StateId>(qa), static_cast<StateId>(qb));
      for (const BuchiTransition& ta :
           a.transitions_from(static_cast<StateId>(qa))) {
        for (const BuchiTransition& tb :
             b.transitions_from(static_cast<StateId>(qb))) {
          PropExprPtr guard = PropExpr::And(ta.guard, tb.guard);
          if (!guard->IsSatisfiable()) continue;
          product.AddTransition(from, encode(ta.to, tb.to), std::move(guard));
        }
      }
      if (a.IsAccepting(static_cast<StateId>(qa))) acc_a.push_back(from);
      if (b.IsAccepting(static_cast<StateId>(qb))) acc_b.push_back(from);
    }
  }
  product.AddAcceptingSet(std::move(acc_a));
  product.AddAcceptingSet(std::move(acc_b));
  return product.Degeneralize();
}

std::string BuchiAutomaton::ToString() const {
  std::string out = "BuchiAutomaton(" + std::to_string(num_states()) +
                    " states, " + std::to_string(accepting_sets_.size()) +
                    " acceptance sets)\n";
  out += "initial:";
  for (StateId s : initial_) out += " " + std::to_string(s);
  out += "\n";
  for (size_t s = 0; s < num_states(); ++s) {
    for (const BuchiTransition& t : transitions_[s]) {
      out += "  " + std::to_string(s) + " --[" + t.guard->ToString() +
             "]--> " + std::to_string(t.to) + "\n";
    }
  }
  for (size_t i = 0; i < accepting_sets_.size(); ++i) {
    out += "F" + std::to_string(i) + ":";
    for (StateId s : accepting_sets_[i]) out += " " + std::to_string(s);
    out += "\n";
  }
  return out;
}

}  // namespace wsv::automata
