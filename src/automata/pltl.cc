#include "automata/pltl.h"

#include <cassert>
#include <set>

namespace wsv::automata {

PLtlManager::PLtlManager() {
  // Pre-seed true/false at fixed references.
  nodes_.push_back(Node{PLtlKind::kTrue});
  nodes_.push_back(Node{PLtlKind::kFalse});
}

PRef PLtlManager::Intern(Node node) {
  Key key{static_cast<uint8_t>(node.kind), node.negated, node.prop, node.left,
          node.right};
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  PRef ref = static_cast<PRef>(nodes_.size());
  nodes_.push_back(node);
  index_.emplace(key, ref);
  return ref;
}

PRef PLtlManager::Lit(PropId prop, bool negated) {
  Node n{PLtlKind::kLit};
  n.prop = prop;
  n.negated = negated;
  return Intern(n);
}

PRef PLtlManager::And(PRef a, PRef b) {
  if (a == kFalseRef || b == kFalseRef) return kFalseRef;
  if (a == kTrueRef) return b;
  if (b == kTrueRef) return a;
  if (a == b) return a;
  Node n{PLtlKind::kAnd};
  n.left = a;
  n.right = b;
  return Intern(n);
}

PRef PLtlManager::Or(PRef a, PRef b) {
  if (a == kTrueRef || b == kTrueRef) return kTrueRef;
  if (a == kFalseRef) return b;
  if (b == kFalseRef) return a;
  if (a == b) return a;
  Node n{PLtlKind::kOr};
  n.left = a;
  n.right = b;
  return Intern(n);
}

PRef PLtlManager::Next(PRef a) {
  Node n{PLtlKind::kNext};
  n.left = a;
  return Intern(n);
}

PRef PLtlManager::Until(PRef a, PRef b) {
  Node n{PLtlKind::kUntil};
  n.left = a;
  n.right = b;
  return Intern(n);
}

PRef PLtlManager::Release(PRef a, PRef b) {
  Node n{PLtlKind::kRelease};
  n.left = a;
  n.right = b;
  return Intern(n);
}

PRef PLtlManager::Negate(PRef a) {
  switch (kind(a)) {
    case PLtlKind::kTrue:
      return kFalseRef;
    case PLtlKind::kFalse:
      return kTrueRef;
    case PLtlKind::kLit:
      return Lit(prop(a), !negated(a));
    case PLtlKind::kAnd:
      return Or(Negate(left(a)), Negate(right(a)));
    case PLtlKind::kOr:
      return And(Negate(left(a)), Negate(right(a)));
    case PLtlKind::kNext:
      return Next(Negate(left(a)));
    case PLtlKind::kUntil:
      return Release(Negate(left(a)), Negate(right(a)));
    case PLtlKind::kRelease:
      return Until(Negate(left(a)), Negate(right(a)));
  }
  assert(false && "unreachable");
  return a;
}

std::vector<PRef> PLtlManager::CollectUntils(PRef root) const {
  std::set<PRef> seen;
  std::vector<PRef> stack{root};
  std::vector<PRef> untils;
  while (!stack.empty()) {
    PRef r = stack.back();
    stack.pop_back();
    if (!seen.insert(r).second) continue;
    switch (kind(r)) {
      case PLtlKind::kUntil:
        untils.push_back(r);
        [[fallthrough]];
      case PLtlKind::kAnd:
      case PLtlKind::kOr:
      case PLtlKind::kRelease:
        stack.push_back(left(r));
        stack.push_back(right(r));
        break;
      case PLtlKind::kNext:
        stack.push_back(left(r));
        break;
      default:
        break;
    }
  }
  return untils;
}

std::string PLtlManager::ToString(PRef r) const {
  switch (kind(r)) {
    case PLtlKind::kTrue:
      return "true";
    case PLtlKind::kFalse:
      return "false";
    case PLtlKind::kLit:
      return std::string(negated(r) ? "!" : "") + "p" + std::to_string(prop(r));
    case PLtlKind::kAnd:
      return "(" + ToString(left(r)) + " & " + ToString(right(r)) + ")";
    case PLtlKind::kOr:
      return "(" + ToString(left(r)) + " | " + ToString(right(r)) + ")";
    case PLtlKind::kNext:
      return "X" + ToString(left(r));
    case PLtlKind::kUntil:
      return "(" + ToString(left(r)) + " U " + ToString(right(r)) + ")";
    case PLtlKind::kRelease:
      return "(" + ToString(left(r)) + " R " + ToString(right(r)) + ")";
  }
  return "?";
}

}  // namespace wsv::automata
