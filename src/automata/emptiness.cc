#include "automata/emptiness.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace wsv::automata {

namespace {

/// Adjacency over satisfiable-guard transitions only.
std::vector<std::vector<StateId>> SatisfiableEdges(
    const BuchiAutomaton& automaton) {
  std::vector<std::vector<StateId>> adj(automaton.num_states());
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    for (const BuchiTransition& t :
         automaton.transitions_from(static_cast<StateId>(s))) {
      if (t.guard->IsSatisfiable()) adj[s].push_back(t.to);
    }
  }
  return adj;
}

/// BFS path from any state in `sources` to `target`; returns the state
/// sequence including both endpoints (or empty if unreachable).
std::vector<StateId> BfsPath(const std::vector<std::vector<StateId>>& adj,
                             const std::vector<StateId>& sources,
                             StateId target) {
  std::vector<int> parent(adj.size(), -2);
  std::deque<StateId> queue;
  for (StateId s : sources) {
    if (parent[s] == -2) {
      parent[s] = -1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    if (s == target) {
      std::vector<StateId> path;
      for (int cur = static_cast<int>(s); cur != -1; cur = parent[cur]) {
        path.push_back(static_cast<StateId>(cur));
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (StateId next : adj[s]) {
      if (parent[next] == -2) {
        parent[next] = static_cast<int>(s);
        queue.push_back(next);
      }
    }
  }
  return {};
}

/// BFS cycle through `pivot` (pivot -> ... -> pivot using >= 1 edge).
std::vector<StateId> BfsCycle(const std::vector<std::vector<StateId>>& adj,
                              StateId pivot) {
  // Find a path from each successor of pivot back to pivot.
  std::vector<StateId> successors = adj[pivot];
  std::vector<StateId> best;
  for (StateId succ : successors) {
    if (succ == pivot) return {pivot, pivot};  // self-loop
    std::vector<StateId> back = BfsPath(adj, {succ}, pivot);
    if (back.empty()) continue;
    std::vector<StateId> cycle{pivot};
    cycle.insert(cycle.end(), back.begin(), back.end());
    if (best.empty() || cycle.size() < best.size()) best = std::move(cycle);
  }
  return best;
}

}  // namespace

std::optional<Lasso> FindAcceptingLasso(const BuchiAutomaton& automaton) {
  assert(automaton.num_accepting_sets() <= 1 &&
         "degeneralize before emptiness checking");
  if (automaton.num_accepting_sets() == 0) {
    // All runs accept: any reachable cycle is a witness.
    std::vector<std::vector<StateId>> adj = SatisfiableEdges(automaton);
    for (size_t s = 0; s < automaton.num_states(); ++s) {
      std::vector<StateId> cycle = BfsCycle(adj, static_cast<StateId>(s));
      if (cycle.empty()) continue;
      std::vector<StateId> prefix =
          BfsPath(adj, automaton.initial_states(), static_cast<StateId>(s));
      if (prefix.empty()) continue;
      return Lasso{std::move(prefix), std::move(cycle)};
    }
    return std::nullopt;
  }

  std::vector<std::vector<StateId>> adj = SatisfiableEdges(automaton);
  for (StateId acc : automaton.accepting_set(0)) {
    std::vector<StateId> prefix =
        BfsPath(adj, automaton.initial_states(), acc);
    if (prefix.empty()) continue;
    std::vector<StateId> cycle = BfsCycle(adj, acc);
    if (cycle.empty()) continue;
    return Lasso{std::move(prefix), std::move(cycle)};
  }
  return std::nullopt;
}

}  // namespace wsv::automata
