#ifndef WSVERIFY_AUTOMATA_GPVW_H_
#define WSVERIFY_AUTOMATA_GPVW_H_

#include "automata/buchi.h"
#include "automata/pltl.h"
#include "common/status.h"

namespace wsv::automata {

/// Translates a propositional LTL formula in negation normal form into a
/// generalized Büchi automaton using the tableau construction of Gerth,
/// Peled, Vardi & Wolper ("Simple on-the-fly automatic verification of
/// linear temporal logic", PSTV 1995).
///
/// The result has one acceptance set per Until subformula (zero sets when
/// the formula is Until-free, meaning all runs accept); callers typically
/// chain Degeneralize(). The tableau can be exponential in the formula;
/// `max_nodes` bounds it (kBudgetExceeded beyond).
Result<BuchiAutomaton> TranslateToGeneralizedBuchi(PLtlManager& manager,
                                                   PRef formula,
                                                   size_t num_props,
                                                   size_t max_nodes = 200000);

/// Convenience: TranslateToGeneralizedBuchi + Degeneralize.
Result<BuchiAutomaton> TranslateToBuchi(PLtlManager& manager, PRef formula,
                                        size_t num_props,
                                        size_t max_nodes = 200000);

}  // namespace wsv::automata

#endif  // WSVERIFY_AUTOMATA_GPVW_H_
