#ifndef WSVERIFY_AUTOMATA_PROP_EXPR_H_
#define WSVERIFY_AUTOMATA_PROP_EXPR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace wsv::automata {

/// Proposition index. Propositions abstract snapshot-level facts: grounded
/// FO sentences (LTL-FO verification) or message-enqueue events (conversation
/// protocols).
using PropId = uint32_t;

class PropExpr;
using PropExprPtr = std::shared_ptr<const PropExpr>;

/// A boolean formula over propositions, used as a transition guard in Büchi
/// automata (the paper's data-aware conversation protocols have transitions
/// "guarded by boolean formulas over Sigma", Definition 4.4).
class PropExpr {
 public:
  enum class Kind { kTrue, kFalse, kLit, kNot, kAnd, kOr };

  Kind kind() const { return kind_; }
  PropId prop() const { return prop_; }
  const std::vector<PropExprPtr>& children() const { return children_; }

  /// Evaluates under `valuation` (indexed by PropId; out-of-range = false).
  bool Eval(const std::vector<bool>& valuation) const;

  /// Adds every proposition mentioned to `out`.
  void CollectProps(std::set<PropId>& out) const;

  /// True iff some assignment of the mentioned propositions satisfies the
  /// guard (enumerates 2^|mentioned props|; guards are small).
  bool IsSatisfiable() const;

  std::string ToString() const;

  static PropExprPtr True();
  static PropExprPtr False();
  static PropExprPtr Lit(PropId p);
  static PropExprPtr Not(PropExprPtr e);
  static PropExprPtr And(PropExprPtr a, PropExprPtr b);
  static PropExprPtr Or(PropExprPtr a, PropExprPtr b);
  /// Conjunction of a literal list: props in `pos` true, props in `neg`
  /// false.
  static PropExprPtr LiteralCube(const std::vector<PropId>& pos,
                                 const std::vector<PropId>& neg);

  /// Returns `expr` with every proposition p replaced by mapping[p]
  /// (mapping must cover all mentioned props).
  static PropExprPtr Remap(const PropExprPtr& expr,
                           const std::vector<PropId>& mapping);

  /// Partially evaluates: propositions with known truth (truths[p] == 0 or
  /// 1) are replaced by constants; -1 leaves them symbolic. Simplifies
  /// boolean structure along the way.
  static PropExprPtr PartialEval(const PropExprPtr& expr,
                                 const std::vector<int8_t>& truths);

 private:
  PropExpr() = default;

  Kind kind_ = Kind::kTrue;
  PropId prop_ = 0;
  std::vector<PropExprPtr> children_;

  friend struct PropExprBuilder;
};

}  // namespace wsv::automata

#endif  // WSVERIFY_AUTOMATA_PROP_EXPR_H_
