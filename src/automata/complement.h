#ifndef WSVERIFY_AUTOMATA_COMPLEMENT_H_
#define WSVERIFY_AUTOMATA_COMPLEMENT_H_

#include "automata/buchi.h"
#include "common/status.h"

namespace wsv::automata {

struct ComplementOptions {
  /// Hard cap on constructed states (rank-based complementation is
  /// exponential; protocol automata are expected to be small).
  size_t max_states = 200000;
  /// Maximum rank; 0 means the default 2 * |Q|.
  size_t max_rank = 0;
};

/// Complements a plain Büchi automaton.
///
/// Conversation-protocol verification (Theorems 4.2 / 4.5) checks that every
/// run's observable event sequence lies in L(B); the verifier searches for a
/// run accepted by the complement of B. For deterministic complete automata
/// the complement is built by the cheap two-phase co-Büchi construction;
/// otherwise the rank-based construction of Kupferman & Vardi is used.
Result<BuchiAutomaton> ComplementBuchi(const BuchiAutomaton& automaton,
                                       const ComplementOptions& options = {});

}  // namespace wsv::automata

#endif  // WSVERIFY_AUTOMATA_COMPLEMENT_H_
