#ifndef WSVERIFY_VERIFIER_MERGE_H_
#define WSVERIFY_VERIFIER_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "verifier/checkpoint.h"

namespace wsv::verifier {

/// One shard's contribution to a merged verdict, extracted from the verdict
/// section of its `wsvc --stats-json` document (ShardFromStatsJson) and
/// optionally cross-checked against its checkpoint file.
struct ShardReport {
  /// Where the report came from (file path or shard label) — diagnostics
  /// only, never part of the merge decision.
  std::string source;
  /// Spec/property/options fingerprint (FingerprintParts); shards with
  /// different fingerprints verified different problems and must not merge.
  std::string fingerprint;

  bool holds = true;
  bool has_witness = false;
  uint64_t witness_db_index = 0;
  uint64_t witness_valuation_index = 0;

  /// Covered intervals (absolute indices, normalized half-open) and what
  /// they index ("database" sweeps / "valuation" pinned-database runs).
  std::vector<IndexInterval> covered;
  std::string unit = "database";
  /// The slice this shard was assigned.
  uint64_t range_lo = 0;
  uint64_t range_hi = UINT64_MAX;
  /// StopReasonName of the shard's run: "complete" attests enumerator
  /// exhaustion — the only way the merged space's true end is known.
  std::string stop_reason = "complete";
  std::vector<uint64_t> failed_indices;
};

/// The union of N shard runs of the same verification problem.
struct MergeReport {
  /// "violated" | "holds" | "incomplete". "holds" is emitted only when the
  /// union is gap-free from 0, some shard attests enumerator exhaustion
  /// ("complete") and no database failed — anything weaker over a
  /// violation-free union degrades to "incomplete", never to "holds".
  std::string verdict = "incomplete";
  bool complete = false;

  bool has_witness = false;
  /// Globally lowest witness across shards, ordered by
  /// (witness_db_index, witness_valuation_index) — identical to what one
  /// unsharded run would report.
  uint64_t witness_db_index = 0;
  uint64_t witness_valuation_index = 0;
  /// Index (into the input vector) of the shard that owns that witness.
  size_t witness_shard = 0;

  std::vector<IndexInterval> covered;  // normalized union
  /// Uncovered holes in [0, end) where end is the highest covered index;
  /// non-empty gaps force verdict "incomplete".
  std::vector<IndexInterval> gaps;
  /// Indices claimed by more than one shard (total multiplicity excess) —
  /// deduplicated with a warning, not an error: overlap wastes work but
  /// cannot corrupt a deterministic sweep's verdict.
  uint64_t overlap = 0;

  std::string unit = "database";
  std::string fingerprint;
  std::vector<uint64_t> failed_indices;  // sorted, deduplicated
  std::vector<std::string> warnings;
};

/// Merges shard reports into one verdict. Fails (kInvalidSpec) when two
/// shards carry different non-empty fingerprints or different units; a
/// missing fingerprint is tolerated with a warning. `shards` must be
/// non-empty.
Result<MergeReport> MergeShards(const std::vector<ShardReport>& shards);

/// Running state of a streaming merge: everything FinalizeMerge needs,
/// independent of how many shards have been folded in — O(intervals), not
/// O(shards). `wsvc-merge --incremental STATE` persists one of these
/// between invocations so a supervisor can merge each shard as it
/// finishes instead of holding every report for one final all-at-once
/// merge. MergeShards is FoldShard+FinalizeMerge over a fresh state, so
/// the two paths cannot diverge.
struct IncrementalMergeState {
  /// Shards folded so far (witness_shard ordinals count from 0 in fold
  /// order).
  uint64_t shards = 0;
  std::string fingerprint;
  std::string unit = "database";
  /// Sum of per-shard covered lengths; overlap at finalize is this minus
  /// the union's length.
  uint64_t sum_lengths = 0;
  std::vector<IndexInterval> covered;  // normalized union
  std::vector<uint64_t> failed;        // sorted, deduplicated
  bool any_complete = false;
  uint64_t complete_end = 0;
  bool has_witness = false;
  uint64_t witness_db_index = 0;
  uint64_t witness_valuation_index = 0;
  uint64_t witness_shard = 0;
  std::string witness_source;
  std::vector<std::string> warnings;
};

/// Folds one shard into the state (same compatibility rules as
/// MergeShards: unit mismatch and conflicting fingerprints are
/// kInvalidSpec, a missing fingerprint warns).
Status FoldShard(IncrementalMergeState* state, const ShardReport& shard);

/// Derives the merged verdict from a folded state. `state.shards` must be
/// > 0.
MergeReport FinalizeMerge(const IncrementalMergeState& state);

/// Persists / restores the state as a small JSON document. LoadMergeState
/// returns kNotFound when the file does not exist (start a fresh state)
/// and kParseError on damage.
Status SaveMergeState(const std::string& path,
                      const IncrementalMergeState& state);
Result<IncrementalMergeState> LoadMergeState(const std::string& path);

/// Parses one `wsvc --stats-json` document into a ShardReport (fingerprint,
/// verdict, witness, coverage). `source` labels diagnostics.
Result<ShardReport> ShardFromStatsJson(const std::string& json_text,
                                       const std::string& source);

/// Folds a checkpoint file into `shard`: validates the fingerprint against
/// the shard's, unions the checkpoint's covered intervals and failed
/// indices. Lets a merge credit progress a killed shard persisted after its
/// last verdict write.
Status ApplyCheckpoint(const std::string& checkpoint_path,
                       ShardReport* shard);

/// Renders the merged verdict as JSON (the "verdict" section of a
/// wsvc-merge stats document).
std::string RenderMergeJson(const MergeReport& report, int exit_code);

/// Exit code contract: 0 holds (complete), 3 violated, 4 incomplete.
int MergeExitCode(const MergeReport& report);

/// Aggregates the observability sections of per-shard stats documents into
/// one roll-up (the "shards" section of a wsvc-merge stats document):
/// counters and timers summed, histograms merged bucket-wise, worker
/// utilization folded to mean/min/max across every worker of every shard,
/// plus a per-shard table (wall, exec, lock wait, utilization) and the
/// straggler — the shard whose wall clock bounds the sweep. `stats_texts`
/// and `sources` are parallel; shards whose text fails to parse are skipped
/// (ShardFromStatsJson already rejected them for the verdict merge).
std::string RenderShardStatsRollup(const std::vector<std::string>& stats_texts,
                                   const std::vector<std::string>& sources);

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_MERGE_H_
