#include "verifier/db_enum.h"

#include <string>

#include "data/isomorphism.h"
#include "obs/metrics.h"

namespace wsv::verifier {

namespace {

/// All tuples over domain^arity, in lexicographic order.
std::vector<data::Tuple> TupleUniverse(const data::Domain& domain,
                                       size_t arity) {
  std::vector<data::Tuple> universe;
  if (arity == 0) {
    universe.push_back(data::Tuple{});
    return universe;
  }
  if (domain.empty()) return universe;
  std::vector<size_t> idx(arity, 0);
  while (true) {
    std::vector<data::Value> row(arity);
    for (size_t i = 0; i < arity; ++i) row[i] = domain.values()[idx[i]];
    universe.push_back(data::Tuple(std::move(row)));
    size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < domain.size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return universe;
}

}  // namespace

DatabaseEnumerator::DatabaseEnumerator(const spec::Composition* comp,
                                       data::Domain domain,
                                       std::vector<data::Value> movable,
                                       bool iso_reduce)
    : comp_(comp),
      domain_(std::move(domain)),
      movable_(std::move(movable)),
      iso_reduce_(iso_reduce) {
  for (size_t p = 0; p < comp_->peers().size(); ++p) {
    const data::Schema& db = comp_->peers()[p].database_schema();
    for (size_t r = 0; r < db.size(); ++r) {
      Slot slot;
      slot.peer = p;
      slot.relation = r;
      slot.universe = TupleUniverse(domain_, db.relation(r).arity());
      slot.num_tuples = slot.universe.size();
      // Slot::mask indexes subsets of the universe with a uint64_t, so 63
      // tuples is the hard ceiling (bit 63 is reserved to keep the
      // (1 << num_tuples) limit arithmetic in Advance() well defined).
      if (slot.num_tuples > 63 && status_.ok()) {
        status_ = Status::BudgetExceeded(
            "database relation '" + db.relation(r).name + "' has a tuple "
            "universe of " + std::to_string(slot.num_tuples) +
            " (|domain|^arity) which exceeds the 63-tuple enumeration "
            "limit; shrink the domain, the fresh-element count, or the "
            "relation arity");
      }
      slots_.push_back(std::move(slot));
    }
  }
}

size_t DatabaseEnumerator::RawCount() const {
  size_t count = 1;
  for (const Slot& slot : slots_) {
    size_t options = static_cast<size_t>(1) << slot.num_tuples;
    if (count > (static_cast<size_t>(-1) / options)) {
      return static_cast<size_t>(-1);
    }
    count *= options;
  }
  return count;
}

void DatabaseEnumerator::Materialize(std::vector<data::Instance>* out) const {
  out->clear();
  for (size_t p = 0; p < comp_->peers().size(); ++p) {
    out->emplace_back(&comp_->peers()[p].database_schema());
  }
  for (const Slot& slot : slots_) {
    data::Relation& rel = (*out)[slot.peer].relation(slot.relation);
    for (size_t t = 0; t < slot.num_tuples; ++t) {
      if ((slot.mask >> t) & 1) rel.Insert(slot.universe[t]);
    }
  }
}

bool DatabaseEnumerator::Advance() {
  for (Slot& slot : slots_) {
    uint64_t limit = slot.num_tuples >= 64
                         ? ~static_cast<uint64_t>(0)
                         : (static_cast<uint64_t>(1) << slot.num_tuples) - 1;
    if (slot.mask < limit) {
      ++slot.mask;
      return true;
    }
    slot.mask = 0;
  }
  return false;  // wrapped around: exhausted
}

bool DatabaseEnumerator::Next(std::vector<data::Instance>* out) {
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter& candidates = registry.counter("dbenum.candidates");
  static obs::Counter& iso_rejected = registry.counter("dbenum.iso_rejected");
  static obs::Counter& yielded = registry.counter("dbenum.yielded");
  if (!status_.ok()) return false;
  while (!exhausted_) {
    if (first_) {
      first_ = false;  // start from the all-empty databases
    } else if (!Advance()) {
      exhausted_ = true;
      break;
    }
    candidates.Add(1);
    Materialize(out);
    if (iso_reduce_) {
      std::vector<const data::Instance*> ptrs;
      ptrs.reserve(out->size());
      for (const data::Instance& inst : *out) ptrs.push_back(&inst);
      if (!data::IsCanonicalUnderPermutationsJoint(ptrs, movable_)) {
        iso_rejected.Add(1);
        continue;
      }
    }
    yielded.Add(1);
    return true;
  }
  return false;
}

void DatabaseEnumerator::Reset() {
  for (Slot& slot : slots_) slot.mask = 0;
  exhausted_ = false;
  first_ = true;
}

}  // namespace wsv::verifier
