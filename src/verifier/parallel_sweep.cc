#include "verifier/parallel_sweep.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <new>
#include <optional>
#include <set>
#include <utility>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "obs/lock_profile.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timer.h"

namespace wsv::verifier {

namespace {

/// A violation found by one worker: everything needed to reconstruct the
/// serial sweep's witness once the lowest index is known.
struct Candidate {
  size_t index;
  size_t valuation_index;
  std::vector<data::Instance> databases;
  std::vector<std::string> label;
  LassoWitness lasso;
};

/// Worker-local sweep state; only touched by its own thread until the
/// barrier at the end of Run().
struct Worker {
  EngineOutcome outcome;
  std::optional<Candidate> candidate;
  /// (database index, status) per database whose check ended with a
  /// non-OK budget status — replayed in serial order at merge time.
  std::vector<std::pair<size_t, Status>> budget_events;
  std::optional<std::pair<size_t, Status>> error;
};

/// Shared completion bookkeeping: the contiguous completed prefix of the
/// enumeration order (the checkpointable high-water mark), out-of-order
/// completions ahead of it, and the failed-index list.
struct Progress {
  // Completion bookkeeping doubles as the checkpoint writer's lock: the
  // periodic checkpoint_fn runs under it, so its wait share shows how long
  // workers stall behind checkpoint I/O.
  obs::TimedMutex mu{"sweep.progress"};
  size_t next_expected = 0;
  std::set<size_t> done_ahead;
  std::vector<size_t> failed;
  size_t total_done = 0;
  size_t since_checkpoint = 0;
};

void AddSearchStats(const SearchStats& from, SearchStats& into) {
  into.snapshots += from.snapshots;
  into.product_states += from.product_states;
  into.transitions += from.transitions;
  into.graph_transitions += from.graph_transitions;
  into.leaf_cache_hits += from.leaf_cache_hits;
  into.leaf_cache_misses += from.leaf_cache_misses;
  into.inner_searches += from.inner_searches;
  into.budget_hits += from.budget_hits;
}

/// The fault-isolation boundary: a check that throws (std::bad_alloc from a
/// huge product search, most importantly) is converted to a hard error
/// status instead of escaping the worker thread.
Result<bool> GuardedCheck(const ParallelSweep::CheckFn& check, size_t index,
                          const std::vector<data::Instance>& dbs,
                          EngineOutcome& outcome) {
  try {
    return check(index, dbs, outcome);
  } catch (const fault::MemoryBudgetError& e) {
    // A memory-budget hit is a wind-down stop like a deadline, not a hard
    // per-database failure: the sweep reports the covered prefix and the
    // `memory-budget` stop reason instead of retrying or crashing.
    return Status::MemoryBudget(e.what());
  } catch (const std::bad_alloc&) {
    return Status::Internal("database check ran out of memory (bad_alloc)");
  } catch (const std::exception& e) {
    return Status::Internal(std::string("database check threw: ") + e.what());
  } catch (...) {
    return Status::Internal("database check threw a non-standard exception");
  }
}

}  // namespace

ParallelSweep::ParallelSweep(DatabaseEnumerator* enumerator,
                             SweepOptions options)
    : enumerator_(enumerator), options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = 1;
}

Result<EngineOutcome> ParallelSweep::Run(const CheckFn& check) {
  // Resume fast-forward: walk the enumerator over the completed prefix so
  // dispatch indices stay aligned with an uninterrupted run's.
  if (options_.start_index > 0) {
    obs::PhaseTimer enum_phase("db_enum");
    std::vector<data::Instance> scratch;
    for (size_t i = 0; i < options_.start_index; ++i) {
      if (!enumerator_->Next(&scratch)) break;
    }
  }

  // Producer state: the enumerator and dispatch cursor, under one lock.
  obs::TimedMutex producer_mu{"sweep.producer"};
  size_t next_index = options_.start_index;
  bool max_databases_hit = false;
  bool range_end_hit = false;

  // Lowest witness index found so far; dispatch stops at or above it. Only
  // ever lowered, so every index below the final value was dispatched (in
  // order) and fully checked — the basis of the determinism guarantee.
  std::atomic<size_t> stop_before{static_cast<size_t>(-1)};
  // A hard (non-budget) error anywhere aborts all dispatch.
  std::atomic<bool> abort{false};
  // A deadline/cancel stop winds dispatch down; checks already running
  // observe the same token and stop from within.
  std::atomic<bool> stopped{false};
  obs::TimedMutex stop_mu{"sweep.stop"};
  std::optional<Status> stop_event;

  Progress progress;
  progress.next_expected = options_.start_index;
  progress.failed = options_.resume_failed;
  std::sort(progress.failed.begin(), progress.failed.end());

  std::vector<Worker> workers(options_.jobs);

  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter& dbs_counter =
      registry.counter("engine.databases_checked");
  static obs::Counter& failures_counter =
      registry.counter("sweep.db_failures");
  static obs::Counter& retries_counter = registry.counter("sweep.retries");

  auto record_stop = [&](const Status& status) {
    std::lock_guard<obs::TimedMutex> lock(stop_mu);
    if (!stop_event.has_value()) stop_event = status;
    stopped.store(true, std::memory_order_release);
  };

  auto mark_done = [&](size_t index) {
    std::lock_guard<obs::TimedMutex> lock(progress.mu);
    ++progress.total_done;
    if (index == progress.next_expected) {
      ++progress.next_expected;
      while (!progress.done_ahead.empty() &&
             *progress.done_ahead.begin() == progress.next_expected) {
        progress.done_ahead.erase(progress.done_ahead.begin());
        ++progress.next_expected;
      }
    } else {
      progress.done_ahead.insert(index);
    }
    if (options_.checkpoint_fn && options_.checkpoint_every > 0 &&
        ++progress.since_checkpoint >= options_.checkpoint_every) {
      progress.since_checkpoint = 0;
      std::vector<size_t> failed = progress.failed;
      std::sort(failed.begin(), failed.end());
      options_.checkpoint_fn(progress.next_expected, failed,
                             progress.total_done);
    }
  };

  auto mark_failed = [&](size_t index) {
    {
      std::lock_guard<obs::TimedMutex> lock(progress.mu);
      progress.failed.push_back(index);
    }
    failures_counter.Add(1);
    mark_done(index);  // failed databases count toward the resumable prefix
  };

  auto worker_fn = [&](size_t w) {
    Worker& me = workers[w];
    std::vector<data::Instance> dbs;
    while (!abort.load(std::memory_order_acquire) &&
           !stopped.load(std::memory_order_acquire)) {
      size_t index;
      {
        std::lock_guard<obs::TimedMutex> lock(producer_mu);
        if (options_.control != nullptr) {
          Status token = options_.control->Check();
          if (!token.ok()) {
            record_stop(token);
            break;
          }
        }
        if (next_index >= stop_before.load(std::memory_order_acquire)) break;
        bool more = [&] {
          obs::PhaseTimer enum_phase("db_enum");
          return enumerator_->Next(&dbs);
        }();
        if (!more) break;
        // Range end is checked before max_databases so a tie reports
        // range-end (the shard finished its work unit; the global budget is
        // the coordinator's concern). Next() succeeding first proves more
        // enumeration remains beyond the bound.
        if (next_index >= options_.end_index) {
          range_end_hit = true;
          break;
        }
        if (next_index >= options_.max_databases) {
          max_databases_hit = true;
          break;
        }
        index = next_index++;
      }
      ++me.outcome.databases_checked;
      dbs_counter.Add(1);
      obs::ProgressMeter::Global().MaybeBeat();

      Result<bool> found = GuardedCheck(check, index, dbs, me.outcome);
      if (!found.ok() && RunControl::IsStopStatus(found.status())) {
        record_stop(found.status());
        break;
      }
      if (!found.ok()) {
        // Hard error: retry once on the same worker-local accumulators
        // (statistics may double-count the failed attempt; the verdict
        // machinery is unaffected). Clear any budget event the failed
        // attempt left behind so it is not replayed twice.
        me.outcome.stop_status = Status::Ok();
        ++me.outcome.db_retries;
        retries_counter.Add(1);
        found = GuardedCheck(check, index, dbs, me.outcome);
        if (!found.ok() && RunControl::IsStopStatus(found.status())) {
          record_stop(found.status());
          break;
        }
        if (!found.ok()) {
          if (options_.skip_failed_databases) {
            me.outcome.stop_status = Status::Ok();
            mark_failed(index);
            continue;
          }
          if (!me.error.has_value() || index < me.error->first) {
            me.error = {index, found.status()};
          }
          abort.store(true, std::memory_order_release);
          break;
        }
      }
      if (!me.outcome.stop_status.ok()) {
        me.budget_events.emplace_back(index, me.outcome.stop_status);
        me.outcome.stop_status = Status::Ok();
      }
      mark_done(index);
      if (*found) {
        me.candidate = Candidate{index,
                                 me.outcome.violation_valuation_index,
                                 std::move(me.outcome.databases),
                                 std::move(me.outcome.label),
                                 std::move(me.outcome.lasso)};
        me.outcome.violation_found = false;
        me.outcome.violation_valuation_index = static_cast<size_t>(-1);
        me.outcome.databases.clear();
        me.outcome.label.clear();
        me.outcome.lasso = LassoWitness{};
        // Lower the dispatch fence; CAS-min since another worker may have
        // found an earlier witness concurrently.
        size_t cur = stop_before.load(std::memory_order_acquire);
        while (index < cur &&
               !stop_before.compare_exchange_weak(
                   cur, index, std::memory_order_acq_rel)) {
        }
        // This worker's future pulls would all have higher indices than its
        // own witness — nothing left for it to decide.
        break;
      }
    }
  };

  {
    // Run on the borrowed scheduler when one is attached, else on a private
    // pool. Wait() returns once the workers AND any within-database helper
    // tasks they spawned onto the same pool have drained.
    std::optional<ThreadPool> own_pool;
    ThreadPool* pool = options_.pool;
    if (pool == nullptr) {
      own_pool.emplace(options_.jobs);
      pool = &*own_pool;
    }
    for (size_t w = 0; w < options_.jobs; ++w) {
      pool->Submit([&worker_fn, w] { worker_fn(w); });
    }
    pool->Wait();
  }

  // --- Merge: sums first, then the deterministic winner selection. ---
  obs::PhaseTimer merge_phase("merge");
  EngineOutcome merged;
  for (const Worker& w : workers) {
    merged.databases_checked += w.outcome.databases_checked;
    merged.searches += w.outcome.searches;
    merged.prefiltered += w.outcome.prefiltered;
    merged.prefilter_memo_misses += w.outcome.prefilter_memo_misses;
    merged.prefilter_memo_hits += w.outcome.prefilter_memo_hits;
    merged.db_retries += w.outcome.db_retries;
    AddSearchStats(w.outcome.search_stats, merged.search_stats);
  }
  merged.completed_prefix = progress.next_expected;

  // Lowest-index witness and lowest-index hard error across workers.
  Candidate* best = nullptr;
  for (Worker& w : workers) {
    if (w.candidate.has_value() &&
        (best == nullptr || w.candidate->index < best->index)) {
      best = &*w.candidate;
    }
  }
  std::optional<std::pair<size_t, Status>> first_error;
  for (const Worker& w : workers) {
    if (w.error.has_value() &&
        (!first_error.has_value() || w.error->first < first_error->first)) {
      first_error = w.error;
    }
  }

  // The serial sweep processes indices in order, so whichever of
  // {first witness, first hard error} has the lower index is what it would
  // have reported; the other is unreachable.
  if (first_error.has_value() &&
      (best == nullptr || first_error->first < best->index)) {
    return first_error->second;
  }

  if (best != nullptr) {
    merged.violation_found = true;
    merged.violation_db_index = best->index;
    merged.violation_valuation_index = best->valuation_index;
    merged.databases = std::move(best->databases);
    merged.label = std::move(best->label);
    merged.lasso = std::move(best->lasso);
  }

  // Failed indices: sorted, and — when a witness exists — restricted to
  // indices below it: a serial fault-isolated run stops at the witness, so
  // later failures are unreachable.
  std::sort(progress.failed.begin(), progress.failed.end());
  for (size_t index : progress.failed) {
    if (best != nullptr && index >= best->index) break;
    merged.failed_db_indices.push_back(index);
  }

  // Stop status, serial-equivalent. Precedence: a deadline/cancel stop is
  // the reason the sweep ended; otherwise skipped failures bound the
  // verdict; otherwise replay budget events — the serial sweep overwrites
  // its budget status per database, so it ends with the event of the
  // highest index it processed, which is at most the witness index (it
  // stops there). Events beyond the witness come from in-flight databases
  // the serial sweep never reaches; drop them.
  if (stop_event.has_value()) {
    merged.stop_status = *stop_event;
  } else if (!merged.failed_db_indices.empty()) {
    merged.stop_status = Status::PartialFailure(
        std::to_string(merged.failed_db_indices.size()) +
        " database check(s) failed and were skipped; verdict is bounded to "
        "the databases that completed");
  } else {
    size_t cutoff = best != nullptr ? best->index : static_cast<size_t>(-1);
    std::optional<std::pair<size_t, Status>> last_budget;
    for (const Worker& w : workers) {
      for (const auto& event : w.budget_events) {
        if (event.first > cutoff) continue;
        if (!last_budget.has_value() || event.first > last_budget->first) {
          last_budget = event;
        }
      }
    }
    if (last_budget.has_value()) {
      merged.stop_status = last_budget->second;
    }
    if (best == nullptr && range_end_hit && !last_budget.has_value()) {
      // A bounded per-database search keeps its budget status: reporting
      // range-end over it would let a merge attest full coverage of a range
      // whose databases were only partially searched.
      merged.stop_status = Status::RangeEnd(
          "database enumeration stopped at the end of the assigned range; "
          "the verdict covers exactly this shard's indices");
    } else if (best == nullptr && max_databases_hit) {
      merged.stop_status = Status::BudgetExceeded(
          "database enumeration stopped at max_databases; verdict is "
          "bounded");
    }
  }
  merged.stop_reason = StopReasonFromStatus(merged.stop_status);
  return merged;
}

}  // namespace wsv::verifier
