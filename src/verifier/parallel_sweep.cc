#include "verifier/parallel_sweep.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timer.h"

namespace wsv::verifier {

namespace {

/// A violation found by one worker: everything needed to reconstruct the
/// serial sweep's witness once the lowest index is known.
struct Candidate {
  size_t index;
  std::vector<data::Instance> databases;
  std::vector<std::string> label;
  LassoWitness lasso;
};

/// Worker-local sweep state; only touched by its own thread until the
/// barrier at the end of Run().
struct Worker {
  EngineOutcome outcome;
  std::optional<Candidate> candidate;
  /// (database index, status) per database whose check ended with a
  /// non-OK budget status — replayed in serial order at merge time.
  std::vector<std::pair<size_t, Status>> budget_events;
  std::optional<std::pair<size_t, Status>> error;
};

void AddSearchStats(const SearchStats& from, SearchStats& into) {
  into.snapshots += from.snapshots;
  into.product_states += from.product_states;
  into.transitions += from.transitions;
  into.graph_transitions += from.graph_transitions;
  into.leaf_cache_hits += from.leaf_cache_hits;
  into.leaf_cache_misses += from.leaf_cache_misses;
  into.inner_searches += from.inner_searches;
  into.budget_hits += from.budget_hits;
}

}  // namespace

ParallelSweep::ParallelSweep(DatabaseEnumerator* enumerator, size_t jobs,
                             size_t max_databases)
    : enumerator_(enumerator), jobs_(jobs), max_databases_(max_databases) {}

Result<EngineOutcome> ParallelSweep::Run(const CheckFn& check) {
  // Producer state: the enumerator and dispatch cursor, under one lock.
  std::mutex producer_mu;
  size_t next_index = 0;
  bool max_databases_hit = false;

  // Lowest witness index found so far; dispatch stops at or above it. Only
  // ever lowered, so every index below the final value was dispatched (in
  // order) and fully checked — the basis of the determinism guarantee.
  std::atomic<size_t> stop_before{static_cast<size_t>(-1)};
  // A hard (non-budget) error anywhere aborts all dispatch.
  std::atomic<bool> abort{false};

  std::vector<Worker> workers(jobs_);

  static obs::Counter& dbs_counter =
      obs::Registry::Global().counter("engine.databases_checked");

  auto worker_fn = [&](size_t w) {
    Worker& me = workers[w];
    std::vector<data::Instance> dbs;
    while (!abort.load(std::memory_order_acquire)) {
      size_t index;
      {
        std::lock_guard<std::mutex> lock(producer_mu);
        if (next_index >= stop_before.load(std::memory_order_acquire)) break;
        if (next_index >= max_databases_) {
          max_databases_hit = true;
          break;
        }
        bool more = [&] {
          obs::PhaseTimer enum_phase("db_enum");
          return enumerator_->Next(&dbs);
        }();
        if (!more) break;
        index = next_index++;
      }
      ++me.outcome.databases_checked;
      dbs_counter.Add(1);
      obs::ProgressMeter::Global().MaybeBeat();

      Result<bool> found = check(index, dbs, me.outcome);
      if (!found.ok()) {
        if (!me.error.has_value() || index < me.error->first) {
          me.error = {index, found.status()};
        }
        abort.store(true, std::memory_order_release);
        break;
      }
      if (!me.outcome.budget_status.ok()) {
        me.budget_events.emplace_back(index, me.outcome.budget_status);
        me.outcome.budget_status = Status::Ok();
      }
      if (*found) {
        me.candidate = Candidate{index, std::move(me.outcome.databases),
                                 std::move(me.outcome.label),
                                 std::move(me.outcome.lasso)};
        me.outcome.violation_found = false;
        me.outcome.databases.clear();
        me.outcome.label.clear();
        me.outcome.lasso = LassoWitness{};
        // Lower the dispatch fence; CAS-min since another worker may have
        // found an earlier witness concurrently.
        size_t cur = stop_before.load(std::memory_order_acquire);
        while (index < cur &&
               !stop_before.compare_exchange_weak(
                   cur, index, std::memory_order_acq_rel)) {
        }
        // This worker's future pulls would all have higher indices than its
        // own witness — nothing left for it to decide.
        break;
      }
    }
  };

  {
    ThreadPool pool(jobs_);
    for (size_t w = 0; w < jobs_; ++w) {
      pool.Submit([&worker_fn, w] { worker_fn(w); });
    }
    pool.Wait();
  }

  // --- Merge: sums first, then the deterministic winner selection. ---
  EngineOutcome merged;
  for (const Worker& w : workers) {
    merged.databases_checked += w.outcome.databases_checked;
    merged.searches += w.outcome.searches;
    merged.prefiltered += w.outcome.prefiltered;
    merged.prefilter_memo_misses += w.outcome.prefilter_memo_misses;
    merged.prefilter_memo_hits += w.outcome.prefilter_memo_hits;
    AddSearchStats(w.outcome.search_stats, merged.search_stats);
  }

  // Lowest-index witness and lowest-index hard error across workers.
  Candidate* best = nullptr;
  for (Worker& w : workers) {
    if (w.candidate.has_value() &&
        (best == nullptr || w.candidate->index < best->index)) {
      best = &*w.candidate;
    }
  }
  std::optional<std::pair<size_t, Status>> first_error;
  for (const Worker& w : workers) {
    if (w.error.has_value() &&
        (!first_error.has_value() || w.error->first < first_error->first)) {
      first_error = w.error;
    }
  }

  // The serial sweep processes indices in order, so whichever of
  // {first witness, first hard error} has the lower index is what it would
  // have reported; the other is unreachable.
  if (first_error.has_value() &&
      (best == nullptr || first_error->first < best->index)) {
    return first_error->second;
  }

  if (best != nullptr) {
    merged.violation_found = true;
    merged.violation_db_index = best->index;
    merged.databases = std::move(best->databases);
    merged.label = std::move(best->label);
    merged.lasso = std::move(best->lasso);
  }

  // Budget status, serial-equivalent: the serial sweep overwrites
  // budget_status per database, so it ends with the event of the highest
  // index it processed — which is at most the witness index (it stops
  // there). Events beyond the witness come from in-flight databases the
  // serial sweep never reaches; drop them.
  size_t cutoff =
      best != nullptr ? best->index : static_cast<size_t>(-1);
  std::optional<std::pair<size_t, Status>> last_budget;
  for (const Worker& w : workers) {
    for (const auto& event : w.budget_events) {
      if (event.first > cutoff) continue;
      if (!last_budget.has_value() || event.first > last_budget->first) {
        last_budget = event;
      }
    }
  }
  if (last_budget.has_value()) {
    merged.budget_status = last_budget->second;
  }
  if (best == nullptr && max_databases_hit) {
    merged.budget_status = Status::BudgetExceeded(
        "database enumeration stopped at max_databases; verdict is "
        "bounded");
  }
  return merged;
}

}  // namespace wsv::verifier
