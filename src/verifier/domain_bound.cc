#include "verifier/domain_bound.h"

namespace wsv::verifier {

size_t SufficientFreshDomainSize(const spec::Composition& comp,
                                 const ltl::Property& property,
                                 size_t queue_bound) {
  size_t fresh = 0;
  for (const spec::Peer& peer : comp.peers()) {
    // Live input positions: the current input plus the lookback window.
    for (size_t i = 0; i < peer.input_schema().size(); ++i) {
      fresh += peer.input_schema().relation(i).arity() *
               (1 + static_cast<size_t>(peer.lookback()));
    }
    // Live flat-queue positions: every message slot of every flat in-queue
    // (quantification reaches only the first message, but each queued
    // message eventually becomes first).
    for (const spec::QueueDecl& q : peer.in_queues()) {
      if (q.kind == spec::QueueKind::kFlat) {
        fresh += q.arity() * queue_bound;
      }
    }
  }
  // One fresh element per universally-quantified property variable.
  fresh += property.closure_variables().size();
  // At least one element so quantifiers have a non-trivial range even for
  // constant-free specifications.
  if (fresh == 0) fresh = 1;
  return fresh;
}

}  // namespace wsv::verifier
