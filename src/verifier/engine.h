#ifndef WSVERIFY_VERIFIER_ENGINE_H_
#define WSVERIFY_VERIFIER_ENGINE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "automata/buchi.h"
#include "common/interner.h"
#include "common/run_control.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/instance.h"
#include "data/value.h"
#include "fo/formula.h"
#include "runtime/run_options.h"
#include "spec/composition.h"
#include "verifier/checkpoint.h"
#include "verifier/product_search.h"

namespace wsv::verifier {

/// The valuation set |domain|^num_vars as an indexed generator instead of a
/// materialized list: index i mixed-radix decodes to one assignment of the
/// closure variables (position 0 is the least-significant digit, matching
/// the historical enumeration order), so memory stays O(1) regardless of
/// the instance count and the index doubles as the deterministic witness /
/// checkpoint key for parallel valuation sweeps.
class ValuationSpace {
 public:
  /// Zero variables: the single empty valuation (index 0).
  ValuationSpace() = default;

  /// Copies the domain's values and spellings, so the space stays valid
  /// independent of the interner's lifetime.
  ValuationSpace(const data::Domain& domain, const Interner& interner,
                 size_t num_vars);

  size_t num_vars() const { return num_vars_; }
  /// |domain|^num_vars, saturated at SIZE_MAX; 0 iff the domain is empty
  /// and num_vars > 0.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// The domain in digit order: index digit d at position p means
  /// "closure variable p takes values()[d]".
  const std::vector<data::Value>& values() const { return values_; }

  /// Decodes valuation `index` as interned values, aligned with the
  /// closure-variable order. `out` is overwritten (reuse it across calls to
  /// avoid reallocation).
  void DecodeValues(size_t index, std::vector<data::Value>* out) const;

  /// Decodes valuation `index` as constant spellings (the witness-label /
  /// rendering form) into `*out`, reusing its capacity — the form the
  /// fan-out loop uses with a per-lane scratch buffer.
  void DecodeSpellings(size_t index, std::vector<std::string>* out) const;

  /// Allocating convenience form of the above.
  std::vector<std::string> DecodeSpellings(size_t index) const;

 private:
  std::vector<data::Value> values_;
  std::vector<std::string> spellings_;
  size_t num_vars_ = 0;
  size_t size_ = 1;
};

/// A symbolic verification task: one Büchi automaton accepting exactly the
/// violating runs, whose propositions are *open* FO formulas (leaves) over
/// the composition schema with free variables among `closure_variables`.
/// Each index of `valuations` instantiates the closure variables; the
/// automaton is shared across all instances, and per-snapshot leaf
/// satisfaction is computed once (relationally) and looked up per instance.
///
/// Verifier (LTL-FO, Theorem 3.4), ProtocolVerifier (Theorems 4.2/4.5) and
/// ModularVerifier (Theorem 5.4) all lower to this shape.
struct SymbolicTask {
  automata::BuchiAutomaton automaton{0};
  /// Proposition table: leaves[i] is the FO formula of PropId i.
  std::vector<fo::FormulaPtr> leaves;
  /// Universal-closure variables (substitution order of `valuations`).
  std::vector<std::string> closure_variables;
  /// The instance space (one instance per valuation index). The default
  /// space is the single empty valuation for tasks without closure
  /// variables.
  ValuationSpace valuations;
};

/// A database given by constant spellings: relation name -> tuples of
/// spellings. Used to pin verification to concrete databases (the verifier
/// interns the spellings into its pseudo-domain).
using NamedDatabase =
    std::map<std::string, std::vector<std::vector<std::string>>>;

/// Materializes one NamedDatabase per peer into instances over `interner`,
/// interning unseen spellings and adding them to `domain`.
Result<std::vector<data::Instance>> MaterializeDatabases(
    const spec::Composition& comp, const std::vector<NamedDatabase>& named,
    Interner& interner, data::Domain& domain);

/// The pseudo-domain of a verification task: every specification constant
/// plus `fresh_count` fresh elements (spelled "#1", "#2", ...).
struct PseudoDomain {
  Interner interner;
  data::Domain domain;
  std::vector<data::Value> fresh;
};

/// Builds the pseudo-domain for `comp` with the given extra constants (from
/// the property / protocol / environment spec).
PseudoDomain BuildPseudoDomain(const spec::Composition& comp,
                               const std::set<std::string>& extra_constants,
                               size_t fresh_count);

/// All valuations of `num_vars` variables over `domain`, as constant
/// spellings — the materialized form of ValuationSpace, kept for callers
/// that genuinely need the full list (and as the reference order the
/// indexed decode is tested against).
std::vector<std::vector<std::string>> EnumerateValuations(
    const data::Domain& domain, const Interner& interner, size_t num_vars);

/// How the engine covers the valuation space of one database.
enum class ValuationMode {
  /// Enumerate every mixed-radix index (the historical fan-out).
  kConcrete,
  /// Partition the space into leaf-signature equivalence classes — two
  /// valuations inducing the same truth assignment on every property leaf
  /// at every reachable snapshot are indistinguishable to the Büchi
  /// product — and run one product search per class, on the class's least
  /// index. Verdicts, witness indices, labels and coverage are bit-for-bit
  /// identical to kConcrete; aggregate search statistics (searches,
  /// prefilter memo traffic) reflect the smaller class count. Falls back
  /// to the concrete loop when the snapshot graph is incomplete (symbolic
  /// partitioning needs the sealed leaf cache) or the space saturated.
  kSymbolic,
  /// kSymbolic, but additionally falls back to kConcrete when the class
  /// count fails to collapse the span (classes * 2 > indices), so the
  /// partition overhead is never paid twice on incompressible spaces.
  kAuto,
};

/// Parses "concrete" / "symbolic" / "auto"; empty result on anything else.
std::optional<ValuationMode> ValuationModeFromName(const std::string& name);
const char* ValuationModeName(ValuationMode mode);

/// How the sweep treats a database whose check fails hard (an exception
/// such as std::bad_alloc, or a non-budget error status).
enum class OnDbError {
  /// Abort the whole sweep and surface the error (legacy behavior).
  kAbort,
  /// Retry the database once; if it fails again, record its index in the
  /// outcome's failed list and keep sweeping. A clean pass then degrades to
  /// a bounded verdict (StopReason::kDbFailures); a found violation is
  /// still a sound VIOLATION.
  kSkip,
};

struct EngineOptions {
  runtime::RunOptions run;
  bool iso_reduction = true;
  /// Exclusive bound on the enumeration in ABSOLUTE canonical indices:
  /// databases with index >= max_databases are never dispatched, counted
  /// from index 0 regardless of any resume offset or range lower bound.
  size_t max_databases = static_cast<size_t>(-1);
  /// Absolute half-open slice [db_range_lo, db_range_hi) of the canonical
  /// database enumeration this run checks — one shard's work unit. The
  /// defaults cover the whole enumeration. A sweep cut short by the upper
  /// bound (with more databases beyond it) stops with StopReason::kRangeEnd;
  /// a sweep whose enumerator is exhausted inside the range stops kComplete,
  /// which is the attestation a merge needs that the space ends in-range.
  size_t db_range_lo = 0;
  size_t db_range_hi = static_cast<size_t>(-1);
  /// Half-open slice of the valuation space, legal only together with
  /// fixed_databases (a pinned-database valuation shard); Run() rejects it
  /// on database sweeps — those shard with db_range instead.
  size_t valuation_range_lo = 0;
  size_t valuation_range_hi = static_cast<size_t>(-1);
  /// Walk the enumeration without checking anything and report its size in
  /// EngineOutcome::enumeration_count (canonical databases, or valuations
  /// when fixed_databases is set). Shard coordinators use this to split
  /// ranges evenly.
  bool count_only = false;
  /// Valuation coverage strategy (see ValuationMode). The default keeps
  /// the concrete loop; kSymbolic/kAuto collapse it to per-class checks.
  ValuationMode valuation_mode = ValuationMode::kConcrete;
  SearchBudget budget;
  /// Global worker budget for the two-level scheduler. 1 = serial
  /// (default); 0 = hardware concurrency. One shared ThreadPool feeds both
  /// levels — whole databases in the across-database sweep AND, within each
  /// database, the parallel graph exploration plus chunked valuation
  /// fan-out — so N is a cap with no oversubscription. Every parallel path
  /// is deterministic: the verdict, witness database/valuation indices,
  /// label and lasso always match the serial run's (aggregate statistics
  /// such as databases_checked may exceed them — see ParallelSweep).
  size_t jobs = 1;
  /// Verify against these databases only (skips enumeration).
  std::optional<std::vector<data::Instance>> fixed_databases;

  /// Deadline/cancellation token polled by every pipeline loop (not owned;
  /// may be null). A stop ends the run with a partial outcome: stop_reason
  /// kDeadline / kCanceled, covering the completed database prefix.
  RunControl* control = nullptr;
  /// Fault isolation policy for per-database check failures in the sweep.
  OnDbError on_db_error = OnDbError::kAbort;

  /// When non-empty, the sweep persists progress checkpoints here (atomic
  /// temp-file + rename) every `checkpoint_every` completed databases and
  /// once more when the sweep ends, stamped with `checkpoint_fingerprint`.
  std::string checkpoint_path;
  std::string checkpoint_fingerprint;
  size_t checkpoint_every = 64;
  /// Resume support: skip checking databases [0, resume_prefix) — the
  /// enumerator still walks them so indices stay aligned with an
  /// uninterrupted run — and carry `resume_failed` (indices inside that
  /// prefix that a previous run skipped) into the outcome's failed list.
  size_t resume_prefix = 0;
  std::vector<size_t> resume_failed;
  /// Coverage intervals inherited from a resumed checkpoint (absolute
  /// indices, normalized); unioned into the outcome's covered set and into
  /// persisted checkpoints. Callers set resume_prefix to
  /// ResumeStart(resume_covered, db_range_lo) so dispatch skips the covered
  /// run containing the range start.
  std::vector<IndexInterval> resume_covered;
};

/// Wall time spent in each pipeline phase during one engine run, in
/// nanoseconds. Zero when phase timing is disabled
/// (obs::Registry::Global().timing_enabled()). Phases measure code regions
/// and may nest (leaf evaluation runs lazily under graph expansion and
/// NDFS), so they are not a partition of the total.
struct PhaseTimings {
  uint64_t db_enum_ns = 0;
  uint64_t graph_expand_ns = 0;
  uint64_t leaf_eval_ns = 0;
  uint64_t prefilter_ns = 0;
  uint64_t ndfs_ns = 0;
};

/// Outcome of an engine run; the caller wraps it into the public
/// VerificationResult types.
struct EngineOutcome {
  bool violation_found = false;
  /// Set when violation_found.
  std::vector<data::Instance> databases;
  std::vector<std::string> label;
  LassoWitness lasso;
  /// Position of the witness database in enumeration order (SIZE_MAX when
  /// no violation). Identical across serial and parallel sweeps.
  size_t violation_db_index = static_cast<size_t>(-1);
  /// Index of the witness valuation in ValuationSpace order (SIZE_MAX when
  /// no violation). Identical across serial and parallel valuation
  /// fan-outs: the reported witness is always the lowest-index one.
  size_t violation_valuation_index = static_cast<size_t>(-1);

  /// Worker threads the sweep actually ran with (EngineOptions::jobs after
  /// resolving 0 to the hardware concurrency).
  size_t jobs = 1;

  size_t databases_checked = 0;
  size_t searches = 0;
  /// Instances discharged by the rigid-proposition emptiness prefilter
  /// without a state-space search.
  size_t prefiltered = 0;
  /// Prefilter memo lookups: distinct truth-status vectors computed versus
  /// reused across valuations.
  size_t prefilter_memo_misses = 0;
  size_t prefilter_memo_hits = 0;
  SearchStats search_stats;
  PhaseTimings timings;
  /// Why the run is not complete: budget exhaustion (kBudgetExceeded),
  /// deadline (kDeadlineExceeded), cancellation (kCanceled) or skipped
  /// database failures (kPartialFailure). OK when stop_reason == kComplete.
  /// Generalizes the old budget_status field.
  Status stop_status = Status::Ok();
  /// stop_status, classified (kComplete / kBudget / kDeadline / kCanceled /
  /// kDbFailures).
  StopReason stop_reason = StopReason::kComplete;
  /// High-water mark of the contiguous completed run starting at the
  /// dispatch origin (the resume/range start; index 0 for a whole-space
  /// run): every index from the origin up to here was checked or recorded
  /// as failed. Includes any resumed prefix.
  size_t completed_prefix = 0;
  /// Disjoint covered intervals of the enumeration order (absolute
  /// half-open indices, normalized), including resumed coverage; capped
  /// below the witness when a violation is found, mirroring the persisted
  /// checkpoint so a resume re-finds the witness. Unit: coverage_unit.
  std::vector<IndexInterval> covered;
  /// What `covered` indexes: "database" for sweeps, "valuation" for
  /// pinned-database runs.
  std::string coverage_unit = "database";
  /// Count-only mode (EngineOptions::count_only): the size of the full
  /// enumeration space; zero otherwise.
  size_t enumeration_count = 0;
  /// Indices whose checks failed hard and were skipped (OnDbError::kSkip),
  /// sorted; includes EngineOptions::resume_failed.
  std::vector<size_t> failed_db_indices;
  /// Per-database check retries performed by the fault-isolated sweep.
  size_t db_retries = 0;
};

/// Runs the symbolic task against every database over the pseudo-domain
/// (canonical representatives only, when iso_reduction), stopping at the
/// first violation. Per database: the configuration graph is explored once
/// and shared by all instances; instances whose automaton is empty after
/// fixing the database-rigid propositions are skipped without search.
///
/// With options.jobs > 1 the sweep runs on a worker pool (ParallelSweep):
/// each worker checks whole databases against its private accumulators;
/// the task, composition, interner and domain are shared read-only.
class VerificationEngine {
 public:
  /// `comp` and `interner` must outlive the engine. `fresh` are the
  /// pseudo-domain elements permutations may move.
  VerificationEngine(const spec::Composition* comp, const Interner* interner,
                     data::Domain domain, std::vector<data::Value> fresh,
                     EngineOptions options);

  Result<EngineOutcome> Run(SymbolicTask& task);

  /// The per-database checking step of the sweep: explores the
  /// configuration graph for `dbs` and runs every task instance against it,
  /// accumulating into `outcome`. Returns true when a witness was recorded
  /// (outcome.databases/label/lasso; the caller assigns the index).
  /// `db_index` labels the trace span. Thread-safe for concurrent calls
  /// with distinct `outcome` objects.
  Result<bool> CheckDatabases(const SymbolicTask& task,
                              const std::vector<data::Instance>& dbs,
                              size_t db_index, EngineOutcome& outcome);

 private:
  /// One valuation instance of the fan-out, shared by the serial loop and
  /// the chunked parallel dispatch (see engine.cc).
  struct ValuationLane;
  struct ValuationContext;
  /// `weight` is the number of valuation indices this check stands for: 1
  /// on the concrete path, the class size on the symbolic path (coverage
  /// counters scale by it; the search itself runs once, on `index`).
  Result<bool> CheckOneValuation(const ValuationContext& ctx, size_t index,
                                 ValuationLane& lane, size_t weight = 1);

  const spec::Composition* comp_;
  const Interner* interner_;
  data::Domain domain_;
  std::vector<data::Value> fresh_;
  EngineOptions options_;
  /// The shared two-level scheduler: set by Run() for the duration of a
  /// sweep (borrowed, never owned here), consumed by CheckDatabases for
  /// graph exploration, leaf sealing and valuation fan-out. lanes_ is the
  /// global --jobs budget (callers + pool helpers).
  ThreadPool* pool_ = nullptr;
  size_t lanes_ = 1;
};

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_ENGINE_H_
