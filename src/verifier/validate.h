#ifndef WSVERIFY_VERIFIER_VALIDATE_H_
#define WSVERIFY_VERIFIER_VALIDATE_H_

#include "common/status.h"
#include "fo/formula.h"
#include "ltl/property.h"
#include "spec/composition.h"

namespace wsv::verifier {

/// Checks that every atom of `formula` names a resolvable composition-schema
/// relation (qualified peer relations, derived prev_/empty_/error_ names,
/// run propositions, env.Q channel views) with the right arity. Catching
/// this before the search turns a mid-verification NotFound into an
/// immediate, well-located diagnostic.
Status ValidateFormulaSchema(const spec::Composition& comp,
                             const fo::FormulaPtr& formula);

/// ValidateFormulaSchema over every FO leaf of an LTL formula.
Status ValidateLtlSchema(const spec::Composition& comp,
                         const ltl::LtlPtr& formula);

/// ValidateLtlSchema for a property.
Status ValidateProperty(const spec::Composition& comp,
                        const ltl::Property& property);

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_VALIDATE_H_
