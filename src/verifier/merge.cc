#include "verifier/merge.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "obs/json_util.h"

namespace wsv::verifier {

namespace {

uint64_t IntervalsLength(const std::vector<IndexInterval>& set) {
  uint64_t total = 0;
  for (const IndexInterval& iv : set) total += iv.second - iv.first;
  return total;
}

}  // namespace

Status FoldShard(IncrementalMergeState* state, const ShardReport& shard) {
  // Unit and fingerprint compatibility: shards that verified different
  // problems (or different work units) must never be unioned — the indices
  // would mean different things.
  if (state->shards == 0) {
    state->unit = shard.unit;
  } else if (shard.unit != state->unit) {
    return Status::InvalidSpec(
        "shard '" + shard.source + "' covers unit '" + shard.unit +
        "' but an earlier shard covers '" + state->unit +
        "' — these runs cannot merge");
  }
  if (shard.fingerprint.empty()) {
    state->warnings.push_back("shard '" + shard.source +
                              "' carries no fingerprint; compatibility "
                              "with the other shards is unchecked");
  } else if (state->fingerprint.empty()) {
    state->fingerprint = shard.fingerprint;
  } else if (shard.fingerprint != state->fingerprint) {
    return Status::InvalidSpec(
        "fingerprint mismatch: shard '" + shard.source + "' has " +
        shard.fingerprint + " but an earlier shard has " +
        state->fingerprint + " — the runs verified different problems");
  }

  // Union coverage; the multiplicity excess across all folds is the
  // overlap, computed at finalize from the running length sum.
  std::vector<IndexInterval> covered = NormalizeIntervals(shard.covered);
  state->sum_lengths += IntervalsLength(covered);
  for (const IndexInterval& iv : covered) {
    AddInterval(&state->covered, iv.first, iv.second);
  }
  if (shard.stop_reason == "complete") {
    state->any_complete = true;
    for (const IndexInterval& iv : covered) {
      state->complete_end = std::max(state->complete_end, iv.second);
    }
  }

  // Witness: the globally lowest (db, valuation) pair is exactly what one
  // unsharded deterministic sweep would have stopped at.
  if (shard.has_witness) {
    bool lower =
        !state->has_witness ||
        shard.witness_db_index < state->witness_db_index ||
        (shard.witness_db_index == state->witness_db_index &&
         shard.witness_valuation_index < state->witness_valuation_index);
    if (lower) {
      state->has_witness = true;
      state->witness_db_index = shard.witness_db_index;
      state->witness_valuation_index = shard.witness_valuation_index;
      state->witness_shard = state->shards;
      state->witness_source = shard.source;
    }
  }

  // Failed indices: sorted deduplicated union.
  state->failed.insert(state->failed.end(), shard.failed_indices.begin(),
                       shard.failed_indices.end());
  std::sort(state->failed.begin(), state->failed.end());
  state->failed.erase(std::unique(state->failed.begin(), state->failed.end()),
                      state->failed.end());

  ++state->shards;
  return Status::Ok();
}

MergeReport FinalizeMerge(const IncrementalMergeState& state) {
  MergeReport merged;
  merged.unit = state.unit;
  merged.fingerprint = state.fingerprint;
  merged.covered = state.covered;
  merged.failed_indices = state.failed;
  merged.warnings = state.warnings;
  merged.has_witness = state.has_witness;
  merged.witness_db_index = state.witness_db_index;
  merged.witness_valuation_index = state.witness_valuation_index;
  merged.witness_shard = static_cast<size_t>(state.witness_shard);

  // The multiplicity excess is the overlap (duplicated work — deduplicate
  // and warn, the verdicts still agree by determinism).
  merged.overlap = state.sum_lengths - IntervalsLength(merged.covered);
  if (merged.overlap > 0) {
    merged.warnings.push_back(
        "shards overlap on " + std::to_string(merged.overlap) + " " +
        merged.unit + " index(es); deduplicated (determinism makes the "
        "duplicate verdicts agree, but the work was wasted)");
  }

  // Completeness attestation. The enumeration's true size is only known
  // when some shard ran its enumerator to exhaustion (stop_reason
  // "complete"); a pile of range-bounded shards, however contiguous, can
  // never prove there is nothing beyond the highest range.
  uint64_t end = 0;
  for (const IndexInterval& iv : merged.covered) {
    end = std::max(end, iv.second);
  }
  merged.gaps = IntervalGaps(merged.covered, end);
  if (state.any_complete && end > state.complete_end) {
    merged.warnings.push_back(
        "a shard covers indices beyond the exhaustion point " +
        std::to_string(state.complete_end) +
        " attested by a 'complete' shard; reports are inconsistent");
  }
  merged.complete = state.any_complete && merged.gaps.empty() && end > 0 &&
                    ContiguousPrefix(merged.covered) == end &&
                    merged.failed_indices.empty();

  if (merged.has_witness) {
    merged.verdict = "violated";
  } else if (merged.complete) {
    merged.verdict = "holds";
  } else {
    merged.verdict = "incomplete";
    if (!merged.gaps.empty()) {
      merged.warnings.push_back(
          "coverage has gaps (" + IntervalsToString(merged.gaps) +
          "); the union proves nothing about the uncovered indices");
    } else if (!state.any_complete) {
      merged.warnings.push_back(
          "no shard ran to enumerator exhaustion; the space beyond index " +
          std::to_string(end) + " is unexplored");
    } else if (!merged.failed_indices.empty()) {
      merged.warnings.push_back(
          std::to_string(merged.failed_indices.size()) +
          " index(es) failed hard and were skipped; their verdicts are "
          "unknown");
    }
  }
  return merged;
}

Result<MergeReport> MergeShards(const std::vector<ShardReport>& shards) {
  if (shards.empty()) {
    return Status::InvalidSpec("merge needs at least one shard report");
  }
  IncrementalMergeState state;
  for (const ShardReport& shard : shards) {
    WSV_RETURN_IF_ERROR(FoldShard(&state, shard));
  }
  return FinalizeMerge(state);
}

Status SaveMergeState(const std::string& path,
                      const IncrementalMergeState& state) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("kind").String("wsv-merge-state");
  w.Key("version").Int(1);
  w.Key("shards").Uint(state.shards);
  w.Key("fingerprint").String(state.fingerprint);
  w.Key("unit").String(state.unit);
  w.Key("sum_lengths").Uint(state.sum_lengths);
  w.Key("covered").BeginArray();
  for (const IndexInterval& iv : state.covered) {
    w.BeginArray().Uint(iv.first).Uint(iv.second).EndArray();
  }
  w.EndArray();
  w.Key("failed").BeginArray();
  for (uint64_t index : state.failed) w.Uint(index);
  w.EndArray();
  w.Key("any_complete").Bool(state.any_complete);
  w.Key("complete_end").Uint(state.complete_end);
  w.Key("has_witness").Bool(state.has_witness);
  if (state.has_witness) {
    w.Key("witness_db_index").Uint(state.witness_db_index);
    w.Key("witness_valuation_index").Uint(state.witness_valuation_index);
    w.Key("witness_shard").Uint(state.witness_shard);
    w.Key("witness_source").String(state.witness_source);
  }
  w.Key("warnings").BeginArray();
  for (const std::string& warning : state.warnings) w.String(warning);
  w.EndArray();
  w.EndObject();

  // Same publish discipline as the checkpoint writer: temp + rename so a
  // crashed merge never leaves a torn state file for the next fold.
  const std::string tmp = path + ".tmp";
  std::remove(tmp.c_str());
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      return Status::NotFound("cannot open merge state for writing: " + tmp);
    }
    out << w.str() << "\n";
    out.flush();
    if (!out) {
      return Status::Internal("failed writing merge state: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("failed renaming merge state '" + tmp +
                            "' over '" + path + "'");
  }
  return Status::Ok();
}

Result<IncrementalMergeState> LoadMergeState(const std::string& path) {
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open merge state: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  Result<obs::JsonValue> parsed = obs::JsonParse(text);
  if (!parsed.ok()) {
    return Status::ParseError("merge state '" + path +
                              "' is not valid JSON: " +
                              parsed.status().message());
  }
  const obs::JsonValue& doc = parsed.value();
  const obs::JsonValue* kind = doc.Find("kind");
  if (kind == nullptr || kind->AsString("") != "wsv-merge-state") {
    return Status::ParseError("'" + path + "' is not a merge state file");
  }
  IncrementalMergeState state;
  if (const obs::JsonValue* v = doc.Find("shards")) state.shards = v->AsUint(0);
  if (const obs::JsonValue* v = doc.Find("fingerprint")) {
    state.fingerprint = v->AsString("");
  }
  if (const obs::JsonValue* v = doc.Find("unit")) {
    state.unit = v->AsString("database");
  }
  if (const obs::JsonValue* v = doc.Find("sum_lengths")) {
    state.sum_lengths = v->AsUint(0);
  }
  if (const obs::JsonValue* covered = doc.Find("covered");
      covered != nullptr && covered->IsArray()) {
    for (const obs::JsonValue& iv : covered->array) {
      if (!iv.IsArray() || iv.array.size() != 2) {
        return Status::ParseError("merge state '" + path +
                                  "': covered entries must be [lo, hi]");
      }
      state.covered.push_back({iv.array[0].AsUint(0), iv.array[1].AsUint(0)});
    }
    state.covered = NormalizeIntervals(std::move(state.covered));
  }
  if (const obs::JsonValue* failed = doc.Find("failed");
      failed != nullptr && failed->IsArray()) {
    for (const obs::JsonValue& index : failed->array) {
      state.failed.push_back(index.AsUint(0));
    }
  }
  if (const obs::JsonValue* v = doc.Find("any_complete")) {
    state.any_complete = v->AsBool(false);
  }
  if (const obs::JsonValue* v = doc.Find("complete_end")) {
    state.complete_end = v->AsUint(0);
  }
  if (const obs::JsonValue* v = doc.Find("has_witness")) {
    state.has_witness = v->AsBool(false);
  }
  if (state.has_witness) {
    if (const obs::JsonValue* v = doc.Find("witness_db_index")) {
      state.witness_db_index = v->AsUint(0);
    }
    if (const obs::JsonValue* v = doc.Find("witness_valuation_index")) {
      state.witness_valuation_index = v->AsUint(0);
    }
    if (const obs::JsonValue* v = doc.Find("witness_shard")) {
      state.witness_shard = v->AsUint(0);
    }
    if (const obs::JsonValue* v = doc.Find("witness_source")) {
      state.witness_source = v->AsString("");
    }
  }
  if (const obs::JsonValue* warnings = doc.Find("warnings");
      warnings != nullptr && warnings->IsArray()) {
    for (const obs::JsonValue& warning : warnings->array) {
      state.warnings.push_back(warning.AsString(""));
    }
  }
  return state;
}

Result<ShardReport> ShardFromStatsJson(const std::string& json_text,
                                       const std::string& source) {
  WSV_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::JsonParse(json_text));
  ShardReport shard;
  shard.source = source;
  const obs::JsonValue* verdict = doc.Find("verdict");
  if (verdict == nullptr || !verdict->IsObject()) {
    return Status::ParseError("shard '" + source +
                              "': stats JSON has no verdict object (was the "
                              "run a verify/protocol/modular command?)");
  }
  if (const obs::JsonValue* fp = verdict->Find("fingerprint")) {
    shard.fingerprint = fp->AsString("");
  }
  if (const obs::JsonValue* kind = verdict->Find("kind"); kind == nullptr) {
    return Status::ParseError("shard '" + source +
                              "': verdict carries no result (the command "
                              "exited before verifying)");
  }
  shard.holds = verdict->Find("holds") != nullptr &&
                verdict->Find("holds")->AsBool(false);
  const obs::JsonValue* ce = verdict->Find("counterexample");
  shard.has_witness = ce != nullptr && ce->AsBool(false);
  if (shard.has_witness) {
    const obs::JsonValue* db = verdict->Find("witness_db_index");
    const obs::JsonValue* vi = verdict->Find("witness_valuation_index");
    if (db == nullptr || vi == nullptr) {
      return Status::ParseError("shard '" + source +
                                "': counterexample without witness indices");
    }
    shard.witness_db_index = db->AsUint(0);
    shard.witness_valuation_index = vi->AsUint(0);
  }
  const obs::JsonValue* cov = verdict->Find("coverage");
  if (cov == nullptr || !cov->IsObject()) {
    return Status::ParseError("shard '" + source +
                              "': verdict has no coverage block");
  }
  if (const obs::JsonValue* reason = cov->Find("stop_reason")) {
    shard.stop_reason = reason->AsString("complete");
  }
  if (const obs::JsonValue* unit = cov->Find("unit")) {
    shard.unit = unit->AsString("database");
  }
  if (const obs::JsonValue* lo = cov->Find("range_lo")) {
    shard.range_lo = lo->AsUint(0);
  }
  if (const obs::JsonValue* hi = cov->Find("range_hi")) {
    shard.range_hi = hi->AsUint(UINT64_MAX);
  }
  const obs::JsonValue* covered = cov->Find("covered");
  if (covered != nullptr && covered->IsArray()) {
    for (const obs::JsonValue& iv : covered->array) {
      if (!iv.IsArray() || iv.array.size() != 2) {
        return Status::ParseError("shard '" + source +
                                  "': coverage.covered entries must be "
                                  "[lo, hi] pairs");
      }
      shard.covered.push_back(
          {iv.array[0].AsUint(0), iv.array[1].AsUint(0)});
    }
  } else if (const obs::JsonValue* prefix = cov->Find("completed_prefix")) {
    // Pre-interval documents: lift the prefix, like the checkpoint reader.
    uint64_t p = prefix->AsUint(0);
    if (p > 0) shard.covered.push_back({0, p});
  }
  shard.covered = NormalizeIntervals(std::move(shard.covered));
  if (const obs::JsonValue* failed = cov->Find("failed_db_indices");
      failed != nullptr && failed->IsArray()) {
    for (const obs::JsonValue& index : failed->array) {
      shard.failed_indices.push_back(index.AsUint(0));
    }
  }
  return shard;
}

Status ApplyCheckpoint(const std::string& checkpoint_path,
                       ShardReport* shard) {
  WSV_ASSIGN_OR_RETURN(
      RecoveredCheckpoint loaded,
      ReadCheckpointWithRecovery(checkpoint_path, shard->fingerprint));
  Checkpoint cp = std::move(loaded.checkpoint);
  if (shard->fingerprint.empty()) shard->fingerprint = cp.fingerprint;
  if (cp.unit != shard->unit) {
    return Status::InvalidSpec("checkpoint '" + checkpoint_path +
                               "' covers unit '" + cp.unit +
                               "' but the shard's verdict covers '" +
                               shard->unit + "'");
  }
  for (const IndexInterval& iv : cp.covered) {
    AddInterval(&shard->covered, iv.first, iv.second);
  }
  for (uint64_t index : cp.failed_indices) {
    shard->failed_indices.push_back(index);
  }
  std::sort(shard->failed_indices.begin(), shard->failed_indices.end());
  shard->failed_indices.erase(
      std::unique(shard->failed_indices.begin(), shard->failed_indices.end()),
      shard->failed_indices.end());
  return Status::Ok();
}

std::string RenderMergeJson(const MergeReport& report, int exit_code) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("exit_code").Int(exit_code);
  w.Key("kind").String("merge");
  w.Key("verdict").String(report.verdict);
  w.Key("holds").Bool(report.verdict == "holds");
  w.Key("complete").Bool(report.complete);
  w.Key("counterexample").Bool(report.has_witness);
  if (report.has_witness) {
    w.Key("witness_db_index").Uint(report.witness_db_index);
    w.Key("witness_valuation_index").Uint(report.witness_valuation_index);
    w.Key("witness_shard").Uint(report.witness_shard);
  }
  if (!report.fingerprint.empty()) {
    w.Key("fingerprint").String(report.fingerprint);
  }
  w.Key("coverage").BeginObject();
  w.Key("unit").String(report.unit);
  w.Key("covered").BeginArray();
  for (const IndexInterval& iv : report.covered) {
    w.BeginArray().Uint(iv.first).Uint(iv.second).EndArray();
  }
  w.EndArray();
  w.Key("completed_prefix").Uint(ContiguousPrefix(report.covered));
  w.Key("gaps").BeginArray();
  for (const IndexInterval& iv : report.gaps) {
    w.BeginArray().Uint(iv.first).Uint(iv.second).EndArray();
  }
  w.EndArray();
  w.Key("overlap").Uint(report.overlap);
  w.Key("failed_db_indices").BeginArray();
  for (uint64_t index : report.failed_indices) w.Uint(index);
  w.EndArray();
  w.EndObject();
  w.Key("warnings").BeginArray();
  for (const std::string& warning : report.warnings) w.String(warning);
  w.EndArray();
  w.EndObject();
  return w.Take();
}

int MergeExitCode(const MergeReport& report) {
  if (report.verdict == "violated") return 3;
  if (report.verdict == "holds") return 0;
  return 4;
}

namespace {

/// Accumulated histogram across shards: counts bucket-wise summed, min of
/// mins / max of maxes over the shards that actually observed samples.
struct HistAccum {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = std::numeric_limits<uint64_t>::max();
  uint64_t max = 0;
  std::vector<uint64_t> buckets;
};

/// Per-shard digest for the straggler table. Wall is the shard's "total"
/// phase (every wsvc document has one when timing was on); utilization and
/// exec/lock-wait come from its worker ledgers.
struct ShardDigest {
  std::string source;
  uint64_t wall_ns = 0;
  uint64_t exec_ns = 0;
  uint64_t lock_wait_ns = 0;
  uint64_t worker_wall_ns = 0;
  uint64_t workers = 0;
};

uint64_t PhaseTotalNanos(const obs::JsonValue& doc) {
  // Schema v2: phases is a list of {path, total_ns, ...}; the root phase of
  // the main thread is "total". Fall back to the flat phase.total timer for
  // older shard documents.
  const obs::JsonValue* phases = doc.Find("phases");
  if (phases != nullptr && phases->IsArray()) {
    for (const obs::JsonValue& entry : phases->array) {
      const obs::JsonValue* path = entry.Find("path");
      if (path != nullptr && path->AsString("") == "total") {
        const obs::JsonValue* total = entry.Find("total_ns");
        if (total != nullptr) return total->AsUint(0);
      }
    }
  }
  const obs::JsonValue* timer = doc.FindPath({"timers_ns", "phase.total"});
  if (timer != nullptr) {
    const obs::JsonValue* total = timer->Find("total_ns");
    if (total != nullptr) return total->AsUint(0);
  }
  return 0;
}

}  // namespace

std::string RenderShardStatsRollup(
    const std::vector<std::string>& stats_texts,
    const std::vector<std::string>& sources) {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, std::pair<uint64_t, uint64_t>> timers;  // total, count
  std::map<std::string, HistAccum> histograms;
  std::vector<ShardDigest> digests;
  std::vector<double> worker_utilizations;
  uint64_t total_exec_ns = 0;
  uint64_t total_worker_wall_ns = 0;

  for (size_t i = 0; i < stats_texts.size(); ++i) {
    Result<obs::JsonValue> parsed = obs::JsonParse(stats_texts[i]);
    if (!parsed.ok()) continue;  // verdict merge already reported it
    const obs::JsonValue& doc = parsed.value();

    ShardDigest digest;
    digest.source = i < sources.size() ? sources[i] : "shard." + std::to_string(i);
    digest.wall_ns = PhaseTotalNanos(doc);

    const obs::JsonValue* shard_counters = doc.Find("counters");
    if (shard_counters != nullptr && shard_counters->IsObject()) {
      for (const auto& [name, value] : shard_counters->object) {
        counters[name] += value.AsUint(0);
      }
    }
    const obs::JsonValue* shard_timers = doc.Find("timers_ns");
    if (shard_timers != nullptr && shard_timers->IsObject()) {
      for (const auto& [name, value] : shard_timers->object) {
        const obs::JsonValue* total = value.Find("total_ns");
        const obs::JsonValue* count = value.Find("count");
        auto& slot = timers[name];
        slot.first += total != nullptr ? total->AsUint(0) : 0;
        slot.second += count != nullptr ? count->AsUint(0) : 0;
      }
    }
    const obs::JsonValue* shard_hists = doc.Find("histograms");
    if (shard_hists != nullptr && shard_hists->IsObject()) {
      for (const auto& [name, value] : shard_hists->object) {
        HistAccum& accum = histograms[name];
        uint64_t count = 0;
        if (const obs::JsonValue* v = value.Find("count")) count = v->AsUint(0);
        accum.count += count;
        if (const obs::JsonValue* v = value.Find("sum")) {
          accum.sum += v->AsUint(0);
        }
        if (count > 0) {
          if (const obs::JsonValue* v = value.Find("min")) {
            accum.min = std::min(accum.min, v->AsUint(accum.min));
          }
          if (const obs::JsonValue* v = value.Find("max")) {
            accum.max = std::max(accum.max, v->AsUint(0));
          }
        }
        const obs::JsonValue* buckets = value.Find("buckets");
        if (buckets != nullptr && buckets->IsArray()) {
          if (accum.buckets.size() < buckets->array.size()) {
            accum.buckets.resize(buckets->array.size(), 0);
          }
          for (size_t b = 0; b < buckets->array.size(); ++b) {
            accum.buckets[b] += buckets->array[b].AsUint(0);
          }
        }
      }
    }
    const obs::JsonValue* workers = doc.Find("workers");
    if (workers != nullptr && workers->IsObject()) {
      for (const auto& [name, ledger] : workers->object) {
        (void)name;
        uint64_t wall = 0, exec = 0, lock_wait = 0;
        if (const obs::JsonValue* v = ledger.Find("wall_ns")) wall = v->AsUint(0);
        if (const obs::JsonValue* v = ledger.Find("exec_ns")) exec = v->AsUint(0);
        if (const obs::JsonValue* v = ledger.Find("lock_wait_ns")) {
          lock_wait = v->AsUint(0);
        }
        digest.workers += 1;
        digest.worker_wall_ns += wall;
        digest.exec_ns += exec;
        digest.lock_wait_ns += lock_wait;
        if (wall > 0) {
          worker_utilizations.push_back(static_cast<double>(exec) /
                                        static_cast<double>(wall));
        }
      }
    }
    total_exec_ns += digest.exec_ns;
    total_worker_wall_ns += digest.worker_wall_ns;
    if (digest.wall_ns == 0) digest.wall_ns = digest.worker_wall_ns;
    digests.push_back(std::move(digest));
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("count").Uint(digests.size());

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).Uint(value);
  w.EndObject();

  w.Key("timers_ns").BeginObject();
  for (const auto& [name, slot] : timers) {
    w.Key(name).BeginObject();
    w.Key("total_ns").Uint(slot.first);
    w.Key("count").Uint(slot.second);
    w.EndObject();
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, accum] : histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(accum.count);
    w.Key("sum").Uint(accum.sum);
    w.Key("min").Uint(accum.count > 0 ? accum.min : 0);
    w.Key("max").Uint(accum.max);
    w.Key("buckets").BeginArray();
    for (uint64_t bucket : accum.buckets) w.Uint(bucket);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  // Utilization over every worker of every shard: the mean is exec-weighted
  // (total exec / total worker wall), min/max are per-worker extremes.
  w.Key("utilization").BeginObject();
  w.Key("workers").Uint(worker_utilizations.size());
  double mean = total_worker_wall_ns > 0
                    ? static_cast<double>(total_exec_ns) /
                          static_cast<double>(total_worker_wall_ns)
                    : 0.0;
  double lo = 0.0, hi = 0.0;
  if (!worker_utilizations.empty()) {
    auto [min_it, max_it] = std::minmax_element(worker_utilizations.begin(),
                                                worker_utilizations.end());
    lo = *min_it;
    hi = *max_it;
  }
  w.Key("mean").Double(mean);
  w.Key("min").Double(lo);
  w.Key("max").Double(hi);
  w.EndObject();

  // Per-shard table, merge-input order, and the straggler: the shard whose
  // wall clock bounds the whole sweep's latency.
  w.Key("per_shard").BeginArray();
  size_t straggler = digests.size();
  for (size_t i = 0; i < digests.size(); ++i) {
    const ShardDigest& digest = digests[i];
    if (straggler == digests.size() ||
        digest.wall_ns > digests[straggler].wall_ns) {
      straggler = i;
    }
    w.BeginObject();
    w.Key("source").String(digest.source);
    w.Key("wall_ns").Uint(digest.wall_ns);
    w.Key("exec_ns").Uint(digest.exec_ns);
    w.Key("lock_wait_ns").Uint(digest.lock_wait_ns);
    w.Key("workers").Uint(digest.workers);
    w.Key("utilization")
        .Double(digest.worker_wall_ns > 0
                    ? static_cast<double>(digest.exec_ns) /
                          static_cast<double>(digest.worker_wall_ns)
                    : 0.0);
    w.EndObject();
  }
  w.EndArray();
  if (straggler < digests.size()) {
    w.Key("straggler").BeginObject();
    w.Key("source").String(digests[straggler].source);
    w.Key("wall_ns").Uint(digests[straggler].wall_ns);
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

}  // namespace wsv::verifier
