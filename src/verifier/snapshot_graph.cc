#include "verifier/snapshot_graph.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timer.h"
#include "runtime/snapshot_view.h"

namespace wsv::verifier {

SnapshotGraph::SnapshotGraph(const runtime::TransitionGenerator* generator,
                             SnapshotNormalization normalization)
    : generator_(generator), normalization_(std::move(normalization)) {}

Result<SnapshotId> SnapshotGraph::Intern(runtime::Snapshot snap) {
  if (!normalization_.keep_mover) snap.mover = runtime::kNoMover;
  if (!normalization_.keep_flags) {
    snap.received.assign(snap.received.size(), false);
    snap.sent.assign(snap.sent.size(), false);
  }
  if (!normalization_.keep_actions) {
    for (runtime::PeerConfig& cfg : snap.peers) cfg.action.Clear();
  }
  if (!normalization_.keep_prev.empty()) {
    for (size_t p = 0; p < snap.peers.size(); ++p) {
      const std::vector<bool>& keep = normalization_.keep_prev[p];
      for (size_t r = 0; r < keep.size(); ++r) {
        if (!keep[r]) snap.peers[p].prev.relation(r).Clear();
      }
    }
  }
  auto it = ids_.find(snap);
  if (it != ids_.end()) {
    static obs::Counter& hits =
        obs::Registry::Global().counter("graph.intern_hits");
    hits.Add(1);
    return it->second;
  }
  SnapshotId id = static_cast<SnapshotId>(snapshots_.size());
  ids_.emplace(snap, id);
  snapshots_.push_back(std::move(snap));
  successors_.emplace_back();
  static obs::Counter& interned =
      obs::Registry::Global().counter("graph.snapshots");
  interned.Add(1);
  return id;
}

Result<const std::vector<SnapshotId>*> SnapshotGraph::Initials() {
  if (!initials_.has_value()) {
    WSV_ASSIGN_OR_RETURN(std::vector<runtime::Snapshot> snaps,
                         generator_->InitialSnapshots());
    std::vector<SnapshotId> ids;
    for (runtime::Snapshot& s : snaps) {
      WSV_ASSIGN_OR_RETURN(SnapshotId id, Intern(std::move(s)));
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    initials_ = std::move(ids);
  }
  return &*initials_;
}

Result<const std::vector<SnapshotId>*> SnapshotGraph::Successors(
    SnapshotId sid) {
  if (!successors_[sid].has_value()) {
    // Copy: Intern below may grow snapshots_ and invalidate references.
    runtime::Snapshot current = snapshots_[sid];
    WSV_ASSIGN_OR_RETURN(std::vector<runtime::Snapshot> succ,
                         generator_->Successors(current));
    std::vector<SnapshotId> ids;
    ids.reserve(succ.size());
    for (runtime::Snapshot& s : succ) {
      WSV_ASSIGN_OR_RETURN(SnapshotId id, Intern(std::move(s)));
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    transitions_ += ids.size();
    obs::Registry& registry = obs::Registry::Global();
    static obs::Counter& calls = registry.counter("graph.successor_calls");
    static obs::Counter& edges = registry.counter("graph.transitions");
    static obs::Histogram& fanout =
        registry.histogram("graph.successors_per_snapshot");
    calls.Add(1);
    edges.Add(ids.size());
    fanout.Record(ids.size());
    successors_[sid] = std::move(ids);
  }
  return &*successors_[sid];
}

Result<bool> SnapshotGraph::ExploreAll(size_t max_snapshots,
                                       RunControl* control) {
  obs::PhaseTimer phase("graph_expand");
  WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* inits, Initials());
  std::deque<SnapshotId> frontier(inits->begin(), inits->end());
  std::vector<bool> expanded;
  size_t expansions = 0;
  while (!frontier.empty()) {
    SnapshotId sid = frontier.front();
    frontier.pop_front();
    if (sid >= expanded.size()) expanded.resize(snapshots_.size(), false);
    if (expanded[sid]) continue;
    expanded[sid] = true;
    if ((++expansions & 0x3FF) == 0) {
      obs::ProgressMeter::Global().MaybeBeat();
      if (control != nullptr) WSV_RETURN_IF_ERROR(control->Check());
    }
    WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* succ, Successors(sid));
    for (SnapshotId next : *succ) {
      if (next >= expanded.size() || !expanded[next]) frontier.push_back(next);
    }
    if (snapshots_.size() > max_snapshots) return false;
  }
  fully_explored_ = true;
  return true;
}

fo::MapStructure SnapshotGraph::Structure(SnapshotId sid) const {
  return runtime::BuildPropertyStructure(generator_->composition(),
                                         generator_->databases(),
                                         snapshots_[sid],
                                         generator_->domain());
}

LeafCache::LeafCache(SnapshotGraph* graph, std::vector<fo::FormulaPtr> leaves,
                     const Interner* interner)
    : graph_(graph), leaves_(std::move(leaves)), evaluator_(interner) {
  leaf_vars_.reserve(leaves_.size());
  for (const fo::FormulaPtr& leaf : leaves_) {
    auto frees = leaf->FreeVariables();
    leaf_vars_.emplace_back(frees.begin(), frees.end());  // sets are sorted
  }
}

Result<const fo::ValuationSet*> LeafCache::Get(SnapshotId sid, size_t leaf) {
  if (sid >= cache_.size()) cache_.resize(sid + 1);
  if (cache_[sid].empty() && !leaves_.empty()) {
    ++misses_;
    obs::Registry& registry = obs::Registry::Global();
    static obs::Counter& misses = registry.counter("leafcache.misses");
    static obs::Counter& evals = registry.counter("leafcache.leaf_evals");
    misses.Add(1);
    evals.Add(leaves_.size());
    obs::PhaseTimer phase("leaf_eval");
    // Evaluate every leaf in one pass so the (relation-copying) snapshot
    // structure is built once and immediately discarded.
    fo::MapStructure structure = graph_->Structure(sid);
    cache_[sid].reserve(leaves_.size());
    for (const fo::FormulaPtr& formula : leaves_) {
      WSV_ASSIGN_OR_RETURN(fo::ValuationSet result,
                           evaluator_.Evaluate(formula, structure));
      cache_[sid].emplace_back(std::move(result));
    }
  } else {
    ++hits_;
    static obs::Counter& hits =
        obs::Registry::Global().counter("leafcache.hits");
    hits.Add(1);
  }
  return &*cache_[sid][leaf];
}

Result<const data::Relation*> LeafCache::EverSatisfied(size_t leaf) {
  if (ever_.size() < leaves_.size()) ever_.resize(leaves_.size());
  if (!ever_[leaf].has_value()) {
    data::Relation all(leaf_vars_[leaf].size());
    for (SnapshotId sid = 0; sid < graph_->size(); ++sid) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat, Get(sid, leaf));
      all = all.Union(sat->rows());
    }
    ever_[leaf] = std::move(all);
  }
  return &*ever_[leaf];
}

Result<const data::Relation*> LeafCache::AlwaysSatisfied(size_t leaf) {
  if (always_.size() < leaves_.size()) always_.resize(leaves_.size());
  if (!always_[leaf].has_value()) {
    data::Relation common(leaf_vars_[leaf].size());
    for (SnapshotId sid = 0; sid < graph_->size(); ++sid) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat, Get(sid, leaf));
      common = sid == 0 ? sat->rows() : common.Intersection(sat->rows());
      if (common.empty()) break;
    }
    always_[leaf] = std::move(common);
  }
  return &*always_[leaf];
}

}  // namespace wsv::verifier
