#include "verifier/snapshot_graph.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <unordered_map>
#include <utility>

#include "obs/lock_profile.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timer.h"
#include "runtime/snapshot_view.h"

namespace wsv::verifier {

SnapshotGraph::SnapshotGraph(const runtime::TransitionGenerator* generator,
                             SnapshotNormalization normalization)
    : generator_(generator), normalization_(std::move(normalization)) {
  for (Shard& shard : shards_) {
    shard = Shard(0, ShardHasher{this}, ShardEq{this});
  }
}

void SnapshotGraph::Normalize(runtime::Snapshot* snap) const {
  if (!normalization_.keep_mover) snap->mover = runtime::kNoMover;
  if (!normalization_.keep_flags) {
    snap->received.assign(snap->received.size(), false);
    snap->sent.assign(snap->sent.size(), false);
  }
  if (!normalization_.keep_actions) {
    for (runtime::PeerConfig& cfg : snap->peers) cfg.action.Clear();
  }
  if (!normalization_.keep_prev.empty()) {
    for (size_t p = 0; p < snap->peers.size(); ++p) {
      const std::vector<bool>& keep = normalization_.keep_prev[p];
      for (size_t r = 0; r < keep.size(); ++r) {
        if (!keep[r]) snap->peers[p].prev.relation(r).Clear();
      }
    }
  }
}

Result<SnapshotId> SnapshotGraph::Intern(runtime::Snapshot snap) {
  Normalize(&snap);
  size_t hash = runtime::SnapshotHash{}(snap);
  Shard& shard = shards_[hash % kShards];
  auto it = shard.find(Probe{hash, &snap});
  if (it != shard.end()) {
    static obs::Counter& hits =
        obs::Registry::Global().counter("graph.intern_hits");
    hits.Add(1);
    return *it;
  }
  SnapshotId id = static_cast<SnapshotId>(snapshots_.size());
  snapshots_.push_back(std::move(snap));
  hashes_.push_back(hash);
  shard.insert(id);
  successors_.emplace_back();
  static obs::Counter& interned =
      obs::Registry::Global().counter("graph.snapshots");
  interned.Add(1);
  return id;
}

Result<const std::vector<SnapshotId>*> SnapshotGraph::Initials() {
  if (!initials_.has_value()) {
    WSV_ASSIGN_OR_RETURN(std::vector<runtime::Snapshot> snaps,
                         generator_->InitialSnapshots());
    std::vector<SnapshotId> ids;
    for (runtime::Snapshot& s : snaps) {
      WSV_ASSIGN_OR_RETURN(SnapshotId id, Intern(std::move(s)));
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    initials_ = std::move(ids);
  }
  return &*initials_;
}

Result<const std::vector<SnapshotId>*> SnapshotGraph::Successors(
    SnapshotId sid) {
  if (!successors_[sid].has_value()) {
    // Copy: Intern below may grow snapshots_ and invalidate references.
    runtime::Snapshot current = snapshots_[sid];
    WSV_ASSIGN_OR_RETURN(std::vector<runtime::Snapshot> succ,
                         generator_->Successors(current));
    std::vector<SnapshotId> ids;
    ids.reserve(succ.size());
    for (runtime::Snapshot& s : succ) {
      WSV_ASSIGN_OR_RETURN(SnapshotId id, Intern(std::move(s)));
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    transitions_ += ids.size();
    obs::Registry& registry = obs::Registry::Global();
    static obs::Counter& calls = registry.counter("graph.successor_calls");
    static obs::Counter& edges = registry.counter("graph.transitions");
    static obs::Histogram& fanout =
        registry.histogram("graph.successors_per_snapshot");
    calls.Add(1);
    edges.Add(ids.size());
    fanout.Record(ids.size());
    successors_[sid] = std::move(ids);
  }
  return &*successors_[sid];
}

Result<bool> SnapshotGraph::ExploreAll(size_t max_snapshots,
                                       RunControl* control, ThreadPool* pool,
                                       size_t lanes) {
  obs::PhaseTimer phase("graph_expand");
  if (pool == nullptr || lanes <= 1) {
    return ExploreAllSerial(max_snapshots, control);
  }
  return ExploreAllParallel(max_snapshots, control, pool, lanes);
}

Result<bool> SnapshotGraph::ExploreAllSerial(size_t max_snapshots,
                                             RunControl* control) {
  WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* inits, Initials());
  std::deque<SnapshotId> frontier(inits->begin(), inits->end());
  std::vector<bool> expanded;
  size_t expansions = 0;
  while (!frontier.empty()) {
    SnapshotId sid = frontier.front();
    frontier.pop_front();
    if (sid >= expanded.size()) expanded.resize(snapshots_.size(), false);
    if (expanded[sid]) continue;
    expanded[sid] = true;
    if ((++expansions & 0x3FF) == 0) {
      obs::ProgressMeter::Global().MaybeBeat();
      if (control != nullptr) WSV_RETURN_IF_ERROR(control->Check());
    }
    WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* succ, Successors(sid));
    for (SnapshotId next : *succ) {
      if (next >= expanded.size() || !expanded[next]) frontier.push_back(next);
    }
    if (snapshots_.size() > max_snapshots) return false;
  }
  fully_explored_ = true;
  return true;
}

namespace {

/// One frontier node's expansion, computed concurrently: its normalized
/// successor snapshots with their content hashes, or the generator's error.
struct NodeExpansion {
  Status status = Status::Ok();
  std::vector<runtime::Snapshot> succ;
  std::vector<size_t> hash;
};

}  // namespace

Result<bool> SnapshotGraph::ExploreAllParallel(size_t max_snapshots,
                                               RunControl* control,
                                               ThreadPool* pool,
                                               size_t lanes) {
  WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* inits, Initials());
  std::vector<SnapshotId> frontier(inits->begin(), inits->end());

  while (!frontier.empty()) {
    const size_t n = frontier.size();

    // Compute phase: expand every frontier node concurrently. snapshots_ is
    // not mutated here, so workers read it without copies or locks; ids are
    // only assigned in the sequential merge below.
    std::vector<NodeExpansion> expansions(n);
    std::atomic<bool> stop_requested{false};
    obs::TimedMutex stop_mu{"graph.stop"};
    Status stop_status = Status::Ok();
    const size_t per_chunk = std::max<size_t>(1, std::min<size_t>(64, n / (lanes * 4) + 1));
    const size_t num_chunks = (n + per_chunk - 1) / per_chunk;
    ThreadPool::ParallelChunks(
        pool, lanes - 1, num_chunks, [&](size_t lane, size_t chunk) {
          const size_t begin = chunk * per_chunk;
          const size_t end = std::min(n, begin + per_chunk);
          for (size_t p = begin; p < end; ++p) {
            if (stop_requested.load(std::memory_order_relaxed)) return;
            if (control != nullptr && (p - begin) % 64 == 0) {
              if (lane == 0) obs::ProgressMeter::Global().MaybeBeat();
              Status status = control->Check();
              if (!status.ok()) {
                std::lock_guard<obs::TimedMutex> lock(stop_mu);
                if (stop_status.ok()) stop_status = std::move(status);
                stop_requested.store(true, std::memory_order_relaxed);
                return;
              }
            }
            NodeExpansion& out = expansions[p];
            auto succ = generator_->Successors(snapshots_[frontier[p]]);
            if (!succ.ok()) {
              out.status = succ.status();
              continue;
            }
            out.succ = std::move(succ).value();
            out.hash.reserve(out.succ.size());
            for (runtime::Snapshot& s : out.succ) {
              Normalize(&s);
              out.hash.push_back(runtime::SnapshotHash{}(s));
            }
          }
        });
    if (!stop_status.ok()) return stop_status;

    // Dedup pass A (parallel per shard): resolve every candidate successor
    // against its shard — either an already-interned id, or the globally
    // first candidate with identical content (its representative).
    size_t total = 0;
    for (const NodeExpansion& exp : expansions) total += exp.succ.size();
    // Flat candidate table: snapshot + hash pointers in global (frontier
    // node, successor) order — the order the serial BFS interns in.
    struct Candidate {
      runtime::Snapshot* snap;
      size_t hash;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(total);
    std::array<std::vector<uint32_t>, kShards> shard_candidates;
    for (NodeExpansion& exp : expansions) {
      for (size_t j = 0; j < exp.succ.size(); ++j) {
        shard_candidates[exp.hash[j] % kShards].push_back(
            static_cast<uint32_t>(candidates.size()));
        candidates.push_back(Candidate{&exp.succ[j], exp.hash[j]});
      }
    }
    constexpr SnapshotId kUnresolved = static_cast<SnapshotId>(-1);
    std::vector<SnapshotId> resolved(total, kUnresolved);
    std::vector<uint32_t> representative(total, 0);
    ThreadPool::ParallelChunks(
        pool, lanes - 1, kShards, [&](size_t, size_t shard_index) {
          const Shard& shard = shards_[shard_index];
          // Level-local dedup within the shard: candidate index keyed by
          // snapshot content, so later duplicates point at the first one.
          struct CandHasher {
            const std::vector<Candidate>* cands;
            size_t operator()(uint32_t g) const { return (*cands)[g].hash; }
          };
          struct CandEq {
            const std::vector<Candidate>* cands;
            bool operator()(uint32_t a, uint32_t b) const {
              return *(*cands)[a].snap == *(*cands)[b].snap;
            }
          };
          std::unordered_set<uint32_t, CandHasher, CandEq> fresh(
              0, CandHasher{&candidates}, CandEq{&candidates});
          for (uint32_t g : shard_candidates[shard_index]) {
            auto it = shard.find(Probe{candidates[g].hash, candidates[g].snap});
            if (it != shard.end()) {
              resolved[g] = *it;
              continue;
            }
            auto [pos, inserted] = fresh.insert(g);
            representative[g] = inserted ? g : *pos;
          }
        });

    // Merge pass B (sequential): assign ids in exact frontier order — the
    // same order the serial BFS interns in — so ids, counters, transitions,
    // and the budget cut-off are bit-for-bit identical to a serial run.
    obs::Registry& registry = obs::Registry::Global();
    static obs::Counter& intern_hits = registry.counter("graph.intern_hits");
    static obs::Counter& interned = registry.counter("graph.snapshots");
    static obs::Counter& calls = registry.counter("graph.successor_calls");
    static obs::Counter& edges = registry.counter("graph.transitions");
    static obs::Histogram& fanout =
        registry.histogram("graph.successors_per_snapshot");
    std::vector<SnapshotId> assigned(total, kUnresolved);
    std::vector<SnapshotId> next_frontier;
    for (size_t p = 0, g = 0; p < n; ++p) {
      NodeExpansion& exp = expansions[p];
      WSV_RETURN_IF_ERROR(exp.status);
      std::vector<SnapshotId> ids;
      ids.reserve(exp.succ.size());
      for (size_t j = 0; j < exp.succ.size(); ++j, ++g) {
        SnapshotId id;
        if (resolved[g] != kUnresolved) {
          id = resolved[g];
          intern_hits.Add(1);
        } else if (representative[g] == g) {
          id = static_cast<SnapshotId>(snapshots_.size());
          snapshots_.push_back(std::move(exp.succ[j]));
          hashes_.push_back(exp.hash[j]);
          shards_[exp.hash[j] % kShards].insert(id);
          successors_.emplace_back();
          interned.Add(1);
          next_frontier.push_back(id);
          assigned[g] = id;
        } else {
          id = assigned[representative[g]];
          intern_hits.Add(1);
        }
        ids.push_back(id);
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      transitions_ += ids.size();
      calls.Add(1);
      edges.Add(ids.size());
      fanout.Record(ids.size());
      successors_[frontier[p]] = std::move(ids);
      if (snapshots_.size() > max_snapshots) return false;
    }

    obs::ProgressMeter::Global().MaybeBeat();
    if (control != nullptr) WSV_RETURN_IF_ERROR(control->Check());
    frontier = std::move(next_frontier);
  }
  fully_explored_ = true;
  return true;
}

fo::MapStructure SnapshotGraph::Structure(SnapshotId sid) const {
  return runtime::BuildPropertyStructure(generator_->composition(),
                                         generator_->databases(),
                                         snapshots_[sid],
                                         generator_->domain());
}

LeafCache::LeafCache(SnapshotGraph* graph, std::vector<fo::FormulaPtr> leaves,
                     const Interner* interner)
    : graph_(graph), leaves_(std::move(leaves)), evaluator_(interner) {
  leaf_vars_.reserve(leaves_.size());
  for (const fo::FormulaPtr& leaf : leaves_) {
    auto frees = leaf->FreeVariables();
    leaf_vars_.emplace_back(frees.begin(), frees.end());  // sets are sorted
  }
}

Status LeafCache::EvaluateSnapshot(SnapshotId sid) {
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter& misses = registry.counter("leafcache.misses");
  static obs::Counter& evals = registry.counter("leafcache.leaf_evals");
  misses.Add(1);
  evals.Add(leaves_.size());
  obs::PhaseTimer phase("leaf_eval");
  // Evaluate every leaf in one pass so the (relation-copying) snapshot
  // structure is built once and immediately discarded.
  fo::MapStructure structure = graph_->Structure(sid);
  cache_[sid].reserve(leaves_.size());
  for (const fo::FormulaPtr& formula : leaves_) {
    auto result = evaluator_.Evaluate(formula, structure);
    if (!result.ok()) return result.status();
    cache_[sid].emplace_back(std::move(result).value());
  }
  return Status::Ok();
}

Result<const fo::ValuationSet*> LeafCache::Get(SnapshotId sid, size_t leaf) {
  if (sid >= cache_.size()) cache_.resize(sid + 1);
  if (cache_[sid].empty() && !leaves_.empty()) {
    WSV_RETURN_IF_ERROR(EvaluateSnapshot(sid));
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& hits =
        obs::Registry::Global().counter("leafcache.hits");
    hits.Add(1);
  }
  return &*cache_[sid][leaf];
}

Status LeafCache::SealAndPopulate(ThreadPool* pool, size_t lanes) {
  if (leaves_.empty()) return Status::Ok();
  const size_t n = graph_->size();
  if (cache_.size() < n) cache_.resize(n);
  const size_t per_chunk = 16;
  const size_t num_chunks = (n + per_chunk - 1) / per_chunk;
  obs::TimedMutex error_mu{"leafcache.seal"};
  SnapshotId error_sid = 0;
  Status error = Status::Ok();
  ThreadPool::ParallelChunks(
      pool, lanes > 0 ? lanes - 1 : 0, num_chunks,
      [&](size_t, size_t chunk) {
        const size_t begin = chunk * per_chunk;
        const size_t end = std::min(n, begin + per_chunk);
        for (size_t sid = begin; sid < end; ++sid) {
          if (!cache_[sid].empty()) continue;  // already evaluated lazily
          Status status = EvaluateSnapshot(static_cast<SnapshotId>(sid));
          if (!status.ok()) {
            std::lock_guard<obs::TimedMutex> lock(error_mu);
            if (error.ok() || sid < error_sid) {
              error = std::move(status);
              error_sid = static_cast<SnapshotId>(sid);
            }
            return;
          }
        }
      });
  return error;
}

Result<const data::Relation*> LeafCache::EverSatisfied(size_t leaf) {
  if (ever_.size() < leaves_.size()) ever_.resize(leaves_.size());
  if (!ever_[leaf].has_value()) {
    data::Relation all(leaf_vars_[leaf].size());
    for (SnapshotId sid = 0; sid < graph_->size(); ++sid) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat, Get(sid, leaf));
      all = all.Union(sat->rows());
    }
    ever_[leaf] = std::move(all);
  }
  return &*ever_[leaf];
}

Result<const data::Relation*> LeafCache::AlwaysSatisfied(size_t leaf) {
  if (always_.size() < leaves_.size()) always_.resize(leaves_.size());
  if (!always_[leaf].has_value()) {
    data::Relation common(leaf_vars_[leaf].size());
    for (SnapshotId sid = 0; sid < graph_->size(); ++sid) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat, Get(sid, leaf));
      common = sid == 0 ? sat->rows() : common.Intersection(sat->rows());
      if (common.empty()) break;
    }
    always_[leaf] = std::move(common);
  }
  return &*always_[leaf];
}

}  // namespace wsv::verifier
