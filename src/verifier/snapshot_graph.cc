#include "verifier/snapshot_graph.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <utility>

#include "obs/lock_profile.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timer.h"
#include "runtime/snapshot_view.h"

namespace wsv::verifier {

SnapshotGraph::SnapshotGraph(const runtime::TransitionGenerator* generator,
                             SnapshotNormalization normalization)
    : generator_(generator),
      normalization_(std::move(normalization)),
      codec_(&generator->composition()) {}

void SnapshotGraph::Normalize(runtime::Snapshot* snap) const {
  if (!normalization_.keep_mover) snap->mover = runtime::kNoMover;
  if (!normalization_.keep_flags) {
    snap->received.assign(snap->received.size(), false);
    snap->sent.assign(snap->sent.size(), false);
  }
  if (!normalization_.keep_actions) {
    for (runtime::PeerConfig& cfg : snap->peers) cfg.action.Clear();
  }
  if (!normalization_.keep_prev.empty()) {
    for (size_t p = 0; p < snap->peers.size(); ++p) {
      const std::vector<bool>& keep = normalization_.keep_prev[p];
      for (size_t r = 0; r < keep.size(); ++r) {
        if (!keep[r]) snap->peers[p].prev.relation(r).Clear();
      }
    }
  }
}

SnapshotId SnapshotGraph::InternSpan(const uint32_t* words, uint32_t count,
                                     size_t hash) {
  SnapshotId found = intern_.Find(hash, [&](uint32_t id) {
    return flats_[id] == runtime::FlatSnapshot{words, count};
  });
  if (found != FlatIdSet::kEmpty) {
    static obs::Counter& hits =
        obs::Registry::Global().counter("graph.intern_hits");
    hits.Add(1);
    return found;
  }
  SnapshotId id = static_cast<SnapshotId>(flats_.size());
  flats_.push_back(runtime::FlatSnapshot{arena_.CopyWords(words, count), count});
  hashes_.push_back(hash);
  intern_.Insert(hash, id);
  successors_.emplace_back();
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter& interned = registry.counter("graph.snapshots");
  static obs::Counter& arena_bytes = registry.counter("graph.arena_bytes");
  interned.Add(1);
  arena_bytes.Add(count * sizeof(uint32_t));
  return id;
}

SnapshotId SnapshotGraph::Intern(runtime::Snapshot& snap) {
  Normalize(&snap);
  codec_.Encode(snap, &encode_buf_);
  static obs::Counter& encodes =
      obs::Registry::Global().counter("graph.encode");
  encodes.Add(1);
  size_t hash =
      runtime::HashFlatSnapshot(encode_buf_.data(), encode_buf_.size());
  return InternSpan(encode_buf_.data(),
                    static_cast<uint32_t>(encode_buf_.size()), hash);
}

Result<const std::vector<SnapshotId>*> SnapshotGraph::Initials() {
  if (!initials_.has_value()) {
    WSV_ASSIGN_OR_RETURN(std::vector<runtime::Snapshot> snaps,
                         generator_->InitialSnapshots());
    std::vector<SnapshotId> ids;
    for (runtime::Snapshot& s : snaps) ids.push_back(Intern(s));
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    initials_ = std::move(ids);
  }
  return &*initials_;
}

Result<const std::vector<SnapshotId>*> SnapshotGraph::Successors(
    SnapshotId sid) {
  if (!successors_[sid].has_value()) {
    // Decode into the reusable scratch snapshot: the flat span is
    // arena-stable, so unlike the old object store no defensive copy is
    // needed before Intern below grows the graph.
    codec_.Decode(flats_[sid], &decode_scratch_);
    WSV_ASSIGN_OR_RETURN(std::vector<runtime::Snapshot> succ,
                         generator_->Successors(decode_scratch_));
    std::vector<SnapshotId> ids;
    ids.reserve(succ.size());
    for (runtime::Snapshot& s : succ) ids.push_back(Intern(s));
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    transitions_ += ids.size();
    obs::Registry& registry = obs::Registry::Global();
    static obs::Counter& calls = registry.counter("graph.successor_calls");
    static obs::Counter& edges = registry.counter("graph.transitions");
    static obs::Histogram& fanout =
        registry.histogram("graph.successors_per_snapshot");
    calls.Add(1);
    edges.Add(ids.size());
    fanout.Record(ids.size());
    successors_[sid] = std::move(ids);
  }
  return &*successors_[sid];
}

Result<bool> SnapshotGraph::ExploreAll(size_t max_snapshots,
                                       RunControl* control, ThreadPool* pool,
                                       size_t lanes) {
  obs::PhaseTimer phase("graph_expand");
  if (pool == nullptr || lanes <= 1) {
    return ExploreAllSerial(max_snapshots, control);
  }
  return ExploreAllParallel(max_snapshots, control, pool, lanes);
}

Result<bool> SnapshotGraph::ExploreAllSerial(size_t max_snapshots,
                                             RunControl* control) {
  WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* inits, Initials());
  std::deque<SnapshotId> frontier(inits->begin(), inits->end());
  std::vector<bool> expanded;
  size_t expansions = 0;
  while (!frontier.empty()) {
    SnapshotId sid = frontier.front();
    frontier.pop_front();
    if (sid >= expanded.size()) expanded.resize(flats_.size(), false);
    if (expanded[sid]) continue;
    expanded[sid] = true;
    if ((++expansions & 0x3FF) == 0) {
      obs::ProgressMeter::Global().MaybeBeat();
      if (control != nullptr) WSV_RETURN_IF_ERROR(control->Check());
    }
    WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* succ, Successors(sid));
    for (SnapshotId next : *succ) {
      if (next >= expanded.size() || !expanded[next]) frontier.push_back(next);
    }
    if (flats_.size() > max_snapshots) return false;
  }
  fully_explored_ = true;
  return true;
}

namespace {

/// One frontier node's expansion, computed concurrently: its successors'
/// canonical encodings (spans into the expanding lane's scratch arena) with
/// their hashes, or the generator's error. The Snapshot objects themselves
/// are dropped inside the compute phase — only the flat spans survive to
/// the merge.
struct NodeExpansion {
  Status status = Status::Ok();
  std::vector<runtime::FlatSnapshot> flat;
  std::vector<size_t> hash;
};

/// Per-lane scratch reused across every frontier node the lane expands (and
/// across BFS levels): the decoded frontier snapshot, the encode buffer,
/// and the arena holding this level's candidate spans. Resetting the arena
/// per level recycles its chunks, so steady-state expansion allocates
/// nothing for the ~16x of candidates that end up duplicates.
struct LaneScratch {
  runtime::Snapshot snap;
  std::vector<uint32_t> encode;
  Arena arena;
};

}  // namespace

Result<bool> SnapshotGraph::ExploreAllParallel(size_t max_snapshots,
                                               RunControl* control,
                                               ThreadPool* pool,
                                               size_t lanes) {
  WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* inits, Initials());
  std::vector<SnapshotId> frontier(inits->begin(), inits->end());
  std::vector<LaneScratch> scratch(lanes);

  while (!frontier.empty()) {
    const size_t n = frontier.size();

    // Compute phase: expand every frontier node concurrently. The graph is
    // not mutated here — workers read stable flat spans, decode into their
    // lane scratch, and encode candidates into their lane arena; ids are
    // only assigned in the sequential merge below.
    std::vector<NodeExpansion> expansions(n);
    std::atomic<bool> stop_requested{false};
    obs::TimedMutex stop_mu{"graph.stop"};
    Status stop_status = Status::Ok();
    for (LaneScratch& s : scratch) s.arena.Reset();
    const size_t per_chunk =
        std::max<size_t>(1, std::min<size_t>(64, n / (lanes * 4) + 1));
    const size_t num_chunks = (n + per_chunk - 1) / per_chunk;
    ThreadPool::ParallelChunks(
        pool, lanes - 1, num_chunks, [&](size_t lane, size_t chunk) {
          LaneScratch& lane_scratch = scratch[lane];
          const size_t begin = chunk * per_chunk;
          const size_t end = std::min(n, begin + per_chunk);
          for (size_t p = begin; p < end; ++p) {
            if (stop_requested.load(std::memory_order_relaxed)) return;
            if (control != nullptr && (p - begin) % 64 == 0) {
              if (lane == 0) obs::ProgressMeter::Global().MaybeBeat();
              Status status = control->Check();
              if (!status.ok()) {
                std::lock_guard<obs::TimedMutex> lock(stop_mu);
                if (stop_status.ok()) stop_status = std::move(status);
                stop_requested.store(true, std::memory_order_relaxed);
                return;
              }
            }
            NodeExpansion& out = expansions[p];
            codec_.Decode(flats_[frontier[p]], &lane_scratch.snap);
            auto succ = generator_->Successors(lane_scratch.snap);
            if (!succ.ok()) {
              out.status = succ.status();
              continue;
            }
            out.flat.reserve(succ.value().size());
            out.hash.reserve(succ.value().size());
            for (runtime::Snapshot& s : succ.value()) {
              Normalize(&s);
              codec_.Encode(s, &lane_scratch.encode);
              const uint32_t* span = lane_scratch.arena.CopyWords(
                  lane_scratch.encode.data(), lane_scratch.encode.size());
              out.flat.push_back(runtime::FlatSnapshot{
                  span, static_cast<uint32_t>(lane_scratch.encode.size())});
              out.hash.push_back(runtime::HashFlatSnapshot(
                  lane_scratch.encode.data(), lane_scratch.encode.size()));
            }
          }
        });
    if (!stop_status.ok()) return stop_status;

    // Resolve pass (parallel): probe every candidate against the interned
    // set as it stood before this level. Hits are final (existing ids never
    // change); misses are re-probed during the merge, which is the only
    // place the table grows.
    size_t total = 0;
    for (const NodeExpansion& exp : expansions) total += exp.flat.size();
    struct Candidate {
      runtime::FlatSnapshot flat;
      size_t hash;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(total);
    for (NodeExpansion& exp : expansions) {
      for (size_t j = 0; j < exp.flat.size(); ++j) {
        candidates.push_back(Candidate{exp.flat[j], exp.hash[j]});
      }
    }
    static obs::Counter& encodes =
        obs::Registry::Global().counter("graph.encode");
    encodes.Add(total);
    std::vector<SnapshotId> resolved(total, FlatIdSet::kEmpty);
    const size_t resolve_chunk = 1024;
    const size_t resolve_chunks = (total + resolve_chunk - 1) / resolve_chunk;
    ThreadPool::ParallelChunks(
        pool, lanes - 1, resolve_chunks, [&](size_t, size_t chunk) {
          const size_t begin = chunk * resolve_chunk;
          const size_t end = std::min(total, begin + resolve_chunk);
          for (size_t g = begin; g < end; ++g) {
            resolved[g] = intern_.Find(candidates[g].hash, [&](uint32_t id) {
              return flats_[id] == candidates[g].flat;
            });
          }
        });

    // Merge pass (sequential): assign ids in exact frontier order — the
    // same order the serial BFS interns in — so ids, counters, transitions,
    // and the budget cut-off are bit-for-bit identical to a serial run.
    // Unresolved candidates re-probe the (now growing) table, which both
    // dedups within the level and copies each winner's span into the
    // persistent arena exactly once.
    obs::Registry& registry = obs::Registry::Global();
    static obs::Counter& intern_hits = registry.counter("graph.intern_hits");
    static obs::Counter& calls = registry.counter("graph.successor_calls");
    static obs::Counter& edges = registry.counter("graph.transitions");
    static obs::Histogram& fanout =
        registry.histogram("graph.successors_per_snapshot");
    std::vector<SnapshotId> next_frontier;
    const size_t before_level = flats_.size();
    for (size_t p = 0, g = 0; p < n; ++p) {
      NodeExpansion& exp = expansions[p];
      WSV_RETURN_IF_ERROR(exp.status);
      std::vector<SnapshotId> ids;
      ids.reserve(exp.flat.size());
      for (size_t j = 0; j < exp.flat.size(); ++j, ++g) {
        SnapshotId id = resolved[g];
        if (id != FlatIdSet::kEmpty) {
          intern_hits.Add(1);
        } else {
          id = InternSpan(candidates[g].flat.data, candidates[g].flat.size,
                          candidates[g].hash);
        }
        ids.push_back(id);
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      transitions_ += ids.size();
      calls.Add(1);
      edges.Add(ids.size());
      fanout.Record(ids.size());
      successors_[frontier[p]] = std::move(ids);
      if (flats_.size() > max_snapshots) return false;
    }
    next_frontier.reserve(flats_.size() - before_level);
    for (size_t id = before_level; id < flats_.size(); ++id) {
      next_frontier.push_back(static_cast<SnapshotId>(id));
    }

    obs::ProgressMeter::Global().MaybeBeat();
    if (control != nullptr) WSV_RETURN_IF_ERROR(control->Check());
    frontier = std::move(next_frontier);
  }
  fully_explored_ = true;
  return true;
}

fo::MapStructure SnapshotGraph::Structure(SnapshotId sid) const {
  return runtime::BuildPropertyStructure(generator_->composition(),
                                         generator_->databases(), codec_,
                                         flats_[sid], generator_->domain());
}

LeafCache::LeafCache(SnapshotGraph* graph, std::vector<fo::FormulaPtr> leaves,
                     const Interner* interner)
    : graph_(graph), leaves_(std::move(leaves)), evaluator_(interner) {
  leaf_vars_.reserve(leaves_.size());
  for (const fo::FormulaPtr& leaf : leaves_) {
    auto frees = leaf->FreeVariables();
    leaf_vars_.emplace_back(frees.begin(), frees.end());  // sets are sorted
  }
}

Status LeafCache::EvaluateSnapshot(SnapshotId sid) {
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter& misses = registry.counter("leafcache.misses");
  static obs::Counter& evals = registry.counter("leafcache.leaf_evals");
  misses.Add(1);
  evals.Add(leaves_.size());
  obs::PhaseTimer phase("leaf_eval");
  // Evaluate every leaf in one pass so the (relation-copying) snapshot
  // structure is built once and immediately discarded.
  fo::MapStructure structure = graph_->Structure(sid);
  cache_[sid].reserve(leaves_.size());
  for (const fo::FormulaPtr& formula : leaves_) {
    auto result = evaluator_.Evaluate(formula, structure);
    if (!result.ok()) return result.status();
    cache_[sid].emplace_back(std::move(result).value());
  }
  return Status::Ok();
}

Result<const fo::ValuationSet*> LeafCache::Get(SnapshotId sid, size_t leaf) {
  if (sid >= cache_.size()) cache_.resize(sid + 1);
  if (cache_[sid].empty() && !leaves_.empty()) {
    WSV_RETURN_IF_ERROR(EvaluateSnapshot(sid));
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& hits =
        obs::Registry::Global().counter("leafcache.hits");
    hits.Add(1);
  }
  return &*cache_[sid][leaf];
}

Result<const std::vector<std::optional<fo::ValuationSet>>*> LeafCache::GetAll(
    SnapshotId sid) {
  if (sid >= cache_.size()) cache_.resize(sid + 1);
  if (cache_[sid].empty() && !leaves_.empty()) {
    WSV_RETURN_IF_ERROR(EvaluateSnapshot(sid));
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& hits =
        obs::Registry::Global().counter("leafcache.hits");
    hits.Add(1);
  }
  return &cache_[sid];
}

Status LeafCache::SealAndPopulate(ThreadPool* pool, size_t lanes) {
  if (leaves_.empty()) return Status::Ok();
  const size_t n = graph_->size();
  if (cache_.size() < n) cache_.resize(n);
  const size_t per_chunk = 16;
  const size_t num_chunks = (n + per_chunk - 1) / per_chunk;
  obs::TimedMutex error_mu{"leafcache.seal"};
  SnapshotId error_sid = 0;
  Status error = Status::Ok();
  ThreadPool::ParallelChunks(
      pool, lanes > 0 ? lanes - 1 : 0, num_chunks,
      [&](size_t, size_t chunk) {
        const size_t begin = chunk * per_chunk;
        const size_t end = std::min(n, begin + per_chunk);
        for (size_t sid = begin; sid < end; ++sid) {
          if (!cache_[sid].empty()) continue;  // already evaluated lazily
          Status status = EvaluateSnapshot(static_cast<SnapshotId>(sid));
          if (!status.ok()) {
            std::lock_guard<obs::TimedMutex> lock(error_mu);
            if (error.ok() || sid < error_sid) {
              error = std::move(status);
              error_sid = static_cast<SnapshotId>(sid);
            }
            return;
          }
        }
      });
  return error;
}

Result<const data::Relation*> LeafCache::EverSatisfied(size_t leaf) {
  if (ever_.size() < leaves_.size()) ever_.resize(leaves_.size());
  if (!ever_[leaf].has_value()) {
    data::Relation all(leaf_vars_[leaf].size());
    for (SnapshotId sid = 0; sid < graph_->size(); ++sid) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat, Get(sid, leaf));
      all = all.Union(sat->rows());
    }
    ever_[leaf] = std::move(all);
  }
  return &*ever_[leaf];
}

Result<const data::Relation*> LeafCache::AlwaysSatisfied(size_t leaf) {
  if (always_.size() < leaves_.size()) always_.resize(leaves_.size());
  if (!always_[leaf].has_value()) {
    data::Relation common(leaf_vars_[leaf].size());
    for (SnapshotId sid = 0; sid < graph_->size(); ++sid) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat, Get(sid, leaf));
      common = sid == 0 ? sat->rows() : common.Intersection(sat->rows());
      if (common.empty()) break;
    }
    always_[leaf] = std::move(common);
  }
  return &*always_[leaf];
}

}  // namespace wsv::verifier
