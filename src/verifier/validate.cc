#include "verifier/validate.h"

namespace wsv::verifier {

namespace {

Status ValidateRec(const spec::Composition& comp, const fo::FormulaPtr& f) {
  if (f->kind() == fo::FormulaKind::kAtom) {
    size_t arity = comp.ArityOfQualified(f->relation());
    if (arity == data::Schema::kNpos) {
      return Status::NotFound(
          "property references unknown relation '" + f->relation() +
          "' (peer relations must be qualified as Peer.relation; "
          "environment queue views as env.queue)");
    }
    if (arity != f->terms().size()) {
      return Status::InvalidSpec(
          "property atom " + f->ToString() + " has " +
          std::to_string(f->terms().size()) + " argument(s) but '" +
          f->relation() + "' has arity " + std::to_string(arity));
    }
    return Status::Ok();
  }
  for (const fo::FormulaPtr& c : f->children()) {
    WSV_RETURN_IF_ERROR(ValidateRec(comp, c));
  }
  return Status::Ok();
}

}  // namespace

Status ValidateFormulaSchema(const spec::Composition& comp,
                             const fo::FormulaPtr& formula) {
  return ValidateRec(comp, formula);
}

Status ValidateLtlSchema(const spec::Composition& comp,
                         const ltl::LtlPtr& formula) {
  std::vector<fo::FormulaPtr> leaves;
  formula->CollectLeaves(leaves);
  for (const fo::FormulaPtr& leaf : leaves) {
    WSV_RETURN_IF_ERROR(ValidateFormulaSchema(comp, leaf));
  }
  return Status::Ok();
}

Status ValidateProperty(const spec::Composition& comp,
                        const ltl::Property& property) {
  return ValidateLtlSchema(comp, property.formula());
}

}  // namespace wsv::verifier
