#ifndef WSVERIFY_VERIFIER_CHECKPOINT_H_
#define WSVERIFY_VERIFIER_CHECKPOINT_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/run_control.h"
#include "common/status.h"

namespace wsv::verifier {

/// Persistent progress of a database sweep, keyed to the deterministic
/// enumeration order of DatabaseEnumerator. `completed_prefix` is the
/// high-water mark: every database index in [0, completed_prefix) was
/// either fully checked (no violation) or recorded in `failed_indices`.
/// Resuming a sweep from a checkpoint fast-forwards the enumerator past
/// that prefix, so the resumed run's verdict, witness index and lasso are
/// bit-for-bit what an uninterrupted run would have produced.
struct Checkpoint {
  /// Guards against resuming with a different spec/property/options; the
  /// reader rejects a mismatch. Empty disables the check.
  std::string fingerprint;
  uint64_t completed_prefix = 0;
  /// Database indices (all < completed_prefix) whose checks failed hard and
  /// were skipped under --on-db-error skip.
  std::vector<uint64_t> failed_indices;
  /// Databases completed at write time, including out-of-order completions
  /// ahead of the prefix (informational aggregate; >= completed_prefix
  /// minus failures only transiently during a parallel sweep).
  uint64_t databases_completed = 0;
  /// Why the writing run stopped; "in-progress" for periodic mid-run
  /// checkpoints.
  std::string stop_reason = "in-progress";
};

/// Atomically persists `cp` to `path`: the document is written to
/// "<path>.tmp" and renamed over the target, so readers never observe a
/// torn file and a crash mid-write leaves the previous checkpoint intact.
Status WriteCheckpoint(const std::string& path, const Checkpoint& cp);

/// Parses a checkpoint written by WriteCheckpoint. Corrupted, truncated
/// (missing the trailing "end" marker) or wrong-version files are rejected
/// with kParseError; when `expected_fingerprint` is non-empty, a mismatch
/// is rejected with kInvalidSpec.
Result<Checkpoint> ReadCheckpoint(const std::string& path,
                                  const std::string& expected_fingerprint);

/// FNV-1a-64 over the concatenation of `parts` (length-prefixed, so part
/// boundaries are unambiguous), rendered as 16 hex digits. Used to
/// fingerprint (spec text, property, enumeration-affecting options).
std::string FingerprintParts(std::initializer_list<std::string_view> parts);

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_CHECKPOINT_H_
