#ifndef WSVERIFY_VERIFIER_CHECKPOINT_H_
#define WSVERIFY_VERIFIER_CHECKPOINT_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/run_control.h"
#include "common/status.h"

namespace wsv::verifier {

/// Half-open [lo, hi) interval of the deterministic enumeration order.
using IndexInterval = std::pair<uint64_t, uint64_t>;

/// Sorts, drops empty intervals, and merges overlapping/adjacent ones, so
/// the result is the canonical disjoint representation of the same index
/// set. Every helper below expects (and every producer emits) this form.
std::vector<IndexInterval> NormalizeIntervals(std::vector<IndexInterval> set);

/// Adds [lo, hi) to a normalized set, keeping it normalized.
void AddInterval(std::vector<IndexInterval>* set, uint64_t lo, uint64_t hi);

/// True when `index` lies inside some interval of the normalized set.
bool IntervalsContain(const std::vector<IndexInterval>& set, uint64_t index);

/// The set restricted to [lo, hi) (used to cap a violated run's coverage at
/// the witness index so a resume re-finds it).
std::vector<IndexInterval> IntersectIntervals(
    const std::vector<IndexInterval>& set, uint64_t lo, uint64_t hi);

/// Length of the contiguous covered run starting at index 0 — the v1
/// completed-prefix view of an interval set (0 when index 0 is uncovered).
uint64_t ContiguousPrefix(const std::vector<IndexInterval>& set);

/// The uncovered holes of [0, end) relative to the normalized set — what a
/// merge must report as gaps before a "holds" verdict is trustworthy.
std::vector<IndexInterval> IntervalGaps(const std::vector<IndexInterval>& set,
                                        uint64_t end);

/// Where a resumed run of work unit [lo, ...) should start: the end of the
/// covered interval containing `lo`, or `lo` itself when it is uncovered.
/// (The sweep dispatches one contiguous segment per leg, so covered
/// intervals beyond the first hole are conservatively re-checked.)
uint64_t ResumeStart(const std::vector<IndexInterval>& set, uint64_t lo);

/// Renders "lo:hi,lo:hi" (or "-" for the empty set); the inverse of
/// ParseIntervals. Used by the checkpoint format and diagnostics.
std::string IntervalsToString(const std::vector<IndexInterval>& set);

/// Parses IntervalsToString output; rejects malformed text or lo > hi.
Result<std::vector<IndexInterval>> ParseIntervals(const std::string& text);

/// Persistent progress of a database (or valuation) sweep, keyed to the
/// deterministic enumeration order. `covered` is a normalized set of
/// disjoint [lo, hi) intervals: every index inside it was either fully
/// checked (no violation) or recorded in `failed_indices`. A v1 checkpoint
/// recorded only the contiguous prefix [0, completed_prefix); the reader
/// lifts such files into the interval form, so prefix-style checkpoints
/// round-trip losslessly. Resuming fast-forwards the enumerator past the
/// covered run containing the shard's range start, so the resumed run's
/// verdict, witness index and lasso are bit-for-bit what an uninterrupted
/// run over the same range would have produced.
struct Checkpoint {
  /// Guards against resuming with a different spec/property/options; the
  /// reader rejects a mismatch. Empty disables the check.
  std::string fingerprint;
  /// Disjoint covered intervals (normalized). Writers may instead leave
  /// this empty and set completed_prefix; WriteCheckpoint then persists
  /// [0, completed_prefix).
  std::vector<IndexInterval> covered;
  /// Derived v1 view: the contiguous covered run starting at index 0.
  /// Maintained by WriteCheckpoint/ReadCheckpoint; prefer `covered`.
  uint64_t completed_prefix = 0;
  /// Enumeration indices (inside `covered`) whose checks failed hard and
  /// were skipped under --on-db-error skip.
  std::vector<uint64_t> failed_indices;
  /// Work units completed at write time, including out-of-order completions
  /// ahead of the covered intervals (informational aggregate).
  uint64_t databases_completed = 0;
  /// Why the writing run stopped; "in-progress" for periodic mid-run
  /// checkpoints, "range-end" for a shard that finished its --db-range.
  std::string stop_reason = "in-progress";
  /// What the covered indices enumerate: "database" for sweep checkpoints,
  /// "valuation" for pinned-database valuation shards.
  std::string unit = "database";
};

/// Atomically and durably persists `cp` to `path`. The document is written
/// to "<path>.tmp" (any stale temp from a crashed writer is removed first),
/// fsynced, renamed over the target, and the containing directory is
/// fsynced so the publish survives power loss. The previous good checkpoint
/// is kept as "<path>.bak" for recovery. Writes format version 3: the v2
/// interval coverage plus a CRC32 content trailer, so a torn or bit-flipped
/// file is detected on read instead of being trusted.
Status WriteCheckpoint(const std::string& path, const Checkpoint& cp);

/// Parses a checkpoint written by WriteCheckpoint — version 3, a v2
/// interval file, or a v1 prefix-style file, which is lifted to
/// covered = [0, completed_prefix). Corrupted, truncated (missing the
/// trailing "end" marker), CRC-mismatched (v3) or unknown-version files are
/// rejected with kParseError; when `expected_fingerprint` is non-empty, a
/// mismatch is rejected with kInvalidSpec.
Result<Checkpoint> ReadCheckpoint(const std::string& path,
                                  const std::string& expected_fingerprint);

/// ReadCheckpoint result plus where it came from.
struct RecoveredCheckpoint {
  Checkpoint checkpoint;
  /// True when the primary file was unusable and "<path>.bak" supplied the
  /// data (the `checkpoint.recoveries` counter is bumped alongside).
  bool recovered_from_backup = false;
};

/// ReadCheckpoint with automatic fallback: when `path` is corrupted or
/// missing, "<path>.bak" (the previous good checkpoint the writer keeps) is
/// tried before giving up, so one torn write costs one checkpoint interval
/// of progress instead of the whole run. A fingerprint mismatch on either
/// file stays a hard kInvalidSpec error — recovery must never resurrect a
/// different problem's progress.
Result<RecoveredCheckpoint> ReadCheckpointWithRecovery(
    const std::string& path, const std::string& expected_fingerprint);

/// CRC32 (IEEE 802.3, reflected) over `data` — the checksum the v3
/// checkpoint trailer carries. Exposed for tests that forge corruption.
uint32_t Crc32(std::string_view data);

/// FNV-1a-64 over the concatenation of `parts` (length-prefixed, so part
/// boundaries are unambiguous), rendered as 16 hex digits. Used to
/// fingerprint (spec text, property, enumeration-affecting options).
std::string FingerprintParts(std::initializer_list<std::string_view> parts);

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_CHECKPOINT_H_
