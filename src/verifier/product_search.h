#ifndef WSVERIFY_VERIFIER_PRODUCT_SEARCH_H_
#define WSVERIFY_VERIFIER_PRODUCT_SEARCH_H_

#include <optional>
#include <vector>

#include "automata/buchi.h"
#include "common/flat_hash.h"
#include "common/interner.h"
#include "common/run_control.h"
#include "common/status.h"
#include "fo/formula.h"
#include "verifier/snapshot_graph.h"

namespace wsv::verifier {

struct SearchBudget {
  /// Cap on distinct product states explored (per search).
  size_t max_states = 1000000;
  /// Optional deadline/cancellation token, polled every ~1k product-state
  /// expansions; a stop aborts the search with the token's stop status
  /// (kDeadlineExceeded / kCanceled). Not owned; may be null.
  RunControl* control = nullptr;
};

/// Counters accumulated across every search of one engine run. The same
/// numbers are mirrored into the global obs::Registry (dot-namespaced
/// "graph.*", "leafcache.*", "ndfs.*") for the stats-JSON/trace exports;
/// this struct is the in-process API surface (benches, tests, callers).
struct SearchStats {
  /// Distinct configuration-graph snapshots interned (per database).
  size_t snapshots = 0;
  /// Distinct product states interned across all searches.
  size_t product_states = 0;
  /// Product transitions generated across all searches.
  size_t transitions = 0;
  /// Configuration-graph edges computed (successor-set sizes summed).
  size_t graph_transitions = 0;
  /// Per-snapshot leaf-table lookups served from the LeafCache...
  size_t leaf_cache_hits = 0;
  /// ...versus evaluation passes that had to run the relational evaluator.
  size_t leaf_cache_misses = 0;
  /// Inner (cycle-detection) DFS launches of the nested DFS.
  size_t inner_searches = 0;
  /// Searches aborted by the product-state budget.
  size_t budget_hits = 0;
};

/// A violating run witness: a finite prefix from an initial snapshot
/// followed by a cycle repeated forever (cycle[0] == prefix.back()).
struct LassoWitness {
  std::vector<runtime::Snapshot> prefix;
  std::vector<runtime::Snapshot> cycle;
};

/// The core model-checking engine (DESIGN.md §5 step 5): on-the-fly nested
/// depth-first search (Courcoubetis-Vardi-Wolper-Yannakakis) over the
/// product of a SnapshotGraph with a Büchi automaton whose propositions are
/// open FO leaf formulas; this search instantiates them with one fixed
/// closure valuation, answered by tuple lookups into the shared LeafCache.
///
/// Every client reduces to this engine: LTL-FO verification (automaton of
/// the negated property), conversation protocols (complement of the
/// protocol automaton over received_<Q> events), and modular verification
/// (automaton of env-spec ∧ ¬property). All searches (one per
/// closure-variable valuation) share one SnapshotGraph and LeafCache, so the
/// configuration graph is expanded and the leaves evaluated once per
/// database.
class ProductSearch {
 public:
  /// A transition guard compiled to a literal cube over the (<= 64)
  /// propositions: the guard holds iff (bits & pos) == pos and
  /// (bits & neg) == 0 — two masked compares instead of a PropExpr tree
  /// walk. GPVW and protocol complementation emit exactly such cubes, so
  /// the fallback (cube == false, walk the tree) is rare.
  struct CompiledGuard {
    uint64_t pos = 0;
    uint64_t neg = 0;
    bool cube = false;
  };
  /// guards[q][k] compiles automaton->transitions_from(q)[k].guard.
  using GuardTable = std::vector<std::vector<CompiledGuard>>;

  /// Compiles every transition guard of `automaton` once. The table
  /// depends only on the automaton, so callers that run many searches
  /// against the same automaton (one per closure valuation) should build
  /// it once and pass it to every search.
  static GuardTable CompileGuards(const automata::BuchiAutomaton& automaton);

  /// All pointers must outlive the search. `automaton` must be plain
  /// (1 acceptance set). `leaf_rows[i]` is this instance's valuation
  /// projected to leaf i's free variables (sorted), as interned values.
  /// `shared_guards`, if non-null, must be CompileGuards(*automaton);
  /// when null the search compiles its own table.
  ProductSearch(SnapshotGraph* graph, LeafCache* leaf_cache,
                const automata::BuchiAutomaton* automaton,
                std::vector<data::Tuple> leaf_rows, SearchBudget budget,
                const GuardTable* shared_guards = nullptr);

  /// Searches for a run of the composition accepted by the automaton.
  /// nullopt = no such run (property holds / protocol satisfied).
  Result<std::optional<LassoWitness>> FindAcceptedRun(SearchStats* stats);

 private:
  using ProductId = uint32_t;

  enum class Color : uint8_t { kWhite, kCyan, kBlue };

  /// Computes (and caches) the leaf valuation of `sid`, returning it packed
  /// into a bit mask for the compiled cube guards. When some guard is not a
  /// cube (all_cubes_ == false) the unpacked vector<bool> is additionally
  /// materialized in valuations_[sid] for PropExpr::Eval.
  Result<uint64_t> ValuationBits(SnapshotId sid);
  ProductId InternProduct(SnapshotId sid, automata::StateId q);
  Result<std::vector<ProductId>> ProductSuccessors(ProductId pid);
  Result<std::optional<std::vector<ProductId>>> InnerDfs(ProductId seed);

  SnapshotGraph* graph_;
  LeafCache* leaf_cache_;
  const automata::BuchiAutomaton* automaton_;
  std::vector<data::Tuple> leaf_rows_;
  SearchBudget budget_;

  /// Unpacked leaf valuations, materialized only when some guard needs a
  /// PropExpr tree walk (all_cubes_ == false); the common all-cube case
  /// never allocates a vector<bool> per snapshot.
  std::vector<std::optional<std::vector<bool>>> valuations_;
  /// Packed leaf valuation per snapshot (valid where val_ready_), consumed
  /// by the compiled cube guards.
  std::vector<uint64_t> val_bits_;
  std::vector<uint8_t> val_ready_;
  /// Points at the shared table when one was supplied, else at
  /// owned_guards_ (compiled in the constructor).
  const GuardTable* guards_;
  GuardTable owned_guards_;
  /// Every guard (including those on initial states) compiled to a cube —
  /// the search then runs entirely on packed bits.
  bool all_cubes_ = false;

  std::vector<std::pair<SnapshotId, automata::StateId>> product_states_;
  FlatIdSet product_ids_;
  std::vector<Color> color_;
  std::vector<bool> inner_visited_;
  size_t transitions_ = 0;
  size_t inner_searches_ = 0;
  size_t control_polls_ = 0;
};

/// True iff some proposition observes snapshot bookkeeping with the given
/// relation-name prefix ("move_", "received_", "sent_") — used to decide
/// whether SnapshotGraph may normalize it away.
bool AnyPropositionMentionsPrefix(
    const std::vector<fo::FormulaPtr>& propositions, std::string_view prefix);

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_PRODUCT_SEARCH_H_
