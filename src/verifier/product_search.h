#ifndef WSVERIFY_VERIFIER_PRODUCT_SEARCH_H_
#define WSVERIFY_VERIFIER_PRODUCT_SEARCH_H_

#include <optional>
#include <vector>

#include "automata/buchi.h"
#include "common/interner.h"
#include "common/run_control.h"
#include "common/status.h"
#include "fo/formula.h"
#include "verifier/snapshot_graph.h"

namespace wsv::verifier {

struct SearchBudget {
  /// Cap on distinct product states explored (per search).
  size_t max_states = 1000000;
  /// Optional deadline/cancellation token, polled every ~1k product-state
  /// expansions; a stop aborts the search with the token's stop status
  /// (kDeadlineExceeded / kCanceled). Not owned; may be null.
  RunControl* control = nullptr;
};

/// Counters accumulated across every search of one engine run. The same
/// numbers are mirrored into the global obs::Registry (dot-namespaced
/// "graph.*", "leafcache.*", "ndfs.*") for the stats-JSON/trace exports;
/// this struct is the in-process API surface (benches, tests, callers).
struct SearchStats {
  /// Distinct configuration-graph snapshots interned (per database).
  size_t snapshots = 0;
  /// Distinct product states interned across all searches.
  size_t product_states = 0;
  /// Product transitions generated across all searches.
  size_t transitions = 0;
  /// Configuration-graph edges computed (successor-set sizes summed).
  size_t graph_transitions = 0;
  /// Per-snapshot leaf-table lookups served from the LeafCache...
  size_t leaf_cache_hits = 0;
  /// ...versus evaluation passes that had to run the relational evaluator.
  size_t leaf_cache_misses = 0;
  /// Inner (cycle-detection) DFS launches of the nested DFS.
  size_t inner_searches = 0;
  /// Searches aborted by the product-state budget.
  size_t budget_hits = 0;
};

/// A violating run witness: a finite prefix from an initial snapshot
/// followed by a cycle repeated forever (cycle[0] == prefix.back()).
struct LassoWitness {
  std::vector<runtime::Snapshot> prefix;
  std::vector<runtime::Snapshot> cycle;
};

/// The core model-checking engine (DESIGN.md §5 step 5): on-the-fly nested
/// depth-first search (Courcoubetis-Vardi-Wolper-Yannakakis) over the
/// product of a SnapshotGraph with a Büchi automaton whose propositions are
/// open FO leaf formulas; this search instantiates them with one fixed
/// closure valuation, answered by tuple lookups into the shared LeafCache.
///
/// Every client reduces to this engine: LTL-FO verification (automaton of
/// the negated property), conversation protocols (complement of the
/// protocol automaton over received_<Q> events), and modular verification
/// (automaton of env-spec ∧ ¬property). All searches (one per
/// closure-variable valuation) share one SnapshotGraph and LeafCache, so the
/// configuration graph is expanded and the leaves evaluated once per
/// database.
class ProductSearch {
 public:
  /// All pointers must outlive the search. `automaton` must be plain
  /// (1 acceptance set). `leaf_rows[i]` is this instance's valuation
  /// projected to leaf i's free variables (sorted), as interned values.
  ProductSearch(SnapshotGraph* graph, LeafCache* leaf_cache,
                const automata::BuchiAutomaton* automaton,
                std::vector<data::Tuple> leaf_rows, SearchBudget budget);

  /// Searches for a run of the composition accepted by the automaton.
  /// nullopt = no such run (property holds / protocol satisfied).
  Result<std::optional<LassoWitness>> FindAcceptedRun(SearchStats* stats);

 private:
  using ProductId = uint32_t;

  enum class Color : uint8_t { kWhite, kCyan, kBlue };

  Result<const std::vector<bool>*> Valuation(SnapshotId sid);
  ProductId InternProduct(SnapshotId sid, automata::StateId q);
  Result<std::vector<ProductId>> ProductSuccessors(ProductId pid);
  Result<std::optional<std::vector<ProductId>>> InnerDfs(ProductId seed);

  SnapshotGraph* graph_;
  LeafCache* leaf_cache_;
  const automata::BuchiAutomaton* automaton_;
  std::vector<data::Tuple> leaf_rows_;
  SearchBudget budget_;

  std::vector<std::optional<std::vector<bool>>> valuations_;

  std::vector<std::pair<SnapshotId, automata::StateId>> product_states_;
  std::unordered_map<uint64_t, ProductId> product_ids_;
  std::vector<Color> color_;
  std::vector<bool> inner_visited_;
  size_t transitions_ = 0;
  size_t inner_searches_ = 0;
  size_t control_polls_ = 0;
};

/// True iff some proposition observes snapshot bookkeeping with the given
/// relation-name prefix ("move_", "received_", "sent_") — used to decide
/// whether SnapshotGraph may normalize it away.
bool AnyPropositionMentionsPrefix(
    const std::vector<fo::FormulaPtr>& propositions, std::string_view prefix);

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_PRODUCT_SEARCH_H_
