#ifndef WSVERIFY_VERIFIER_PARALLEL_SWEEP_H_
#define WSVERIFY_VERIFIER_PARALLEL_SWEEP_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "data/instance.h"
#include "verifier/db_enum.h"
#include "verifier/engine.h"

namespace wsv::verifier {

/// Multi-threaded database sweep with deterministic first-violation
/// semantics: `jobs` workers pull databases from the enumerator under a
/// producer lock (enumeration is cheap; checking is expensive) and run the
/// check callback on worker-local EngineOutcome accumulators, merged when
/// all workers have drained.
///
/// Determinism guarantee: the reported witness is always the one with the
/// LOWEST database index in enumeration order, bit-for-bit identical to the
/// serial sweep's. Dispatch is monotone in the index and stops below the
/// current best witness index, so every database preceding the winner is
/// fully checked before the sweep concludes; databases beyond the winner
/// that were already in flight only contribute to the aggregate statistics
/// (databases_checked and friends may exceed their serial values — verdict,
/// witness index, witness label and lasso never differ).
class ParallelSweep {
 public:
  /// Per-database check: `db_index` is the database's position in
  /// enumeration order, `dbs` the materialized instances (worker-owned),
  /// `outcome` the calling worker's private accumulator. Returns true when
  /// a violation witness was recorded into `outcome`. Must be safe to call
  /// concurrently on distinct `outcome` objects (shared inputs read-only).
  using CheckFn = std::function<Result<bool>(
      size_t db_index, const std::vector<data::Instance>& dbs,
      EngineOutcome& outcome)>;

  /// `enumerator` must outlive the sweep and be freshly positioned; it is
  /// only advanced under the internal producer lock.
  ParallelSweep(DatabaseEnumerator* enumerator, size_t jobs,
                size_t max_databases);

  /// Runs the sweep to completion and merges the worker outcomes. The
  /// merged outcome carries summed statistics, the lowest-index witness (if
  /// any) and serial-equivalent budget status. Hard (non-budget) errors
  /// abort the sweep and are returned, unless a witness with a lower
  /// database index makes them unreachable in the serial order.
  Result<EngineOutcome> Run(const CheckFn& check);

 private:
  DatabaseEnumerator* enumerator_;
  size_t jobs_;
  size_t max_databases_;
};

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_PARALLEL_SWEEP_H_
