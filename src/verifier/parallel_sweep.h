#ifndef WSVERIFY_VERIFIER_PARALLEL_SWEEP_H_
#define WSVERIFY_VERIFIER_PARALLEL_SWEEP_H_

#include <functional>
#include <vector>

#include "common/run_control.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/instance.h"
#include "verifier/db_enum.h"
#include "verifier/engine.h"

namespace wsv::verifier {

/// Configuration of one database sweep (serial and parallel runs share the
/// same machinery: jobs == 1 is the serial sweep).
struct SweepOptions {
  /// Worker count; must be >= 1 (resolve 0 before constructing).
  size_t jobs = 1;
  /// Scheduler to run the workers on (borrowed, not owned; must have at
  /// least `jobs` threads). Null = the sweep creates a private pool. The
  /// engine passes its shared two-level pool here so database workers and
  /// within-database fan-out draw from one global --jobs budget.
  ThreadPool* pool = nullptr;
  size_t max_databases = static_cast<size_t>(-1);
  /// Resume offset: databases [0, start_index) are fast-forwarded without
  /// checking (the enumerator still walks them, keeping indices aligned
  /// with an uninterrupted run).
  size_t start_index = 0;
  /// Exclusive upper bound of the shard's work unit in absolute enumeration
  /// indices: dispatch stops before this index. When the enumerator still
  /// has databases at the bound, the sweep stops with kRangeEnd (the shard
  /// covered exactly [start_index, end_index)); when it is exhausted first,
  /// the stop is kComplete — the attestation a merge needs to know the
  /// whole space ends inside some shard's range.
  size_t end_index = static_cast<size_t>(-1);
  /// Deadline/cancellation token, polled at dispatch and inside checks (via
  /// SearchBudget::control). Not owned; may be null.
  RunControl* control = nullptr;
  /// Fault isolation: true retries a hard-failing database once and then
  /// skips it (recording its index); false aborts the sweep (legacy).
  bool skip_failed_databases = false;
  /// Failed indices inherited from a resumed checkpoint (all <
  /// start_index); carried into the merged outcome and checkpoints.
  std::vector<size_t> resume_failed;
  /// Invoke checkpoint_fn every this many completed databases (0 = never).
  size_t checkpoint_every = 0;
  /// Periodic progress sink: called with the completed-prefix high-water
  /// mark, the sorted failed-index list, and the total databases completed
  /// so far. Called from worker threads, serialized by an internal lock.
  std::function<void(size_t completed_prefix,
                     const std::vector<size_t>& failed,
                     size_t databases_completed)>
      checkpoint_fn;
};

/// Multi-threaded database sweep with deterministic first-violation
/// semantics: `jobs` workers pull databases from the enumerator under a
/// producer lock (enumeration is cheap; checking is expensive) and run the
/// check callback on worker-local EngineOutcome accumulators, merged when
/// all workers have drained.
///
/// Determinism guarantee (uninterrupted runs): the reported witness is
/// always the one with the LOWEST database index in enumeration order,
/// bit-for-bit identical to the serial sweep's. Dispatch is monotone in the
/// index and stops below the current best witness index, so every database
/// preceding the winner is fully checked before the sweep concludes;
/// databases beyond the winner that were already in flight only contribute
/// to the aggregate statistics (databases_checked and friends may exceed
/// their serial values — verdict, witness index, witness label and lasso
/// never differ).
///
/// Robustness: exceptions and hard error statuses from a database's check
/// are caught at the worker boundary, retried once, and — under
/// skip_failed_databases — recorded as per-database failures while the
/// sweep continues. A deadline or cancellation stop (RunControl) winds the
/// sweep down cooperatively; the merged outcome then covers the completed
/// prefix (stop_reason kDeadline / kCanceled) and a witness found before
/// the stop is still a sound violation (its index may exceed the
/// uninterrupted run's, since earlier databases may not have finished).
class ParallelSweep {
 public:
  /// Per-database check: `db_index` is the database's position in
  /// enumeration order, `dbs` the materialized instances (worker-owned),
  /// `outcome` the calling worker's private accumulator. Returns true when
  /// a violation witness was recorded into `outcome`. Must be safe to call
  /// concurrently on distinct `outcome` objects (shared inputs read-only).
  using CheckFn = std::function<Result<bool>(
      size_t db_index, const std::vector<data::Instance>& dbs,
      EngineOutcome& outcome)>;

  /// `enumerator` must outlive the sweep and be freshly positioned; it is
  /// only advanced under the internal producer lock.
  ParallelSweep(DatabaseEnumerator* enumerator, SweepOptions options);

  /// Runs the sweep to completion (or until a stop/abort) and merges the
  /// worker outcomes: summed statistics, the lowest-index witness (if any),
  /// serial-equivalent stop status, the completed-prefix high-water mark
  /// and the sorted failed-index list. Hard (non-budget, non-stop) errors
  /// abort the sweep and are returned when skip_failed_databases is off,
  /// unless a witness with a lower database index makes them unreachable in
  /// the serial order.
  Result<EngineOutcome> Run(const CheckFn& check);

 private:
  DatabaseEnumerator* enumerator_;
  SweepOptions options_;
};

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_PARALLEL_SWEEP_H_
