#ifndef WSVERIFY_VERIFIER_DOMAIN_BOUND_H_
#define WSVERIFY_VERIFIER_DOMAIN_BOUND_H_

#include <cstddef>

#include "ltl/property.h"
#include "spec/composition.h"

namespace wsv::verifier {

/// Computes a sufficient pseudo-domain size for sound-and-complete
/// verification of an input-bounded composition with k-bounded queues
/// (Theorem 3.4 via the finite-model property of input-bounded
/// specifications, [12] Theorem 3.5 lifted to compositions).
///
/// Intuition: in an input-bounded run, quantified variables only ever range
/// over values visible in current inputs, the lookback window of previous
/// inputs, and the first messages of flat queues; a violating run can be
/// "re-told" using a fresh element per such live position plus the
/// specification and property constants. The returned count is the number of
/// *fresh* elements to add on top of the constants.
///
/// The bound is conservative (and often much larger than what a
/// counterexample needs); Verifier lets callers override it with a smaller
/// bounded-verification domain and reports which regime the verdict holds
/// in.
size_t SufficientFreshDomainSize(const spec::Composition& comp,
                                 const ltl::Property& property,
                                 size_t queue_bound);

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_DOMAIN_BOUND_H_
