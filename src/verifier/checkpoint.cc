#include "verifier/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wsv::verifier {

namespace {

constexpr char kMagic[] = "wsv-checkpoint";
constexpr int kVersion = 1;

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::ParseError("checkpoint '" + path + "' is corrupted (" +
                            why + "); delete it or rerun without --resume");
}

}  // namespace

Status WriteCheckpoint(const std::string& path, const Checkpoint& cp) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::NotFound("cannot open checkpoint file for writing: " +
                              tmp);
    }
    out << kMagic << ' ' << kVersion << '\n';
    out << "fingerprint "
        << (cp.fingerprint.empty() ? "-" : cp.fingerprint) << '\n';
    out << "completed_prefix " << cp.completed_prefix << '\n';
    out << "failed";
    if (cp.failed_indices.empty()) {
      out << " -";
    } else {
      for (size_t i = 0; i < cp.failed_indices.size(); ++i) {
        out << (i == 0 ? " " : ",") << cp.failed_indices[i];
      }
    }
    out << '\n';
    out << "databases_completed " << cp.databases_completed << '\n';
    out << "stop_reason " << cp.stop_reason << '\n';
    out << "end\n";
    out.flush();
    if (!out) {
      return Status::Internal("failed writing checkpoint file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("failed renaming checkpoint '" + tmp +
                            "' over '" + path + "'");
  }
  return Status::Ok();
}

Result<Checkpoint> ReadCheckpoint(const std::string& path,
                                  const std::string& expected_fingerprint) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open checkpoint file: " + path);

  Checkpoint cp;
  std::string line;

  if (!std::getline(in, line)) return Corrupt(path, "empty file");
  {
    std::istringstream header(line);
    std::string magic;
    int version = -1;
    header >> magic >> version;
    if (magic != kMagic) return Corrupt(path, "bad magic");
    if (version != kVersion) {
      return Corrupt(path, "unsupported version " + std::to_string(version));
    }
  }

  bool saw_end = false;
  bool saw_prefix = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "fingerprint") {
      fields >> cp.fingerprint;
      if (cp.fingerprint == "-") cp.fingerprint.clear();
    } else if (key == "completed_prefix") {
      if (!(fields >> cp.completed_prefix)) {
        return Corrupt(path, "non-numeric completed_prefix");
      }
      saw_prefix = true;
    } else if (key == "databases_completed") {
      if (!(fields >> cp.databases_completed)) {
        return Corrupt(path, "non-numeric databases_completed");
      }
    } else if (key == "stop_reason") {
      fields >> cp.stop_reason;
    } else if (key == "failed") {
      std::string list;
      fields >> list;
      if (list != "-" && !list.empty()) {
        std::istringstream items(list);
        std::string item;
        while (std::getline(items, item, ',')) {
          try {
            cp.failed_indices.push_back(std::stoull(item));
          } catch (...) {
            return Corrupt(path, "non-numeric failed index '" + item + "'");
          }
        }
      }
    } else {
      return Corrupt(path, "unknown field '" + key + "'");
    }
  }
  if (!saw_end) return Corrupt(path, "truncated: missing end marker");
  if (!saw_prefix) return Corrupt(path, "missing completed_prefix");
  for (uint64_t index : cp.failed_indices) {
    if (index >= cp.completed_prefix) {
      return Corrupt(path, "failed index beyond the completed prefix");
    }
  }
  if (!expected_fingerprint.empty() &&
      cp.fingerprint != expected_fingerprint) {
    return Status::InvalidSpec(
        "checkpoint '" + path + "' was written for a different "
        "spec/property/options combination (fingerprint " + cp.fingerprint +
        " != " + expected_fingerprint + "); refusing to resume");
  }
  return cp;
}

std::string FingerprintParts(std::initializer_list<std::string_view> parts) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&hash](const char* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  for (std::string_view part : parts) {
    // Length prefix keeps ("ab","c") distinct from ("a","bc").
    uint64_t len = part.size();
    mix(reinterpret_cast<const char*>(&len), sizeof(len));
    mix(part.data(), part.size());
  }
  char out[17];
  std::snprintf(out, sizeof(out), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(out);
}

}  // namespace wsv::verifier
