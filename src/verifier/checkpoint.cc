#include "verifier/checkpoint.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/fault.h"
#include "obs/metrics.h"

namespace wsv::verifier {

namespace {

constexpr char kMagic[] = "wsv-checkpoint";
constexpr int kVersion = 3;
// Older formats, still readable: v2 interval coverage without the CRC
// trailer, v1 prefix-style.
constexpr int kVersionIntervals = 2;
constexpr int kVersionPrefix = 1;

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::ParseError("checkpoint '" + path + "' is corrupted (" +
                            why + "); delete it or rerun without --resume");
}

/// Flushes userspace + kernel buffers of `f` to stable storage. Returns
/// false on any failure.
bool FlushAndSync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#if defined(__unix__) || defined(__APPLE__)
  if (fsync(fileno(f)) != 0) return false;
#endif
  return true;
}

/// fsyncs the directory containing `path` so a just-renamed entry is
/// durable. Best-effort on platforms without directory fds.
void SyncParentDir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    fsync(fd);
    close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<IndexInterval> NormalizeIntervals(std::vector<IndexInterval> set) {
  set.erase(std::remove_if(set.begin(), set.end(),
                           [](const IndexInterval& iv) {
                             return iv.second <= iv.first;
                           }),
            set.end());
  std::sort(set.begin(), set.end());
  std::vector<IndexInterval> out;
  for (const IndexInterval& iv : set) {
    if (!out.empty() && iv.first <= out.back().second) {
      out.back().second = std::max(out.back().second, iv.second);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

void AddInterval(std::vector<IndexInterval>* set, uint64_t lo, uint64_t hi) {
  if (hi <= lo) return;
  set->emplace_back(lo, hi);
  *set = NormalizeIntervals(std::move(*set));
}

bool IntervalsContain(const std::vector<IndexInterval>& set, uint64_t index) {
  for (const IndexInterval& iv : set) {
    if (index < iv.first) return false;
    if (index < iv.second) return true;
  }
  return false;
}

std::vector<IndexInterval> IntersectIntervals(
    const std::vector<IndexInterval>& set, uint64_t lo, uint64_t hi) {
  std::vector<IndexInterval> out;
  for (const IndexInterval& iv : set) {
    uint64_t a = std::max(iv.first, lo);
    uint64_t b = std::min(iv.second, hi);
    if (a < b) out.emplace_back(a, b);
  }
  return out;
}

uint64_t ContiguousPrefix(const std::vector<IndexInterval>& set) {
  if (set.empty() || set.front().first != 0) return 0;
  return set.front().second;
}

std::vector<IndexInterval> IntervalGaps(const std::vector<IndexInterval>& set,
                                        uint64_t end) {
  std::vector<IndexInterval> gaps;
  uint64_t cursor = 0;
  for (const IndexInterval& iv : set) {
    if (cursor >= end) break;
    if (iv.first > cursor) {
      gaps.emplace_back(cursor, std::min(iv.first, end));
    }
    cursor = std::max(cursor, iv.second);
  }
  if (cursor < end) gaps.emplace_back(cursor, end);
  return gaps;
}

uint64_t ResumeStart(const std::vector<IndexInterval>& set, uint64_t lo) {
  for (const IndexInterval& iv : set) {
    if (lo < iv.first) return lo;
    if (lo < iv.second) return iv.second;
  }
  return lo;
}

std::string IntervalsToString(const std::vector<IndexInterval>& set) {
  if (set.empty()) return "-";
  std::ostringstream out;
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out << ',';
    out << set[i].first << ':' << set[i].second;
  }
  return out.str();
}

Result<std::vector<IndexInterval>> ParseIntervals(const std::string& text) {
  std::vector<IndexInterval> set;
  if (text == "-" || text.empty()) return set;
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ',')) {
    size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("interval '" + item + "' is not 'lo:hi'");
    }
    uint64_t lo = 0;
    uint64_t hi = 0;
    try {
      size_t used = 0;
      lo = std::stoull(item.substr(0, colon), &used);
      if (used != colon) throw std::invalid_argument(item);
      std::string hi_text = item.substr(colon + 1);
      hi = std::stoull(hi_text, &used);
      if (used != hi_text.size()) throw std::invalid_argument(item);
    } catch (...) {
      return Status::ParseError("interval '" + item + "' is not numeric");
    }
    if (hi < lo) {
      return Status::ParseError("interval '" + item + "' has hi < lo");
    }
    set.emplace_back(lo, hi);
  }
  return set;
}

Status WriteCheckpoint(const std::string& path, const Checkpoint& cp) {
  // Lift prefix-only writers into interval form, then keep the derived
  // prefix consistent with what is persisted.
  std::vector<IndexInterval> covered = cp.covered;
  if (covered.empty() && cp.completed_prefix > 0) {
    covered.emplace_back(0, cp.completed_prefix);
  }
  covered = NormalizeIntervals(std::move(covered));
  const uint64_t prefix = ContiguousPrefix(covered);

  // The whole document is built in memory first: the CRC trailer covers
  // every byte before it, and the fault site below needs a well-defined
  // "half written" prefix to crash on.
  std::ostringstream body;
  body << kMagic << ' ' << kVersion << '\n';
  body << "fingerprint "
       << (cp.fingerprint.empty() ? "-" : cp.fingerprint) << '\n';
  body << "completed_prefix " << prefix << '\n';
  body << "covered " << IntervalsToString(covered) << '\n';
  body << "unit " << (cp.unit.empty() ? "database" : cp.unit) << '\n';
  body << "failed";
  if (cp.failed_indices.empty()) {
    body << " -";
  } else {
    for (size_t i = 0; i < cp.failed_indices.size(); ++i) {
      body << (i == 0 ? " " : ",") << cp.failed_indices[i];
    }
  }
  body << '\n';
  body << "databases_completed " << cp.databases_completed << '\n';
  body << "stop_reason " << cp.stop_reason << '\n';
  std::string doc = body.str();
  char crc_line[24];
  std::snprintf(crc_line, sizeof(crc_line), "crc32 %08x\n", Crc32(doc));
  doc += crc_line;
  doc += "end\n";

  const std::string tmp = path + ".tmp";
  // A previous writer may have crashed between opening and renaming; its
  // stale temp must not shadow this write or linger forever.
  std::remove(tmp.c_str());
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::NotFound("cannot open checkpoint file for writing: " +
                            tmp);
  }
  // Write in two halves with the fault site between them: in crash mode the
  // process dies with a torn temp file flushed to disk (what a power cut
  // mid-write leaves); in fail mode this simulates a plain IO error.
  const size_t half = doc.size() / 2;
  bool write_ok = std::fwrite(doc.data(), 1, half, out) == half &&
                  std::fflush(out) == 0;
  if (write_ok && WSV_FAULT_POINT("checkpoint.write.io")) {
    std::fclose(out);
    std::remove(tmp.c_str());
    return Status::Internal(
        "checkpoint write failed (injected fault 'checkpoint.write.io'): " +
        tmp);
  }
  write_ok = write_ok &&
             std::fwrite(doc.data() + half, 1, doc.size() - half, out) ==
                 doc.size() - half &&
             FlushAndSync(out);
  if (std::fclose(out) != 0) write_ok = false;
  if (!write_ok) {
    std::remove(tmp.c_str());
    return Status::Internal("failed writing checkpoint file: " + tmp);
  }
  // Keep the previous good checkpoint as the recovery fallback. Best
  // effort: the first write has nothing to back up. A crash between the
  // two renames leaves only the .bak, which recovery also handles.
  std::rename(path.c_str(), (path + ".bak").c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("failed renaming checkpoint '" + tmp +
                            "' over '" + path + "'");
  }
  // The rename is only durable once the directory entry is, too.
  SyncParentDir(path);
  return Status::Ok();
}

Result<Checkpoint> ReadCheckpoint(const std::string& path,
                                  const std::string& expected_fingerprint) {
  if (WSV_FAULT_POINT("checkpoint.read.io")) {
    return Corrupt(path, "injected fault 'checkpoint.read.io'");
  }
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open checkpoint file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  Checkpoint cp;
  std::string line;
  int version = -1;

  // Line-by-line over the in-memory buffer, tracking byte offsets: the v3
  // CRC trailer covers every byte before its own line.
  size_t cursor = 0;
  auto next_line = [&text, &cursor](std::string* out, size_t* start) {
    if (cursor >= text.size()) return false;
    *start = cursor;
    size_t nl = text.find('\n', cursor);
    if (nl == std::string::npos) {
      *out = text.substr(cursor);
      cursor = text.size();
    } else {
      *out = text.substr(cursor, nl - cursor);
      cursor = nl + 1;
    }
    return true;
  };

  size_t line_start = 0;
  if (!next_line(&line, &line_start)) return Corrupt(path, "empty file");
  {
    std::istringstream header(line);
    std::string magic;
    header >> magic >> version;
    if (magic != kMagic) return Corrupt(path, "bad magic");
    if (version != kVersion && version != kVersionIntervals &&
        version != kVersionPrefix) {
      return Corrupt(path, "unsupported version " + std::to_string(version));
    }
  }

  bool saw_end = false;
  bool saw_prefix = false;
  bool saw_covered = false;
  bool saw_crc = false;
  while (next_line(&line, &line_start)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "fingerprint") {
      fields >> cp.fingerprint;
      if (cp.fingerprint == "-") cp.fingerprint.clear();
    } else if (key == "completed_prefix") {
      if (!(fields >> cp.completed_prefix)) {
        return Corrupt(path, "non-numeric completed_prefix");
      }
      saw_prefix = true;
    } else if (key == "covered") {
      std::string list;
      fields >> list;
      auto parsed = ParseIntervals(list);
      if (!parsed.ok()) {
        return Corrupt(path, "bad covered list: " + parsed.status().message());
      }
      cp.covered = NormalizeIntervals(std::move(parsed).value());
      saw_covered = true;
    } else if (key == "unit") {
      fields >> cp.unit;
      if (cp.unit != "database" && cp.unit != "valuation") {
        return Corrupt(path, "unknown unit '" + cp.unit + "'");
      }
    } else if (key == "databases_completed") {
      if (!(fields >> cp.databases_completed)) {
        return Corrupt(path, "non-numeric databases_completed");
      }
    } else if (key == "stop_reason") {
      fields >> cp.stop_reason;
    } else if (key == "crc32") {
      std::string hex;
      fields >> hex;
      uint32_t recorded = 0;
      try {
        size_t used = 0;
        recorded = static_cast<uint32_t>(std::stoul(hex, &used, 16));
        if (used != hex.size() || hex.empty()) {
          throw std::invalid_argument(hex);
        }
      } catch (...) {
        return Corrupt(path, "non-hex crc32 '" + hex + "'");
      }
      uint32_t actual =
          Crc32(std::string_view(text.data(), line_start));
      if (actual != recorded) {
        char diag[64];
        std::snprintf(diag, sizeof(diag),
                      "crc mismatch: recorded %08x, actual %08x", recorded,
                      actual);
        return Corrupt(path, diag);
      }
      saw_crc = true;
    } else if (key == "failed") {
      std::string list;
      fields >> list;
      if (list != "-" && !list.empty()) {
        std::istringstream items(list);
        std::string item;
        while (std::getline(items, item, ',')) {
          try {
            cp.failed_indices.push_back(std::stoull(item));
          } catch (...) {
            return Corrupt(path, "non-numeric failed index '" + item + "'");
          }
        }
      }
    } else {
      return Corrupt(path, "unknown field '" + key + "'");
    }
  }
  if (!saw_end) return Corrupt(path, "truncated: missing end marker");
  if (!saw_prefix) return Corrupt(path, "missing completed_prefix");
  if (version >= kVersionIntervals && !saw_covered) {
    return Corrupt(path, "missing covered intervals");
  }
  if (version >= kVersion && !saw_crc) {
    return Corrupt(path, "missing crc32 trailer");
  }
  if (!saw_covered && cp.completed_prefix > 0) {
    // v1 file: the prefix is the whole story.
    cp.covered.emplace_back(0, cp.completed_prefix);
  }
  // Keep the derived prefix authoritative regardless of what was written.
  cp.completed_prefix = ContiguousPrefix(cp.covered);
  for (uint64_t index : cp.failed_indices) {
    if (!IntervalsContain(cp.covered, index)) {
      return Corrupt(path, "failed index beyond the completed prefix");
    }
  }
  if (!expected_fingerprint.empty() &&
      cp.fingerprint != expected_fingerprint) {
    return Status::InvalidSpec(
        "checkpoint '" + path + "' was written for a different "
        "spec/property/options combination (fingerprint " + cp.fingerprint +
        " != " + expected_fingerprint + "); refusing to resume");
  }
  return cp;
}

Result<RecoveredCheckpoint> ReadCheckpointWithRecovery(
    const std::string& path, const std::string& expected_fingerprint) {
  Result<Checkpoint> primary = ReadCheckpoint(path, expected_fingerprint);
  if (primary.ok()) {
    return RecoveredCheckpoint{std::move(primary).value(), false};
  }
  // A fingerprint mismatch is not damage — the file is intact and belongs
  // to a different problem; falling back would be wrong, not resilient.
  if (primary.status().code() == StatusCode::kInvalidSpec) {
    return primary.status();
  }
  const std::string bak = path + ".bak";
  Result<Checkpoint> backup = ReadCheckpoint(bak, expected_fingerprint);
  if (backup.ok()) {
    obs::Registry::Global().counter("checkpoint.recoveries").Add(1);
    std::fprintf(stderr,
                 "wsv: checkpoint '%s' unusable (%s); recovered from '%s'\n",
                 path.c_str(), primary.status().message().c_str(),
                 bak.c_str());
    return RecoveredCheckpoint{std::move(backup).value(), true};
  }
  if (backup.status().code() == StatusCode::kInvalidSpec) {
    return backup.status();
  }
  return Status(primary.status().code(),
                primary.status().message() + "; backup '" + bak +
                    "' also unusable: " + backup.status().message());
}

std::string FingerprintParts(std::initializer_list<std::string_view> parts) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&hash](const char* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  for (std::string_view part : parts) {
    // Length prefix keeps ("ab","c") distinct from ("a","bc").
    uint64_t len = part.size();
    mix(reinterpret_cast<const char*>(&len), sizeof(len));
    mix(part.data(), part.size());
  }
  char out[17];
  std::snprintf(out, sizeof(out), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(out);
}

}  // namespace wsv::verifier
