#include "verifier/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wsv::verifier {

namespace {

constexpr char kMagic[] = "wsv-checkpoint";
constexpr int kVersion = 2;
// Prefix-style files from before interval coverage; still readable.
constexpr int kVersionPrefix = 1;

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::ParseError("checkpoint '" + path + "' is corrupted (" +
                            why + "); delete it or rerun without --resume");
}

}  // namespace

std::vector<IndexInterval> NormalizeIntervals(std::vector<IndexInterval> set) {
  set.erase(std::remove_if(set.begin(), set.end(),
                           [](const IndexInterval& iv) {
                             return iv.second <= iv.first;
                           }),
            set.end());
  std::sort(set.begin(), set.end());
  std::vector<IndexInterval> out;
  for (const IndexInterval& iv : set) {
    if (!out.empty() && iv.first <= out.back().second) {
      out.back().second = std::max(out.back().second, iv.second);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

void AddInterval(std::vector<IndexInterval>* set, uint64_t lo, uint64_t hi) {
  if (hi <= lo) return;
  set->emplace_back(lo, hi);
  *set = NormalizeIntervals(std::move(*set));
}

bool IntervalsContain(const std::vector<IndexInterval>& set, uint64_t index) {
  for (const IndexInterval& iv : set) {
    if (index < iv.first) return false;
    if (index < iv.second) return true;
  }
  return false;
}

std::vector<IndexInterval> IntersectIntervals(
    const std::vector<IndexInterval>& set, uint64_t lo, uint64_t hi) {
  std::vector<IndexInterval> out;
  for (const IndexInterval& iv : set) {
    uint64_t a = std::max(iv.first, lo);
    uint64_t b = std::min(iv.second, hi);
    if (a < b) out.emplace_back(a, b);
  }
  return out;
}

uint64_t ContiguousPrefix(const std::vector<IndexInterval>& set) {
  if (set.empty() || set.front().first != 0) return 0;
  return set.front().second;
}

std::vector<IndexInterval> IntervalGaps(const std::vector<IndexInterval>& set,
                                        uint64_t end) {
  std::vector<IndexInterval> gaps;
  uint64_t cursor = 0;
  for (const IndexInterval& iv : set) {
    if (cursor >= end) break;
    if (iv.first > cursor) {
      gaps.emplace_back(cursor, std::min(iv.first, end));
    }
    cursor = std::max(cursor, iv.second);
  }
  if (cursor < end) gaps.emplace_back(cursor, end);
  return gaps;
}

uint64_t ResumeStart(const std::vector<IndexInterval>& set, uint64_t lo) {
  for (const IndexInterval& iv : set) {
    if (lo < iv.first) return lo;
    if (lo < iv.second) return iv.second;
  }
  return lo;
}

std::string IntervalsToString(const std::vector<IndexInterval>& set) {
  if (set.empty()) return "-";
  std::ostringstream out;
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out << ',';
    out << set[i].first << ':' << set[i].second;
  }
  return out.str();
}

Result<std::vector<IndexInterval>> ParseIntervals(const std::string& text) {
  std::vector<IndexInterval> set;
  if (text == "-" || text.empty()) return set;
  std::istringstream items(text);
  std::string item;
  while (std::getline(items, item, ',')) {
    size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("interval '" + item + "' is not 'lo:hi'");
    }
    uint64_t lo = 0;
    uint64_t hi = 0;
    try {
      size_t used = 0;
      lo = std::stoull(item.substr(0, colon), &used);
      if (used != colon) throw std::invalid_argument(item);
      std::string hi_text = item.substr(colon + 1);
      hi = std::stoull(hi_text, &used);
      if (used != hi_text.size()) throw std::invalid_argument(item);
    } catch (...) {
      return Status::ParseError("interval '" + item + "' is not numeric");
    }
    if (hi < lo) {
      return Status::ParseError("interval '" + item + "' has hi < lo");
    }
    set.emplace_back(lo, hi);
  }
  return set;
}

Status WriteCheckpoint(const std::string& path, const Checkpoint& cp) {
  // Lift prefix-only writers into interval form, then keep the derived
  // prefix consistent with what is persisted.
  std::vector<IndexInterval> covered = cp.covered;
  if (covered.empty() && cp.completed_prefix > 0) {
    covered.emplace_back(0, cp.completed_prefix);
  }
  covered = NormalizeIntervals(std::move(covered));
  const uint64_t prefix = ContiguousPrefix(covered);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::NotFound("cannot open checkpoint file for writing: " +
                              tmp);
    }
    out << kMagic << ' ' << kVersion << '\n';
    out << "fingerprint "
        << (cp.fingerprint.empty() ? "-" : cp.fingerprint) << '\n';
    out << "completed_prefix " << prefix << '\n';
    out << "covered " << IntervalsToString(covered) << '\n';
    out << "unit " << (cp.unit.empty() ? "database" : cp.unit) << '\n';
    out << "failed";
    if (cp.failed_indices.empty()) {
      out << " -";
    } else {
      for (size_t i = 0; i < cp.failed_indices.size(); ++i) {
        out << (i == 0 ? " " : ",") << cp.failed_indices[i];
      }
    }
    out << '\n';
    out << "databases_completed " << cp.databases_completed << '\n';
    out << "stop_reason " << cp.stop_reason << '\n';
    out << "end\n";
    out.flush();
    if (!out) {
      return Status::Internal("failed writing checkpoint file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("failed renaming checkpoint '" + tmp +
                            "' over '" + path + "'");
  }
  return Status::Ok();
}

Result<Checkpoint> ReadCheckpoint(const std::string& path,
                                  const std::string& expected_fingerprint) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open checkpoint file: " + path);

  Checkpoint cp;
  std::string line;
  int version = -1;

  if (!std::getline(in, line)) return Corrupt(path, "empty file");
  {
    std::istringstream header(line);
    std::string magic;
    header >> magic >> version;
    if (magic != kMagic) return Corrupt(path, "bad magic");
    if (version != kVersion && version != kVersionPrefix) {
      return Corrupt(path, "unsupported version " + std::to_string(version));
    }
  }

  bool saw_end = false;
  bool saw_prefix = false;
  bool saw_covered = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "fingerprint") {
      fields >> cp.fingerprint;
      if (cp.fingerprint == "-") cp.fingerprint.clear();
    } else if (key == "completed_prefix") {
      if (!(fields >> cp.completed_prefix)) {
        return Corrupt(path, "non-numeric completed_prefix");
      }
      saw_prefix = true;
    } else if (key == "covered") {
      std::string list;
      fields >> list;
      auto parsed = ParseIntervals(list);
      if (!parsed.ok()) {
        return Corrupt(path, "bad covered list: " + parsed.status().message());
      }
      cp.covered = NormalizeIntervals(std::move(parsed).value());
      saw_covered = true;
    } else if (key == "unit") {
      fields >> cp.unit;
      if (cp.unit != "database" && cp.unit != "valuation") {
        return Corrupt(path, "unknown unit '" + cp.unit + "'");
      }
    } else if (key == "databases_completed") {
      if (!(fields >> cp.databases_completed)) {
        return Corrupt(path, "non-numeric databases_completed");
      }
    } else if (key == "stop_reason") {
      fields >> cp.stop_reason;
    } else if (key == "failed") {
      std::string list;
      fields >> list;
      if (list != "-" && !list.empty()) {
        std::istringstream items(list);
        std::string item;
        while (std::getline(items, item, ',')) {
          try {
            cp.failed_indices.push_back(std::stoull(item));
          } catch (...) {
            return Corrupt(path, "non-numeric failed index '" + item + "'");
          }
        }
      }
    } else {
      return Corrupt(path, "unknown field '" + key + "'");
    }
  }
  if (!saw_end) return Corrupt(path, "truncated: missing end marker");
  if (!saw_prefix) return Corrupt(path, "missing completed_prefix");
  if (version >= kVersion && !saw_covered) {
    return Corrupt(path, "missing covered intervals");
  }
  if (!saw_covered && cp.completed_prefix > 0) {
    // v1 file: the prefix is the whole story.
    cp.covered.emplace_back(0, cp.completed_prefix);
  }
  // Keep the derived prefix authoritative regardless of what was written.
  cp.completed_prefix = ContiguousPrefix(cp.covered);
  for (uint64_t index : cp.failed_indices) {
    if (!IntervalsContain(cp.covered, index)) {
      return Corrupt(path, "failed index beyond the completed prefix");
    }
  }
  if (!expected_fingerprint.empty() &&
      cp.fingerprint != expected_fingerprint) {
    return Status::InvalidSpec(
        "checkpoint '" + path + "' was written for a different "
        "spec/property/options combination (fingerprint " + cp.fingerprint +
        " != " + expected_fingerprint + "); refusing to resume");
  }
  return cp;
}

std::string FingerprintParts(std::initializer_list<std::string_view> parts) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&hash](const char* data, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  for (std::string_view part : parts) {
    // Length prefix keeps ("ab","c") distinct from ("a","bc").
    uint64_t len = part.size();
    mix(reinterpret_cast<const char*>(&len), sizeof(len));
    mix(part.data(), part.size());
  }
  char out[17];
  std::snprintf(out, sizeof(out), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(out);
}

}  // namespace wsv::verifier
