#include "verifier/verifier.h"

#include "automata/buchi.h"
#include "ltl/grounding.h"
#include "obs/timer.h"
#include "verifier/domain_bound.h"
#include "verifier/engine.h"
#include "verifier/validate.h"

namespace wsv::verifier {

std::string Counterexample::ToString(const spec::Composition& comp,
                                     const Interner& interner) const {
  std::string out = "=== Counterexample ===\n";
  for (size_t p = 0; p < databases.size(); ++p) {
    std::string db = databases[p].ToString(interner);
    if (!db.empty()) {
      out += "database of " + comp.peers()[p].name() + ":\n" + db;
    }
  }
  if (!closure_valuation.empty()) {
    out += "property variables: ";
    for (size_t i = 0; i < closure_valuation.size(); ++i) {
      if (i > 0) out += ", ";
      out += closure_valuation[i];
    }
    out += "\n";
  }
  out += "--- run prefix (" + std::to_string(lasso.prefix.size()) +
         " snapshots; bisimulation-normalized bookkeeping such as mover "
         "tags may be blank) ---\n";
  for (const runtime::Snapshot& s : lasso.prefix) {
    out += s.ToString(comp, interner);
  }
  out += "--- cycle repeated forever (" + std::to_string(lasso.cycle.size()) +
         " snapshots) ---\n";
  for (const runtime::Snapshot& s : lasso.cycle) {
    out += s.ToString(comp, interner);
  }
  return out;
}

Verifier::Verifier(const spec::Composition* comp, VerifierOptions options)
    : comp_(comp), options_(std::move(options)) {}

Status Verifier::CheckDecidableRegime(const ltl::Property& property) const {
  if (options_.run.queue_bound == 0) {
    return Status::UndecidableRegime(
        "unbounded queues: verification undecidable even for input-bounded "
        "compositions (Corollary 3.6)");
  }
  if (!options_.run.lossy) {
    return Status::UndecidableRegime(
        "perfect channels: undecidable already for 1-bounded perfect flat "
        "queues (Theorem 3.7); enable lossy channels (Theorem 3.4) or "
        "perfect_nested only");
  }
  if (options_.run.deterministic_flat_sends) {
    return Status::UndecidableRegime(
        "deterministic flat send rules: undecidable even with 1-bounded "
        "lossy flat queues (Theorem 3.8)");
  }
  if (!comp_->IsClosed() && !options_.run.allow_env_moves) {
    return Status::UndecidableRegime(
        "open composition verified without an environment model; use "
        "ModularVerifier (Section 5) or close the composition");
  }
  WSV_RETURN_IF_ERROR(comp_->CheckInputBounded(options_.ib_options));
  WSV_RETURN_IF_ERROR(
      property.CheckInputBounded(*comp_, options_.ib_options));
  return Status::Ok();
}

Result<VerificationResult> Verifier::Verify(const ltl::Property& property) {
  WSV_RETURN_IF_ERROR(ValidateProperty(*comp_, property));
  VerificationResult result;
  result.regime = CheckDecidableRegime(property);
  if (!result.regime.ok() && options_.require_decidable_regime) {
    return result.regime;
  }

  // --- Pseudo-domain: constants + fresh elements. ---
  size_t fresh = options_.fresh_domain_size;
  if (fresh == 0) {
    fresh = SufficientFreshDomainSize(*comp_, property,
                                      options_.run.queue_bound);
  }
  PseudoDomain pd =
      BuildPseudoDomain(*comp_, property.Constants(), fresh);
  interner_ = std::move(pd.interner);
  domain_ = std::move(pd.domain);
  fresh_values_ = std::move(pd.fresh);

  // Pin the databases before enumerating valuations, so their values join
  // the quantification domain.
  std::optional<std::vector<data::Instance>> fixed;
  if (options_.fixed_databases.has_value()) {
    WSV_ASSIGN_OR_RETURN(
        std::vector<data::Instance> dbs,
        MaterializeDatabases(*comp_, *options_.fixed_databases, interner_,
                             domain_));
    fixed = std::move(dbs);
  }

  // --- The symbolic task: one automaton of the negated property with open
  // leaves; one instance per valuation of the closure variables. ---
  SymbolicTask task;
  task.closure_variables = property.closure_variables();
  {
    obs::PhaseTimer automaton_phase("automaton");
    WSV_ASSIGN_OR_RETURN(
        ltl::GroundLtl ground,
        ltl::GroundToPropositional(property.formula(), /*negate=*/true,
                                   /*allow_free_leaves=*/true));
    WSV_ASSIGN_OR_RETURN(task.automaton, ground.BuildAutomaton());
    task.leaves = std::move(ground.propositions);
  }
  task.valuations =
      ValuationSpace(domain_, interner_, task.closure_variables.size());
  result.stats.valuations_checked = task.valuations.size();

  // --- Database sweep. ---
  EngineOptions engine_options;
  engine_options.run = options_.run;
  engine_options.iso_reduction = options_.iso_reduction;
  engine_options.max_databases = options_.max_databases;
  engine_options.db_range_lo = options_.db_range_lo;
  engine_options.db_range_hi = options_.db_range_hi;
  engine_options.valuation_range_lo = options_.valuation_range_lo;
  engine_options.valuation_range_hi = options_.valuation_range_hi;
  engine_options.count_only = options_.count_only;
  engine_options.valuation_mode = options_.valuation_mode;
  engine_options.budget = options_.budget;
  engine_options.jobs = options_.jobs;
  engine_options.fixed_databases = std::move(fixed);
  engine_options.control = options_.control;
  engine_options.on_db_error = options_.on_db_error;
  engine_options.checkpoint_path = options_.checkpoint_path;
  engine_options.checkpoint_fingerprint = options_.checkpoint_fingerprint;
  engine_options.checkpoint_every = options_.checkpoint_every;
  engine_options.resume_prefix = options_.resume_prefix;
  engine_options.resume_failed = options_.resume_failed;
  engine_options.resume_covered = options_.resume_covered;
  VerificationEngine engine(comp_, &interner_, domain_, fresh_values_,
                            engine_options);
  WSV_ASSIGN_OR_RETURN(EngineOutcome outcome, engine.Run(task));

  if (options_.count_only) {
    result.enumeration_count = outcome.enumeration_count;
    result.coverage.unit = outcome.coverage_unit;
    result.stats.timings = outcome.timings;
    result.holds = true;  // nothing verified; callers key off count_only
    return result;
  }

  result.stats.databases_checked = outcome.databases_checked;
  result.stats.searches = outcome.searches;
  result.stats.prefiltered = outcome.prefiltered;
  result.stats.prefilter_memo_misses = outcome.prefilter_memo_misses;
  result.stats.prefilter_memo_hits = outcome.prefilter_memo_hits;
  result.stats.search = outcome.search_stats;
  result.stats.jobs = outcome.jobs;
  result.stats.timings = outcome.timings;
  result.holds = !outcome.violation_found;
  if (outcome.violation_found) {
    Counterexample ce;
    ce.databases = std::move(outcome.databases);
    ce.closure_valuation = std::move(outcome.label);
    ce.lasso = std::move(outcome.lasso);
    ce.database_index = outcome.violation_db_index;
    ce.valuation_index = outcome.violation_valuation_index;
    result.counterexample = std::move(ce);
  }
  result.coverage.stop_reason = outcome.stop_reason;
  result.coverage.stop_status = outcome.stop_status;
  result.coverage.completed_prefix = outcome.completed_prefix;
  result.coverage.covered = std::move(outcome.covered);
  result.coverage.unit = outcome.coverage_unit;
  if (options_.fixed_databases.has_value()) {
    result.coverage.range_lo = options_.valuation_range_lo;
    result.coverage.range_hi = options_.valuation_range_hi;
  } else {
    result.coverage.range_lo = options_.db_range_lo;
    result.coverage.range_hi = options_.db_range_hi;
  }
  result.coverage.failed_db_indices = std::move(outcome.failed_db_indices);
  result.coverage.db_retries = outcome.db_retries;
  if (!outcome.stop_status.ok() && result.holds && result.regime.ok()) {
    result.regime = outcome.stop_status;
  }
  result.complete = result.regime.ok() && outcome.stop_status.ok() &&
                    !options_.fixed_databases.has_value() &&
                    options_.fresh_domain_size == 0;
  return result;
}

}  // namespace wsv::verifier
