#ifndef WSVERIFY_VERIFIER_SNAPSHOT_GRAPH_H_
#define WSVERIFY_VERIFIER_SNAPSHOT_GRAPH_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/run_control.h"
#include "common/status.h"
#include "fo/eval.h"
#include "fo/structure.h"
#include "runtime/transition.h"

namespace wsv::verifier {

using SnapshotId = uint32_t;

/// Which parts of a snapshot must be kept distinct. Everything here is
/// bisimulation-invariant for successor computation — the mover tag, event
/// flags, action relations (pure outputs; Definition 2.1 forbids reading
/// them in rule bodies) and previous-input relations no rule consults — so
/// any part not observed by a proposition is normalized away, collapsing
/// bisimilar snapshots.
struct SnapshotNormalization {
  bool keep_mover = true;
  bool keep_flags = true;
  bool keep_actions = true;
  /// keep_prev[peer][prev-relation index within the peer's
  /// prev_input_schema]; empty = keep everything.
  std::vector<std::vector<bool>> keep_prev;
};

/// The composition's configuration graph for one database choice, explored
/// lazily and shared across all property instances (valuations of the
/// universal closure): the expensive successor computation and the
/// per-snapshot property-evaluation structures are paid once, while each
/// product search only re-evaluates its own propositions on the cached
/// structures.
///
/// Snapshots are normalized: the mover tag and received/sent event flags do
/// not influence successor computation, so unless `keep_mover` /
/// `keep_flags` is set (because some proposition observes them), snapshots
/// differing only there are collapsed.
class SnapshotGraph {
 public:
  SnapshotGraph(const runtime::TransitionGenerator* generator,
                SnapshotNormalization normalization);

  const runtime::TransitionGenerator& generator() const { return *generator_; }

  /// Ids of the initial snapshots (Definition 2.6).
  Result<const std::vector<SnapshotId>*> Initials();

  /// Successor snapshot ids (deduplicated), computed on first use.
  Result<const std::vector<SnapshotId>*> Successors(SnapshotId sid);

  const runtime::Snapshot& snapshot(SnapshotId sid) const {
    return snapshots_[sid];
  }

  /// Builds the property-evaluation structure of a snapshot (transient —
  /// structures copy every relation, so they are never cached; LeafCache
  /// evaluates all leaves in one pass per snapshot instead).
  fo::MapStructure Structure(SnapshotId sid) const;

  size_t size() const { return snapshots_.size(); }
  size_t transitions_computed() const { return transitions_; }

  /// Exhaustively explores the reachable configuration graph (BFS), up to
  /// `max_snapshots`. Returns true iff exploration completed; on false the
  /// graph is partial and callers must fall back to on-the-fly search
  /// semantics (bounded verdicts). `control` (optional) is polled every ~1k
  /// expansions; a stop aborts with its stop status.
  Result<bool> ExploreAll(size_t max_snapshots,
                          RunControl* control = nullptr);

  /// True after a successful ExploreAll.
  bool fully_explored() const { return fully_explored_; }

 private:
  Result<SnapshotId> Intern(runtime::Snapshot snap);

  const runtime::TransitionGenerator* generator_;
  SnapshotNormalization normalization_;

  std::vector<runtime::Snapshot> snapshots_;
  std::unordered_map<runtime::Snapshot, SnapshotId, runtime::SnapshotHash>
      ids_;
  std::vector<std::optional<std::vector<SnapshotId>>> successors_;
  std::optional<std::vector<SnapshotId>> initials_;
  size_t transitions_ = 0;
  bool fully_explored_ = false;
};

/// Caches, per snapshot and per leaf formula, the set of satisfying
/// assignments of the leaf's free variables. Evaluated relationally once —
/// every property instance (closure valuation) then answers "does this leaf
/// hold under my valuation?" with a tuple lookup.
class LeafCache {
 public:
  /// `graph` must outlive the cache; `interner` resolves leaf constants.
  LeafCache(SnapshotGraph* graph, std::vector<fo::FormulaPtr> leaves,
            const Interner* interner);

  const std::vector<fo::FormulaPtr>& leaves() const { return leaves_; }

  /// Sorted free variables of leaf `leaf` (the column order of its
  /// ValuationSets).
  const std::vector<std::string>& LeafVariables(size_t leaf) const {
    return leaf_vars_[leaf];
  }

  /// Satisfying assignments of leaf `leaf` at snapshot `sid`.
  Result<const fo::ValuationSet*> Get(SnapshotId sid, size_t leaf);

  /// Union of the satisfying assignments of leaf `leaf` over *all* reachable
  /// snapshots; requires graph->fully_explored(). A valuation row absent
  /// from this union makes the proposition constant-false along every run —
  /// the engine then discharges the instance by automaton emptiness alone.
  Result<const data::Relation*> EverSatisfied(size_t leaf);

  /// Intersection over all reachable snapshots: rows satisfied *everywhere*
  /// make the proposition constant-true along every run.
  Result<const data::Relation*> AlwaysSatisfied(size_t leaf);

  /// Get() calls answered from an already-evaluated snapshot...
  size_t hits() const { return hits_; }
  /// ...versus snapshots whose leaves had to be evaluated relationally.
  size_t misses() const { return misses_; }

 private:
  SnapshotGraph* graph_;
  std::vector<fo::FormulaPtr> leaves_;
  std::vector<std::vector<std::string>> leaf_vars_;
  fo::Evaluator evaluator_;
  /// cache_[sid][leaf]
  std::vector<std::vector<std::optional<fo::ValuationSet>>> cache_;
  std::vector<std::optional<data::Relation>> ever_;
  std::vector<std::optional<data::Relation>> always_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_SNAPSHOT_GRAPH_H_
