#ifndef WSVERIFY_VERIFIER_SNAPSHOT_GRAPH_H_
#define WSVERIFY_VERIFIER_SNAPSHOT_GRAPH_H_

#include <atomic>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash.h"
#include "common/interner.h"
#include "common/run_control.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fo/eval.h"
#include "fo/structure.h"
#include "runtime/flat_snapshot.h"
#include "runtime/transition.h"

namespace wsv::verifier {

using SnapshotId = uint32_t;

/// Which parts of a snapshot must be kept distinct. Everything here is
/// bisimulation-invariant for successor computation — the mover tag, event
/// flags, action relations (pure outputs; Definition 2.1 forbids reading
/// them in rule bodies) and previous-input relations no rule consults — so
/// any part not observed by a proposition is normalized away, collapsing
/// bisimilar snapshots.
struct SnapshotNormalization {
  bool keep_mover = true;
  bool keep_flags = true;
  bool keep_actions = true;
  /// keep_prev[peer][prev-relation index within the peer's
  /// prev_input_schema]; empty = keep everything.
  std::vector<std::vector<bool>> keep_prev;
};

/// The composition's configuration graph for one database choice, explored
/// lazily and shared across all property instances (valuations of the
/// universal closure): the expensive successor computation and the
/// per-snapshot property-evaluation structures are paid once, while each
/// product search only re-evaluates its own propositions on the cached
/// structures.
///
/// Snapshots are normalized: the mover tag and received/sent event flags do
/// not influence successor computation, so unless `keep_mover` /
/// `keep_flags` is set (because some proposition observes them), snapshots
/// differing only there are collapsed.
///
/// Interned snapshots are stored as canonical flat encodings
/// (runtime::FlatSnapshot): one contiguous arena-backed uint32 span per
/// snapshot, deduplicated through an open-addressing id table keyed by the
/// span hash. Equality on the intern path is a single memcmp and the
/// Snapshot object graph is only rebuilt (into reusable scratch) when a
/// node is expanded or a witness is rendered. ExploreAll can run the
/// successor computation level-parallel on a borrowed ThreadPool; ids are
/// assigned by an ordered per-level merge, so the id sequence (and every
/// derived witness and statistic) is bit-for-bit identical to the serial
/// exploration at any job count.
class SnapshotGraph {
 public:
  SnapshotGraph(const runtime::TransitionGenerator* generator,
                SnapshotNormalization normalization);

  SnapshotGraph(const SnapshotGraph&) = delete;
  SnapshotGraph& operator=(const SnapshotGraph&) = delete;

  const runtime::TransitionGenerator& generator() const { return *generator_; }

  /// Ids of the initial snapshots (Definition 2.6).
  Result<const std::vector<SnapshotId>*> Initials();

  /// Successor snapshot ids (deduplicated), computed on first use.
  Result<const std::vector<SnapshotId>*> Successors(SnapshotId sid);

  /// The canonical flat encoding of a snapshot (stable for the graph's
  /// lifetime; spans live in the graph's arena).
  runtime::FlatSnapshot flat(SnapshotId sid) const { return flats_[sid]; }

  const runtime::FlatSnapshotCodec& codec() const { return codec_; }

  /// Decodes a snapshot into a fresh object (cold path — witness rendering
  /// and debugging; the hot paths work on the flat encodings directly).
  runtime::Snapshot snapshot(SnapshotId sid) const {
    return codec_.Decode(flats_[sid]);
  }

  /// Builds the property-evaluation structure of a snapshot (transient —
  /// structures copy every relation, so they are never cached; LeafCache
  /// evaluates all leaves in one pass per snapshot instead). Thread-safe:
  /// decodes into a local scratch snapshot.
  fo::MapStructure Structure(SnapshotId sid) const;

  size_t size() const { return flats_.size(); }
  size_t transitions_computed() const { return transitions_; }

  /// Bytes of canonical snapshot encodings held in the persistent arena.
  size_t arena_bytes() const { return arena_.used_bytes(); }

  /// Exhaustively explores the reachable configuration graph (BFS), up to
  /// `max_snapshots`. Returns true iff exploration completed; on false the
  /// graph is partial and callers must fall back to on-the-fly search
  /// semantics (bounded verdicts). `control` (optional) is polled every ~1k
  /// expansions; a stop aborts with its stop status.
  ///
  /// With a non-null `pool` and `lanes > 1`, each BFS level's successor
  /// computation is fanned out over the calling thread plus up to
  /// `lanes - 1` pool workers (see ThreadPool::ParallelChunks); the
  /// sequential per-level merge then interns in frontier order, so ids,
  /// counters, and the budget cut-off point are identical to a serial run.
  Result<bool> ExploreAll(size_t max_snapshots, RunControl* control = nullptr,
                          ThreadPool* pool = nullptr, size_t lanes = 1);

  /// True after a successful ExploreAll.
  bool fully_explored() const { return fully_explored_; }

 private:
  /// Applies the normalization in place (see SnapshotNormalization).
  void Normalize(runtime::Snapshot* snap) const;

  /// Normalizes and interns `snap` (via its flat encoding), reusing the
  /// member encode buffer. `snap` is left in its normalized state.
  SnapshotId Intern(runtime::Snapshot& snap);

  /// Interns an already-encoded span: returns the existing id or copies the
  /// span into the persistent arena under a fresh id.
  SnapshotId InternSpan(const uint32_t* words, uint32_t count, size_t hash);

  Result<bool> ExploreAllSerial(size_t max_snapshots, RunControl* control);
  Result<bool> ExploreAllParallel(size_t max_snapshots, RunControl* control,
                                  ThreadPool* pool, size_t lanes);

  const runtime::TransitionGenerator* generator_;
  SnapshotNormalization normalization_;
  runtime::FlatSnapshotCodec codec_;

  /// Canonical encodings: flats_[id] points into arena_; hashes_[id] is its
  /// span hash, kept so table growth never rehashes content.
  Arena arena_;
  std::vector<runtime::FlatSnapshot> flats_;
  std::vector<size_t> hashes_;
  FlatIdSet intern_;

  /// Serial-path scratch, reused across every intern/expansion.
  runtime::Snapshot decode_scratch_;
  std::vector<uint32_t> encode_buf_;

  std::vector<std::optional<std::vector<SnapshotId>>> successors_;
  std::optional<std::vector<SnapshotId>> initials_;
  size_t transitions_ = 0;
  bool fully_explored_ = false;
};

/// Caches, per snapshot and per leaf formula, the set of satisfying
/// assignments of the leaf's free variables. Evaluated relationally once —
/// every property instance (closure valuation) then answers "does this leaf
/// hold under my valuation?" with a tuple lookup.
///
/// After a complete exploration, SealAndPopulate evaluates every snapshot
/// up front (optionally in parallel); Get is then a lock-free read, safe to
/// call concurrently from many product searches.
class LeafCache {
 public:
  /// `graph` must outlive the cache; `interner` resolves leaf constants.
  LeafCache(SnapshotGraph* graph, std::vector<fo::FormulaPtr> leaves,
            const Interner* interner);

  const std::vector<fo::FormulaPtr>& leaves() const { return leaves_; }

  /// Sorted free variables of leaf `leaf` (the column order of its
  /// ValuationSets).
  const std::vector<std::string>& LeafVariables(size_t leaf) const {
    return leaf_vars_[leaf];
  }

  /// Satisfying assignments of leaf `leaf` at snapshot `sid`.
  Result<const fo::ValuationSet*> Get(SnapshotId sid, size_t leaf);

  /// All leaves of `sid` at once (indexed by leaf). One hit/miss account
  /// per call instead of per leaf — the product search's valuation builder
  /// reads every leaf of a snapshot anyway, and the per-leaf accounting
  /// (two atomic increments each) dominates the sealed-cache lookup.
  Result<const std::vector<std::optional<fo::ValuationSet>>*> GetAll(
      SnapshotId sid);

  /// Evaluates every leaf on every snapshot of the (fully explored) graph,
  /// fanning the per-snapshot evaluation out over `pool` (see
  /// ThreadPool::ParallelChunks; serial when pool is null or lanes <= 1).
  /// Afterwards every Get is a hit and touches no mutable state, so
  /// concurrent product searches can read the cache without locks. Hit/miss
  /// totals are identical to the lazy path on a complete graph (one miss
  /// per snapshot). On error, reports the lowest-snapshot-id failure.
  Status SealAndPopulate(ThreadPool* pool = nullptr, size_t lanes = 1);

  /// Union of the satisfying assignments of leaf `leaf` over *all* reachable
  /// snapshots; requires graph->fully_explored(). A valuation row absent
  /// from this union makes the proposition constant-false along every run —
  /// the engine then discharges the instance by automaton emptiness alone.
  Result<const data::Relation*> EverSatisfied(size_t leaf);

  /// Intersection over all reachable snapshots: rows satisfied *everywhere*
  /// make the proposition constant-true along every run.
  Result<const data::Relation*> AlwaysSatisfied(size_t leaf);

  /// Get() calls answered from an already-evaluated snapshot...
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// ...versus snapshots whose leaves had to be evaluated relationally.
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  /// Evaluates all leaves of one snapshot into cache_[sid] (the miss path).
  /// cache_ must already span sid.
  Status EvaluateSnapshot(SnapshotId sid);

  SnapshotGraph* graph_;
  std::vector<fo::FormulaPtr> leaves_;
  std::vector<std::vector<std::string>> leaf_vars_;
  fo::Evaluator evaluator_;
  /// cache_[sid][leaf]
  std::vector<std::vector<std::optional<fo::ValuationSet>>> cache_;
  std::vector<std::optional<data::Relation>> ever_;
  std::vector<std::optional<data::Relation>> always_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_SNAPSHOT_GRAPH_H_
