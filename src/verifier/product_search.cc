#include "verifier/product_search.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace wsv::verifier {

bool AnyPropositionMentionsPrefix(
    const std::vector<fo::FormulaPtr>& propositions, std::string_view prefix) {
  for (const fo::FormulaPtr& p : propositions) {
    for (const std::string& rel : p->RelationNames()) {
      if (StartsWith(rel, prefix)) return true;
      size_t dot = rel.rfind('.');
      if (dot != std::string::npos &&
          StartsWith(std::string_view(rel).substr(dot + 1), prefix)) {
        return true;
      }
    }
  }
  return false;
}

namespace {

/// Accumulates `e` into a literal cube (props in `pos` must hold, props in
/// `neg` must not). Returns false when the guard is not a cube or mentions
/// a proposition outside the 64-bit mask; conflicting masks (kFalse, or
/// p ∧ ¬p) are fine — they simply never match.
bool CompileCube(const automata::PropExprPtr& e, uint64_t* pos,
                 uint64_t* neg) {
  using Kind = automata::PropExpr::Kind;
  switch (e->kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      *pos |= 1;
      *neg |= 1;
      return true;
    case Kind::kLit:
      if (e->prop() >= 64) return false;
      *pos |= uint64_t{1} << e->prop();
      return true;
    case Kind::kNot: {
      const automata::PropExprPtr& c = e->children()[0];
      if (c->kind() == Kind::kLit && c->prop() < 64) {
        *neg |= uint64_t{1} << c->prop();
        return true;
      }
      if (c->kind() == Kind::kTrue) {
        *pos |= 1;
        *neg |= 1;
        return true;
      }
      if (c->kind() == Kind::kFalse) return true;
      return false;
    }
    case Kind::kAnd:
      for (const automata::PropExprPtr& c : e->children()) {
        if (!CompileCube(c, pos, neg)) return false;
      }
      return true;
    case Kind::kOr:
      return false;
  }
  return false;
}

}  // namespace

ProductSearch::GuardTable ProductSearch::CompileGuards(
    const automata::BuchiAutomaton& automaton) {
  // GPVW and protocol complementation emit literal cubes, which the hot
  // loop then evaluates with two masked compares against the packed
  // valuation.
  GuardTable guards(automaton.num_states());
  for (automata::StateId q = 0; q < automaton.num_states(); ++q) {
    const std::vector<automata::BuchiTransition>& ts =
        automaton.transitions_from(q);
    guards[q].reserve(ts.size());
    for (const automata::BuchiTransition& t : ts) {
      CompiledGuard g;
      if (CompileCube(t.guard, &g.pos, &g.neg)) g.cube = true;
      guards[q].push_back(g);
    }
  }
  return guards;
}

ProductSearch::ProductSearch(SnapshotGraph* graph, LeafCache* leaf_cache,
                             const automata::BuchiAutomaton* automaton,
                             std::vector<data::Tuple> leaf_rows,
                             SearchBudget budget,
                             const GuardTable* shared_guards)
    : graph_(graph),
      leaf_cache_(leaf_cache),
      automaton_(automaton),
      leaf_rows_(std::move(leaf_rows)),
      budget_(budget),
      guards_(shared_guards) {
  if (guards_ == nullptr) {
    owned_guards_ = CompileGuards(*automaton_);
    guards_ = &owned_guards_;
  }
  all_cubes_ = true;
  for (const std::vector<CompiledGuard>& qs : *guards_) {
    for (const CompiledGuard& g : qs) {
      if (!g.cube) {
        all_cubes_ = false;
        break;
      }
    }
    if (!all_cubes_) break;
  }
}

Result<uint64_t> ProductSearch::ValuationBits(SnapshotId sid) {
  if (sid >= val_ready_.size()) {
    val_ready_.resize(sid + 1, 0);
    val_bits_.resize(sid + 1, 0);
    if (!all_cubes_) valuations_.resize(sid + 1);
  }
  if (!val_ready_[sid]) {
    WSV_ASSIGN_OR_RETURN(const std::vector<std::optional<fo::ValuationSet>>*
                             sats,
                         leaf_cache_->GetAll(sid));
    uint64_t bits = 0;
    if (all_cubes_) {
      // Cube guards only read the packed bits — skip the vector<bool>.
      for (size_t p = 0; p < leaf_rows_.size(); ++p) {
        if (p < 64 && (*sats)[p]->rows().Contains(leaf_rows_[p])) {
          bits |= uint64_t{1} << p;
        }
      }
    } else {
      std::vector<bool> valuation(leaf_rows_.size(), false);
      for (size_t p = 0; p < leaf_rows_.size(); ++p) {
        if ((*sats)[p]->rows().Contains(leaf_rows_[p])) {
          valuation[p] = true;
          if (p < 64) bits |= uint64_t{1} << p;
        }
      }
      valuations_[sid] = std::move(valuation);
    }
    val_bits_[sid] = bits;
    val_ready_[sid] = 1;
  }
  return val_bits_[sid];
}

ProductSearch::ProductId ProductSearch::InternProduct(SnapshotId sid,
                                                      automata::StateId q) {
  uint64_t key = (static_cast<uint64_t>(sid) << 32) | q;
  size_t hash = HashKey64(key);
  ProductId found = product_ids_.Find(hash, [&](uint32_t id) {
    return product_states_[id].first == sid && product_states_[id].second == q;
  });
  if (found != FlatIdSet::kEmpty) return found;
  ProductId id = static_cast<ProductId>(product_states_.size());
  product_ids_.Insert(hash, id);
  product_states_.emplace_back(sid, q);
  color_.push_back(Color::kWhite);
  inner_visited_.push_back(false);
  // Heartbeat at a granularity that costs one branch per 4096 states.
  if ((product_states_.size() & 0xFFF) == 0) {
    obs::ProgressMeter::Global().MaybeBeat();
  }
  return id;
}

Result<std::vector<ProductSearch::ProductId>> ProductSearch::ProductSuccessors(
    ProductId pid) {
  // One poll site covers both the outer and the inner DFS — every loop
  // iteration expands successors. Amortized to one Check() per ~1k calls.
  if (budget_.control != nullptr && (++control_polls_ & 0x3FF) == 0) {
    WSV_RETURN_IF_ERROR(budget_.control->Check());
  }
  auto [sid, q] = product_states_[pid];
  WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* succs,
                       graph_->Successors(sid));
  std::vector<SnapshotId> stable;
  if (!graph_->fully_explored()) {
    // Lazy graph: interning below may grow the successor table and move
    // the pointed-to vector. A sealed graph never grows, so the fully
    // explored (hot) path skips the copy.
    stable = *succs;
    succs = &stable;
  }
  const std::vector<automata::BuchiTransition>& ts =
      automaton_->transitions_from(q);
  const std::vector<CompiledGuard>& compiled = (*guards_)[q];
  std::vector<ProductId> out;
  out.reserve(succs->size() + 4);
  for (SnapshotId next_sid : *succs) {
    WSV_ASSIGN_OR_RETURN(uint64_t bits, ValuationBits(next_sid));
    for (size_t k = 0; k < ts.size(); ++k) {
      const CompiledGuard& g = compiled[k];
      bool take = g.cube ? (bits & g.pos) == g.pos && (bits & g.neg) == 0
                         : ts[k].guard->Eval(*valuations_[next_sid]);
      if (!take) continue;
      out.push_back(InternProduct(next_sid, ts[k].to));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  transitions_ += out.size();
  return out;
}

Result<std::optional<std::vector<ProductSearch::ProductId>>>
ProductSearch::InnerDfs(ProductId seed) {
  // Searches for a cycle back onto the outer (cyan) stack, starting from
  // `seed` (an accepting state that just finished its outer expansion).
  struct Frame {
    ProductId state;
    std::vector<ProductId> succs;
    size_t next = 0;
  };
  ++inner_searches_;
  std::vector<Frame> stack;
  std::vector<ProductId> path{seed};
  WSV_ASSIGN_OR_RETURN(std::vector<ProductId> seed_succs,
                       ProductSuccessors(seed));
  stack.push_back(Frame{seed, std::move(seed_succs), 0});
  inner_visited_[seed] = true;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.succs.size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    ProductId next = frame.succs[frame.next++];
    if (color_[next] == Color::kCyan) {
      path.push_back(next);
      return std::optional<std::vector<ProductId>>(std::move(path));
    }
    if (inner_visited_[next]) continue;
    inner_visited_[next] = true;
    WSV_ASSIGN_OR_RETURN(std::vector<ProductId> succs,
                         ProductSuccessors(next));
    path.push_back(next);
    stack.push_back(Frame{next, std::move(succs), 0});
  }
  return std::optional<std::vector<ProductId>>();
}

Result<std::optional<LassoWitness>> ProductSearch::FindAcceptedRun(
    SearchStats* stats) {
  assert(automaton_->num_accepting_sets() <= 1 &&
         "degeneralize the property automaton first");

  auto finish = [&]() {
    if (stats != nullptr) {
      // Snapshot counts are owned by the shared graph; the engine adds them
      // once per database.
      stats->product_states += product_states_.size();
      stats->transitions += transitions_;
      stats->inner_searches += inner_searches_;
    }
    obs::Registry& registry = obs::Registry::Global();
    static obs::Counter& states_counter = registry.counter("ndfs.product_states");
    static obs::Counter& trans_counter = registry.counter("ndfs.transitions");
    static obs::Counter& inner_counter = registry.counter("ndfs.inner_searches");
    static obs::Histogram& per_search =
        registry.histogram("ndfs.states_per_search");
    states_counter.Add(product_states_.size());
    trans_counter.Add(transitions_);
    inner_counter.Add(inner_searches_);
    per_search.Record(product_states_.size());
  };

  // Seed: every initial snapshot, paired with the automaton edges from
  // initial states whose guards match that snapshot's valuation.
  WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* init_ptr,
                       graph_->Initials());
  std::vector<SnapshotId> initial_snaps = *init_ptr;
  std::vector<ProductId> initials;
  for (SnapshotId s0 : initial_snaps) {
    WSV_ASSIGN_OR_RETURN(uint64_t bits0, ValuationBits(s0));
    for (automata::StateId q0 : automaton_->initial_states()) {
      const std::vector<automata::BuchiTransition>& ts0 =
          automaton_->transitions_from(q0);
      const std::vector<CompiledGuard>& compiled0 = (*guards_)[q0];
      for (size_t k = 0; k < ts0.size(); ++k) {
        const automata::BuchiTransition& t = ts0[k];
        const CompiledGuard& g = compiled0[k];
        bool take = g.cube
                        ? (bits0 & g.pos) == g.pos && (bits0 & g.neg) == 0
                        : t.guard->Eval(*valuations_[s0]);
        if (!take) continue;
        ProductId pid = InternProduct(s0, t.to);
        if (std::find(initials.begin(), initials.end(), pid) ==
            initials.end()) {
          initials.push_back(pid);
        }
      }
    }
  }

  // Outer DFS (CVWY nested depth-first search): postorder on an accepting
  // state triggers the inner cycle search.
  struct Frame {
    ProductId state;
    std::vector<ProductId> succs;
    size_t next = 0;
  };
  for (ProductId root : initials) {
    if (color_[root] != Color::kWhite) continue;
    std::vector<Frame> stack;
    WSV_ASSIGN_OR_RETURN(std::vector<ProductId> root_succs,
                         ProductSuccessors(root));
    color_[root] = Color::kCyan;
    stack.push_back(Frame{root, std::move(root_succs), 0});

    while (!stack.empty()) {
      if (product_states_.size() > budget_.max_states) {
        if (stats != nullptr) ++stats->budget_hits;
        static obs::Counter& budget_counter =
            obs::Registry::Global().counter("ndfs.budget_hits");
        budget_counter.Add(1);
        finish();
        return Status::BudgetExceeded(
            "product exploration exceeded max_states = " +
            std::to_string(budget_.max_states));
      }
      Frame& frame = stack.back();
      if (frame.next < frame.succs.size()) {
        ProductId next = frame.succs[frame.next++];
        if (color_[next] != Color::kWhite) continue;
        WSV_ASSIGN_OR_RETURN(std::vector<ProductId> succs,
                             ProductSuccessors(next));
        color_[next] = Color::kCyan;
        stack.push_back(Frame{next, std::move(succs), 0});
        continue;
      }
      // Postorder.
      ProductId state = frame.state;
      if (automaton_->IsAccepting(product_states_[state].second)) {
        WSV_ASSIGN_OR_RETURN(std::optional<std::vector<ProductId>> cycle_path,
                             InnerDfs(state));
        if (cycle_path.has_value()) {
          // Prefix: the outer stack from root to `state`. Cycle: the inner
          // path state -> ... -> t (t cyan), closed through the outer-stack
          // segment t -> ... -> state.
          LassoWitness witness;
          for (const Frame& f : stack) {
            witness.prefix.push_back(
                graph_->snapshot(product_states_[f.state].first));
          }
          ProductId reentry = cycle_path->back();
          std::vector<ProductId> cycle = *cycle_path;
          size_t reentry_pos = stack.size();
          for (size_t i = 0; i < stack.size(); ++i) {
            if (stack[i].state == reentry) {
              reentry_pos = i;
              break;
            }
          }
          if (reentry_pos < stack.size()) {
            for (size_t i = reentry_pos + 1; i < stack.size(); ++i) {
              cycle.push_back(stack[i].state);
            }
          }
          for (ProductId p : cycle) {
            witness.cycle.push_back(
                graph_->snapshot(product_states_[p].first));
          }
          finish();
          return std::optional<LassoWitness>(std::move(witness));
        }
      }
      color_[state] = Color::kBlue;
      stack.pop_back();
    }
  }
  finish();
  return std::optional<LassoWitness>();
}

}  // namespace wsv::verifier
