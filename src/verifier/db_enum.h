#ifndef WSVERIFY_VERIFIER_DB_ENUM_H_
#define WSVERIFY_VERIFIER_DB_ENUM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/instance.h"
#include "data/value.h"
#include "spec/composition.h"

namespace wsv::verifier {

/// Lazily enumerates all database instances of a composition over a finite
/// pseudo-domain, optionally keeping only canonical representatives under
/// permutations of the fresh (non-constant) elements — genericity of FO
/// rules makes isomorphic databases equi-satisfiable, so one representative
/// per orbit suffices (DESIGN.md §5 step 3).
class DatabaseEnumerator {
 public:
  /// `movable` are the pseudo-domain elements that permutations may move
  /// (fresh elements; constants stay fixed).
  DatabaseEnumerator(const spec::Composition* comp, data::Domain domain,
                     std::vector<data::Value> movable, bool iso_reduce);

  /// Total number of raw (pre-reduction) database vectors.
  /// Returns SIZE_MAX if the count overflows.
  size_t RawCount() const;

  /// Non-OK when some relation's tuple universe |domain|^arity exceeds the
  /// 63 tuples a Slot::mask can index — the sweep over 2^64+ subsets is
  /// infeasible anyway, so this surfaces as a budget error instead of
  /// silently-overflowing mask arithmetic. Next() yields nothing while
  /// non-OK.
  const Status& status() const { return status_; }

  /// Produces the next database vector (aligned with comp.peers());
  /// returns false when exhausted.
  bool Next(std::vector<data::Instance>* out);

  /// Restarts the enumeration.
  void Reset();

 private:
  struct Slot {
    size_t peer;       // peer index
    size_t relation;   // database-relation index within the peer
    size_t num_tuples; // |domain|^arity — the tuple universe size
    std::vector<data::Tuple> universe;
    uint64_t mask = 0;  // current subset of the universe
  };

  void Materialize(std::vector<data::Instance>* out) const;
  bool Advance();

  const spec::Composition* comp_;
  data::Domain domain_;
  std::vector<data::Value> movable_;
  bool iso_reduce_;
  std::vector<Slot> slots_;
  Status status_ = Status::Ok();
  bool exhausted_ = false;
  bool first_ = true;
};

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_DB_ENUM_H_
