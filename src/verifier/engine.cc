#include "verifier/engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "automata/emptiness.h"
#include "common/thread_pool.h"
#include "fo/bdd.h"
#include "fo/logic.h"
#include "obs/lock_profile.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timer.h"
#include "runtime/transition.h"
#include "verifier/checkpoint.h"
#include "verifier/db_enum.h"
#include "verifier/parallel_sweep.h"

namespace wsv::verifier {

Result<std::vector<data::Instance>> MaterializeDatabases(
    const spec::Composition& comp, const std::vector<NamedDatabase>& named,
    Interner& interner, data::Domain& domain) {
  if (named.size() != comp.peers().size()) {
    return Status::InvalidSpec(
        "fixed databases: expected one database per peer (" +
        std::to_string(comp.peers().size()) + "), got " +
        std::to_string(named.size()));
  }
  std::vector<data::Instance> out;
  for (size_t p = 0; p < comp.peers().size(); ++p) {
    const data::Schema& schema = comp.peers()[p].database_schema();
    data::Instance inst(&schema);
    for (const auto& [relation, tuples] : named[p]) {
      size_t idx = schema.IndexOf(relation);
      if (idx == data::Schema::kNpos) {
        return Status::NotFound("fixed database for peer '" +
                                comp.peers()[p].name() +
                                "' mentions unknown relation '" + relation +
                                "'");
      }
      for (const std::vector<std::string>& tuple : tuples) {
        if (tuple.size() != schema.relation(idx).arity()) {
          return Status::InvalidSpec("fixed database tuple arity mismatch in "
                                     "relation '" +
                                     relation + "'");
        }
        std::vector<data::Value> row;
        row.reserve(tuple.size());
        for (const std::string& spelling : tuple) {
          data::Value v = interner.Intern(spelling);
          domain.Add(v);
          row.push_back(v);
        }
        inst.relation(idx).Insert(data::Tuple(std::move(row)));
      }
    }
    out.push_back(std::move(inst));
  }
  return out;
}

PseudoDomain BuildPseudoDomain(const spec::Composition& comp,
                               const std::set<std::string>& extra_constants,
                               size_t fresh_count) {
  PseudoDomain pd;
  pd.interner = comp.BuildInterner();
  for (const std::string& c : extra_constants) pd.interner.Intern(c);
  for (SymbolId id = 0; id < pd.interner.size(); ++id) pd.domain.Add(id);
  for (size_t i = 0; i < fresh_count; ++i) {
    data::Value v = pd.interner.Intern("#" + std::to_string(i + 1));
    pd.fresh.push_back(v);
    pd.domain.Add(v);
  }
  return pd;
}

ValuationSpace::ValuationSpace(const data::Domain& domain,
                               const Interner& interner, size_t num_vars)
    : num_vars_(num_vars) {
  values_.assign(domain.values().begin(), domain.values().end());
  spellings_.reserve(values_.size());
  for (data::Value v : values_) spellings_.push_back(interner.Text(v));
  if (num_vars_ == 0) return;  // size_ stays 1: the single empty valuation
  if (values_.empty()) {
    size_ = 0;
    return;
  }
  for (size_t i = 0; i < num_vars_; ++i) {
    if (size_ > static_cast<size_t>(-1) / values_.size()) {
      size_ = static_cast<size_t>(-1);  // saturate |domain|^num_vars
      return;
    }
    size_ *= values_.size();
  }
}

void ValuationSpace::DecodeValues(size_t index,
                                  std::vector<data::Value>* out) const {
  out->clear();
  out->reserve(num_vars_);
  // Mixed-radix decode, position 0 least significant: the same order the
  // historical materializing enumeration produced.
  const size_t radix = values_.size();
  for (size_t i = 0; i < num_vars_; ++i) {
    out->push_back(values_[index % radix]);
    index /= radix;
  }
}

void ValuationSpace::DecodeSpellings(size_t index,
                                     std::vector<std::string>* out) const {
  // resize() keeps the element strings alive, so a scratch buffer reused
  // across the fan-out loop assigns into existing capacity instead of
  // allocating num_vars fresh strings per call.
  out->resize(num_vars_);
  const size_t radix = spellings_.size();
  for (size_t i = 0; i < num_vars_; ++i) {
    (*out)[i] = spellings_[index % radix];
    index /= radix;
  }
}

std::vector<std::string> ValuationSpace::DecodeSpellings(size_t index) const {
  std::vector<std::string> out;
  DecodeSpellings(index, &out);
  return out;
}

std::optional<ValuationMode> ValuationModeFromName(const std::string& name) {
  if (name == "concrete") return ValuationMode::kConcrete;
  if (name == "symbolic") return ValuationMode::kSymbolic;
  if (name == "auto") return ValuationMode::kAuto;
  return std::nullopt;
}

const char* ValuationModeName(ValuationMode mode) {
  switch (mode) {
    case ValuationMode::kConcrete:
      return "concrete";
    case ValuationMode::kSymbolic:
      return "symbolic";
    case ValuationMode::kAuto:
      return "auto";
  }
  return "concrete";
}

std::vector<std::vector<std::string>> EnumerateValuations(
    const data::Domain& domain, const Interner& interner, size_t num_vars) {
  ValuationSpace space(domain, interner, num_vars);
  std::vector<std::vector<std::string>> out;
  out.reserve(space.size());
  std::vector<std::string> scratch;
  for (size_t i = 0; i < space.size(); ++i) {
    space.DecodeSpellings(i, &scratch);
    out.push_back(scratch);
  }
  return out;
}

VerificationEngine::VerificationEngine(const spec::Composition* comp,
                                       const Interner* interner,
                                       data::Domain domain,
                                       std::vector<data::Value> fresh,
                                       EngineOptions options)
    : comp_(comp),
      interner_(interner),
      domain_(std::move(domain)),
      fresh_(std::move(fresh)),
      options_(std::move(options)) {
  // The deadline/cancellation token rides wherever the budget already goes,
  // so every search loop picks it up without extra plumbing.
  options_.budget.control = options_.control;
}

namespace {

/// A leaf is database-rigid when every relation it mentions is a fixed
/// database relation: its truth (per valuation) is then constant along any
/// run with the same database, so it can be decided once and folded into
/// the automaton before the state-space search.
bool IsRigidLeaf(const fo::FormulaPtr& leaf, const spec::Composition& comp) {
  for (const std::string& rel : leaf->RelationNames()) {
    if (comp.Classify(rel) != fo::RelClass::kDatabase) return false;
  }
  return true;
}

/// Rebuilds `automaton` with guards partially evaluated under the rigid
/// truths, dropping edges whose guards became false.
automata::BuchiAutomaton RestrictAutomaton(
    const automata::BuchiAutomaton& automaton,
    const std::vector<int8_t>& truths) {
  automata::BuchiAutomaton out(automaton.num_props());
  for (size_t s = 0; s < automaton.num_states(); ++s) out.AddState();
  for (automata::StateId s : automaton.initial_states()) out.AddInitial(s);
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    for (const automata::BuchiTransition& t :
         automaton.transitions_from(static_cast<automata::StateId>(s))) {
      automata::PropExprPtr guard =
          automata::PropExpr::PartialEval(t.guard, truths);
      if (guard->kind() == automata::PropExpr::Kind::kFalse) continue;
      out.AddTransition(static_cast<automata::StateId>(s), t.to,
                        std::move(guard));
    }
  }
  std::vector<automata::StateId> accepting;
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    if (automaton.IsAccepting(static_cast<automata::StateId>(s))) {
      accepting.push_back(static_cast<automata::StateId>(s));
    }
  }
  out.AddAcceptingSet(std::move(accepting));
  return out;
}

}  // namespace

/// Sharded, exactly-once prefilter memo: at most 3^#leaves distinct
/// truth-status vectors versus |domain|^#vars valuations. Each key's entry
/// is computed exactly once even under concurrent lookups (waiters block on
/// the shard and then count a hit), so hit/miss totals are deterministic at
/// any job count. Entries are pointer-stable: concurrent product searches
/// read the memoized automata in place.
class PrefilterMemo {
 public:
  struct Entry {
    bool empty_language = false;
    automata::BuchiAutomaton automaton{0};
    /// Guard cubes compiled once per restricted automaton and shared by
    /// every product search (one per valuation) that hits this entry.
    ProductSearch::GuardTable guards;
  };

  /// Looks `key` up, running `compute` under the shard lock on first sight.
  /// `*was_miss` reports whether this call computed the entry. The caller
  /// owns `key`'s buffer (reused across lookups); the memo copies it only
  /// on insert.
  template <typename Fn>
  const Entry* GetOrCompute(const std::string& key, bool* was_miss,
                            const Fn& compute) {
    Shard& shard = shards_[std::hash<std::string>{}(key) % kShards];
    std::lock_guard<obs::TimedMutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      *was_miss = false;
      return it->second.get();
    }
    *was_miss = true;
    auto entry = std::make_unique<Entry>(compute());
    const Entry* raw = entry.get();
    shard.map.emplace(key, std::move(entry));
    return raw;
  }

 private:
  static constexpr size_t kShards = 8;
  struct Shard {
    // All eight shard mutexes report as one "prefilter_memo" lock site:
    // contention here means concurrent lanes colliding on hot memo keys.
    obs::TimedMutex mu{"prefilter_memo"};
    std::unordered_map<std::string, std::unique_ptr<Entry>> map;
  };
  std::array<Shard, kShards> shards_;
};

/// Per-lane accumulators and scratch buffers of the valuation fan-out. A
/// lane is touched by exactly one thread at a time (lane 0 = the
/// dispatching caller, others = pool drainers), so nothing here is locked;
/// lanes are merged in index order when the fan-out completes.
struct VerificationEngine::ValuationLane {
  struct Candidate {
    size_t index;
    LassoWitness lasso;
  };

  size_t searches = 0;
  size_t prefiltered = 0;
  size_t memo_misses = 0;
  size_t memo_hits = 0;
  SearchStats stats;
  /// (valuation index, status) of searches cut by the state budget,
  /// replayed in serial order at merge time (mirrors ParallelSweep).
  std::vector<std::pair<size_t, Status>> budget_events;
  /// Lowest-index witness this lane found.
  std::optional<Candidate> candidate;

  // Scratch reused across valuations: the decoded assignment, the rigid
  // truth-status vector and the memo key built from it (no per-lookup
  // string reallocation).
  std::vector<data::Value> values;
  std::vector<int8_t> rigid_truths;
  std::string memo_key;
};

/// Read-only per-database state shared by every valuation instance.
struct VerificationEngine::ValuationContext {
  const SymbolicTask* task;
  SnapshotGraph* graph;
  LeafCache* cache;
  PrefilterMemo* memo;
  const std::vector<bool>* rigid;
  SnapshotId init_sid;
  const std::vector<const data::Relation*>* ever_sat;
  const std::vector<const data::Relation*>* always_sat;
  /// leaf_positions[i][k]: closure-variable position of leaf i's k-th free
  /// variable — hoisted out of the per-valuation loop, which previously did
  /// a string search per leaf variable per valuation.
  const std::vector<std::vector<size_t>>* leaf_positions;
};

namespace {

/// One leaf-signature equivalence class of the valuation space: every
/// member index induces the same truth assignment on every property leaf
/// at every reachable snapshot, so the product search has one outcome for
/// all of them. `min_index` is the lexicographically least member — the
/// representative that is actually searched, and (for a violating class)
/// exactly the index the serial concrete loop would have reported first.
struct ValuationClass {
  size_t min_index;
  size_t size;
};

/// Partitions the valuation slice [v_lo, v_hi) into leaf-signature classes
/// over the *sealed* leaf cache (the graph must be fully explored).
///
/// Per leaf: every row in any snapshot's satisfying set is grouped by its
/// snapshot-membership profile (the set of snapshots containing it); each
/// profile becomes a decision diagram — the OR of its row cubes over the
/// leaf's closure positions — which is the leaf evaluated symbolically as
/// a predicate on valuation indices. Rows no snapshot satisfies share the
/// ambient (complement) profile. Classes are the nonempty intersections of
/// one profile diagram per leaf, intersected with the slice interval.
Result<std::vector<ValuationClass>> PartitionValuationClasses(
    SnapshotGraph* graph, LeafCache* cache, const ValuationSpace& space,
    const std::vector<std::vector<size_t>>& leaf_positions, size_t v_lo,
    size_t v_hi) {
  obs::PhaseTimer phase("symbolic_partition");
  fo::bdd::Manager mgr(space.num_vars(), space.values().size());
  fo::BddLogic logic{&mgr, &space.values()};

  std::vector<fo::bdd::NodeRef> classes{mgr.Interval(v_lo, v_hi)};
  if (classes[0] == fo::bdd::kFalse) classes.clear();
  const size_t num_leaves = leaf_positions.size();
  std::vector<uint32_t> digits;
  for (size_t i = 0; i < num_leaves && !classes.empty(); ++i) {
    const std::vector<size_t>& slots = leaf_positions[i];
    // Row -> sorted list of snapshots whose satisfying set contains it.
    std::map<data::Tuple, std::vector<SnapshotId>> row_profiles;
    for (SnapshotId sid = 0; sid < graph->size(); ++sid) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat, cache->Get(sid, i));
      for (const data::Tuple& row : sat->rows()) {
        row_profiles[row].push_back(sid);
      }
    }
    // Profile -> diagram of the indices projecting onto its rows. A row
    // with a value outside the valuation domain is unreachable by any
    // index (its cube is empty) and drops out here.
    std::map<std::vector<SnapshotId>, fo::bdd::NodeRef> profiles;
    fo::bdd::NodeRef any = fo::bdd::kFalse;
    for (const auto& [row, sids] : row_profiles) {
      fo::bdd::NodeRef cube = fo::bdd::kTrue;
      digits.clear();
      bool reachable = true;
      for (size_t k = 0; k < slots.size() && reachable; ++k) {
        int d = logic.DigitOf(row[k]);
        reachable = d >= 0;
        if (reachable) digits.push_back(static_cast<uint32_t>(d));
      }
      if (!reachable) continue;
      cube = mgr.Cube(slots, digits);
      auto [it, fresh] = profiles.try_emplace(sids, fo::bdd::kFalse);
      it->second = mgr.Or(it->second, cube);
      any = mgr.Or(any, cube);
    }
    const fo::bdd::NodeRef ambient = mgr.Not(any);
    std::vector<fo::bdd::NodeRef> refined;
    refined.reserve(classes.size());
    for (fo::bdd::NodeRef cls : classes) {
      for (const auto& [sids, dd] : profiles) {
        fo::bdd::NodeRef inter = mgr.And(cls, dd);
        if (inter != fo::bdd::kFalse) refined.push_back(inter);
      }
      fo::bdd::NodeRef amb = mgr.And(cls, ambient);
      if (amb != fo::bdd::kFalse) refined.push_back(amb);
    }
    classes = std::move(refined);
  }

  std::vector<ValuationClass> out;
  out.reserve(classes.size());
  for (fo::bdd::NodeRef cls : classes) {
    out.push_back(ValuationClass{mgr.MinIndex(cls), mgr.SatCount(cls)});
  }
  // Ascending representative order IS serial valuation order: classes are
  // disjoint, so checking them by least member and stopping at the first
  // violation reproduces the concrete loop's lowest-index witness.
  std::sort(out.begin(), out.end(),
            [](const ValuationClass& a, const ValuationClass& b) {
              return a.min_index < b.min_index;
            });
  obs::Registry& registry = obs::Registry::Global();
  registry.counter("bdd.nodes").Add(mgr.node_count());
  registry.counter("bdd.cache_hits").Add(mgr.cache_hits());
  return out;
}

}  // namespace

Result<bool> VerificationEngine::CheckOneValuation(const ValuationContext& ctx,
                                                   size_t index,
                                                   ValuationLane& lane,
                                                   size_t weight) {
  const SymbolicTask& task = *ctx.task;
  // The valuation count is |domain|^#vars — a deadline must be able to cut
  // a sweep short between instances, not only inside a search.
  if (options_.budget.control != nullptr) {
    WSV_RETURN_IF_ERROR(options_.budget.control->Check());
  }
  task.valuations.DecodeValues(index, &lane.values);

  // Build this instance's per-leaf lookup rows.
  const size_t num_leaves = task.leaves.size();
  lane.rigid_truths.assign(num_leaves, -1);
  std::vector<data::Tuple> leaf_rows;
  leaf_rows.reserve(num_leaves);
  for (size_t i = 0; i < num_leaves; ++i) {
    const std::vector<size_t>& positions = (*ctx.leaf_positions)[i];
    std::vector<data::Value> row;
    row.reserve(positions.size());
    for (size_t pos : positions) row.push_back(lane.values[pos]);
    leaf_rows.push_back(data::Tuple(std::move(row)));
    if ((*ctx.rigid)[i]) {
      WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat,
                           ctx.cache->Get(ctx.init_sid, i));
      lane.rigid_truths[i] = sat->rows().Contains(leaf_rows[i]) ? 1 : 0;
    } else if ((*ctx.ever_sat)[i] != nullptr &&
               !(*ctx.ever_sat)[i]->Contains(leaf_rows[i])) {
      lane.rigid_truths[i] = 0;  // never satisfied anywhere in the graph
    } else if ((*ctx.always_sat)[i] != nullptr &&
               (*ctx.always_sat)[i]->Contains(leaf_rows[i])) {
      lane.rigid_truths[i] = 1;  // satisfied at every reachable snapshot
    }
  }

  // Prefilter: with database-rigid and never/always-satisfied propositions
  // fixed, an automaton with empty language cannot accept any run — skip
  // the search. Restriction + emptiness depends only on the truth-status
  // vector, so it is memoized across valuations.
  bool any_fixed = false;
  for (int8_t t : lane.rigid_truths) any_fixed = any_fixed || t >= 0;
  lane.memo_key.assign(lane.rigid_truths.begin(), lane.rigid_truths.end());
  bool was_miss = false;
  const PrefilterMemo::Entry* entry =
      ctx.memo->GetOrCompute(lane.memo_key, &was_miss, [&] {
        obs::PhaseTimer prefilter_phase("prefilter");
        PrefilterMemo::Entry e;
        e.automaton = any_fixed
                          ? RestrictAutomaton(task.automaton, lane.rigid_truths)
                          : task.automaton;
        e.empty_language = any_fixed && automata::IsEmptyLanguage(e.automaton);
        if (!e.empty_language) {
          e.guards = ProductSearch::CompileGuards(e.automaton);
        }
        return e;
      });
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter& valuations_checked =
      registry.counter("engine.valuations_checked");
  // Symbolic classes stand for `weight` indices: coverage counters keep
  // counting valuations, so classes-vs-valuations stays comparable across
  // modes (and valuation_classes <= valuations_checked by construction).
  valuations_checked.Add(weight);
  if (was_miss) {
    ++lane.memo_misses;
    static obs::Counter& memo_misses =
        registry.counter("engine.prefilter_memo_misses");
    memo_misses.Add(1);
  } else {
    ++lane.memo_hits;
    static obs::Counter& memo_hits =
        registry.counter("engine.prefilter_memo_hits");
    memo_hits.Add(1);
  }
  if (entry->empty_language) {
    lane.prefiltered += weight;
    static obs::Counter& prefiltered = registry.counter("engine.prefiltered");
    prefiltered.Add(weight);
    return false;
  }

  ++lane.searches;
  static obs::Counter& searches = registry.counter("engine.searches");
  searches.Add(1);
  ProductSearch search(ctx.graph, ctx.cache, &entry->automaton,
                       std::move(leaf_rows), options_.budget, &entry->guards);
  Result<std::optional<LassoWitness>> witness = [&] {
    obs::PhaseTimer ndfs_phase("ndfs");
    return search.FindAcceptedRun(&lane.stats);
  }();
  if (!witness.ok()) {
    if (witness.status().code() == StatusCode::kBudgetExceeded) {
      lane.budget_events.emplace_back(index, witness.status());
      return false;
    }
    return witness.status();
  }
  if (witness.value().has_value()) {
    if (!lane.candidate.has_value() || index < lane.candidate->index) {
      lane.candidate =
          ValuationLane::Candidate{index, std::move(**witness)};
    }
    return true;
  }
  return false;
}

Result<bool> VerificationEngine::CheckDatabases(
    const SymbolicTask& task, const std::vector<data::Instance>& dbs,
    size_t db_index, EngineOutcome& outcome) {
  // One trace span per database sweep iteration; args built only when the
  // recorder is on so the common path stays allocation-free.
  obs::PhaseTimer db_span(
      "check_db",
      obs::TracingEnabled()
          ? "{\"db\":" + std::to_string(db_index) + "}"
          : std::string());
  runtime::TransitionGenerator generator(comp_, dbs, domain_, interner_,
                                         options_.run);
  SnapshotNormalization normalization;
  normalization.keep_mover =
      AnyPropositionMentionsPrefix(task.leaves, "move_");
  normalization.keep_flags =
      AnyPropositionMentionsPrefix(task.leaves, "received_") ||
      AnyPropositionMentionsPrefix(task.leaves, "sent_");
  // Action relations are pure outputs; previous-input relations matter only
  // to rules that read them. Keep each exactly when some proposition (or,
  // for prev, some rule) observes it.
  std::set<std::string> leaf_relations;
  for (const fo::FormulaPtr& leaf : task.leaves) {
    auto rels = leaf->RelationNames();
    leaf_relations.insert(rels.begin(), rels.end());
  }
  normalization.keep_actions = false;
  for (const std::string& rel : leaf_relations) {
    if (comp_->Classify(rel) == fo::RelClass::kAction) {
      normalization.keep_actions = true;
      break;
    }
  }
  normalization.keep_prev.resize(comp_->peers().size());
  for (size_t p = 0; p < comp_->peers().size(); ++p) {
    const spec::Peer& peer = comp_->peers()[p];
    std::set<std::string> rule_relations;
    for (const spec::Rule& rule : peer.rules()) {
      auto rels = rule.body->RelationNames();
      rule_relations.insert(rels.begin(), rels.end());
    }
    const data::Schema& prev = peer.prev_input_schema();
    std::vector<bool>& keep = normalization.keep_prev[p];
    keep.resize(prev.size(), false);
    for (size_t r = 0; r < prev.size(); ++r) {
      const std::string& name = prev.relation(r).name;
      keep[r] = rule_relations.count(name) > 0 ||
                leaf_relations.count(peer.name() + "." + name) > 0 ||
                (comp_->peers().size() == 1 &&
                 leaf_relations.count(name) > 0);
    }
    // The lookback window shifts prev_i into prev_{i+1}: keeping a deeper
    // slot requires keeping every shallower slot of the same input. Slots
    // are laid out consecutively per input (Peer::Validate).
    size_t lookback = static_cast<size_t>(peer.lookback());
    for (size_t base = 0; base + lookback <= keep.size(); base += lookback) {
      for (size_t j = lookback; j-- > 1;) {
        if (keep[base + j]) keep[base + j - 1] = true;
      }
    }
  }
  SnapshotGraph graph(&generator, std::move(normalization));
  LeafCache cache(&graph, task.leaves, interner_);
  struct GraphStatsGuard {
    SnapshotGraph& graph;
    LeafCache& cache;
    EngineOutcome& outcome;
    ~GraphStatsGuard() {
      outcome.search_stats.snapshots += graph.size();
      outcome.search_stats.graph_transitions += graph.transitions_computed();
      outcome.search_stats.leaf_cache_hits += cache.hits();
      outcome.search_stats.leaf_cache_misses += cache.misses();
    }
  } guard{graph, cache, outcome};

  // Exhaustively explore the configuration graph once: every instance
  // shares it, and full coverage enables the ever-satisfied prefilter. With
  // a scheduler attached (pool_), each BFS level's successor computation
  // runs on all lanes; ids stay identical to a serial exploration.
  WSV_ASSIGN_OR_RETURN(bool complete_graph,
                       graph.ExploreAll(options_.budget.max_states,
                                        options_.budget.control, pool_,
                                        lanes_));
  if (!complete_graph) {
    outcome.stop_status = Status::BudgetExceeded(
        "configuration graph exceeded max_states = " +
        std::to_string(options_.budget.max_states) +
        " snapshots; verdict is bounded");
  } else {
    // Seal the leaf cache up front (in parallel when lanes are available):
    // every later Get is a lock-free hit, which both serves concurrent
    // product searches and keeps hit/miss statistics identical at every job
    // count. On an incomplete graph the cache stays lazy — the searches
    // below then run serially, since they grow the graph on the fly.
    WSV_RETURN_IF_ERROR(cache.SealAndPopulate(pool_, lanes_));
  }

  // Rigid-leaf detection and their satisfying sets at the initial snapshot
  // (any snapshot works: rigid leaves only read the fixed database).
  std::vector<bool> rigid(task.leaves.size(), false);
  bool any_rigid = false;
  for (size_t i = 0; i < task.leaves.size(); ++i) {
    rigid[i] = IsRigidLeaf(task.leaves[i], *comp_);
    any_rigid = any_rigid || rigid[i];
  }
  SnapshotId init_sid = 0;
  if (any_rigid) {
    WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* initials,
                         graph.Initials());
    init_sid = initials->front();
  }

  // Ever-satisfied unions per leaf (valid only over a complete graph): a
  // valuation row never satisfied anywhere makes its proposition
  // constant-false along every run.
  std::vector<const data::Relation*> ever_sat(task.leaves.size(), nullptr);
  std::vector<const data::Relation*> always_sat(task.leaves.size(), nullptr);
  if (complete_graph) {
    for (size_t i = 0; i < task.leaves.size(); ++i) {
      WSV_ASSIGN_OR_RETURN(ever_sat[i], cache.EverSatisfied(i));
      WSV_ASSIGN_OR_RETURN(always_sat[i], cache.AlwaysSatisfied(i));
    }
  }

  // Hoist the leaf-variable -> closure-position mapping out of the
  // per-valuation loop (it only depends on the task).
  std::vector<std::vector<size_t>> leaf_positions(task.leaves.size());
  for (size_t i = 0; i < task.leaves.size(); ++i) {
    for (const std::string& var : cache.LeafVariables(i)) {
      size_t pos = 0;
      for (; pos < task.closure_variables.size(); ++pos) {
        if (task.closure_variables[pos] == var) break;
      }
      if (pos == task.closure_variables.size()) {
        return Status::Internal("leaf variable '" + var +
                                "' is not a closure variable");
      }
      leaf_positions[i].push_back(pos);
    }
  }

  PrefilterMemo prefilter_memo;
  const ValuationContext ctx{&task,     &graph,      &cache,
                             &prefilter_memo, &rigid, init_sid,
                             &ever_sat, &always_sat, &leaf_positions};
  const size_t total = task.valuations.size();
  // Valuation shard bounds; the full space on database sweeps (Run()
  // rejects a valuation range there). Indices stay absolute, so a shard's
  // witness valuation index matches the unsharded run's.
  const size_t v_lo = std::min(options_.valuation_range_lo, total);
  const size_t v_hi = std::min(options_.valuation_range_hi, total);

  auto add_search_stats = [](const SearchStats& from, SearchStats& into) {
    into.snapshots += from.snapshots;
    into.product_states += from.product_states;
    into.transitions += from.transitions;
    into.graph_transitions += from.graph_transitions;
    into.leaf_cache_hits += from.leaf_cache_hits;
    into.leaf_cache_misses += from.leaf_cache_misses;
    into.inner_searches += from.inner_searches;
    into.budget_hits += from.budget_hits;
  };
  auto merge_lane = [&](const ValuationLane& lane) {
    outcome.searches += lane.searches;
    outcome.prefiltered += lane.prefiltered;
    outcome.prefilter_memo_misses += lane.memo_misses;
    outcome.prefilter_memo_hits += lane.memo_hits;
    add_search_stats(lane.stats, outcome.search_stats);
  };
  // Replays budget events the way the serial loop would have: it overwrites
  // its stop status per event in index order, so the survivor is the
  // highest-index event at or below the cutoff (events past a witness come
  // from instances a serial run never reaches).
  auto replay_budget_events = [&](const std::vector<ValuationLane>& lanes,
                                  size_t cutoff) {
    const std::pair<size_t, Status>* last = nullptr;
    for (const ValuationLane& lane : lanes) {
      for (const auto& event : lane.budget_events) {
        if (event.first > cutoff) continue;
        if (last == nullptr || event.first > last->first) last = &event;
      }
    }
    if (last != nullptr) outcome.stop_status = last->second;
  };

  // A shard cut short by its upper bound reports range-end — unless a
  // bounded search inside the range already set a budget status, which must
  // survive (range-end would let a merge attest full coverage of a range
  // whose valuations were only partially searched).
  auto apply_range_end = [&] {
    if (v_hi < total && outcome.stop_status.ok()) {
      outcome.stop_status = Status::RangeEnd(
          "valuation sweep stopped at the end of the assigned range; the "
          "verdict covers exactly this shard's valuations");
    }
  };

  // Symbolic (leaf-signature) fan-out: partition the slice into classes of
  // valuations the product search cannot distinguish and check one
  // representative — the class's least index — per class, weighted by the
  // class size. Needs a complete graph (the partition reads the sealed
  // leaf cache) and an unsaturated index space; kAuto additionally demands
  // that the classes actually collapse the span. Verdict, witness index,
  // label, lasso, coverage and budget/stop semantics are identical to the
  // concrete loop below.
  if (options_.valuation_mode != ValuationMode::kConcrete && complete_graph &&
      task.valuations.num_vars() > 0 && total != static_cast<size_t>(-1) &&
      v_hi > v_lo) {
    WSV_ASSIGN_OR_RETURN(
        std::vector<ValuationClass> classes,
        PartitionValuationClasses(&graph, &cache, task.valuations,
                                  leaf_positions, v_lo, v_hi));
    const bool collapse_pays =
        options_.valuation_mode == ValuationMode::kSymbolic ||
        classes.size() * 2 <= v_hi - v_lo;
    if (collapse_pays) {
      // Counted per class *checked* (not per class partitioned) so that a
      // violation that stops the sweep early keeps the schema invariant
      // valuation_classes <= valuations_checked: every counted class also
      // contributed its weight to the coverage counter.
      static obs::Counter& class_counter =
          obs::Registry::Global().counter("engine.valuation_classes");

      const bool class_fan_out =
          pool_ != nullptr && lanes_ > 1 && classes.size() > 1;
      if (!class_fan_out) {
        std::vector<ValuationLane> lanes(1);
        ValuationLane& lane = lanes[0];
        for (const ValuationClass& c : classes) {
          class_counter.Add(1);
          Result<bool> one = CheckOneValuation(ctx, c.min_index, lane, c.size);
          if (!one.ok()) {
            merge_lane(lane);
            replay_budget_events(lanes, static_cast<size_t>(-1));
            return one.status();
          }
          if (*one) {
            merge_lane(lane);
            replay_budget_events(lanes, c.min_index);
            outcome.violation_found = true;
            outcome.databases = dbs;
            outcome.label = task.valuations.DecodeSpellings(c.min_index);
            outcome.lasso = std::move(lane.candidate->lasso);
            outcome.violation_valuation_index = c.min_index;
            return true;
          }
        }
        merge_lane(lane);
        replay_budget_events(lanes, static_cast<size_t>(-1));
        apply_range_end();
        return false;
      }

      // Parallel class fan-out: chunks of the (ascending-representative)
      // class list, with the same CAS-min stop fence as the concrete
      // dispatch — positions order exactly as representative indices do,
      // so the merged witness is still the lowest-index one.
      obs::PhaseTimer fanout_phase("valuation_fanout");
      std::vector<ValuationLane> lanes(lanes_);
      std::atomic<size_t> stop_before{static_cast<size_t>(-1)};
      std::atomic<bool> abort{false};
      obs::TimedMutex stop_mu{"engine.fanout_stop"};
      std::optional<Status> stop_event;
      std::optional<std::pair<size_t, Status>> hard_error;  // class position
      const size_t work = classes.size();
      const size_t per_chunk = std::max<size_t>(
          1, std::min<size_t>(256, work / (lanes_ * 8) + 1));
      const size_t num_chunks = (work + per_chunk - 1) / per_chunk;
      static obs::Counter& chunk_counter =
          obs::Registry::Global().counter("engine.valuation_chunks");
      ThreadPool::ParallelChunks(
          pool_, lanes_ - 1, num_chunks, [&](size_t lane_id, size_t chunk) {
            ValuationLane& lane = lanes[lane_id];
            chunk_counter.Add(1);
            const size_t begin = chunk * per_chunk;
            const size_t end = std::min(work, begin + per_chunk);
            for (size_t pos = begin; pos < end; ++pos) {
              if (abort.load(std::memory_order_acquire)) return;
              if (pos >= stop_before.load(std::memory_order_acquire)) break;
              class_counter.Add(1);
              Result<bool> one = CheckOneValuation(
                  ctx, classes[pos].min_index, lane, classes[pos].size);
              if (!one.ok()) {
                std::lock_guard<obs::TimedMutex> lock(stop_mu);
                if (RunControl::IsStopStatus(one.status())) {
                  if (!stop_event.has_value()) stop_event = one.status();
                } else if (!hard_error.has_value() ||
                           pos < hard_error->first) {
                  hard_error = {pos, one.status()};
                }
                abort.store(true, std::memory_order_release);
                return;
              }
              if (*one) {
                size_t cur = stop_before.load(std::memory_order_acquire);
                while (pos < cur &&
                       !stop_before.compare_exchange_weak(
                           cur, pos, std::memory_order_acq_rel)) {
                }
                break;
              }
            }
          });

      obs::PhaseTimer merge_phase("merge");
      for (const ValuationLane& lane : lanes) merge_lane(lane);
      const ValuationLane::Candidate* best = nullptr;
      for (ValuationLane& lane : lanes) {
        if (lane.candidate.has_value() &&
            (best == nullptr || lane.candidate->index < best->index)) {
          best = &*lane.candidate;
        }
      }
      // Class positions and representative indices order identically
      // (classes are disjoint, so minima are distinct); recover the
      // winner's position for the serial-order race against a hard error.
      size_t best_pos = static_cast<size_t>(-1);
      if (best != nullptr) {
        best_pos = static_cast<size_t>(
            std::lower_bound(classes.begin(), classes.end(), best->index,
                             [](const ValuationClass& c, size_t idx) {
                               return c.min_index < idx;
                             }) -
            classes.begin());
      }
      if (hard_error.has_value() &&
          (best == nullptr || hard_error->first < best_pos)) {
        return hard_error->second;
      }
      if (stop_event.has_value() && best == nullptr) {
        return *stop_event;
      }
      if (best != nullptr) {
        if (stop_event.has_value()) {
          outcome.stop_status = *stop_event;
        } else {
          replay_budget_events(lanes, best->index);
        }
        outcome.violation_found = true;
        outcome.databases = dbs;
        outcome.label = task.valuations.DecodeSpellings(best->index);
        outcome.lasso =
            std::move(const_cast<ValuationLane::Candidate*>(best)->lasso);
        outcome.violation_valuation_index = best->index;
        return true;
      }
      replay_budget_events(lanes, static_cast<size_t>(-1));
      apply_range_end();
      return false;
    }
  }

  // Fan the valuation sweep out only when the graph is complete (searches
  // on a partial graph grow it on the fly, which is inherently serial) and
  // there is real work to split.
  const bool fan_out =
      pool_ != nullptr && lanes_ > 1 && complete_graph && v_hi - v_lo > 1;

  if (!fan_out) {
    std::vector<ValuationLane> lanes(1);
    ValuationLane& lane = lanes[0];
    for (size_t vi = v_lo; vi < v_hi; ++vi) {
      Result<bool> one = CheckOneValuation(ctx, vi, lane);
      if (!one.ok()) {
        merge_lane(lane);
        replay_budget_events(lanes, static_cast<size_t>(-1));
        return one.status();
      }
      if (*one) {
        // The engine.violations counter is bumped by Run() once the winning
        // witness is selected — a parallel sweep may record candidates in
        // several workers but reports exactly one.
        merge_lane(lane);
        replay_budget_events(lanes, vi);
        outcome.violation_found = true;
        outcome.databases = dbs;
        outcome.label = task.valuations.DecodeSpellings(vi);
        outcome.lasso = std::move(lane.candidate->lasso);
        outcome.violation_valuation_index = vi;
        return true;
      }
    }
    merge_lane(lane);
    replay_budget_events(lanes, static_cast<size_t>(-1));
    apply_range_end();
    return false;
  }

  // Parallel valuation fan-out on the shared scheduler, with
  // ParallelSweep's deterministic merge semantics: chunks are claimed in
  // increasing index order, dispatch stops below the best witness index, so
  // every valuation preceding the winner is fully checked and the reported
  // witness is bit-for-bit the serial one.
  obs::PhaseTimer fanout_phase("valuation_fanout");
  std::vector<ValuationLane> lanes(lanes_);
  std::atomic<size_t> stop_before{static_cast<size_t>(-1)};
  std::atomic<bool> abort{false};
  obs::TimedMutex stop_mu{"engine.fanout_stop"};
  std::optional<Status> stop_event;
  std::optional<std::pair<size_t, Status>> hard_error;
  const size_t work = v_hi - v_lo;
  const size_t per_chunk = std::max<size_t>(
      1, std::min<size_t>(256, work / (lanes_ * 8) + 1));
  const size_t num_chunks = (work + per_chunk - 1) / per_chunk;
  static obs::Counter& chunk_counter =
      obs::Registry::Global().counter("engine.valuation_chunks");
  ThreadPool::ParallelChunks(
      pool_, lanes_ - 1, num_chunks, [&](size_t lane_id, size_t chunk) {
        ValuationLane& lane = lanes[lane_id];
        chunk_counter.Add(1);
        const size_t begin = v_lo + chunk * per_chunk;
        const size_t end = std::min(v_hi, begin + per_chunk);
        for (size_t vi = begin; vi < end; ++vi) {
          if (abort.load(std::memory_order_acquire)) return;
          if (vi >= stop_before.load(std::memory_order_acquire)) break;
          Result<bool> one = CheckOneValuation(ctx, vi, lane);
          if (!one.ok()) {
            std::lock_guard<obs::TimedMutex> lock(stop_mu);
            if (RunControl::IsStopStatus(one.status())) {
              if (!stop_event.has_value()) stop_event = one.status();
            } else if (!hard_error.has_value() || vi < hard_error->first) {
              hard_error = {vi, one.status()};
            }
            abort.store(true, std::memory_order_release);
            return;
          }
          if (*one) {
            // Lower the dispatch fence; CAS-min since another lane may have
            // found an earlier witness concurrently. Chunks this lane
            // claims later start above the fence and are skipped on entry.
            size_t cur = stop_before.load(std::memory_order_acquire);
            while (vi < cur &&
                   !stop_before.compare_exchange_weak(
                       cur, vi, std::memory_order_acq_rel)) {
            }
            break;
          }
        }
      });

  obs::PhaseTimer merge_phase("merge");
  for (const ValuationLane& lane : lanes) merge_lane(lane);

  // Lowest-index witness across lanes; then the serial-order precedence
  // between it and a hard error (whichever the serial loop hits first).
  const ValuationLane::Candidate* best = nullptr;
  for (ValuationLane& lane : lanes) {
    if (lane.candidate.has_value() &&
        (best == nullptr || lane.candidate->index < best->index)) {
      best = &*lane.candidate;
    }
  }
  if (hard_error.has_value() &&
      (best == nullptr || hard_error->first < best->index)) {
    return hard_error->second;
  }
  if (stop_event.has_value() && best == nullptr) {
    return *stop_event;
  }
  if (best != nullptr) {
    // A witness that raced with a deadline/cancel stop is still a sound
    // violation (mirrors ParallelSweep); the stop supersedes budget events
    // as the recorded stop status.
    if (stop_event.has_value()) {
      outcome.stop_status = *stop_event;
    } else {
      replay_budget_events(lanes, best->index);
    }
    outcome.violation_found = true;
    outcome.databases = dbs;
    outcome.label = task.valuations.DecodeSpellings(best->index);
    outcome.lasso = std::move(const_cast<ValuationLane::Candidate*>(best)->lasso);
    outcome.violation_valuation_index = best->index;
    return true;
  }
  replay_budget_events(lanes, static_cast<size_t>(-1));
  apply_range_end();
  return false;
}

namespace {

/// Snapshot of the engine's phase timers, for before/after deltas so the
/// outcome carries only this run's share of the global accumulators.
PhaseTimings TimerSnapshot() {
  obs::Registry& registry = obs::Registry::Global();
  PhaseTimings t;
  t.db_enum_ns = registry.timer("phase.db_enum").total_nanos();
  t.graph_expand_ns = registry.timer("phase.graph_expand").total_nanos();
  t.leaf_eval_ns = registry.timer("phase.leaf_eval").total_nanos();
  t.prefilter_ns = registry.timer("phase.prefilter").total_nanos();
  t.ndfs_ns = registry.timer("phase.ndfs").total_nanos();
  return t;
}

PhaseTimings TimerDelta(const PhaseTimings& before) {
  PhaseTimings now = TimerSnapshot();
  PhaseTimings d;
  d.db_enum_ns = now.db_enum_ns - before.db_enum_ns;
  d.graph_expand_ns = now.graph_expand_ns - before.graph_expand_ns;
  d.leaf_eval_ns = now.leaf_eval_ns - before.leaf_eval_ns;
  d.prefilter_ns = now.prefilter_ns - before.prefilter_ns;
  d.ndfs_ns = now.ndfs_ns - before.ndfs_ns;
  return d;
}

void CountDatabase(EngineOutcome& outcome) {
  ++outcome.databases_checked;
  static obs::Counter& dbs =
      obs::Registry::Global().counter("engine.databases_checked");
  dbs.Add(1);
  obs::ProgressMeter::Global().MaybeBeat();
}

/// Best-effort checkpoint write: a failed write must not take down a sweep
/// that is otherwise making progress, so the status is only counted.
void PersistCheckpoint(const EngineOptions& options,
                       const std::vector<IndexInterval>& covered,
                       const std::vector<size_t>& failed,
                       size_t databases_completed,
                       const std::string& stop_reason) {
  Checkpoint cp;
  cp.fingerprint = options.checkpoint_fingerprint;
  cp.covered = covered;
  // A parallel sweep can fail a database ahead of the completed run; such
  // indices are re-checked on resume (which restarts at the first hole), so
  // persisting them would be both redundant and unreadable — the checkpoint
  // format requires failed indices inside the covered intervals.
  for (size_t index : failed) {
    if (IntervalsContain(covered, index)) cp.failed_indices.push_back(index);
  }
  cp.databases_completed = databases_completed;
  cp.stop_reason = stop_reason;
  Status written = WriteCheckpoint(options.checkpoint_path, cp);
  obs::Registry& registry = obs::Registry::Global();
  if (written.ok()) {
    registry.counter("checkpoint.writes").Add(1);
  } else {
    registry.counter("checkpoint.write_errors").Add(1);
  }
}

}  // namespace

Result<EngineOutcome> VerificationEngine::Run(SymbolicTask& task) {
  EngineOutcome outcome;
  PhaseTimings timers_before = TimerSnapshot();
  size_t jobs = ThreadPool::ResolveJobs(options_.jobs);

  if (options_.db_range_hi < options_.db_range_lo) {
    return Status::InvalidSpec("--db-range upper bound " +
                               std::to_string(options_.db_range_hi) +
                               " is below its lower bound " +
                               std::to_string(options_.db_range_lo));
  }
  if (options_.valuation_range_hi < options_.valuation_range_lo) {
    return Status::InvalidSpec("--valuation-range upper bound " +
                               std::to_string(options_.valuation_range_hi) +
                               " is below its lower bound " +
                               std::to_string(options_.valuation_range_lo));
  }
  const bool has_valuation_range =
      options_.valuation_range_lo != 0 ||
      options_.valuation_range_hi != static_cast<size_t>(-1);
  if (has_valuation_range && !options_.fixed_databases.has_value()) {
    return Status::InvalidSpec(
        "--valuation-range requires pinned databases (--db): database "
        "sweeps shard with --db-range instead");
  }

  if (options_.count_only) {
    // Count-only: report the size of the enumeration space (the coordinate
    // system shard ranges index into) without checking anything.
    if (options_.fixed_databases.has_value()) {
      outcome.coverage_unit = "valuation";
      outcome.enumeration_count = task.valuations.size();
    } else {
      DatabaseEnumerator enumerator(comp_, domain_, fresh_,
                                    options_.iso_reduction);
      WSV_RETURN_IF_ERROR(enumerator.status());
      obs::PhaseTimer enum_phase("db_enum");
      std::vector<data::Instance> scratch;
      while (enumerator.Next(&scratch)) {
        ++outcome.enumeration_count;
        if (options_.control != nullptr) {
          WSV_RETURN_IF_ERROR(options_.control->Check());
        }
      }
    }
    outcome.timings = TimerDelta(timers_before);
    return outcome;
  }

  obs::Registry::Global()
      .counter("engine.instances")
      .Add(task.valuations.size());

  // Rebinds the engine's borrowed scheduler for the duration of this run;
  // cleared on every exit path so a later Run never sees a dangling pool.
  struct SchedulerBinding {
    VerificationEngine* engine;
    SchedulerBinding(VerificationEngine* e, ThreadPool* pool, size_t lanes)
        : engine(e) {
      e->pool_ = pool;
      e->lanes_ = lanes;
    }
    ~SchedulerBinding() {
      engine->pool_ = nullptr;
      engine->lanes_ = 1;
    }
  };

  if (options_.fixed_databases.has_value()) {
    // A single pinned database: all parallelism is within-database (graph
    // exploration, leaf sealing, valuation fan-out). The caller is lane 0,
    // so the pool only needs jobs - 1 helper threads.
    outcome.jobs = jobs;
    std::optional<ThreadPool> pool;
    if (jobs > 1) pool.emplace(jobs - 1);
    SchedulerBinding binding(this, pool.has_value() ? &*pool : nullptr, jobs);
    {
      // Pinned runs know their work total up front: the assigned valuation
      // slice. The heartbeat turns it into an ETA.
      const size_t v_total = task.valuations.size();
      const size_t v_lo = std::min(options_.valuation_range_lo, v_total);
      const size_t v_hi = std::min(options_.valuation_range_hi, v_total);
      obs::ProgressMeter::Global().SetGoal(
          obs::ProgressMeter::GoalUnit::kValuations, v_hi - v_lo);
    }
    CountDatabase(outcome);
    Result<bool> found = CheckDatabases(task, *options_.fixed_databases,
                                        /*db_index=*/0, outcome);
    if (!found.ok()) {
      if (!RunControl::IsStopStatus(found.status())) return found.status();
      // A deadline/cancel stop still yields a partial outcome: the caller
      // reports an inconclusive verdict over zero completed databases.
      outcome.stop_status = found.status();
    } else if (*found) {
      outcome.violation_db_index = 0;
      obs::Registry::Global().counter("engine.violations").Add(1);
    }
    if (found.ok()) outcome.completed_prefix = 1;
    // Pinned runs shard over valuations, so coverage is valuation-indexed:
    // a clean or range-end pass covered the whole assigned slice, a
    // violation covers the slice below its witness (mirroring the sweep's
    // witness-capped checkpoints), and any other stop claims nothing (the
    // fan-out has no per-valuation completion order to attest).
    outcome.coverage_unit = "valuation";
    if (found.ok()) {
      const size_t v_total = task.valuations.size();
      const size_t v_lo = std::min(options_.valuation_range_lo, v_total);
      const size_t v_hi = std::min(options_.valuation_range_hi, v_total);
      if (*found) {
        AddInterval(&outcome.covered, v_lo,
                    outcome.violation_valuation_index);
      } else if (outcome.stop_status.ok() ||
                 outcome.stop_status.code() == StatusCode::kRangeEnd) {
        AddInterval(&outcome.covered, v_lo, v_hi);
      }
    }
    outcome.stop_reason = StopReasonFromStatus(outcome.stop_status);
    if (outcome.stop_reason == StopReason::kDeadline) {
      obs::Registry::Global().counter("engine.deadline_hits").Add(1);
    }
    outcome.timings = TimerDelta(timers_before);
    return outcome;
  }

  DatabaseEnumerator enumerator(comp_, domain_, fresh_,
                                options_.iso_reduction);
  WSV_RETURN_IF_ERROR(enumerator.status());

  // Serial and parallel sweeps share one code path (jobs == 1 runs the
  // sweep on a single worker): fault isolation, deadline/cancel winding and
  // checkpointing behave identically at every job count.
  SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.max_databases = options_.max_databases;
  // The dispatch origin: the range start, or — when resuming — the end of
  // the covered run containing it. Indices stay absolute throughout.
  const size_t sweep_start =
      std::max(options_.resume_prefix, options_.db_range_lo);
  sweep_options.start_index = sweep_start;
  // Coverage inherited from a resume. Legacy callers pass only a prefix
  // (no intervals); that prefix attests [0, prefix), so lift it — otherwise
  // the witness cap below would erase resumed coverage from checkpoints.
  std::vector<IndexInterval> resume_base =
      NormalizeIntervals(options_.resume_covered);
  if (resume_base.empty() && options_.resume_prefix > 0) {
    AddInterval(&resume_base, 0, options_.resume_prefix);
  }
  sweep_options.end_index = options_.db_range_hi;
  // A bounded sweep (range upper bound or --max-databases) has a known
  // database total; the heartbeat derives an ETA from it. Unbounded sweeps
  // leave the goal unset — the enumeration size is what the run discovers.
  {
    const size_t bound =
        std::min(options_.db_range_hi, options_.max_databases);
    if (bound != static_cast<size_t>(-1) && bound > sweep_start) {
      obs::ProgressMeter::Global().SetGoal(
          obs::ProgressMeter::GoalUnit::kDatabases, bound - sweep_start);
    }
  }
  sweep_options.control = options_.control;
  sweep_options.skip_failed_databases =
      options_.on_db_error == OnDbError::kSkip;
  sweep_options.resume_failed = options_.resume_failed;
  if (options_.db_range_lo != 0 ||
      options_.db_range_hi != static_cast<size_t>(-1)) {
    obs::Registry& registry = obs::Registry::Global();
    registry.counter("sweep.range_lo").Add(options_.db_range_lo);
    if (options_.db_range_hi != static_cast<size_t>(-1)) {
      registry.counter("sweep.range_hi").Add(options_.db_range_hi);
    }
  }
  if (!options_.checkpoint_path.empty()) {
    sweep_options.checkpoint_every = options_.checkpoint_every;
    sweep_options.checkpoint_fn = [this, sweep_start, resume_base](
                                      size_t completed_prefix,
                                      const std::vector<size_t>& failed,
                                      size_t databases_completed) {
      std::vector<IndexInterval> covered = resume_base;
      AddInterval(&covered, sweep_start, completed_prefix);
      PersistCheckpoint(options_, covered, failed,
                        options_.resume_prefix + databases_completed,
                        "in-progress");
    };
  }
  // One shared pool feeds both scheduler levels: ParallelSweep runs its
  // database workers on it, and each worker's CheckDatabases borrows it
  // (pool_/lanes_) for within-database fan-out. Total threads = jobs, so
  // --jobs is a global cap with no oversubscription: within-database
  // helper tasks queue behind database workers and are simply abandoned
  // (the fanning worker drains its own chunks) when the pool is saturated.
  ThreadPool pool(jobs);
  sweep_options.pool = &pool;
  SchedulerBinding binding(this, jobs > 1 ? &pool : nullptr, jobs);
  ParallelSweep sweep(&enumerator, sweep_options);
  WSV_ASSIGN_OR_RETURN(
      EngineOutcome swept,
      sweep.Run([&](size_t db_index, const std::vector<data::Instance>& dbs,
                    EngineOutcome& worker_outcome) {
        return CheckDatabases(task, dbs, db_index, worker_outcome);
      }));
  swept.jobs = jobs;
  if (swept.violation_found) {
    obs::Registry::Global().counter("engine.violations").Add(1);
  }
  if (swept.stop_reason == StopReason::kDeadline) {
    obs::Registry::Global().counter("engine.deadline_hits").Add(1);
  }
  // Coverage: resumed intervals plus the contiguous run this sweep
  // completed from its dispatch origin — capped below the witness when a
  // violation was found, so a resume (or a merge of shard checkpoints)
  // re-checks the witness database and reproduces the VIOLATED verdict
  // instead of silently skipping past it.
  std::vector<IndexInterval> covered = resume_base;
  AddInterval(&covered, sweep_start, swept.completed_prefix);
  if (swept.violation_found) {
    covered = IntersectIntervals(covered, 0, swept.violation_db_index);
  }
  swept.covered = covered;
  if (!options_.checkpoint_path.empty()) {
    // Final checkpoint carries the real stop reason — "complete" marks the
    // sweep as finished so a --resume of it is a no-op fast path.
    PersistCheckpoint(options_, covered, swept.failed_db_indices,
                      options_.resume_prefix + swept.databases_checked,
                      StopReasonName(swept.stop_reason));
  }
  swept.timings = TimerDelta(timers_before);
  return swept;
}

}  // namespace wsv::verifier
