#include "verifier/engine.h"

#include <unordered_map>

#include "automata/emptiness.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/timer.h"
#include "runtime/transition.h"
#include "verifier/checkpoint.h"
#include "verifier/db_enum.h"
#include "verifier/parallel_sweep.h"

namespace wsv::verifier {

Result<std::vector<data::Instance>> MaterializeDatabases(
    const spec::Composition& comp, const std::vector<NamedDatabase>& named,
    Interner& interner, data::Domain& domain) {
  if (named.size() != comp.peers().size()) {
    return Status::InvalidSpec(
        "fixed databases: expected one database per peer (" +
        std::to_string(comp.peers().size()) + "), got " +
        std::to_string(named.size()));
  }
  std::vector<data::Instance> out;
  for (size_t p = 0; p < comp.peers().size(); ++p) {
    const data::Schema& schema = comp.peers()[p].database_schema();
    data::Instance inst(&schema);
    for (const auto& [relation, tuples] : named[p]) {
      size_t idx = schema.IndexOf(relation);
      if (idx == data::Schema::kNpos) {
        return Status::NotFound("fixed database for peer '" +
                                comp.peers()[p].name() +
                                "' mentions unknown relation '" + relation +
                                "'");
      }
      for (const std::vector<std::string>& tuple : tuples) {
        if (tuple.size() != schema.relation(idx).arity()) {
          return Status::InvalidSpec("fixed database tuple arity mismatch in "
                                     "relation '" +
                                     relation + "'");
        }
        std::vector<data::Value> row;
        row.reserve(tuple.size());
        for (const std::string& spelling : tuple) {
          data::Value v = interner.Intern(spelling);
          domain.Add(v);
          row.push_back(v);
        }
        inst.relation(idx).Insert(data::Tuple(std::move(row)));
      }
    }
    out.push_back(std::move(inst));
  }
  return out;
}

PseudoDomain BuildPseudoDomain(const spec::Composition& comp,
                               const std::set<std::string>& extra_constants,
                               size_t fresh_count) {
  PseudoDomain pd;
  pd.interner = comp.BuildInterner();
  for (const std::string& c : extra_constants) pd.interner.Intern(c);
  for (SymbolId id = 0; id < pd.interner.size(); ++id) pd.domain.Add(id);
  for (size_t i = 0; i < fresh_count; ++i) {
    data::Value v = pd.interner.Intern("#" + std::to_string(i + 1));
    pd.fresh.push_back(v);
    pd.domain.Add(v);
  }
  return pd;
}

std::vector<std::vector<std::string>> EnumerateValuations(
    const data::Domain& domain, const Interner& interner, size_t num_vars) {
  std::vector<std::vector<std::string>> out;
  std::vector<size_t> idx(num_vars, 0);
  if (domain.empty() && num_vars > 0) return out;
  while (true) {
    std::vector<std::string> valuation;
    valuation.reserve(num_vars);
    for (size_t i = 0; i < num_vars; ++i) {
      valuation.push_back(interner.Text(domain.values()[idx[i]]));
    }
    out.push_back(std::move(valuation));
    if (num_vars == 0) break;
    size_t i = 0;
    while (i < idx.size()) {
      if (++idx[i] < domain.size()) break;
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return out;
}

VerificationEngine::VerificationEngine(const spec::Composition* comp,
                                       const Interner* interner,
                                       data::Domain domain,
                                       std::vector<data::Value> fresh,
                                       EngineOptions options)
    : comp_(comp),
      interner_(interner),
      domain_(std::move(domain)),
      fresh_(std::move(fresh)),
      options_(std::move(options)) {
  // The deadline/cancellation token rides wherever the budget already goes,
  // so every search loop picks it up without extra plumbing.
  options_.budget.control = options_.control;
}

namespace {

/// A leaf is database-rigid when every relation it mentions is a fixed
/// database relation: its truth (per valuation) is then constant along any
/// run with the same database, so it can be decided once and folded into
/// the automaton before the state-space search.
bool IsRigidLeaf(const fo::FormulaPtr& leaf, const spec::Composition& comp) {
  for (const std::string& rel : leaf->RelationNames()) {
    if (comp.Classify(rel) != fo::RelClass::kDatabase) return false;
  }
  return true;
}

/// Rebuilds `automaton` with guards partially evaluated under the rigid
/// truths, dropping edges whose guards became false.
automata::BuchiAutomaton RestrictAutomaton(
    const automata::BuchiAutomaton& automaton,
    const std::vector<int8_t>& truths) {
  automata::BuchiAutomaton out(automaton.num_props());
  for (size_t s = 0; s < automaton.num_states(); ++s) out.AddState();
  for (automata::StateId s : automaton.initial_states()) out.AddInitial(s);
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    for (const automata::BuchiTransition& t :
         automaton.transitions_from(static_cast<automata::StateId>(s))) {
      automata::PropExprPtr guard =
          automata::PropExpr::PartialEval(t.guard, truths);
      if (guard->kind() == automata::PropExpr::Kind::kFalse) continue;
      out.AddTransition(static_cast<automata::StateId>(s), t.to,
                        std::move(guard));
    }
  }
  std::vector<automata::StateId> accepting;
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    if (automaton.IsAccepting(static_cast<automata::StateId>(s))) {
      accepting.push_back(static_cast<automata::StateId>(s));
    }
  }
  out.AddAcceptingSet(std::move(accepting));
  return out;
}

}  // namespace

Result<bool> VerificationEngine::CheckDatabases(
    const SymbolicTask& task, const std::vector<data::Instance>& dbs,
    size_t db_index, EngineOutcome& outcome) {
  // One trace span per database sweep iteration; args built only when the
  // recorder is on so the common path stays allocation-free.
  obs::PhaseTimer db_span(
      "check_db",
      obs::TracingEnabled()
          ? "{\"db\":" + std::to_string(db_index) + "}"
          : std::string());
  runtime::TransitionGenerator generator(comp_, dbs, domain_, interner_,
                                         options_.run);
  SnapshotNormalization normalization;
  normalization.keep_mover =
      AnyPropositionMentionsPrefix(task.leaves, "move_");
  normalization.keep_flags =
      AnyPropositionMentionsPrefix(task.leaves, "received_") ||
      AnyPropositionMentionsPrefix(task.leaves, "sent_");
  // Action relations are pure outputs; previous-input relations matter only
  // to rules that read them. Keep each exactly when some proposition (or,
  // for prev, some rule) observes it.
  std::set<std::string> leaf_relations;
  for (const fo::FormulaPtr& leaf : task.leaves) {
    auto rels = leaf->RelationNames();
    leaf_relations.insert(rels.begin(), rels.end());
  }
  normalization.keep_actions = false;
  for (const std::string& rel : leaf_relations) {
    if (comp_->Classify(rel) == fo::RelClass::kAction) {
      normalization.keep_actions = true;
      break;
    }
  }
  normalization.keep_prev.resize(comp_->peers().size());
  for (size_t p = 0; p < comp_->peers().size(); ++p) {
    const spec::Peer& peer = comp_->peers()[p];
    std::set<std::string> rule_relations;
    for (const spec::Rule& rule : peer.rules()) {
      auto rels = rule.body->RelationNames();
      rule_relations.insert(rels.begin(), rels.end());
    }
    const data::Schema& prev = peer.prev_input_schema();
    std::vector<bool>& keep = normalization.keep_prev[p];
    keep.resize(prev.size(), false);
    for (size_t r = 0; r < prev.size(); ++r) {
      const std::string& name = prev.relation(r).name;
      keep[r] = rule_relations.count(name) > 0 ||
                leaf_relations.count(peer.name() + "." + name) > 0 ||
                (comp_->peers().size() == 1 &&
                 leaf_relations.count(name) > 0);
    }
    // The lookback window shifts prev_i into prev_{i+1}: keeping a deeper
    // slot requires keeping every shallower slot of the same input. Slots
    // are laid out consecutively per input (Peer::Validate).
    size_t lookback = static_cast<size_t>(peer.lookback());
    for (size_t base = 0; base + lookback <= keep.size(); base += lookback) {
      for (size_t j = lookback; j-- > 1;) {
        if (keep[base + j]) keep[base + j - 1] = true;
      }
    }
  }
  SnapshotGraph graph(&generator, std::move(normalization));
  LeafCache cache(&graph, task.leaves, interner_);
  struct GraphStatsGuard {
    SnapshotGraph& graph;
    LeafCache& cache;
    EngineOutcome& outcome;
    ~GraphStatsGuard() {
      outcome.search_stats.snapshots += graph.size();
      outcome.search_stats.graph_transitions += graph.transitions_computed();
      outcome.search_stats.leaf_cache_hits += cache.hits();
      outcome.search_stats.leaf_cache_misses += cache.misses();
    }
  } guard{graph, cache, outcome};

  // Exhaustively explore the configuration graph once: every instance
  // shares it, and full coverage enables the ever-satisfied prefilter.
  WSV_ASSIGN_OR_RETURN(
      bool complete_graph,
      graph.ExploreAll(options_.budget.max_states, options_.budget.control));
  if (!complete_graph) {
    outcome.stop_status = Status::BudgetExceeded(
        "configuration graph exceeded max_states = " +
        std::to_string(options_.budget.max_states) +
        " snapshots; verdict is bounded");
  }

  // Rigid-leaf detection and their satisfying sets at the initial snapshot
  // (any snapshot works: rigid leaves only read the fixed database).
  std::vector<bool> rigid(task.leaves.size(), false);
  bool any_rigid = false;
  for (size_t i = 0; i < task.leaves.size(); ++i) {
    rigid[i] = IsRigidLeaf(task.leaves[i], *comp_);
    any_rigid = any_rigid || rigid[i];
  }
  SnapshotId init_sid = 0;
  if (any_rigid) {
    WSV_ASSIGN_OR_RETURN(const std::vector<SnapshotId>* initials,
                         graph.Initials());
    init_sid = initials->front();
  }

  // Ever-satisfied unions per leaf (valid only over a complete graph): a
  // valuation row never satisfied anywhere makes its proposition
  // constant-false along every run.
  std::vector<const data::Relation*> ever_sat(task.leaves.size(), nullptr);
  std::vector<const data::Relation*> always_sat(task.leaves.size(), nullptr);
  if (complete_graph) {
    for (size_t i = 0; i < task.leaves.size(); ++i) {
      WSV_ASSIGN_OR_RETURN(ever_sat[i], cache.EverSatisfied(i));
      WSV_ASSIGN_OR_RETURN(always_sat[i], cache.AlwaysSatisfied(i));
    }
  }

  struct MemoEntry {
    bool empty_language;
    automata::BuchiAutomaton automaton;
  };
  std::unordered_map<std::string, MemoEntry> prefilter_memo;

  for (const std::vector<std::string>& valuation : task.valuations) {
    // The valuation count is |domain|^#vars — a deadline must be able to cut
    // a sweep short between instances, not only inside a search.
    if (options_.budget.control != nullptr) {
      WSV_RETURN_IF_ERROR(options_.budget.control->Check());
    }
    // Build this instance's per-leaf lookup rows.
    std::vector<data::Tuple> leaf_rows;
    leaf_rows.reserve(task.leaves.size());
    std::vector<int8_t> rigid_truths(task.leaves.size(), -1);
    for (size_t i = 0; i < task.leaves.size(); ++i) {
      const std::vector<std::string>& vars = cache.LeafVariables(i);
      std::vector<data::Value> row;
      row.reserve(vars.size());
      for (const std::string& var : vars) {
        size_t pos = 0;
        for (; pos < task.closure_variables.size(); ++pos) {
          if (task.closure_variables[pos] == var) break;
        }
        if (pos == task.closure_variables.size()) {
          return Status::Internal("leaf variable '" + var +
                                  "' is not a closure variable");
        }
        SymbolId v = interner_->Lookup(valuation[pos]);
        if (v == kInvalidSymbol) {
          return Status::Internal("valuation constant '" + valuation[pos] +
                                  "' not interned");
        }
        row.push_back(v);
      }
      leaf_rows.push_back(data::Tuple(std::move(row)));
      if (rigid[i]) {
        WSV_ASSIGN_OR_RETURN(const fo::ValuationSet* sat,
                             cache.Get(init_sid, i));
        rigid_truths[i] = sat->rows().Contains(leaf_rows[i]) ? 1 : 0;
      } else if (ever_sat[i] != nullptr &&
                 !ever_sat[i]->Contains(leaf_rows[i])) {
        rigid_truths[i] = 0;  // never satisfied anywhere in the graph
      } else if (always_sat[i] != nullptr &&
                 always_sat[i]->Contains(leaf_rows[i])) {
        rigid_truths[i] = 1;  // satisfied at every reachable snapshot
      }
    }

    // Prefilter: with database-rigid and never/always-satisfied
    // propositions fixed, an automaton with empty language cannot accept
    // any run — skip the search. Restriction + emptiness depends only on
    // the truth-status vector, so it is memoized across valuations (there
    // are at most 3^#leaves distinct vectors, versus |domain|^#vars
    // valuations).
    bool any_fixed = false;
    for (int8_t t : rigid_truths) any_fixed = any_fixed || t >= 0;
    std::string memo_key(rigid_truths.begin(), rigid_truths.end());
    auto memo = prefilter_memo.find(memo_key);
    if (memo == prefilter_memo.end()) {
      obs::PhaseTimer prefilter_phase("prefilter");
      ++outcome.prefilter_memo_misses;
      obs::Registry::Global().counter("engine.prefilter_memo_misses").Add(1);
      automata::BuchiAutomaton restricted =
          any_fixed ? RestrictAutomaton(task.automaton, rigid_truths)
                    : task.automaton;
      bool empty = any_fixed && automata::IsEmptyLanguage(restricted);
      memo = prefilter_memo
                 .emplace(std::move(memo_key),
                          MemoEntry{empty, std::move(restricted)})
                 .first;
    } else {
      ++outcome.prefilter_memo_hits;
      static obs::Counter& memo_hits =
          obs::Registry::Global().counter("engine.prefilter_memo_hits");
      memo_hits.Add(1);
    }
    if (memo->second.empty_language) {
      ++outcome.prefiltered;
      static obs::Counter& prefiltered =
          obs::Registry::Global().counter("engine.prefiltered");
      prefiltered.Add(1);
      continue;
    }
    const automata::BuchiAutomaton& restricted = memo->second.automaton;

    ++outcome.searches;
    static obs::Counter& searches =
        obs::Registry::Global().counter("engine.searches");
    searches.Add(1);
    ProductSearch search(&graph, &cache, &restricted, std::move(leaf_rows),
                         options_.budget);
    Result<std::optional<LassoWitness>> witness = [&] {
      obs::PhaseTimer ndfs_phase("ndfs");
      return search.FindAcceptedRun(&outcome.search_stats);
    }();
    if (!witness.ok()) {
      if (witness.status().code() == StatusCode::kBudgetExceeded) {
        outcome.stop_status = witness.status();
        continue;
      }
      return witness.status();
    }
    if (witness.value().has_value()) {
      // The engine.violations counter is bumped by Run() once the winning
      // witness is selected — a parallel sweep may record candidates in
      // several workers but reports exactly one.
      outcome.violation_found = true;
      outcome.databases = dbs;
      outcome.label = valuation;
      outcome.lasso = std::move(**witness);
      return true;
    }
  }
  return false;
}

namespace {

/// Snapshot of the engine's phase timers, for before/after deltas so the
/// outcome carries only this run's share of the global accumulators.
PhaseTimings TimerSnapshot() {
  obs::Registry& registry = obs::Registry::Global();
  PhaseTimings t;
  t.db_enum_ns = registry.timer("phase.db_enum").total_nanos();
  t.graph_expand_ns = registry.timer("phase.graph_expand").total_nanos();
  t.leaf_eval_ns = registry.timer("phase.leaf_eval").total_nanos();
  t.prefilter_ns = registry.timer("phase.prefilter").total_nanos();
  t.ndfs_ns = registry.timer("phase.ndfs").total_nanos();
  return t;
}

PhaseTimings TimerDelta(const PhaseTimings& before) {
  PhaseTimings now = TimerSnapshot();
  PhaseTimings d;
  d.db_enum_ns = now.db_enum_ns - before.db_enum_ns;
  d.graph_expand_ns = now.graph_expand_ns - before.graph_expand_ns;
  d.leaf_eval_ns = now.leaf_eval_ns - before.leaf_eval_ns;
  d.prefilter_ns = now.prefilter_ns - before.prefilter_ns;
  d.ndfs_ns = now.ndfs_ns - before.ndfs_ns;
  return d;
}

void CountDatabase(EngineOutcome& outcome) {
  ++outcome.databases_checked;
  static obs::Counter& dbs =
      obs::Registry::Global().counter("engine.databases_checked");
  dbs.Add(1);
  obs::ProgressMeter::Global().MaybeBeat();
}

/// Best-effort checkpoint write: a failed write must not take down a sweep
/// that is otherwise making progress, so the status is only counted.
void PersistCheckpoint(const EngineOptions& options, size_t completed_prefix,
                       const std::vector<size_t>& failed,
                       size_t databases_completed,
                       const std::string& stop_reason) {
  Checkpoint cp;
  cp.fingerprint = options.checkpoint_fingerprint;
  cp.completed_prefix = completed_prefix;
  // A parallel sweep can fail a database ahead of the completed prefix;
  // such indices are re-checked on resume (which starts at the prefix), so
  // persisting them would be both redundant and unreadable — the checkpoint
  // format requires failed indices below the prefix.
  for (size_t index : failed) {
    if (index < completed_prefix) cp.failed_indices.push_back(index);
  }
  cp.databases_completed = databases_completed;
  cp.stop_reason = stop_reason;
  Status written = WriteCheckpoint(options.checkpoint_path, cp);
  obs::Registry& registry = obs::Registry::Global();
  if (written.ok()) {
    registry.counter("checkpoint.writes").Add(1);
  } else {
    registry.counter("checkpoint.write_errors").Add(1);
  }
}

}  // namespace

Result<EngineOutcome> VerificationEngine::Run(SymbolicTask& task) {
  EngineOutcome outcome;
  PhaseTimings timers_before = TimerSnapshot();
  size_t jobs = ThreadPool::ResolveJobs(options_.jobs);
  obs::Registry::Global()
      .counter("engine.instances")
      .Add(task.valuations.empty() ? 1 : task.valuations.size());
  if (task.valuations.empty()) {
    task.valuations.push_back({});  // single instance with no variables
  }

  if (options_.fixed_databases.has_value()) {
    outcome.jobs = 1;  // a single pinned database: nothing to parallelize
    CountDatabase(outcome);
    Result<bool> found = CheckDatabases(task, *options_.fixed_databases,
                                        /*db_index=*/0, outcome);
    if (!found.ok()) {
      if (!RunControl::IsStopStatus(found.status())) return found.status();
      // A deadline/cancel stop still yields a partial outcome: the caller
      // reports an inconclusive verdict over zero completed databases.
      outcome.stop_status = found.status();
    } else if (*found) {
      outcome.violation_db_index = 0;
      obs::Registry::Global().counter("engine.violations").Add(1);
    }
    if (found.ok()) outcome.completed_prefix = 1;
    outcome.stop_reason = StopReasonFromStatus(outcome.stop_status);
    if (outcome.stop_reason == StopReason::kDeadline) {
      obs::Registry::Global().counter("engine.deadline_hits").Add(1);
    }
    outcome.timings = TimerDelta(timers_before);
    return outcome;
  }

  DatabaseEnumerator enumerator(comp_, domain_, fresh_,
                                options_.iso_reduction);
  WSV_RETURN_IF_ERROR(enumerator.status());

  // Serial and parallel sweeps share one code path (jobs == 1 runs the
  // sweep on a single worker): fault isolation, deadline/cancel winding and
  // checkpointing behave identically at every job count.
  SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.max_databases = options_.max_databases;
  sweep_options.start_index = options_.resume_prefix;
  sweep_options.control = options_.control;
  sweep_options.skip_failed_databases =
      options_.on_db_error == OnDbError::kSkip;
  sweep_options.resume_failed = options_.resume_failed;
  if (!options_.checkpoint_path.empty()) {
    sweep_options.checkpoint_every = options_.checkpoint_every;
    sweep_options.checkpoint_fn = [this](size_t completed_prefix,
                                         const std::vector<size_t>& failed,
                                         size_t databases_completed) {
      PersistCheckpoint(options_, completed_prefix, failed,
                        options_.resume_prefix + databases_completed,
                        "in-progress");
    };
  }
  ParallelSweep sweep(&enumerator, sweep_options);
  WSV_ASSIGN_OR_RETURN(
      EngineOutcome swept,
      sweep.Run([&](size_t db_index, const std::vector<data::Instance>& dbs,
                    EngineOutcome& worker_outcome) {
        return CheckDatabases(task, dbs, db_index, worker_outcome);
      }));
  swept.jobs = jobs;
  if (swept.violation_found) {
    obs::Registry::Global().counter("engine.violations").Add(1);
  }
  if (swept.stop_reason == StopReason::kDeadline) {
    obs::Registry::Global().counter("engine.deadline_hits").Add(1);
  }
  if (!options_.checkpoint_path.empty()) {
    // Final checkpoint carries the real stop reason — "complete" marks the
    // sweep as finished so a --resume of it is a no-op fast path. When a
    // violation was found the persisted prefix is capped at the witness
    // index: a resume then re-checks the witness database and reproduces
    // the VIOLATED verdict instead of silently skipping past it.
    size_t persisted_prefix = swept.completed_prefix;
    if (swept.violation_found &&
        swept.violation_db_index < persisted_prefix) {
      persisted_prefix = swept.violation_db_index;
    }
    PersistCheckpoint(options_, persisted_prefix, swept.failed_db_indices,
                      options_.resume_prefix + swept.databases_checked,
                      StopReasonName(swept.stop_reason));
  }
  swept.timings = TimerDelta(timers_before);
  return swept;
}

}  // namespace wsv::verifier
