#ifndef WSVERIFY_VERIFIER_VERIFIER_H_
#define WSVERIFY_VERIFIER_VERIFIER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "ltl/property.h"
#include "runtime/run_options.h"
#include "spec/composition.h"
#include "verifier/engine.h"
#include "verifier/product_search.h"

namespace wsv::verifier {

struct VerifierOptions {
  /// Communication semantics (queue bound, lossy channels, ...).
  runtime::RunOptions run;

  /// Number of fresh pseudo-domain elements added beyond the specification
  /// and property constants. 0 selects SufficientFreshDomainSize() — the
  /// theoretically complete (often large) bound; small explicit values give
  /// bounded verification: a reported counterexample is always real, while
  /// "holds" is relative to the explored domain size.
  size_t fresh_domain_size = 2;

  /// Enumerate databases up to isomorphism (permutations of the fresh
  /// elements); sound and complete because FO rules are generic.
  bool iso_reduction = true;

  /// Stop before this ABSOLUTE canonical database index (bounded verdict if
  /// hit). Counted from index 0 of the enumeration even when resuming or
  /// running a --db-range shard.
  size_t max_databases = static_cast<size_t>(-1);

  /// Absolute half-open slice [db_range_lo, db_range_hi) of the canonical
  /// database enumeration to check — one shard of a distributed sweep. The
  /// defaults cover everything. See EngineOptions for the kRangeEnd /
  /// kComplete stop semantics a merge relies on.
  size_t db_range_lo = 0;
  size_t db_range_hi = static_cast<size_t>(-1);
  /// Valuation-space slice for pinned-database runs (fixed_databases);
  /// rejected on database sweeps.
  size_t valuation_range_lo = 0;
  size_t valuation_range_hi = static_cast<size_t>(-1);
  /// Report the size of the enumeration space (canonical databases, or
  /// valuations under fixed_databases) without verifying anything; the
  /// result carries it in VerificationResult::enumeration_count.
  bool count_only = false;

  /// Valuation coverage strategy: concrete index enumeration, symbolic
  /// leaf-signature classes, or auto (see verifier::ValuationMode).
  /// Verdicts and witness indices are identical in every mode.
  ValuationMode valuation_mode = ValuationMode::kConcrete;

  /// Per-search state cap.
  SearchBudget budget;

  /// Worker threads for the database sweep (1 = serial, 0 = hardware
  /// concurrency). Verdict and counterexample are identical at any setting.
  size_t jobs = 1;

  /// Refuse to run (rather than degrade to a bounded verdict) when the
  /// instance falls outside the decidable regime of Theorem 3.4.
  bool require_decidable_regime = false;

  fo::InputBoundedOptions ib_options;

  /// Verify against these databases only (one per peer, by constant
  /// spellings), instead of enumerating all databases over the
  /// pseudo-domain.
  std::optional<std::vector<NamedDatabase>> fixed_databases;

  /// Deadline/cancellation token polled throughout the pipeline (not owned;
  /// may be null). A stop yields a partial result covering the completed
  /// database prefix (see VerificationResult::coverage).
  RunControl* control = nullptr;
  /// Fault isolation: how a database whose check fails hard (exception or
  /// internal error) is treated. kSkip records it in coverage.failed and
  /// keeps sweeping; kAbort (default) surfaces the error.
  OnDbError on_db_error = OnDbError::kAbort;
  /// Checkpoint persistence + resume (see EngineOptions for field-by-field
  /// semantics). Fingerprint validation against a loaded checkpoint is the
  /// caller's job; the verifier stamps checkpoints with it verbatim.
  std::string checkpoint_path;
  std::string checkpoint_fingerprint;
  size_t checkpoint_every = 64;
  size_t resume_prefix = 0;
  std::vector<size_t> resume_failed;
  /// Covered intervals inherited from a resumed checkpoint (see
  /// EngineOptions::resume_covered).
  std::vector<IndexInterval> resume_covered;
};

/// A violating run: the database choice, the property-variable valuation,
/// and the lasso-shaped run (Section 2's runs are infinite; the witness is
/// finitely presented as prefix + cycle).
struct Counterexample {
  std::vector<data::Instance> databases;
  std::vector<std::string> closure_valuation;  // constant spellings
  LassoWitness lasso;
  /// Position of the witness database in enumeration order; identical
  /// across serial and parallel sweeps (SIZE_MAX for fixed databases only
  /// when no enumeration happened — then it is 0).
  size_t database_index = 0;
  /// Index of the witness valuation in ValuationSpace order (the
  /// mixed-radix encoding of closure_valuation); identical across serial
  /// and parallel valuation fan-outs.
  size_t valuation_index = 0;

  std::string ToString(const spec::Composition& comp,
                       const Interner& interner) const;
};

struct VerificationStats {
  size_t databases_checked = 0;
  size_t valuations_checked = 0;
  size_t searches = 0;
  /// Instances discharged by the rigid-proposition prefilter without a
  /// state-space search.
  size_t prefiltered = 0;
  /// Prefilter memoization effectiveness across valuations.
  size_t prefilter_memo_misses = 0;
  size_t prefilter_memo_hits = 0;
  /// Worker threads the database sweep ran with (after resolving jobs=0 to
  /// the hardware concurrency).
  size_t jobs = 1;
  SearchStats search;
  /// Per-phase wall time of the engine run (zero unless
  /// obs::Registry::Global().timing_enabled()).
  PhaseTimings timings;
};

/// How much of the deterministic database enumeration a run covered and why
/// it stopped — the resumable-progress record of the verdict. A violation is
/// sound regardless of coverage; "holds" is only as strong as the covered
/// prefix.
struct Coverage {
  /// Why the run ended (kComplete when nothing cut it short).
  StopReason stop_reason = StopReason::kComplete;
  /// The stop's status (budget/deadline/cancel/db-failure detail); OK when
  /// stop_reason == kComplete.
  Status stop_status = Status::Ok();
  /// Every database index in [0, completed_prefix) was checked or recorded
  /// as failed (deterministic enumeration order; includes resumed prefixes).
  /// For a --db-range shard the contiguous run starts at the range's lower
  /// bound instead of 0 — `covered` is the authoritative record.
  size_t completed_prefix = 0;
  /// Disjoint covered intervals of the enumeration (absolute half-open
  /// indices, normalized); capped below the witness on a violation. This is
  /// what wsvc-merge unions across shards.
  std::vector<IndexInterval> covered;
  /// What `covered` indexes: "database" (sweeps) or "valuation"
  /// (pinned-database runs).
  std::string unit = "database";
  /// The slice this run was assigned ([0, SIZE_MAX) when unsharded) — the
  /// denominator of per-shard coverage reporting.
  size_t range_lo = 0;
  size_t range_hi = static_cast<size_t>(-1);
  /// Indices whose checks failed hard and were skipped (sorted).
  std::vector<size_t> failed_db_indices;
  /// Per-database check retries the fault-isolated sweep performed.
  size_t db_retries = 0;
};

struct VerificationResult {
  /// Property satisfied over the explored space.
  bool holds = false;
  std::optional<Counterexample> counterexample;
  VerificationStats stats;
  /// Enumeration coverage and stop reason of this run.
  Coverage coverage;
  /// OK when the instance lies in the decidable class of Theorem 3.4
  /// (input-bounded composition & property, bounded lossy queues, closed
  /// composition); otherwise records the crossed boundary and the verdict is
  /// sound only for the explored bounds.
  Status regime = Status::Ok();
  /// True when the verdict is complete: decidable regime, the pseudo-domain
  /// met the sufficient bound, and no budget cap was hit.
  bool complete = false;
  /// Count-only mode (VerifierOptions::count_only): the size of the full
  /// enumeration space; zero otherwise.
  size_t enumeration_count = 0;
};

/// Sound-and-complete verifier for input-bounded compositions with bounded
/// lossy queues (Theorem 3.4), implemented by pseudo-domain reduction +
/// explicit on-the-fly Büchi product search (DESIGN.md §5).
class Verifier {
 public:
  /// `comp` must be validated and outlive the verifier.
  explicit Verifier(const spec::Composition* comp,
                    VerifierOptions options = {});

  /// Classifies the (composition, property, semantics) instance against the
  /// paper's decidability map; returns OK inside Theorem 3.4's class and an
  /// explanatory kUndecidableRegime status outside it.
  Status CheckDecidableRegime(const ltl::Property& property) const;

  /// Verifies `property` against all runs of the composition.
  Result<VerificationResult> Verify(const ltl::Property& property);

  /// The interner used for the last Verify call (constants + fresh
  /// pseudo-domain elements); needed to render counterexamples.
  const Interner& interner() const { return interner_; }
  const data::Domain& domain() const { return domain_; }

 private:
  const spec::Composition* comp_;
  VerifierOptions options_;
  Interner interner_;
  data::Domain domain_;
  std::vector<data::Value> fresh_values_;
};

}  // namespace wsv::verifier

#endif  // WSVERIFY_VERIFIER_VERIFIER_H_
