#include "obs/timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv::obs {

/// One node of the phase tree. Nodes are created on first entry and never
/// destroyed, so accumulation is lock-free and per-thread caches may hold
/// raw pointers across PhaseTreeReset().
struct PhaseNode {
  const char* name = nullptr;
  PhaseNode* parent = nullptr;  // null for a root phase
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> child_ns{0};
  std::atomic<uint64_t> count{0};
};

namespace {

/// Global tree structure: children are resolved by (parent, name) under a
/// mutex on first use per thread; afterwards a thread-local cache answers
/// in a short linear scan (a run uses a dozen-odd distinct phase edges).
struct PhaseTree {
  std::mutex mu;
  std::vector<std::unique_ptr<PhaseNode>> nodes;

  static PhaseTree& Global() {
    static PhaseTree* tree = new PhaseTree();
    return *tree;
  }

  PhaseNode* Child(PhaseNode* parent, const char* name) {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& node : nodes) {
      if (node->parent == parent && std::strcmp(node->name, name) == 0) {
        return node.get();
      }
    }
    auto node = std::make_unique<PhaseNode>();
    node->name = name;
    node->parent = parent;
    PhaseNode* raw = node.get();
    nodes.push_back(std::move(node));
    return raw;
  }
};

struct CachedEdge {
  PhaseNode* parent;
  const char* name;
  PhaseNode* node;
};

thread_local PhaseNode* t_phase_current = nullptr;
thread_local std::vector<CachedEdge> t_edge_cache;

PhaseNode* ResolveChild(PhaseNode* parent, const char* name) {
  for (const CachedEdge& edge : t_edge_cache) {
    // Name pointers are per-call-site string literals, so pointer equality
    // is a valid (conservative) cache key; distinct literals with equal
    // text still resolve to one node through PhaseTree::Child's strcmp.
    if (edge.parent == parent && edge.name == name) return edge.node;
  }
  PhaseNode* node = PhaseTree::Global().Child(parent, name);
  t_edge_cache.push_back(CachedEdge{parent, name, node});
  return node;
}

}  // namespace

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TimingEnabled() { return Registry::Global().timing_enabled(); }

bool TracingEnabled() { return TraceRecorder::Global().enabled(); }

PhaseTimer::PhaseTimer(const char* name, std::string trace_args_json)
    : name_(name),
      start_(TimingEnabled() || TracingEnabled() ? NowNanos() : -1),
      trace_args_json_(std::move(trace_args_json)) {
  if (start_ >= 0 && TimingEnabled()) {
    node_ = ResolveChild(t_phase_current, name_);
    t_phase_current = node_;
  }
}

PhaseTimer::~PhaseTimer() {
  if (node_ != nullptr) t_phase_current = node_->parent;
  if (start_ < 0) return;
  int64_t end = NowNanos();
  int64_t dur = end - start_;
  Registry::Global().timer(std::string("phase.") + name_).Add(dur);
  if (node_ != nullptr) {
    uint64_t udur = dur < 0 ? 0 : static_cast<uint64_t>(dur);
    node_->total_ns.fetch_add(udur, std::memory_order_relaxed);
    node_->count.fetch_add(1, std::memory_order_relaxed);
    if (node_->parent != nullptr) {
      node_->parent->child_ns.fetch_add(udur, std::memory_order_relaxed);
    }
  }
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.enabled()) {
    recorder.Complete(name_, "phase", start_, dur,
                      std::move(trace_args_json_));
  }
}

std::vector<PhaseTreeEntry> PhaseTreeSnapshot() {
  PhaseTree& tree = PhaseTree::Global();
  std::lock_guard<std::mutex> lock(tree.mu);
  std::vector<PhaseTreeEntry> out;
  out.reserve(tree.nodes.size());
  for (const auto& node : tree.nodes) {
    uint64_t total = node->total_ns.load(std::memory_order_relaxed);
    uint64_t count = node->count.load(std::memory_order_relaxed);
    if (total == 0 && count == 0) continue;  // never entered since reset
    uint64_t child = node->child_ns.load(std::memory_order_relaxed);
    PhaseTreeEntry entry;
    std::vector<const char*> parts;
    for (const PhaseNode* n = node.get(); n != nullptr; n = n->parent) {
      parts.push_back(n->name);
    }
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (!entry.path.empty()) entry.path += '/';
      entry.path += *it;
    }
    entry.total_ns = total;
    entry.self_ns = child > total ? 0 : total - child;
    entry.count = count;
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseTreeEntry& a, const PhaseTreeEntry& b) {
              return a.path < b.path;
            });
  return out;
}

void PhaseTreeReset() {
  PhaseTree& tree = PhaseTree::Global();
  std::lock_guard<std::mutex> lock(tree.mu);
  for (const auto& node : tree.nodes) {
    node->total_ns.store(0, std::memory_order_relaxed);
    node->child_ns.store(0, std::memory_order_relaxed);
    node->count.store(0, std::memory_order_relaxed);
  }
}

}  // namespace wsv::obs
