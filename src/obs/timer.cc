#include "obs/timer.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsv::obs {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TimingEnabled() { return Registry::Global().timing_enabled(); }

bool TracingEnabled() { return TraceRecorder::Global().enabled(); }

PhaseTimer::PhaseTimer(const char* name, std::string trace_args_json)
    : name_(name),
      start_(TimingEnabled() || TracingEnabled() ? NowNanos() : -1),
      trace_args_json_(std::move(trace_args_json)) {}

PhaseTimer::~PhaseTimer() {
  if (start_ < 0) return;
  int64_t end = NowNanos();
  Registry::Global().timer(std::string("phase.") + name_).Add(end - start_);
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.enabled()) {
    recorder.Complete(name_, "phase", start_, end - start_,
                      std::move(trace_args_json_));
  }
}

}  // namespace wsv::obs
