#ifndef WSVERIFY_OBS_JSON_UTIL_H_
#define WSVERIFY_OBS_JSON_UTIL_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace wsv::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added): ", \, control characters.
std::string JsonEscape(std::string_view text);

/// Minimal streaming JSON writer with automatic comma placement. All the
/// observability serializers (stats document, trace events) go through this
/// so their output is well-formed by construction.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices a pre-rendered JSON value verbatim (caller guarantees
  /// validity).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: whether it already holds a value.
  std::vector<bool> has_value_;
  bool after_key_ = false;
};

/// Validates that `text` is one syntactically well-formed JSON value
/// (RFC 8259 grammar; no semantic checks). Used by the test suite to keep
/// every serializer honest without an external JSON dependency.
Status JsonValidate(std::string_view text);

/// A parsed JSON value in DOM form, for the tools that need to READ the
/// documents the pipeline writes (wsvc-merge consuming shard verdict JSON).
/// Object members keep insertion order; duplicate keys keep the last value
/// (matching how the documents are produced — JsonWriter never duplicates).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  /// Every number carries the double view; when the lexeme had no fraction,
  /// exponent or sign (is_uint), `uinteger` is the exact value — the form
  /// all index/counter fields in the verdict documents use.
  double number = 0.0;
  uint64_t uinteger = 0;
  bool is_uint = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }

  /// Object member lookup; null when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Nested lookup: Find(a) then Find(b) ...; null on any miss.
  const JsonValue* FindPath(std::initializer_list<std::string_view> keys) const;

  /// Typed accessors with fallbacks (fallback on kind mismatch).
  bool AsBool(bool fallback) const {
    return kind == Kind::kBool ? boolean : fallback;
  }
  uint64_t AsUint(uint64_t fallback) const {
    return kind == Kind::kNumber && is_uint ? uinteger : fallback;
  }
  const std::string& AsString(const std::string& fallback) const {
    return kind == Kind::kString ? string : fallback;
  }
};

/// Parses one JSON document into DOM form (same grammar JsonValidate
/// accepts; \u escapes are decoded to UTF-8, surrogate pairs included).
Result<JsonValue> JsonParse(std::string_view text);

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_JSON_UTIL_H_
