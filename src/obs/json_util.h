#ifndef WSVERIFY_OBS_JSON_UTIL_H_
#define WSVERIFY_OBS_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wsv::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added): ", \, control characters.
std::string JsonEscape(std::string_view text);

/// Minimal streaming JSON writer with automatic comma placement. All the
/// observability serializers (stats document, trace events) go through this
/// so their output is well-formed by construction.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices a pre-rendered JSON value verbatim (caller guarantees
  /// validity).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: whether it already holds a value.
  std::vector<bool> has_value_;
  bool after_key_ = false;
};

/// Validates that `text` is one syntactically well-formed JSON value
/// (RFC 8259 grammar; no semantic checks). Used by the test suite to keep
/// every serializer honest without an external JSON dependency.
Status JsonValidate(std::string_view text);

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_JSON_UTIL_H_
