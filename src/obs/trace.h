#ifndef WSVERIFY_OBS_TRACE_H_
#define WSVERIFY_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/lock_profile.h"

namespace wsv::obs {

/// Records scoped spans and instant markers in the Chrome trace-event JSON
/// format (the "Trace Event Format" consumed by chrome://tracing and
/// Perfetto). Disabled by default; when disabled every record call is a
/// single branch.
///
/// Events are buffered in memory and serialized on demand. The buffer is
/// capped (SetMaxEvents) so a pathological run cannot exhaust memory; on
/// overflow further events are dropped and counted, and the serialized
/// trace ends with an instant event reporting the number dropped.
///
/// Record calls are safe from multiple threads (the buffer is mutex-guarded
/// — events are rare relative to the work they span, so contention is
/// negligible); the disabled path stays one relaxed atomic load.
class TraceRecorder {
 public:
  /// Starts recording; timestamps are reported relative to this call.
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps the buffer (default 1M events).
  void SetMaxEvents(size_t max_events) { max_events_ = max_events; }

  /// A completed span ("ph":"X"): [start_nanos, start_nanos + dur_nanos).
  /// `args_json` is either empty or a pre-rendered JSON object.
  void Complete(std::string name, const char* category, int64_t start_nanos,
                int64_t dur_nanos, std::string args_json = {});

  /// An instant marker ("ph":"i").
  void Instant(std::string name, const char* category,
               std::string args_json = {});

  /// A counter sample ("ph":"C") — Perfetto renders these as value tracks.
  void CounterSample(std::string name, const char* category, uint64_t value);

  size_t size() const;
  uint64_t dropped() const;
  void Clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

  /// The process-wide recorder used by PhaseTimer and the pipeline.
  static TraceRecorder& Global();

 private:
  struct Event {
    std::string name;
    const char* category;
    char phase;          // 'X', 'i', 'C'
    int64_t ts_nanos;    // relative to Enable()
    int64_t dur_nanos;   // 'X' only
    uint64_t value;      // 'C' only
    uint32_t tid;        // recording thread's stable lane id
    std::string args_json;
  };

  /// Requires mu_ held.
  bool Admit();

  std::atomic<bool> enabled_{false};
  /// The buffer mutex doubles as a profiled contention site: every
  /// recording thread funnels through it, so its wait share bounds the
  /// tracing overhead itself.
  mutable TimedMutex mu_{"trace"};
  size_t max_events_ = 1u << 20;
  int64_t origin_nanos_ = 0;
  uint64_t dropped_ = 0;
  std::vector<Event> events_;
};

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_TRACE_H_
