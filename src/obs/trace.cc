#include "obs/trace.h"

#include <fstream>

#include "obs/json_util.h"
#include "obs/timer.h"

namespace wsv::obs {

namespace {

/// Stable small lane id per recording thread, so Perfetto renders one span
/// track per worker instead of collapsing every phase onto tid 0.
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

void TraceRecorder::Enable() {
  std::lock_guard<TimedMutex> lock(mu_);
  origin_nanos_ = NowNanos();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  std::lock_guard<TimedMutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

size_t TraceRecorder::size() const {
  std::lock_guard<TimedMutex> lock(mu_);
  return events_.size();
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<TimedMutex> lock(mu_);
  return dropped_;
}

bool TraceRecorder::Admit() {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::Complete(std::string name, const char* category,
                             int64_t start_nanos, int64_t dur_nanos,
                             std::string args_json) {
  if (!enabled()) return;
  std::lock_guard<TimedMutex> lock(mu_);
  if (!Admit()) return;
  events_.push_back(Event{std::move(name), category, 'X',
                          start_nanos - origin_nanos_, dur_nanos, 0,
                          CurrentTid(), std::move(args_json)});
}

void TraceRecorder::Instant(std::string name, const char* category,
                            std::string args_json) {
  if (!enabled()) return;
  std::lock_guard<TimedMutex> lock(mu_);
  if (!Admit()) return;
  events_.push_back(Event{std::move(name), category, 'i',
                          NowNanos() - origin_nanos_, 0, 0, CurrentTid(),
                          std::move(args_json)});
}

void TraceRecorder::CounterSample(std::string name, const char* category,
                                  uint64_t value) {
  if (!enabled()) return;
  std::lock_guard<TimedMutex> lock(mu_);
  if (!Admit()) return;
  events_.push_back(Event{std::move(name), category, 'C',
                          NowNanos() - origin_nanos_, 0, value, CurrentTid(),
                          {}});
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<TimedMutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  auto emit = [&w](const Event& e) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String(e.category);
    w.Key("ph").String(std::string(1, e.phase));
    // Trace-event timestamps are microseconds; fractional micros keep
    // nanosecond resolution.
    w.Key("ts").Double(static_cast<double>(e.ts_nanos) / 1000.0);
    if (e.phase == 'X') {
      w.Key("dur").Double(static_cast<double>(e.dur_nanos) / 1000.0);
    }
    w.Key("pid").Uint(0);
    w.Key("tid").Uint(e.tid);
    if (e.phase == 'C') {
      w.Key("args").BeginObject().Key("value").Uint(e.value).EndObject();
    } else if (e.phase == 'i') {
      w.Key("s").String("g");  // global-scope instant
      if (!e.args_json.empty()) w.Key("args").Raw(e.args_json);
    } else if (!e.args_json.empty()) {
      w.Key("args").Raw(e.args_json);
    }
    w.EndObject();
  };
  for (const Event& e : events_) emit(e);
  if (dropped_ > 0) {
    Event note{"trace_truncated", "obs", 'i', NowNanos() - origin_nanos_, 0, 0,
               CurrentTid(), "{\"dropped\":" + std::to_string(dropped_) + "}"};
    emit(note);
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.Take();
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open trace file: " + path);
  out << ToJson() << "\n";
  // Flush explicitly so the interrupted-run path (SIGINT partial verdict)
  // leaves a complete document on disk before this returns.
  out.flush();
  if (!out.good()) return Status::Internal("failed writing trace: " + path);
  return Status::Ok();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

}  // namespace wsv::obs
