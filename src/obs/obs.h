#ifndef WSVERIFY_OBS_OBS_H_
#define WSVERIFY_OBS_OBS_H_

// Umbrella header for the observability subsystem (DESIGN: the measurement
// backbone of the verification pipeline):
//
//   metrics.h    — Counter / Histogram / TimerStat and the named Registry
//   timer.h      — NowNanos() and the RAII PhaseTimer
//   trace.h      — Chrome trace-event recorder (chrome://tracing, Perfetto)
//   progress.h   — periodic stderr heartbeat
//   stats_json.h — versioned stats-JSON document (schema v1)
//   json_util.h  — streaming JSON writer + syntactic validator
//
// Conventions: counters and histograms are dot-namespaced by pipeline stage
// ("engine.", "dbenum.", "graph.", "leafcache.", "ndfs.", "sim."); phase
// timers live under "phase.". Counters are always collected (an increment
// each); phase timing, tracing, and the heartbeat are opt-in and cost one
// branch when off.

#include "obs/json_util.h"  // IWYU pragma: export
#include "obs/metrics.h"    // IWYU pragma: export
#include "obs/progress.h"   // IWYU pragma: export
#include "obs/stats_json.h" // IWYU pragma: export
#include "obs/timer.h"      // IWYU pragma: export
#include "obs/trace.h"      // IWYU pragma: export

#endif  // WSVERIFY_OBS_OBS_H_
