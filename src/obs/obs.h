#ifndef WSVERIFY_OBS_OBS_H_
#define WSVERIFY_OBS_OBS_H_

// Umbrella header for the observability subsystem (DESIGN: the measurement
// backbone of the verification pipeline):
//
//   metrics.h      — Counter / Histogram / TimerStat and the named Registry
//   timer.h        — NowNanos(), the RAII PhaseTimer, and the phase tree
//   trace.h        — Chrome trace-event recorder (chrome://tracing, Perfetto)
//   progress.h     — periodic stderr heartbeat (rates + ETA)
//   stats_json.h   — versioned stats-JSON document (schema v2)
//   json_util.h    — streaming JSON writer + syntactic validator
//   lock_profile.h — TimedMutex / TimedSharedMutex contention accounting
//
// Conventions: counters and histograms are dot-namespaced by pipeline stage
// ("engine.", "dbenum.", "graph.", "leafcache.", "ndfs.", "sim."); phase
// timers live under "phase.", lock sites under "lock.<site>.". Counters are
// always collected (an increment each); phase timing, tracing, and the
// heartbeat are opt-in and cost one branch when off. Lock accounting
// compiles to a plain mutex when WSV_PROFILE is off; per-worker time
// ledgers live in common/ledger.h so the thread pool can record without a
// dependency on this library.

#include "obs/json_util.h"     // IWYU pragma: export
#include "obs/lock_profile.h"  // IWYU pragma: export
#include "obs/metrics.h"       // IWYU pragma: export
#include "obs/progress.h"      // IWYU pragma: export
#include "obs/stats_json.h"    // IWYU pragma: export
#include "obs/timer.h"         // IWYU pragma: export
#include "obs/trace.h"         // IWYU pragma: export

#endif  // WSVERIFY_OBS_OBS_H_
