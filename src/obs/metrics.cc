#include "obs/metrics.h"

#include <bit>

namespace wsv::obs {

void Histogram::Record(uint64_t value) {
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  // Bucket 0: exact zero. Bucket i: [2^(i-1), 2^i), i.e. bit_width(value).
  ++buckets_[value == 0 ? 0 : std::bit_width(value)];
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  buckets_.fill(0);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

TimerStat& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (slot == nullptr) slot = std::make_unique<TimerStat>();
  return *slot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, t] : timers_) t->Reset();
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, TimerStat>> Registry::TimerValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, TimerStat>> out;
  out.reserve(timers_.size());
  for (const auto& [name, t] : timers_) out.emplace_back(name, *t);
  return out;
}

std::vector<std::pair<std::string, Histogram>> Registry::HistogramValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, *h);
  return out;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlive all users
  return *registry;
}

}  // namespace wsv::obs
