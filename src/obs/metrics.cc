#include "obs/metrics.h"

#include <bit>

namespace wsv::obs {

Histogram::Histogram(const Histogram& other) { *this = other; }

Histogram& Histogram::operator=(const Histogram& other) {
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  min_.store(other.min_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  return *this;
}

void Histogram::Record(uint64_t value) {
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev &&
         !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Bucket 0: exact zero. Bucket i: [2^(i-1), 2^i), i.e. bit_width(value).
  buckets_[value == 0 ? 0 : std::bit_width(value)].fetch_add(
      1, std::memory_order_relaxed);
}

std::array<uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<uint64_t, kBuckets> out;
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~static_cast<uint64_t>(0), std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

TimerStat::TimerStat(const TimerStat& other) { *this = other; }

TimerStat& TimerStat::operator=(const TimerStat& other) {
  total_nanos_.store(other.total_nanos(), std::memory_order_relaxed);
  count_.store(other.count(), std::memory_order_relaxed);
  return *this;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

TimerStat& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (slot == nullptr) slot = std::make_unique<TimerStat>();
  return *slot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  for (auto& [name, t] : timers_) t->Reset();
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, TimerStat>> Registry::TimerValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, TimerStat>> out;
  out.reserve(timers_.size());
  for (const auto& [name, t] : timers_) out.emplace_back(name, *t);
  return out;
}

std::vector<std::pair<std::string, Histogram>> Registry::HistogramValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, *h);
  return out;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlive all users
  return *registry;
}

}  // namespace wsv::obs
