#ifndef WSVERIFY_OBS_STATS_JSON_H_
#define WSVERIFY_OBS_STATS_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace wsv::obs {

/// Version of the stats-JSON document layout. Bump when a required key
/// changes meaning or disappears; adding keys is backward compatible.
/// v2 added the profiling sections: workers, locks, phases.
/// v3 added the process section (peak memory).
inline constexpr int kStatsSchemaVersion = 4;

/// The stats document always contains these top-level keys
/// (tools/check_stats_schema.py enforces the same list):
///   schema_version : int   — kStatsSchemaVersion
///   generator      : str   — producing tool ("wsvc", test binaries, ...)
///   counters       : {name: int}
///   timers_ns      : {name: {total_ns: int, count: int}}
///   histograms     : {name: {count, sum, min, max, buckets: [int]}}
///   workers        : {name: {wall_ns, exec_ns, idle_ns, lock_wait_ns,
///                            drain_ns, tasks, utilization}}
///   locks          : {site: {acquisitions, contended, wait_ns}}
///   phases         : [{path, total_ns, self_ns, count}]
///   process        : {max_rss_kb: int}
/// `workers` snapshots the per-thread time ledgers (utilization is
/// exec_ns / wall_ns); `locks` regroups the lock.<site>.* counters per
/// site; `phases` is the flattened phase tree (paths join nested phase
/// names with '/'); `process` holds host-side resource peaks (max RSS via
/// getrusage, in KiB; 0 where unsupported). Callers append further
/// sections (command, verdict, ...) via `extra`.

/// Peak resident set size of this process in KiB (getrusage ru_maxrss);
/// 0 on platforms without getrusage.
size_t ProcessMaxRssKb();

/// Renders the versioned stats document from a registry snapshot.
/// `extra` entries are (key, pre-rendered JSON value) appended at top level;
/// keys must not collide with the required ones.
std::string RenderStatsJson(
    const Registry& registry, const std::string& generator,
    const std::vector<std::pair<std::string, std::string>>& extra = {});

/// Writes RenderStatsJson output to `path`.
Status WriteStatsJson(
    const Registry& registry, const std::string& generator,
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& extra = {});

/// Renders a human-readable summary of the registry (counters and phase
/// timers) for `wsvc -v` — one aligned "name value" line each.
std::string RenderTextSummary(const Registry& registry);

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_STATS_JSON_H_
