#ifndef WSVERIFY_OBS_PROGRESS_H_
#define WSVERIFY_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace wsv::obs {

/// Periodic stderr heartbeat for long verification runs: databases checked,
/// searches launched, snapshots and product states explored, and the
/// exploration rate since the previous beat. The pipeline calls MaybeBeat()
/// at coarse points (per database, every few thousand product states); the
/// meter rate-limits actual output to the configured period.
///
/// MaybeBeat() is safe from concurrent sweep workers: the period gate is a
/// compare-exchange on the last-beat timestamp, so exactly one thread wins
/// each period and prints (under a mutex protecting the rate window); losers
/// return after one relaxed load.
class ProgressMeter {
 public:
  /// What the run's goal total counts, for the ETA estimate.
  enum class GoalUnit { kNone = 0, kDatabases = 1, kValuations = 2 };

  void Enable(int64_t period_millis = 1000);
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Declares the run's known work total (databases for a bounded sweep,
  /// valuations for a pinned database); beats then print an ETA from the
  /// overall completion rate. Unbounded runs never call this and get no
  /// ETA. Safe to call before or after Enable().
  void SetGoal(GoalUnit unit, uint64_t total) {
    goal_total_.store(total, std::memory_order_relaxed);
    goal_unit_.store(static_cast<int>(unit), std::memory_order_relaxed);
  }

  /// Prints a heartbeat line if at least one period elapsed since the last.
  void MaybeBeat();

  /// Unconditionally prints one final line (end-of-run summary).
  void FinalBeat();

  /// The process-wide meter the pipeline reports to.
  static ProgressMeter& Global();

 private:
  void Beat(int64_t now, int64_t window_start, const char* tag);

  std::atomic<bool> enabled_{false};
  int64_t period_nanos_ = 0;
  int64_t started_nanos_ = 0;
  std::atomic<int64_t> last_beat_nanos_{0};
  std::atomic<uint64_t> goal_total_{0};
  std::atomic<int> goal_unit_{0};
  std::mutex beat_mu_;  // guards the print and the rate windows below
  uint64_t last_states_ = 0;
  uint64_t last_dbs_ = 0;
  uint64_t last_valuations_ = 0;
};

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_PROGRESS_H_
