#ifndef WSVERIFY_OBS_PROGRESS_H_
#define WSVERIFY_OBS_PROGRESS_H_

#include <cstdint>

namespace wsv::obs {

/// Periodic stderr heartbeat for long verification runs: databases checked,
/// searches launched, snapshots and product states explored, and the
/// exploration rate since the previous beat. The pipeline calls MaybeBeat()
/// at coarse points (per database, every few thousand product states); the
/// meter rate-limits actual output to the configured period.
class ProgressMeter {
 public:
  void Enable(int64_t period_millis = 1000);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Prints a heartbeat line if at least one period elapsed since the last.
  void MaybeBeat();

  /// Unconditionally prints one final line (end-of-run summary).
  void FinalBeat();

  /// The process-wide meter the pipeline reports to.
  static ProgressMeter& Global();

 private:
  void Beat(int64_t now, const char* tag);

  bool enabled_ = false;
  int64_t period_nanos_ = 0;
  int64_t started_nanos_ = 0;
  int64_t last_beat_nanos_ = 0;
  uint64_t last_states_ = 0;
};

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_PROGRESS_H_
