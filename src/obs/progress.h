#ifndef WSVERIFY_OBS_PROGRESS_H_
#define WSVERIFY_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace wsv::obs {

/// Periodic stderr heartbeat for long verification runs: databases checked,
/// searches launched, snapshots and product states explored, and the
/// exploration rate since the previous beat. The pipeline calls MaybeBeat()
/// at coarse points (per database, every few thousand product states); the
/// meter rate-limits actual output to the configured period.
///
/// MaybeBeat() is safe from concurrent sweep workers: the period gate is a
/// compare-exchange on the last-beat timestamp, so exactly one thread wins
/// each period and prints (under a mutex protecting the rate window); losers
/// return after one relaxed load.
class ProgressMeter {
 public:
  void Enable(int64_t period_millis = 1000);
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Prints a heartbeat line if at least one period elapsed since the last.
  void MaybeBeat();

  /// Unconditionally prints one final line (end-of-run summary).
  void FinalBeat();

  /// The process-wide meter the pipeline reports to.
  static ProgressMeter& Global();

 private:
  void Beat(int64_t now, int64_t window_start, const char* tag);

  std::atomic<bool> enabled_{false};
  int64_t period_nanos_ = 0;
  int64_t started_nanos_ = 0;
  std::atomic<int64_t> last_beat_nanos_{0};
  std::mutex beat_mu_;  // guards the print and the rate window below
  uint64_t last_states_ = 0;
};

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_PROGRESS_H_
