#include "obs/lock_profile.h"

#include <memory>
#include <string>
#include <unordered_map>

namespace wsv::obs {

LockSite::LockSite(const std::string& site)
    : acquisitions_(
          Registry::Global().counter("lock." + site + ".acquisitions")),
      contended_(Registry::Global().counter("lock." + site + ".contended")),
      wait_ns_(Registry::Global().counter("lock." + site + ".wait_ns")) {}

LockSite& LockSite::ForName(const char* name) {
  static std::mutex* mu = new std::mutex();
  static auto* sites =
      new std::unordered_map<std::string, std::unique_ptr<LockSite>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = sites->find(name);
  if (it == sites->end()) {
    it = sites->emplace(name, std::unique_ptr<LockSite>(new LockSite(name)))
             .first;
  }
  return *it->second;
}

}  // namespace wsv::obs
