#ifndef WSVERIFY_OBS_TIMER_H_
#define WSVERIFY_OBS_TIMER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wsv::obs {

struct PhaseNode;

/// Monotonic wall clock, nanoseconds since an arbitrary epoch.
int64_t NowNanos();

/// RAII phase timer: accumulates the enclosed scope's wall time into the
/// global registry under "phase.<name>" and, when tracing is on, emits a
/// matching trace span. When both timing and tracing are disabled the
/// constructor is one branch and no clock is read.
///
///   { obs::PhaseTimer timer("ndfs"); ... }   // -> timer "phase.ndfs"
///
/// Phases measure code regions, not a partition of the run: lazily-computed
/// work (leaf evaluation under NDFS, graph expansion under a successor
/// call) accumulates into its own phase while nested inside another.
///
/// While timing is enabled, nested timers additionally build the per-path
/// phase tree exported as the stats-JSON "phases" section: each thread keeps
/// its own phase stack, so a phase started on a worker thread roots at that
/// thread's top level (e.g. "check_db/ndfs" for a sweep worker) while the
/// calling thread's phases nest under "total". Tree accounting costs one
/// cached node lookup per timer and is contention-free after warm-up.
class PhaseTimer {
 public:
  /// `name` must outlive the timer (string literals in practice).
  /// `trace_args_json` is attached to the trace span only; pass {} (and
  /// build args under obs::TracingEnabled()) to keep the disabled path
  /// allocation-free.
  explicit PhaseTimer(const char* name, std::string trace_args_json = {});
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  const char* name_;
  int64_t start_;  // -1 when observability is off
  PhaseNode* node_ = nullptr;  // phase-tree node, null when timing is off
  std::string trace_args_json_;
};

/// One row of the flattened phase tree: `path` joins nested phase names
/// with '/' ("total/check_db/ndfs"); `self_ns` is total minus the time
/// spent in child phases (clamped at zero against clock skew).
struct PhaseTreeEntry {
  std::string path;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
  uint64_t count = 0;
};

/// Snapshot of the process-wide phase tree, sorted by path.
std::vector<PhaseTreeEntry> PhaseTreeSnapshot();

/// Zeroes the tree's accumulators, preserving node identities (bench and
/// test reruns; per-thread node caches stay valid).
void PhaseTreeReset();

/// True when phase timing is collecting (Registry::Global() flag).
bool TimingEnabled();
/// True when the global trace recorder is collecting.
bool TracingEnabled();

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_TIMER_H_
