#ifndef WSVERIFY_OBS_TIMER_H_
#define WSVERIFY_OBS_TIMER_H_

#include <cstdint>
#include <string>

namespace wsv::obs {

/// Monotonic wall clock, nanoseconds since an arbitrary epoch.
int64_t NowNanos();

/// RAII phase timer: accumulates the enclosed scope's wall time into the
/// global registry under "phase.<name>" and, when tracing is on, emits a
/// matching trace span. When both timing and tracing are disabled the
/// constructor is one branch and no clock is read.
///
///   { obs::PhaseTimer timer("ndfs"); ... }   // -> timer "phase.ndfs"
///
/// Phases measure code regions, not a partition of the run: lazily-computed
/// work (leaf evaluation under NDFS, graph expansion under a successor
/// call) accumulates into its own phase while nested inside another.
class PhaseTimer {
 public:
  /// `name` must outlive the timer (string literals in practice).
  /// `trace_args_json` is attached to the trace span only; pass {} (and
  /// build args under obs::TracingEnabled()) to keep the disabled path
  /// allocation-free.
  explicit PhaseTimer(const char* name, std::string trace_args_json = {});
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  const char* name_;
  int64_t start_;  // -1 when observability is off
  std::string trace_args_json_;
};

/// True when phase timing is collecting (Registry::Global() flag).
bool TimingEnabled();
/// True when the global trace recorder is collecting.
bool TracingEnabled();

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_TIMER_H_
