#include "obs/progress.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace wsv::obs {

void ProgressMeter::Enable(int64_t period_millis) {
  period_nanos_ = period_millis * 1000000;
  started_nanos_ = NowNanos();
  last_beat_nanos_.store(started_nanos_, std::memory_order_relaxed);
  last_states_ = 0;
  last_dbs_ = 0;
  last_valuations_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void ProgressMeter::MaybeBeat() {
  if (!enabled()) return;
  int64_t now = NowNanos();
  int64_t last = last_beat_nanos_.load(std::memory_order_relaxed);
  if (now - last < period_nanos_) return;
  // One winner per period: the thread whose CAS lands prints this beat.
  if (!last_beat_nanos_.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed)) {
    return;
  }
  Beat(now, last, "progress");
}

void ProgressMeter::FinalBeat() {
  if (!enabled()) return;
  int64_t now = NowNanos();
  int64_t last = last_beat_nanos_.exchange(now, std::memory_order_relaxed);
  Beat(now, last, "done");
}

void ProgressMeter::Beat(int64_t now, int64_t window_start, const char* tag) {
  std::lock_guard<std::mutex> lock(beat_mu_);
  Registry& registry = Registry::Global();
  uint64_t dbs = registry.counter("engine.databases_checked").value();
  uint64_t searches = registry.counter("engine.searches").value();
  uint64_t prefiltered = registry.counter("engine.prefiltered").value();
  uint64_t snapshots = registry.counter("graph.snapshots").value();
  uint64_t states = registry.counter("ndfs.product_states").value();
  uint64_t valuations = registry.counter("engine.valuations_checked").value();
  double elapsed = static_cast<double>(now - started_nanos_) / 1e9;
  double window = static_cast<double>(now - window_start) / 1e9;
  double rate = window > 0
                    ? static_cast<double>(states - last_states_) / window
                    : 0.0;
  double db_rate = window > 0
                       ? static_cast<double>(dbs - last_dbs_) / window
                       : 0.0;
  double val_rate =
      window > 0
          ? static_cast<double>(valuations - last_valuations_) / window
          : 0.0;

  // ETA from the run-wide average rate toward the declared goal: window
  // rates gutter to zero between databases, the average does not.
  char eta[32] = "";
  uint64_t goal = goal_total_.load(std::memory_order_relaxed);
  GoalUnit unit =
      static_cast<GoalUnit>(goal_unit_.load(std::memory_order_relaxed));
  if (goal > 0 && unit != GoalUnit::kNone && elapsed > 0) {
    uint64_t done = unit == GoalUnit::kDatabases ? dbs : valuations;
    double avg = static_cast<double>(done) / elapsed;
    if (done >= goal) {
      std::snprintf(eta, sizeof(eta), " eta=0s");
    } else if (avg > 0) {
      std::snprintf(eta, sizeof(eta), " eta=%.0fs",
                    static_cast<double>(goal - done) / avg);
    }
  }

  std::fprintf(stderr,
               "[wsv %s] t=%.1fs dbs=%llu searches=%llu prefiltered=%llu "
               "snapshots=%llu states=%llu (%.0f states/s, %.1f dbs/s, "
               "%.1f vals/s)%s\n",
               tag, elapsed, static_cast<unsigned long long>(dbs),
               static_cast<unsigned long long>(searches),
               static_cast<unsigned long long>(prefiltered),
               static_cast<unsigned long long>(snapshots),
               static_cast<unsigned long long>(states), rate, db_rate,
               val_rate, eta);
  last_states_ = states;
  last_dbs_ = dbs;
  last_valuations_ = valuations;
}

ProgressMeter& ProgressMeter::Global() {
  static ProgressMeter* meter = new ProgressMeter();
  return *meter;
}

}  // namespace wsv::obs
