#include "obs/progress.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace wsv::obs {

void ProgressMeter::Enable(int64_t period_millis) {
  enabled_ = true;
  period_nanos_ = period_millis * 1000000;
  started_nanos_ = NowNanos();
  last_beat_nanos_ = started_nanos_;
  last_states_ = 0;
}

void ProgressMeter::MaybeBeat() {
  if (!enabled_) return;
  int64_t now = NowNanos();
  if (now - last_beat_nanos_ < period_nanos_) return;
  Beat(now, "progress");
}

void ProgressMeter::FinalBeat() {
  if (!enabled_) return;
  Beat(NowNanos(), "done");
}

void ProgressMeter::Beat(int64_t now, const char* tag) {
  Registry& registry = Registry::Global();
  uint64_t dbs = registry.counter("engine.databases_checked").value();
  uint64_t searches = registry.counter("engine.searches").value();
  uint64_t prefiltered = registry.counter("engine.prefiltered").value();
  uint64_t snapshots = registry.counter("graph.snapshots").value();
  uint64_t states = registry.counter("ndfs.product_states").value();
  double elapsed = static_cast<double>(now - started_nanos_) / 1e9;
  double window = static_cast<double>(now - last_beat_nanos_) / 1e9;
  double rate = window > 0
                    ? static_cast<double>(states - last_states_) / window
                    : 0.0;
  std::fprintf(stderr,
               "[wsv %s] t=%.1fs dbs=%llu searches=%llu prefiltered=%llu "
               "snapshots=%llu states=%llu (%.0f states/s)\n",
               tag, elapsed, static_cast<unsigned long long>(dbs),
               static_cast<unsigned long long>(searches),
               static_cast<unsigned long long>(prefiltered),
               static_cast<unsigned long long>(snapshots),
               static_cast<unsigned long long>(states), rate);
  last_beat_nanos_ = now;
  last_states_ = states;
}

ProgressMeter& ProgressMeter::Global() {
  static ProgressMeter* meter = new ProgressMeter();
  return *meter;
}

}  // namespace wsv::obs
