#ifndef WSVERIFY_OBS_METRICS_H_
#define WSVERIFY_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wsv::obs {

/// A monotonic counter. Increments are plain (non-atomic): the verification
/// pipeline is single-threaded, and observability must stay off the hot
/// path's critical latency; a torn read from a future concurrent reporter
/// would at worst misprint one heartbeat line.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Power-of-two bucketed histogram of non-negative samples. Bucket 0 holds
/// exact zeros; bucket i (i >= 1) holds values in [2^(i-1), 2^i).
class Histogram {
 public:
  /// Zeros + one bucket per bit of a uint64_t.
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Min/max of recorded samples; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }
  void Reset();

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

/// Accumulated wall time of one named phase: total nanoseconds and the
/// number of timed intervals folded in.
class TimerStat {
 public:
  void Add(int64_t nanos) {
    total_nanos_ += nanos < 0 ? 0 : static_cast<uint64_t>(nanos);
    ++count_;
  }
  uint64_t total_nanos() const { return total_nanos_; }
  uint64_t count() const { return count_; }
  void Reset() {
    total_nanos_ = 0;
    count_ = 0;
  }

 private:
  uint64_t total_nanos_ = 0;
  uint64_t count_ = 0;
};

/// Named registry of counters, histograms and phase timers. Instruments are
/// created on first use and never destroyed, so call sites may cache the
/// returned references across Reset() (which zeroes values but keeps
/// identities) — the hot path then pays one pointer chase per event.
///
/// Registration is mutex-guarded; recording into an instrument is not (see
/// Counter). Export snapshots are taken under the registration mutex.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  TimerStat& timer(const std::string& name);

  /// Phase timing is opt-in: PhaseTimer reads this flag and skips its two
  /// clock calls entirely when off, keeping disabled overhead to one branch.
  bool timing_enabled() const { return timing_enabled_; }
  void set_timing_enabled(bool enabled) { timing_enabled_ = enabled; }

  /// Zeroes every instrument, preserving identities (cached references in
  /// instrumented code stay valid).
  void Reset();

  /// Sorted-by-name value snapshots, for export.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, TimerStat>> TimerValues() const;
  std::vector<std::pair<std::string, Histogram>> HistogramValues() const;

  /// The process-wide registry every instrumented pipeline stage reports to.
  static Registry& Global();

 private:
  mutable std::mutex mu_;
  bool timing_enabled_ = false;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
};

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_METRICS_H_
