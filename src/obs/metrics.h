#ifndef WSVERIFY_OBS_METRICS_H_
#define WSVERIFY_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wsv::obs {

/// A monotonic counter. Increments are relaxed atomics: the parallel
/// database sweep records from every worker thread, and relaxed fetch_add
/// keeps the hot path to one uncontended RMW with no ordering fences.
/// Cross-counter consistency is not guaranteed (a concurrent reader may see
/// counter A ahead of counter B), which is fine for monitoring output.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Power-of-two bucketed histogram of non-negative samples. Bucket 0 holds
/// exact zeros; bucket i (i >= 1) holds values in [2^(i-1), 2^i).
/// Recording is lock-free (relaxed atomics; CAS loops for min/max); a
/// snapshot copy taken while writers are active is internally consistent
/// per field but fields may be mutually skewed by in-flight samples.
class Histogram {
 public:
  /// Zeros + one bucket per bit of a uint64_t.
  static constexpr size_t kBuckets = 65;

  Histogram() = default;
  /// Snapshot copy (relaxed loads); safe concurrently with Record().
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max of recorded samples; 0 when empty.
  uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::array<uint64_t, kBuckets> buckets() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~static_cast<uint64_t>(0)};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Accumulated wall time of one named phase: total nanoseconds and the
/// number of timed intervals folded in. Accumulation is relaxed-atomic so
/// worker threads can time phases concurrently; total and count advance
/// independently (a reader may see one interval's nanos before its count).
class TimerStat {
 public:
  TimerStat() = default;
  /// Snapshot copy (relaxed loads); safe concurrently with Add().
  TimerStat(const TimerStat& other);
  TimerStat& operator=(const TimerStat& other);

  void Add(int64_t nanos) {
    total_nanos_.fetch_add(nanos < 0 ? 0 : static_cast<uint64_t>(nanos),
                           std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t total_nanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset() {
    total_nanos_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> total_nanos_{0};
  std::atomic<uint64_t> count_{0};
};

/// Named registry of counters, histograms and phase timers. Instruments are
/// created on first use and never destroyed, so call sites may cache the
/// returned references across Reset() (which zeroes values but keeps
/// identities) — the hot path then pays one pointer chase per event.
///
/// Registration is mutex-guarded; recording into an instrument is lock-free
/// (relaxed atomics — see Counter). Export snapshots are taken under the
/// registration mutex and are safe while worker threads keep recording.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  TimerStat& timer(const std::string& name);

  /// Phase timing is opt-in: PhaseTimer reads this flag and skips its two
  /// clock calls entirely when off, keeping disabled overhead to one branch.
  bool timing_enabled() const {
    return timing_enabled_.load(std::memory_order_relaxed);
  }
  void set_timing_enabled(bool enabled) {
    timing_enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Zeroes every instrument, preserving identities (cached references in
  /// instrumented code stay valid).
  void Reset();

  /// Sorted-by-name value snapshots, for export.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, TimerStat>> TimerValues() const;
  std::vector<std::pair<std::string, Histogram>> HistogramValues() const;

  /// The process-wide registry every instrumented pipeline stage reports to.
  static Registry& Global();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> timing_enabled_{false};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
};

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_METRICS_H_
