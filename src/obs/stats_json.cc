#include "obs/stats_json.h"

#include <cstdio>
#include <fstream>

#include "obs/json_util.h"

namespace wsv::obs {

std::string RenderStatsJson(
    const Registry& registry, const std::string& generator,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(kStatsSchemaVersion);
  w.Key("generator").String(generator);

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : registry.CounterValues()) {
    w.Key(name).Uint(value);
  }
  w.EndObject();

  w.Key("timers_ns").BeginObject();
  for (const auto& [name, timer] : registry.TimerValues()) {
    w.Key(name).BeginObject();
    w.Key("total_ns").Uint(timer.total_nanos());
    w.Key("count").Uint(timer.count());
    w.EndObject();
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : registry.HistogramValues()) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(histogram.count());
    w.Key("sum").Uint(histogram.sum());
    w.Key("min").Uint(histogram.min());
    w.Key("max").Uint(histogram.max());
    // Buckets trimmed to the highest non-empty one; bucket i >= 1 counts
    // samples in [2^(i-1), 2^i), bucket 0 counts exact zeros.
    const std::array<uint64_t, Histogram::kBuckets> buckets =
        histogram.buckets();
    size_t last = Histogram::kBuckets;
    while (last > 0 && buckets[last - 1] == 0) --last;
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < last; ++i) w.Uint(buckets[i]);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  for (const auto& [key, json] : extra) {
    w.Key(key).Raw(json);
  }
  w.EndObject();
  return w.Take();
}

Status WriteStatsJson(
    const Registry& registry, const std::string& generator,
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open stats file: " + path);
  out << RenderStatsJson(registry, generator, extra) << "\n";
  if (!out.good()) return Status::Internal("failed writing stats: " + path);
  return Status::Ok();
}

std::string RenderTextSummary(const Registry& registry) {
  std::string out;
  char line[160];
  for (const auto& [name, timer] : registry.TimerValues()) {
    std::snprintf(line, sizeof(line), "  %-34s %10.3f ms  (x%llu)\n",
                  name.c_str(), static_cast<double>(timer.total_nanos()) / 1e6,
                  static_cast<unsigned long long>(timer.count()));
    out += line;
  }
  for (const auto& [name, value] : registry.CounterValues()) {
    std::snprintf(line, sizeof(line), "  %-34s %10llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, histogram] : registry.HistogramValues()) {
    std::snprintf(line, sizeof(line),
                  "  %-34s count=%llu sum=%llu min=%llu max=%llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<unsigned long long>(histogram.sum()),
                  static_cast<unsigned long long>(histogram.min()),
                  static_cast<unsigned long long>(histogram.max()));
    out += line;
  }
  return out;
}

}  // namespace wsv::obs
