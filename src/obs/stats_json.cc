#include "obs/stats_json.h"

#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/fault.h"
#include "common/ledger.h"
#include "obs/json_util.h"
#include "obs/timer.h"

namespace wsv::obs {

namespace {

/// Splits a "lock.<site>.<field>" counter name into site and field; the
/// site itself may contain dots ("sweep.producer"), the field never does.
bool SplitLockCounter(const std::string& name, std::string* site,
                      std::string* field) {
  constexpr char kPrefix[] = "lock.";
  if (name.rfind(kPrefix, 0) != 0) return false;
  size_t last_dot = name.rfind('.');
  if (last_dot <= sizeof(kPrefix) - 1) return false;
  *site = name.substr(sizeof(kPrefix) - 1, last_dot - (sizeof(kPrefix) - 1));
  *field = name.substr(last_dot + 1);
  return *field == "acquisitions" || *field == "contended" ||
         *field == "wait_ns";
}

void RenderWorkers(JsonWriter& w) {
  w.Key("workers").BeginObject();
  for (const WorkerLedgerSnapshot& ledger :
       LedgerRegistry::Global().Snapshot()) {
    w.Key(ledger.name).BeginObject();
    w.Key("wall_ns").Uint(ledger.wall_ns);
    w.Key("exec_ns").Uint(ledger.exec_ns);
    w.Key("idle_ns").Uint(ledger.idle_ns);
    w.Key("lock_wait_ns").Uint(ledger.lock_wait_ns);
    w.Key("drain_ns").Uint(ledger.drain_ns);
    w.Key("tasks").Uint(ledger.tasks);
    w.Key("utilization")
        .Double(ledger.wall_ns == 0
                    ? 0.0
                    : static_cast<double>(ledger.exec_ns) /
                          static_cast<double>(ledger.wall_ns));
    w.EndObject();
  }
  w.EndObject();
}

void RenderLocks(JsonWriter& w, const Registry& registry) {
  // Regroup lock.<site>.<field> counters per site. CounterValues() is
  // sorted by name, so a site's three counters are adjacent.
  w.Key("locks").BeginObject();
  std::string open_site;
  bool site_open = false;
  for (const auto& [name, value] : registry.CounterValues()) {
    std::string site, field;
    if (!SplitLockCounter(name, &site, &field)) continue;
    if (!site_open || site != open_site) {
      if (site_open) w.EndObject();
      w.Key(site).BeginObject();
      open_site = site;
      site_open = true;
    }
    w.Key(field).Uint(value);
  }
  if (site_open) w.EndObject();
  w.EndObject();
}

void RenderPhases(JsonWriter& w) {
  w.Key("phases").BeginArray();
  for (const PhaseTreeEntry& entry : PhaseTreeSnapshot()) {
    w.BeginObject();
    w.Key("path").String(entry.path);
    w.Key("total_ns").Uint(entry.total_ns);
    w.Key("self_ns").Uint(entry.self_ns);
    w.Key("count").Uint(entry.count);
    w.EndObject();
  }
  w.EndArray();
}

void RenderProcess(JsonWriter& w) {
  w.Key("process").BeginObject();
  w.Key("max_rss_kb").Uint(ProcessMaxRssKb());
  w.EndObject();
}

}  // namespace

size_t ProcessMaxRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<size_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<size_t>(usage.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::string RenderStatsJson(
    const Registry& registry, const std::string& generator,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(kStatsSchemaVersion);
  w.Key("generator").String(generator);

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : registry.CounterValues()) {
    w.Key(name).Uint(value);
  }
  // Injected-fault counts live in the fault registry (common has no obs
  // dependency) and are folded into the counters section at render time,
  // so chaos runs are auditable from their stats documents alone.
  if (fault::Enabled()) {
    uint64_t injected_total = 0;
    for (const auto& [site, count] : fault::InjectedCounts()) {
      w.Key("fault.injected." + site).Uint(count);
      injected_total += count;
    }
    w.Key("fault.injected").Uint(injected_total);
  }
  w.EndObject();

  w.Key("timers_ns").BeginObject();
  for (const auto& [name, timer] : registry.TimerValues()) {
    w.Key(name).BeginObject();
    w.Key("total_ns").Uint(timer.total_nanos());
    w.Key("count").Uint(timer.count());
    w.EndObject();
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : registry.HistogramValues()) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(histogram.count());
    w.Key("sum").Uint(histogram.sum());
    w.Key("min").Uint(histogram.min());
    w.Key("max").Uint(histogram.max());
    // Buckets trimmed to the highest non-empty one; bucket i >= 1 counts
    // samples in [2^(i-1), 2^i), bucket 0 counts exact zeros.
    const std::array<uint64_t, Histogram::kBuckets> buckets =
        histogram.buckets();
    size_t last = Histogram::kBuckets;
    while (last > 0 && buckets[last - 1] == 0) --last;
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < last; ++i) w.Uint(buckets[i]);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  RenderWorkers(w);
  RenderLocks(w, registry);
  RenderPhases(w);
  RenderProcess(w);

  for (const auto& [key, json] : extra) {
    w.Key(key).Raw(json);
  }
  w.EndObject();
  return w.Take();
}

Status WriteStatsJson(
    const Registry& registry, const std::string& generator,
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open stats file: " + path);
  out << RenderStatsJson(registry, generator, extra) << "\n";
  // Flush explicitly so a short write surfaces here rather than in the
  // destructor — the SIGINT partial-verdict path depends on the document
  // being complete on disk the moment this returns.
  out.flush();
  if (!out.good()) return Status::Internal("failed writing stats: " + path);
  return Status::Ok();
}

std::string RenderTextSummary(const Registry& registry) {
  std::string out;
  char line[160];
  for (const auto& [name, timer] : registry.TimerValues()) {
    std::snprintf(line, sizeof(line), "  %-34s %10.3f ms  (x%llu)\n",
                  name.c_str(), static_cast<double>(timer.total_nanos()) / 1e6,
                  static_cast<unsigned long long>(timer.count()));
    out += line;
  }
  for (const auto& [name, value] : registry.CounterValues()) {
    std::snprintf(line, sizeof(line), "  %-34s %10llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, histogram] : registry.HistogramValues()) {
    std::snprintf(line, sizeof(line),
                  "  %-34s count=%llu sum=%llu min=%llu max=%llu\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<unsigned long long>(histogram.sum()),
                  static_cast<unsigned long long>(histogram.min()),
                  static_cast<unsigned long long>(histogram.max()));
    out += line;
  }
  return out;
}

}  // namespace wsv::obs
