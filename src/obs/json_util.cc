#include "obs/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace wsv::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_value_.pop_back();
  out_ += '}';
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_value_.pop_back();
  out_ += ']';
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "0";  // JSON has no NaN/Inf
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

namespace {

/// Recursive-descent checker over the RFC 8259 grammar.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  Status Run() {
    WSV_RETURN_IF_ERROR(Value());
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return Status::Ok();
  }

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError("invalid JSON at byte " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("expected literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Status StringValue() {
    if (!Eat('"')) return Fail("expected string");
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
        continue;
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status NumberValue() {
    (void)Eat('-');
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected fraction digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return Status::Ok();
  }

  Status Value() {
    if (++depth_ > 256) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = ObjectValue();
        break;
      case '[':
        status = ArrayValue();
        break;
      case '"':
        status = StringValue();
        break;
      case 't':
        status = Literal("true");
        break;
      case 'f':
        status = Literal("false");
        break;
      case 'n':
        status = Literal("null");
        break;
      default:
        status = NumberValue();
    }
    --depth_;
    return status;
  }

  Status ObjectValue() {
    ++pos_;  // '{'
    SkipSpace();
    if (Eat('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      WSV_RETURN_IF_ERROR(StringValue());
      SkipSpace();
      if (!Eat(':')) return Fail("expected ':'");
      WSV_RETURN_IF_ERROR(Value());
      SkipSpace();
      if (Eat('}')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  Status ArrayValue() {
    ++pos_;  // '['
    SkipSpace();
    if (Eat(']')) return Status::Ok();
    while (true) {
      WSV_RETURN_IF_ERROR(Value());
      SkipSpace();
      if (Eat(']')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Status JsonValidate(std::string_view text) { return Checker(text).Run(); }

}  // namespace wsv::obs
