#include "obs/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wsv::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_value_.pop_back();
  out_ += '}';
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_value_.pop_back();
  out_ += ']';
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "0";  // JSON has no NaN/Inf
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

namespace {

/// Recursive-descent checker over the RFC 8259 grammar.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  Status Run() {
    WSV_RETURN_IF_ERROR(Value());
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return Status::Ok();
  }

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError("invalid JSON at byte " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("expected literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Status StringValue() {
    if (!Eat('"')) return Fail("expected string");
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
        continue;
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status NumberValue() {
    (void)Eat('-');
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Eat('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected fraction digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digit");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return Status::Ok();
  }

  Status Value() {
    if (++depth_ > 256) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = ObjectValue();
        break;
      case '[':
        status = ArrayValue();
        break;
      case '"':
        status = StringValue();
        break;
      case 't':
        status = Literal("true");
        break;
      case 'f':
        status = Literal("false");
        break;
      case 'n':
        status = Literal("null");
        break;
      default:
        status = NumberValue();
    }
    --depth_;
    return status;
  }

  Status ObjectValue() {
    ++pos_;  // '{'
    SkipSpace();
    if (Eat('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      WSV_RETURN_IF_ERROR(StringValue());
      SkipSpace();
      if (!Eat(':')) return Fail("expected ':'");
      WSV_RETURN_IF_ERROR(Value());
      SkipSpace();
      if (Eat('}')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  Status ArrayValue() {
    ++pos_;  // '['
    SkipSpace();
    if (Eat(']')) return Status::Ok();
    while (true) {
      WSV_RETURN_IF_ERROR(Value());
      SkipSpace();
      if (Eat(']')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Status JsonValidate(std::string_view text) { return Checker(text).Run(); }

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) found = &value;  // last duplicate wins
  }
  return found;
}

const JsonValue* JsonValue::FindPath(
    std::initializer_list<std::string_view> keys) const {
  const JsonValue* cursor = this;
  for (std::string_view key : keys) {
    cursor = cursor->Find(key);
    if (cursor == nullptr) return nullptr;
  }
  return cursor;
}

namespace {

/// Recursive-descent DOM builder; mirrors Checker's grammar so the two
/// never disagree about what is valid.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue root;
    WSV_RETURN_IF_ERROR(Value(&root));
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return root;
  }

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError("invalid JSON at byte " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("expected literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status HexQuad(uint32_t* out) {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size() ||
          !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("bad \\u escape");
      }
      char c = text_[pos_++];
      uint32_t digit = c <= '9'   ? static_cast<uint32_t>(c - '0')
                       : c <= 'F' ? static_cast<uint32_t>(c - 'A' + 10)
                                  : static_cast<uint32_t>(c - 'a' + 10);
      value = value * 16 + digit;
    }
    *out = value;
    return Status::Ok();
  }

  Status StringValue(std::string* out) {
    if (!Eat('"')) return Fail("expected string");
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            WSV_RETURN_IF_ERROR(HexQuad(&cp));
            if (cp >= 0xD800 && cp < 0xDC00 && pos_ + 1 < text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t low = 0;
              WSV_RETURN_IF_ERROR(HexQuad(&low));
              if (low >= 0xDC00 && low < 0xE000) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
              } else {
                AppendUtf8(0xFFFD, out);
                cp = low >= 0xD800 && low < 0xE000 ? 0xFFFD : low;
              }
            } else if (cp >= 0xD800 && cp < 0xE000) {
              cp = 0xFFFD;  // lone surrogate
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Fail("bad escape character");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status NumberValue(JsonValue* out) {
    const size_t start = pos_;
    bool negative = Eat('-');
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const size_t int_end = pos_;
    bool fractional = false;
    if (Eat('.')) {
      fractional = true;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected fraction digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fractional = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("expected exponent digit");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    std::string lexeme(text_.substr(start, pos_ - start));
    out->number = std::strtod(lexeme.c_str(), nullptr);
    if (!negative && !fractional) {
      // Unsigned-integer view, exact unless the lexeme overflows uint64.
      uint64_t value = 0;
      bool overflow = false;
      for (size_t i = start; i < int_end; ++i) {
        uint64_t digit = static_cast<uint64_t>(text_[i] - '0');
        if (value > (static_cast<uint64_t>(-1) - digit) / 10) {
          overflow = true;
          break;
        }
        value = value * 10 + digit;
      }
      if (!overflow) {
        out->is_uint = true;
        out->uinteger = value;
      }
    }
    return Status::Ok();
  }

  Status Value(JsonValue* out) {
    if (++depth_ > 256) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = ObjectValue(out);
        break;
      case '[':
        status = ArrayValue(out);
        break;
      case '"':
        out->kind = JsonValue::Kind::kString;
        status = StringValue(&out->string);
        break;
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        status = Literal("true");
        break;
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        status = Literal("false");
        break;
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        status = Literal("null");
        break;
      default:
        status = NumberValue(out);
    }
    --depth_;
    return status;
  }

  Status ObjectValue(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Eat('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      std::string key;
      WSV_RETURN_IF_ERROR(StringValue(&key));
      SkipSpace();
      if (!Eat(':')) return Fail("expected ':'");
      JsonValue value;
      WSV_RETURN_IF_ERROR(Value(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Eat('}')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or '}'");
    }
  }

  Status ArrayValue(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Eat(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      WSV_RETURN_IF_ERROR(Value(&value));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Eat(']')) return Status::Ok();
      if (!Eat(',')) return Fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace wsv::obs
