#ifndef WSVERIFY_OBS_LOCK_PROFILE_H_
#define WSVERIFY_OBS_LOCK_PROFILE_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/ledger.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace wsv::obs {

/// One named lock site, reporting under the stable counter scheme
///
///   lock.<site>.acquisitions  every successful lock()/lock_shared()
///   lock.<site>.contended     acquisitions that had to wait
///   lock.<site>.wait_ns       total nanoseconds spent waiting
///
/// Sites are shared by name: every TimedMutex constructed with the same
/// site string feeds the same three counters (the eight PrefilterMemo shard
/// mutexes are one site). Contended wait time is additionally attributed to
/// the waiting thread's WorkerLedger lock_wait bucket.
class LockSite {
 public:
  /// Returns the process-wide site for `name`, creating it on first use.
  /// The reference stays valid for the process lifetime.
  static LockSite& ForName(const char* name);

  void RecordUncontended() { acquisitions_.Add(1); }
  void RecordContended(uint64_t wait_ns) {
    acquisitions_.Add(1);
    contended_.Add(1);
    wait_ns_.Add(wait_ns);
    LedgerRegistry::AddLockWait(wait_ns);
  }

 private:
  explicit LockSite(const std::string& site);

  Counter& acquisitions_;
  Counter& contended_;
  Counter& wait_ns_;
};

/// A std::mutex that counts acquisitions and contended waits against a
/// named LockSite. Satisfies Lockable, so std::lock_guard / unique_lock /
/// condition_variable_any work unchanged. Compiled with WSV_PROFILE off it
/// is a plain mutex: the site is never resolved, no counters are
/// registered, and lock() is a direct passthrough.
///
/// The fast path is a try_lock: an uncontended acquisition costs one
/// relaxed counter increment and reads no clock.
class TimedMutex {
 public:
  explicit TimedMutex([[maybe_unused]] const char* site)
#ifdef WSV_PROFILE
      : site_(&LockSite::ForName(site))
#endif
  {
  }

  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  void lock() {
#ifdef WSV_PROFILE
    if (mu_.try_lock()) {
      site_->RecordUncontended();
      return;
    }
    int64_t start = NowNanos();
    mu_.lock();
    site_->RecordContended(static_cast<uint64_t>(NowNanos() - start));
#else
    mu_.lock();
#endif
  }

  bool try_lock() {
    bool acquired = mu_.try_lock();
#ifdef WSV_PROFILE
    if (acquired) site_->RecordUncontended();
#endif
    return acquired;
  }

  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
#ifdef WSV_PROFILE
  LockSite* site_;
#endif
};

/// shared_mutex counterpart: exclusive and shared acquisitions both count
/// toward the same site (a contended lock_shared is a writer holding the
/// lock, which is exactly the contention worth seeing).
class TimedSharedMutex {
 public:
  explicit TimedSharedMutex([[maybe_unused]] const char* site)
#ifdef WSV_PROFILE
      : site_(&LockSite::ForName(site))
#endif
  {
  }

  TimedSharedMutex(const TimedSharedMutex&) = delete;
  TimedSharedMutex& operator=(const TimedSharedMutex&) = delete;

  void lock() {
#ifdef WSV_PROFILE
    if (mu_.try_lock()) {
      site_->RecordUncontended();
      return;
    }
    int64_t start = NowNanos();
    mu_.lock();
    site_->RecordContended(static_cast<uint64_t>(NowNanos() - start));
#else
    mu_.lock();
#endif
  }

  bool try_lock() {
    bool acquired = mu_.try_lock();
#ifdef WSV_PROFILE
    if (acquired) site_->RecordUncontended();
#endif
    return acquired;
  }

  void unlock() { mu_.unlock(); }

  void lock_shared() {
#ifdef WSV_PROFILE
    if (mu_.try_lock_shared()) {
      site_->RecordUncontended();
      return;
    }
    int64_t start = NowNanos();
    mu_.lock_shared();
    site_->RecordContended(static_cast<uint64_t>(NowNanos() - start));
#else
    mu_.lock_shared();
#endif
  }

  bool try_lock_shared() {
    bool acquired = mu_.try_lock_shared();
#ifdef WSV_PROFILE
    if (acquired) site_->RecordUncontended();
#endif
    return acquired;
  }

  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
#ifdef WSV_PROFILE
  LockSite* site_;
#endif
};

}  // namespace wsv::obs

#endif  // WSVERIFY_OBS_LOCK_PROFILE_H_
