#include "protocol/ltl_protocol.h"

#include "ltl/grounding.h"
#include "ltl/property.h"

namespace wsv::protocol {

Result<automata::BuchiAutomaton> DataAgnosticAutomatonFromLtl(
    const spec::Composition& comp, std::string_view ltl_text) {
  WSV_ASSIGN_OR_RETURN(ltl::Property property, ltl::Property::Parse(ltl_text));
  if (!property.closure_variables().empty()) {
    return Status::InvalidSpec(
        "data-agnostic protocol formulas are propositional (no variables)");
  }
  // Undo the parser's pure-FO leaf collapsing so every proposition is a
  // bare channel-name atom.
  ltl::LtlPtr lifted = ltl::LiftAllLeaves(property.formula());
  WSV_ASSIGN_OR_RETURN(
      ltl::GroundLtl ground,
      ltl::GroundToPropositional(lifted, /*negate=*/false));

  // Map grounding propositions (0-ary channel-name atoms) onto channel
  // indices.
  std::vector<automata::PropId> mapping;
  for (const fo::FormulaPtr& prop : ground.propositions) {
    if (prop->kind() != fo::FormulaKind::kAtom || !prop->terms().empty()) {
      return Status::InvalidSpec(
          "protocol formula atoms must be bare channel names, got: " +
          prop->ToString());
    }
    const spec::Channel* channel = comp.FindChannel(prop->relation());
    if (channel == nullptr) {
      return Status::NotFound("protocol formula references unknown channel '" +
                              prop->relation() + "'");
    }
    size_t index = 0;
    for (; index < comp.channels().size(); ++index) {
      if (&comp.channels()[index] == channel) break;
    }
    mapping.push_back(static_cast<automata::PropId>(index));
  }

  WSV_ASSIGN_OR_RETURN(automata::BuchiAutomaton automaton,
                       ground.BuildAutomaton());
  automata::BuchiAutomaton remapped(comp.channels().size());
  for (size_t s = 0; s < automaton.num_states(); ++s) remapped.AddState();
  for (automata::StateId s : automaton.initial_states()) {
    remapped.AddInitial(s);
  }
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    for (const automata::BuchiTransition& t :
         automaton.transitions_from(static_cast<automata::StateId>(s))) {
      remapped.AddTransition(static_cast<automata::StateId>(s), t.to,
                             automata::PropExpr::Remap(t.guard, mapping));
    }
  }
  std::vector<automata::StateId> accepting;
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    if (automaton.IsAccepting(static_cast<automata::StateId>(s))) {
      accepting.push_back(static_cast<automata::StateId>(s));
    }
  }
  remapped.AddAcceptingSet(std::move(accepting));
  return remapped;
}

Result<ConversationProtocol> DataAgnosticProtocolFromLtl(
    const spec::Composition& comp, std::string_view ltl_text,
    ObserverSemantics observer) {
  WSV_ASSIGN_OR_RETURN(automata::BuchiAutomaton automaton,
                       DataAgnosticAutomatonFromLtl(comp, ltl_text));
  WSV_ASSIGN_OR_RETURN(ConversationProtocol protocol,
                       ConversationProtocol::DataAgnostic(
                           comp, std::move(automaton), observer));
  // Keep the formula: verification negates it instead of complementing the
  // automaton.
  WSV_ASSIGN_OR_RETURN(ltl::Property property, ltl::Property::Parse(ltl_text));
  protocol.SetLtlFormula(property.formula());
  return protocol;
}

}  // namespace wsv::protocol
