#ifndef WSVERIFY_PROTOCOL_LTL_PROTOCOL_H_
#define WSVERIFY_PROTOCOL_LTL_PROTOCOL_H_

#include <string_view>

#include "automata/buchi.h"
#include "common/status.h"
#include "protocol/protocol.h"
#include "spec/composition.h"

namespace wsv::protocol {

/// Builds a data-agnostic protocol automaton from an LTL formula over
/// channel-event propositions (Example 4.1's "G(getRating -> F rating)"):
/// atoms are channel names; the formula is translated to a Büchi automaton
/// whose proposition ids index comp.channels().
///
/// Büchi automata are strictly more expressive than LTL, so protocols beyond
/// this helper are built directly with automata::BuchiAutomaton.
Result<automata::BuchiAutomaton> DataAgnosticAutomatonFromLtl(
    const spec::Composition& comp, std::string_view ltl_text);

/// Convenience: DataAgnosticAutomatonFromLtl + ConversationProtocol wiring.
Result<ConversationProtocol> DataAgnosticProtocolFromLtl(
    const spec::Composition& comp, std::string_view ltl_text,
    ObserverSemantics observer = ObserverSemantics::kAtRecipient);

}  // namespace wsv::protocol

#endif  // WSVERIFY_PROTOCOL_LTL_PROTOCOL_H_
