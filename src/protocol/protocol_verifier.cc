#include "protocol/protocol_verifier.h"

#include <optional>
#include <set>

#include "ltl/grounding.h"
#include "obs/timer.h"
#include "verifier/engine.h"

namespace wsv::protocol {

ProtocolVerifier::ProtocolVerifier(const spec::Composition* comp,
                                   ProtocolVerifierOptions options)
    : comp_(comp), options_(std::move(options)) {}

Status ProtocolVerifier::CheckDecidableRegime(
    const ConversationProtocol& protocol) const {
  if (protocol.observer() == ObserverSemantics::kAtSource) {
    return Status::UndecidableRegime(
        "observer-at-source semantics: protocol verification undecidable "
        "(Theorem 4.3); use observer-at-recipient");
  }
  if (options_.run.queue_bound == 0) {
    return Status::UndecidableRegime(
        "unbounded queues: protocol verification undecidable (Theorem "
        "4.6(i))");
  }
  if (!options_.run.lossy) {
    return Status::UndecidableRegime(
        "perfect flat channels: protocol verification undecidable (Theorem "
        "4.6(ii))");
  }
  if (options_.run.deterministic_flat_sends) {
    return Status::UndecidableRegime(
        "deterministic flat sends: protocol verification undecidable "
        "(Theorem 4.6(iii)) unless message parameters are ground");
  }
  if (!comp_->IsClosed() && !options_.run.allow_env_moves) {
    return Status::UndecidableRegime(
        "open composition without environment model");
  }
  WSV_RETURN_IF_ERROR(comp_->CheckInputBounded(options_.ib_options));
  WSV_RETURN_IF_ERROR(
      protocol.CheckInputBounded(*comp_, options_.ib_options));
  return Status::Ok();
}

Result<verifier::VerificationResult> ProtocolVerifier::Verify(
    const ConversationProtocol& protocol) {
  verifier::VerificationResult result;
  result.regime = CheckDecidableRegime(protocol);
  if (!result.regime.ok() && options_.require_decidable_regime) {
    return result.regime;
  }

  verifier::PseudoDomain pd = verifier::BuildPseudoDomain(
      *comp_, protocol.Constants(), options_.fresh_domain_size);
  interner_ = std::move(pd.interner);

  std::optional<std::vector<data::Instance>> fixed;
  if (options_.fixed_databases.has_value()) {
    WSV_ASSIGN_OR_RETURN(
        std::vector<data::Instance> dbs,
        verifier::MaterializeDatabases(*comp_, *options_.fixed_databases,
                                       interner_, pd.domain));
    fixed = std::move(dbs);
  }

  verifier::SymbolicTask task;
  std::optional<obs::PhaseTimer> automaton_phase(std::in_place, "automaton");
  if (protocol.ltl_formula() != nullptr) {
    // LTL-given protocol: the violating runs are exactly those of the
    // negated formula — no Büchi complementation needed. Grounding
    // propositions are channel-name atoms, which evaluate as the channel's
    // event proposition under the protocol's observer semantics.
    ltl::LtlPtr lifted = ltl::LiftAllLeaves(protocol.ltl_formula());
    WSV_ASSIGN_OR_RETURN(
        ltl::GroundLtl ground,
        ltl::GroundToPropositional(lifted, /*negate=*/true));
    WSV_ASSIGN_OR_RETURN(task.automaton, ground.BuildAutomaton());
    for (const fo::FormulaPtr& prop : ground.propositions) {
      if (prop->kind() != fo::FormulaKind::kAtom || !prop->terms().empty()) {
        return Status::InvalidSpec(
            "LTL protocol propositions must be channel names, got: " +
            prop->ToString());
      }
      if (comp_->FindChannel(prop->relation()) == nullptr) {
        return Status::NotFound("LTL protocol references unknown channel '" +
                                prop->relation() + "'");
      }
      task.leaves.push_back(
          ChannelEventAtom(prop->relation(), protocol.observer()));
    }
  } else {
    // Automaton-given protocol: a run violates the protocol iff its event
    // sequence is accepted by the complement of B.
    WSV_ASSIGN_OR_RETURN(
        automata::BuchiAutomaton complement,
        automata::ComplementBuchi(protocol.automaton(), options_.complement));
    task.automaton = std::move(complement);
    for (const ProtocolSymbol& symbol : protocol.symbols()) {
      task.leaves.push_back(symbol.guard);
    }
  }
  automaton_phase.reset();  // closes the phase.automaton span
  task.closure_variables = protocol.FreeVariables();
  task.valuations = verifier::ValuationSpace(
      pd.domain, interner_, task.closure_variables.size());
  result.stats.valuations_checked = task.valuations.size();

  verifier::EngineOptions engine_options;
  engine_options.run = options_.run;
  engine_options.iso_reduction = options_.iso_reduction;
  engine_options.max_databases = options_.max_databases;
  engine_options.db_range_lo = options_.db_range_lo;
  engine_options.db_range_hi = options_.db_range_hi;
  engine_options.count_only = options_.count_only;
  engine_options.valuation_mode = options_.valuation_mode;
  engine_options.budget = options_.budget;
  engine_options.jobs = options_.jobs;
  engine_options.fixed_databases = std::move(fixed);
  engine_options.control = options_.control;
  engine_options.on_db_error = options_.on_db_error;
  engine_options.checkpoint_path = options_.checkpoint_path;
  engine_options.checkpoint_fingerprint = options_.checkpoint_fingerprint;
  engine_options.checkpoint_every = options_.checkpoint_every;
  engine_options.resume_prefix = options_.resume_prefix;
  engine_options.resume_failed = options_.resume_failed;
  engine_options.resume_covered = options_.resume_covered;
  verifier::VerificationEngine engine(comp_, &interner_, pd.domain, pd.fresh,
                                      engine_options);
  WSV_ASSIGN_OR_RETURN(verifier::EngineOutcome outcome, engine.Run(task));

  if (options_.count_only) {
    result.enumeration_count = outcome.enumeration_count;
    result.coverage.unit = outcome.coverage_unit;
    result.stats.timings = outcome.timings;
    result.holds = true;  // nothing verified; callers key off count_only
    return result;
  }

  result.stats.databases_checked = outcome.databases_checked;
  result.stats.searches = outcome.searches;
  result.stats.prefiltered = outcome.prefiltered;
  result.stats.prefilter_memo_misses = outcome.prefilter_memo_misses;
  result.stats.prefilter_memo_hits = outcome.prefilter_memo_hits;
  result.stats.search = outcome.search_stats;
  result.stats.jobs = outcome.jobs;
  result.stats.timings = outcome.timings;
  result.holds = !outcome.violation_found;
  if (outcome.violation_found) {
    verifier::Counterexample ce;
    ce.databases = std::move(outcome.databases);
    ce.closure_valuation = std::move(outcome.label);
    ce.lasso = std::move(outcome.lasso);
    ce.database_index = outcome.violation_db_index;
    ce.valuation_index = outcome.violation_valuation_index;
    result.counterexample = std::move(ce);
  }
  result.coverage.stop_reason = outcome.stop_reason;
  result.coverage.stop_status = outcome.stop_status;
  result.coverage.completed_prefix = outcome.completed_prefix;
  result.coverage.covered = std::move(outcome.covered);
  result.coverage.unit = outcome.coverage_unit;
  result.coverage.range_lo = options_.db_range_lo;
  result.coverage.range_hi = options_.db_range_hi;
  result.coverage.failed_db_indices = std::move(outcome.failed_db_indices);
  result.coverage.db_retries = outcome.db_retries;
  if (!outcome.stop_status.ok() && result.holds && result.regime.ok()) {
    result.regime = outcome.stop_status;
  }
  result.complete = false;  // protocol verification is always domain-bounded
  return result;
}

}  // namespace wsv::protocol
