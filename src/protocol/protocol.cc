#include "protocol/protocol.h"

#include <algorithm>

#include "fo/input_bounded.h"

namespace wsv::protocol {

ConversationProtocol::ConversationProtocol(
    std::vector<ProtocolSymbol> symbols, automata::BuchiAutomaton automaton,
    ObserverSemantics observer)
    : symbols_(std::move(symbols)),
      automaton_(std::move(automaton)),
      observer_(observer) {
  automaton_.set_num_props(symbols_.size());
}

fo::FormulaPtr ChannelEventAtom(const std::string& channel,
                                ObserverSemantics observer) {
  std::string prop = observer == ObserverSemantics::kAtRecipient
                         ? spec::Composition::ReceivedPropName(channel)
                         : "sent_" + channel;
  return fo::Formula::Atom(std::move(prop), {});
}

Result<ConversationProtocol> ConversationProtocol::DataAgnostic(
    const spec::Composition& comp, automata::BuchiAutomaton automaton,
    ObserverSemantics observer) {
  std::vector<ProtocolSymbol> symbols;
  for (const spec::Channel& ch : comp.channels()) {
    symbols.push_back(
        ProtocolSymbol{ch.name, ChannelEventAtom(ch.name, observer)});
  }
  // Sanity: automaton guards must not reference propositions beyond the
  // channel count.
  for (automata::PropId p : automata::MentionedProps(automaton)) {
    if (p >= symbols.size()) {
      return Status::InvalidSpec(
          "protocol automaton references proposition " + std::to_string(p) +
          " but the composition has only " +
          std::to_string(symbols.size()) + " channels");
    }
  }
  return ConversationProtocol(std::move(symbols), std::move(automaton),
                              observer);
}

std::vector<std::string> ConversationProtocol::FreeVariables() const {
  std::set<std::string> vars;
  for (const ProtocolSymbol& s : symbols_) {
    auto f = s.guard->FreeVariables();
    vars.insert(f.begin(), f.end());
  }
  return std::vector<std::string>(vars.begin(), vars.end());
}

std::set<std::string> ConversationProtocol::Constants() const {
  std::set<std::string> out;
  for (const ProtocolSymbol& s : symbols_) {
    auto c = s.guard->Constants();
    out.insert(c.begin(), c.end());
  }
  return out;
}

Status ConversationProtocol::CheckInputBounded(
    const fo::SymbolClassifier& classifier,
    const fo::InputBoundedOptions& options) const {
  for (const ProtocolSymbol& s : symbols_) {
    Status status = fo::CheckInputBounded(s.guard, classifier, options);
    if (!status.ok()) {
      return Status(status.code(), "protocol symbol '" + s.name +
                                       "': " + status.message());
    }
  }
  return Status::Ok();
}

}  // namespace wsv::protocol
