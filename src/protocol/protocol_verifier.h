#ifndef WSVERIFY_PROTOCOL_PROTOCOL_VERIFIER_H_
#define WSVERIFY_PROTOCOL_PROTOCOL_VERIFIER_H_

#include "automata/complement.h"
#include "protocol/protocol.h"
#include "verifier/engine.h"
#include "verifier/verifier.h"

namespace wsv::protocol {

struct ProtocolVerifierOptions {
  runtime::RunOptions run;
  /// Fresh pseudo-domain elements (see VerifierOptions::fresh_domain_size).
  size_t fresh_domain_size = 2;
  bool iso_reduction = true;
  /// Absolute-index enumeration bound and shard range (see VerifierOptions
  /// for the full semantics).
  size_t max_databases = static_cast<size_t>(-1);
  size_t db_range_lo = 0;
  size_t db_range_hi = static_cast<size_t>(-1);
  /// Count the canonical databases instead of verifying (see
  /// VerifierOptions::count_only).
  bool count_only = false;
  /// Valuation coverage strategy (see verifier::ValuationMode).
  verifier::ValuationMode valuation_mode = verifier::ValuationMode::kConcrete;
  verifier::SearchBudget budget;
  /// Worker threads for the database sweep (1 = serial, 0 = hardware
  /// concurrency); see VerifierOptions::jobs.
  size_t jobs = 1;
  automata::ComplementOptions complement;
  fo::InputBoundedOptions ib_options;
  bool require_decidable_regime = false;
  std::optional<std::vector<verifier::NamedDatabase>> fixed_databases;

  /// Robustness knobs (deadline/cancel token, fault isolation, checkpoint +
  /// resume); see VerifierOptions for semantics.
  RunControl* control = nullptr;
  verifier::OnDbError on_db_error = verifier::OnDbError::kAbort;
  std::string checkpoint_path;
  std::string checkpoint_fingerprint;
  size_t checkpoint_every = 64;
  size_t resume_prefix = 0;
  std::vector<size_t> resume_failed;
  std::vector<verifier::IndexInterval> resume_covered;
};

/// Verifies conversation protocols against compositions (Theorems 4.2 and
/// 4.5): the composition satisfies (Σ, B, {phi_sigma}) iff no run's event
/// sequence is accepted by the complement of B; the verifier complements B
/// (rank-based, or the cheap construction for deterministic B) and searches
/// the product.
class ProtocolVerifier {
 public:
  explicit ProtocolVerifier(const spec::Composition* comp,
                            ProtocolVerifierOptions options = {});

  /// Maps the instance onto the paper's decidability results: undecidable
  /// for observer-at-source (Theorem 4.3), unbounded queues (Theorem
  /// 4.6(i)), perfect flat channels (4.6(ii)), or non-input-bounded guards.
  Status CheckDecidableRegime(const ConversationProtocol& protocol) const;

  Result<verifier::VerificationResult> Verify(
      const ConversationProtocol& protocol);

  const Interner& interner() const { return interner_; }

 private:
  const spec::Composition* comp_;
  ProtocolVerifierOptions options_;
  Interner interner_;
};

}  // namespace wsv::protocol

#endif  // WSVERIFY_PROTOCOL_PROTOCOL_VERIFIER_H_
