#ifndef WSVERIFY_PROTOCOL_PROTOCOL_H_
#define WSVERIFY_PROTOCOL_PROTOCOL_H_

#include <string>
#include <vector>

#include "automata/buchi.h"
#include "common/status.h"
#include "fo/formula.h"
#include "ltl/ltl_formula.h"
#include "spec/composition.h"

namespace wsv::protocol {

/// Where the message observer sits (Section 4): observer-at-recipient sees
/// only messages actually enqueued (decidable, Theorems 4.2/4.5);
/// observer-at-source sees every send attempt, including dropped ones
/// (undecidable, Theorem 4.3 — still explorable boundedly).
enum class ObserverSemantics { kAtRecipient, kAtSource };

/// One protocol alphabet symbol sigma with its guard formula phi_sigma
/// (Definition 4.4). For data-agnostic protocols the guard is the
/// message-enqueue event of one queue.
struct ProtocolSymbol {
  std::string name;
  /// FO formula over the out-queue views of the composition schema
  /// (possibly with free variables; satisfaction quantifies them universally
  /// over the run domain).
  fo::FormulaPtr guard;
};

/// A conversation protocol (Σ, B, {phi_sigma}) for a composition: the Büchi
/// automaton B runs over the per-snapshot truth valuations of the symbols
/// and must accept every run of the composition.
class ConversationProtocol {
 public:
  /// `automaton` must be plain (one acceptance set); its guard propositions
  /// index into `symbols`.
  ConversationProtocol(std::vector<ProtocolSymbol> symbols,
                       automata::BuchiAutomaton automaton,
                       ObserverSemantics observer);

  /// Data-agnostic protocol (Section 4, Theorem 4.2): one symbol per channel
  /// of `comp`, true when a new message is placed in (observer-at-recipient)
  /// or sent on (observer-at-source) that channel. The automaton's
  /// proposition ids index comp.channels().
  static Result<ConversationProtocol> DataAgnostic(
      const spec::Composition& comp, automata::BuchiAutomaton automaton,
      ObserverSemantics observer);

  const std::vector<ProtocolSymbol>& symbols() const { return symbols_; }
  const automata::BuchiAutomaton& automaton() const { return automaton_; }
  ObserverSemantics observer() const { return observer_; }

  /// When the protocol language was given in LTL (Example 4.1 style), the
  /// formula over channel-name atoms. Verification then negates the formula
  /// directly instead of complementing the automaton (complementation is
  /// exponential; negation is free).
  const ltl::LtlPtr& ltl_formula() const { return ltl_formula_; }
  void SetLtlFormula(ltl::LtlPtr formula) {
    ltl_formula_ = std::move(formula);
  }

  /// Free variables across all symbol guards (sorted).
  std::vector<std::string> FreeVariables() const;

  /// Constants across all symbol guards.
  std::set<std::string> Constants() const;

  /// True iff every guard is input-bounded (Theorem 4.5's requirement).
  Status CheckInputBounded(const fo::SymbolClassifier& classifier,
                           const fo::InputBoundedOptions& options = {}) const;

 private:
  std::vector<ProtocolSymbol> symbols_;
  automata::BuchiAutomaton automaton_;
  ObserverSemantics observer_;
  ltl::LtlPtr ltl_formula_;
};

/// The event proposition of `channel` under `observer` semantics
/// ("received_Q" / "sent_Q") as an FO atom.
fo::FormulaPtr ChannelEventAtom(const std::string& channel,
                                ObserverSemantics observer);

}  // namespace wsv::protocol

#endif  // WSVERIFY_PROTOCOL_PROTOCOL_H_
