#include "common/fault.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wsv::fault {

namespace {

struct ArmedSite {
  SiteSpec spec;
  uint64_t hits = 0;
  uint64_t injected = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<ArmedSite> sites;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Armed-site count gate. 0 = nothing armed. Written only under the
/// registry mutex; read relaxed from every fault point.
std::atomic<uint64_t> g_armed{0};

bool ParseOne(const std::string& item, SiteSpec* out) {
  // site:N[:crash|:fail][:every] — N first, modifiers in any order after.
  size_t colon = item.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  out->site = item.substr(0, colon);
  out->nth = 0;
  out->mode = Mode::kFail;
  out->every = false;
  std::string rest = item.substr(colon + 1);
  bool saw_nth = false;
  size_t pos = 0;
  while (pos <= rest.size()) {
    size_t next = rest.find(':', pos);
    std::string tok = rest.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    if (tok == "crash") {
      out->mode = Mode::kCrash;
    } else if (tok == "fail") {
      out->mode = Mode::kFail;
    } else if (tok == "every") {
      out->every = true;
    } else if (!tok.empty() &&
               tok.find_first_not_of("0123456789") == std::string::npos) {
      if (saw_nth) return false;
      out->nth = std::strtoull(tok.c_str(), nullptr, 10);
      saw_nth = true;
    } else {
      return false;
    }
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return saw_nth && out->nth > 0;
}

/// One-time arm from the environment. Function-local static so the first
/// fault point anywhere (any thread) performs the parse exactly once.
void ArmFromEnvOnce() {
  static const bool armed = [] {
    const char* spec = std::getenv("WSV_FAULT");
    if (spec == nullptr || spec[0] == '\0') return false;
    if (!ArmFromSpec(spec)) {
      std::fprintf(stderr, "wsv: ignoring malformed WSV_FAULT spec '%s'\n",
                   spec);
      return false;
    }
    return true;
  }();
  (void)armed;
}

}  // namespace

bool Enabled() {
  ArmFromEnvOnce();
  return g_armed.load(std::memory_order_relaxed) != 0;
}

bool ShouldTrigger(const char* site) {
  Registry& registry = GlobalRegistry();
  Mode crash_mode = Mode::kFail;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    for (ArmedSite& armed : registry.sites) {
      if (armed.spec.site != site) continue;
      ++armed.hits;
      bool hit = armed.spec.every ? (armed.hits % armed.spec.nth == 0)
                                  : (armed.hits == armed.spec.nth);
      if (!hit) continue;
      if (armed.spec.mode == Mode::kCrash) {
        crash_mode = Mode::kCrash;
      } else {
        ++armed.injected;
        fired = true;
      }
    }
  }
  if (crash_mode == Mode::kCrash) {
    // Outside the lock: nothing below may allocate or run atexit handlers —
    // the whole point is to die with half-written state on disk.
    std::fprintf(stderr, "wsv: fault site '%s' crashing the process "
                 "(WSV_FAULT)\n", site);
    std::fflush(stderr);
    std::_Exit(137);
  }
  return fired;
}

bool ArmFromSpec(const std::string& spec) {
  std::vector<ArmedSite> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t next = spec.find(',', pos);
    std::string item = spec.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    if (!item.empty()) {
      ArmedSite armed;
      if (!ParseOne(item, &armed.spec)) return false;
      parsed.push_back(std::move(armed));
    }
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites = std::move(parsed);
  g_armed.store(registry.sites.size(), std::memory_order_relaxed);
  return true;
}

void Reset() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.sites.clear();
  g_armed.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> InjectedCounts() {
  Registry& registry = GlobalRegistry();
  std::vector<std::pair<std::string, uint64_t>> out;
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const ArmedSite& armed : registry.sites) {
    if (armed.injected == 0) continue;
    // Merge duplicate sites (two specs may name the same site).
    bool merged = false;
    for (auto& [site, count] : out) {
      if (site == armed.spec.site) {
        count += armed.injected;
        merged = true;
        break;
      }
    }
    if (!merged) out.emplace_back(armed.spec.site, armed.injected);
  }
  return out;
}

uint64_t InjectedTotal() {
  uint64_t total = 0;
  for (const auto& [site, count] : InjectedCounts()) total += count;
  return total;
}

}  // namespace wsv::fault
