#include "common/status.h"

namespace wsv {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidSpec:
      return "InvalidSpec";
    case StatusCode::kUndecidableRegime:
      return "UndecidableRegime";
    case StatusCode::kBudgetExceeded:
      return "BudgetExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCanceled:
      return "Canceled";
    case StatusCode::kPartialFailure:
      return "PartialFailure";
    case StatusCode::kRangeEnd:
      return "RangeEnd";
    case StatusCode::kMemoryBudget:
      return "MemoryBudget";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace wsv
