#include "common/ledger.h"

#include <chrono>

namespace wsv {

namespace {
thread_local WorkerLedger* t_current_ledger = nullptr;
}  // namespace

LedgerRegistry& LedgerRegistry::Global() {
  static LedgerRegistry* registry = new LedgerRegistry();
  return *registry;
}

int64_t LedgerRegistry::WallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WorkerLedger* LedgerRegistry::RegisterCurrentThread(std::string name) {
  auto ledger = std::make_unique<WorkerLedger>();
  ledger->name = std::move(name);
  ledger->registered_nanos = WallNanos();
  WorkerLedger* raw = ledger.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ledgers_.push_back(std::move(ledger));
  }
  t_current_ledger = raw;
  return raw;
}

std::string LedgerRegistry::NextWorkerName() {
  std::lock_guard<std::mutex> lock(mu_);
  return "worker." + std::to_string(next_worker_++);
}

WorkerLedger* LedgerRegistry::Current() { return t_current_ledger; }

void LedgerRegistry::AddLockWait(uint64_t nanos) {
  WorkerLedger* ledger = t_current_ledger;
  if (ledger != nullptr) {
    ledger->lock_wait_ns.fetch_add(nanos, std::memory_order_relaxed);
  }
}

std::vector<WorkerLedgerSnapshot> LedgerRegistry::Snapshot() const {
  int64_t now = WallNanos();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerLedgerSnapshot> out;
  out.reserve(ledgers_.size());
  for (const auto& ledger : ledgers_) {
    WorkerLedgerSnapshot snap;
    snap.name = ledger->name;
    snap.wall_ns = now > ledger->registered_nanos
                       ? static_cast<uint64_t>(now - ledger->registered_nanos)
                       : 0;
    snap.exec_ns = ledger->exec_ns.load(std::memory_order_relaxed);
    snap.idle_ns = ledger->idle_ns.load(std::memory_order_relaxed);
    snap.lock_wait_ns = ledger->lock_wait_ns.load(std::memory_order_relaxed);
    snap.drain_ns = ledger->drain_ns.load(std::memory_order_relaxed);
    snap.tasks = ledger->tasks.load(std::memory_order_relaxed);
    out.push_back(std::move(snap));
  }
  return out;
}

void LedgerRegistry::Reset() {
  int64_t now = WallNanos();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ledger : ledgers_) {
    ledger->registered_nanos = now;
    ledger->exec_ns.store(0, std::memory_order_relaxed);
    ledger->idle_ns.store(0, std::memory_order_relaxed);
    ledger->lock_wait_ns.store(0, std::memory_order_relaxed);
    ledger->drain_ns.store(0, std::memory_order_relaxed);
    ledger->tasks.store(0, std::memory_order_relaxed);
  }
}

}  // namespace wsv
