#include "common/arena.h"

#include <algorithm>

#include "common/fault.h"

namespace wsv {

void Arena::Grow(size_t min_words) {
  // Recycle a retained chunk when one is big enough (post-Reset path).
  while (chunk_index_ + 1 < chunks_.size()) {
    ++chunk_index_;
    Chunk& next = chunks_[chunk_index_];
    if (next.words >= min_words) {
      top_ = next.data.get();
      end_ = top_ + next.words;
      return;
    }
  }
  // The cold path is the only place the arena touches the system allocator,
  // so it is both the fault-injection site for simulated OOM and the spot
  // where a real bad_alloc gets rewrapped into the memory-budget taxonomy.
  if (WSV_FAULT_POINT("arena.alloc")) {
    throw fault::MemoryBudgetError(
        "arena chunk allocation failed (injected fault 'arena.alloc')");
  }
  size_t words = std::max(min_words, chunk_bytes_ / sizeof(uint32_t));
  Chunk chunk;
  try {
    chunk = Chunk{std::make_unique<uint32_t[]>(words), words};
  } catch (const std::bad_alloc&) {
    throw fault::MemoryBudgetError(
        "arena chunk allocation of " +
        std::to_string(words * sizeof(uint32_t)) + " bytes failed");
  }
  chunks_.push_back(std::move(chunk));
  capacity_words_ += words;
  chunk_index_ = chunks_.size() - 1;
  top_ = chunks_.back().data.get();
  end_ = top_ + words;
}

}  // namespace wsv
