#include "common/arena.h"

#include <algorithm>

namespace wsv {

void Arena::Grow(size_t min_words) {
  // Recycle a retained chunk when one is big enough (post-Reset path).
  while (chunk_index_ + 1 < chunks_.size()) {
    ++chunk_index_;
    Chunk& next = chunks_[chunk_index_];
    if (next.words >= min_words) {
      top_ = next.data.get();
      end_ = top_ + next.words;
      return;
    }
  }
  size_t words = std::max(min_words, chunk_bytes_ / sizeof(uint32_t));
  chunks_.push_back(Chunk{std::make_unique<uint32_t[]>(words), words});
  capacity_words_ += words;
  chunk_index_ = chunks_.size() - 1;
  top_ = chunks_.back().data.get();
  end_ = top_ + words;
}

}  // namespace wsv
