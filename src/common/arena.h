#ifndef WSVERIFY_COMMON_ARENA_H_
#define WSVERIFY_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace wsv {

/// A bump-pointer arena for trivially-destructible data. Allocation is a
/// pointer increment into the current chunk; chunks are never moved, so
/// returned pointers stay valid until Reset() or destruction. There is no
/// per-object free — the intended use is append-mostly storage whose
/// lifetime is a whole verification phase (interned snapshot encodings) or
/// one BFS level (per-lane scratch pools, recycled with Reset()).
class Arena {
 public:
  /// `chunk_bytes` is the granularity fresh chunks are carved in;
  /// allocations larger than a chunk get a dedicated chunk of their size.
  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates `count` uint32 words, uninitialized. Never returns null;
  /// count == 0 yields a valid (dangling-safe) pointer into the arena.
  uint32_t* AllocWords(size_t count) {
    if (top_ + count > end_) Grow(count);
    uint32_t* out = top_;
    top_ += count;
    used_words_ += count;
    return out;
  }

  /// Copies `count` words of `src` into the arena and returns the copy.
  const uint32_t* CopyWords(const uint32_t* src, size_t count) {
    uint32_t* dst = AllocWords(count);
    if (count > 0) std::memcpy(dst, src, count * sizeof(uint32_t));
    return dst;
  }

  /// Recycles every chunk: allocation restarts at the front of the first
  /// chunk, keeping the capacity. All previously returned pointers become
  /// invalid. This is the per-BFS-level scratch-pool operation — a lane
  /// resets its arena each level instead of reallocating buffers.
  void Reset() {
    chunk_index_ = 0;
    used_words_ = 0;
    if (chunks_.empty()) {
      top_ = end_ = nullptr;
    } else {
      top_ = chunks_[0].data.get();
      end_ = top_ + chunks_[0].words;
    }
  }

  /// Words handed out since construction / the last Reset().
  size_t used_words() const { return used_words_; }
  size_t used_bytes() const { return used_words_ * sizeof(uint32_t); }

  /// Total capacity held (survives Reset()).
  size_t capacity_bytes() const { return capacity_words_ * sizeof(uint32_t); }

 private:
  static constexpr size_t kDefaultChunkBytes = 256 * 1024;

  struct Chunk {
    std::unique_ptr<uint32_t[]> data;
    size_t words;
  };

  void Grow(size_t min_words);

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  /// Next chunk to recycle after a Reset(); chunks_[0..chunk_index_] are in
  /// use, later ones are free capacity.
  size_t chunk_index_ = 0;
  uint32_t* top_ = nullptr;
  uint32_t* end_ = nullptr;
  size_t used_words_ = 0;
  size_t capacity_words_ = 0;
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_ARENA_H_
