#ifndef WSVERIFY_COMMON_HASH_H_
#define WSVERIFY_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace wsv {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes a range of hashable elements into one value.
template <typename It>
size_t HashRange(It first, It last) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (; first != last; ++first) {
    HashCombine(seed, std::hash<std::decay_t<decltype(*first)>>()(*first));
  }
  return seed;
}

/// Hash functor for vectors of hashable elements.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_HASH_H_
