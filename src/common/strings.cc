#include "common/strings.h"

namespace wsv {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\n' ||
          text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace wsv
