#ifndef WSVERIFY_COMMON_RUN_CONTROL_H_
#define WSVERIFY_COMMON_RUN_CONTROL_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace wsv {

/// Why a verification run stopped where it did. `kComplete` means the full
/// state space (within the configured bounds) was covered; every other
/// value marks a partial-but-sound result: a reported violation is always
/// real, while a clean pass is relative to what was actually explored.
enum class StopReason {
  kComplete = 0,
  /// A per-search or per-sweep budget (max_states, max_databases) was hit.
  kBudget,
  /// The wall-clock deadline expired.
  kDeadline,
  /// Cooperative cancellation (Ctrl-C, caller token).
  kCanceled,
  /// Some databases' checks failed hard and were skipped.
  kDbFailures,
  /// The assigned index range (--db-range / --valuation-range) was covered
  /// in full while more of the enumeration remains beyond it; the shard is
  /// done with its work unit, not the whole space.
  kRangeEnd,
  /// A memory budget was hit (simulated OOM via fault injection, or a real
  /// allocation failure during arena growth); the run wound down with the
  /// completed prefix intact instead of crashing.
  kMemoryBudget,
};

/// Stable lowercase names used in verdict JSON and checkpoints
/// ("complete", "budget", "deadline", "canceled", "db-failures",
/// "range-end", "memory-budget").
const char* StopReasonName(StopReason reason);

/// Parses a StopReasonName back; false when `text` matches no reason.
bool ParseStopReason(const char* text, StopReason* out);

/// Maps a sweep-stopping Status onto the StopReason taxonomy: OK ->
/// complete, kBudgetExceeded -> budget, kDeadlineExceeded -> deadline,
/// kCanceled -> canceled, kPartialFailure -> db-failures, kRangeEnd ->
/// range-end. Any other code is a hard error and maps to complete (callers
/// never feed those here).
StopReason StopReasonFromStatus(const Status& status);

/// Shared run-control state for one verification run: a wall-clock deadline
/// and a cooperative cancellation token. Every long loop of the pipeline
/// (NDFS, snapshot-graph expansion, the valuation loop, sweep dispatch)
/// polls Check() at a coarse stride (~1k iterations), so a stop request
/// takes effect within milliseconds without per-iteration cost.
///
/// Thread-safety: all members are lock-free atomics. RequestCancel() is
/// async-signal-safe (a relaxed store), so a SIGINT handler may call it.
class RunControl {
 public:
  RunControl() = default;

  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Arms a wall-clock deadline `ms` milliseconds from now; 0 disarms.
  void ArmDeadlineMs(uint64_t ms);

  /// Requests cooperative cancellation. Async-signal-safe; idempotent.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }
  bool deadline_armed() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// Non-OK exactly when the run should stop: kCanceled after
  /// RequestCancel(), kDeadlineExceeded once the armed deadline has passed
  /// (latched — it stays expired even if re-armed later). Costs two relaxed
  /// loads plus, while a deadline is armed, one steady_clock read.
  Status Check() const;

  /// True for the statuses Check() produces — the "wind down and report
  /// partial results" statuses, as opposed to hard errors.
  static bool IsStopStatus(const Status& status) {
    return status.code() == StatusCode::kDeadlineExceeded ||
           status.code() == StatusCode::kCanceled ||
           status.code() == StatusCode::kMemoryBudget;
  }

  /// Clears the cancel flag and disarms the deadline (tests, reuse).
  void Reset();

  /// Process-wide instance, shared by the CLI's signal handler and the
  /// verifier options it builds.
  static RunControl& Global();

 private:
  std::atomic<bool> cancel_{false};
  /// Deadline as nanoseconds on the steady clock; 0 = disarmed.
  std::atomic<int64_t> deadline_ns_{0};
  /// Latched once the deadline is observed expired, so subsequent checks
  /// skip the clock read.
  mutable std::atomic<bool> deadline_hit_{false};
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_RUN_CONTROL_H_
