#ifndef WSVERIFY_COMMON_FAULT_H_
#define WSVERIFY_COMMON_FAULT_H_

#include <atomic>
#include <new>
#include <string>
#include <utility>
#include <vector>

namespace wsv::fault {

/// Deterministic fault injection for robustness tests. A fault SITE is a
/// stable dotted name compiled into the code ("checkpoint.write.io",
/// "arena.alloc", ...); the environment variable WSV_FAULT arms sites:
///
///   WSV_FAULT=checkpoint.write.io:3          fail the 3rd hit of the site
///   WSV_FAULT=checkpoint.write.io:3:crash    _Exit(137) at the 3rd hit
///   WSV_FAULT=a:1,b:2:crash                  comma-separated list
///
/// `:every` repeats: the site fails at hit N, 2N, 3N, ... instead of once.
/// Hit counting is per-process and thread-safe. Unarmed processes pay one
/// relaxed atomic load per fault point; with WSV_FAULTS=OFF at configure
/// time every point compiles to `false`.
///
/// Sites wired into the pipeline:
///   checkpoint.write.io   checkpoint writer (fail -> write error status;
///                         crash -> _Exit with a torn temp file on disk)
///   checkpoint.read.io    checkpoint reader (fail -> parse error, which
///                         exercises the .bak recovery path)
///   merge.io              wsvc-merge input reads
///   arena.alloc           Arena chunk growth (fail -> MemoryBudgetError,
///                         surfacing as the `memory-budget` stop reason)
///   pool.task             ThreadPool task boundary (fail -> the task
///                         throws, exercising worker fault isolation)

/// How an armed site misbehaves when its hit count is reached.
enum class Mode {
  /// The fault point returns true; the caller simulates an IO/alloc error.
  kFail,
  /// The process dies on the spot (std::_Exit(137)), simulating SIGKILL /
  /// power loss with whatever half-written state is on disk.
  kCrash,
};

/// One armed site, as parsed from WSV_FAULT.
struct SiteSpec {
  std::string site;
  /// Trigger on the Nth hit (1-based).
  uint64_t nth = 1;
  Mode mode = Mode::kFail;
  /// Re-trigger every `nth` hits instead of once.
  bool every = false;
};

/// Cheap global gate: true when any site is armed. Fault points check this
/// before taking the slow path, so disabled runs cost one relaxed load.
bool Enabled();

/// Counts a hit of `site`; true exactly when an armed spec for it fires in
/// kFail mode. In kCrash mode this call never returns (the process exits).
bool ShouldTrigger(const char* site);

/// Parses a WSV_FAULT-style spec and arms it, replacing the current set.
/// Returns false (leaving nothing armed) on a malformed spec. Tests use
/// this directly; production arming happens lazily from the environment on
/// the first Enabled() call.
bool ArmFromSpec(const std::string& spec);

/// Disarms everything and zeroes hit/injected counts (tests).
void Reset();

/// Snapshot of injected-fault counts per site (sites that actually fired,
/// crash-mode sites excluded for the obvious reason). Rendered into the
/// stats-JSON counters section as "fault.injected.<site>".
std::vector<std::pair<std::string, uint64_t>> InjectedCounts();

/// Total faults injected (sum of InjectedCounts()).
uint64_t InjectedTotal();

/// Thrown by Arena when the "arena.alloc" site fires (or a real bad_alloc
/// surfaces during chunk growth): a simulated out-of-memory condition the
/// sweep winds down from gracefully with the `memory-budget` stop reason
/// instead of crashing.
class MemoryBudgetError : public std::bad_alloc {
 public:
  explicit MemoryBudgetError(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

}  // namespace wsv::fault

#if defined(WSV_FAULTS)
/// True exactly when the named fault site fires this hit. Usable in any
/// expression: `if (WSV_FAULT_POINT("checkpoint.write.io")) ...`.
#define WSV_FAULT_POINT(site) \
  (::wsv::fault::Enabled() && ::wsv::fault::ShouldTrigger(site))
#else
#define WSV_FAULT_POINT(site) (false)
#endif

#endif  // WSVERIFY_COMMON_FAULT_H_
