#ifndef WSVERIFY_COMMON_FLAT_HASH_H_
#define WSVERIFY_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsv {

/// Mixes a 64-bit key into a table hash (splitmix64 finalizer) — for
/// FlatIdSet users whose content is a packed integer key rather than a
/// hashed byte span.
inline size_t HashKey64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

/// An open-addressing id set keyed by precomputed hashes: the table stores
/// dense 32-bit ids, the caller owns the id -> payload mapping and supplies
/// hashes and an equality predicate at the call site. Linear probing over a
/// power-of-two slot array, one cache line per probe step — this replaces
/// the node-based std::unordered_set on the snapshot-intern and
/// product-state hot paths, where the per-hit cost of chasing bucket nodes
/// dominates.
///
/// Concurrency: Find is safe against concurrent Find (no mutation);
/// Insert requires exclusive access.
class FlatIdSet {
 public:
  static constexpr uint32_t kEmpty = static_cast<uint32_t>(-1);

  FlatIdSet() { Rehash(kMinSlots); }

  /// Looks up an entry with `hash` satisfying `eq(id)`; returns kEmpty when
  /// absent. `eq` is only called for candidates whose stored hash matches.
  template <typename Eq>
  uint32_t Find(size_t hash, Eq&& eq) const {
    size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      uint32_t id = slots_[i];
      if (id == kEmpty) return kEmpty;
      if (hashes_[i] == hash && eq(id)) return id;
    }
  }

  /// Inserts `id` under `hash`. The caller has already checked absence via
  /// Find (content-addressed tables never insert duplicates).
  void Insert(size_t hash, uint32_t id) {
    if ((size_ + 1) * 8 > slots_.size() * 7) Rehash(slots_.size() * 2);
    InsertNoGrow(hash, id);
    ++size_;
  }

  size_t size() const { return size_; }

  void Reserve(size_t n) {
    size_t want = kMinSlots;
    while (n * 8 > want * 7) want *= 2;
    if (want > slots_.size()) Rehash(want);
  }

 private:
  static constexpr size_t kMinSlots = 64;

  void InsertNoGrow(size_t hash, uint32_t id) {
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (slots_[i] != kEmpty) i = (i + 1) & mask;
    slots_[i] = id;
    hashes_[i] = hash;
  }

  void Rehash(size_t new_slots) {
    std::vector<uint32_t> old_slots = std::move(slots_);
    std::vector<size_t> old_hashes = std::move(hashes_);
    slots_.assign(new_slots, kEmpty);
    hashes_.assign(new_slots, 0);
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_slots[i] != kEmpty) InsertNoGrow(old_hashes[i], old_slots[i]);
    }
  }

  std::vector<uint32_t> slots_;
  /// Full hash per occupied slot: rules out almost every false candidate
  /// before the caller's (memcmp-heavy) equality runs, and makes rehashing
  /// recomputation-free.
  std::vector<size_t> hashes_;
  size_t size_ = 0;
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_FLAT_HASH_H_
