#ifndef WSVERIFY_COMMON_STATUS_H_
#define WSVERIFY_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace wsv {

/// Error codes used throughout the library. The taxonomy mirrors the ways a
/// verification task can fail: malformed specifications, inputs outside the
/// decidable regime mapped by the paper, and resource exhaustion during the
/// state-space search.
enum class StatusCode {
  kOk = 0,
  /// Input text failed to lex/parse.
  kParseError,
  /// Specification violates a structural requirement (Definition 2.1 / 2.5),
  /// e.g. overlapping queue schemas or an arity mismatch.
  kInvalidSpec,
  /// Specification or property falls outside a decidable class (Section 3.1,
  /// 3.2, 4, 5): not input-bounded, unbounded queues, perfect flat channels,
  /// observer-at-source protocol, non-strict environment spec, ...
  kUndecidableRegime,
  /// The bounded search exhausted its configured budget.
  kBudgetExceeded,
  /// Catch-all for internal invariant violations.
  kInternal,
  /// Requested entity (relation, peer, channel) does not exist.
  kNotFound,
  /// The run hit its wall-clock deadline; results are partial but sound.
  kDeadlineExceeded,
  /// Cooperative cancellation (Ctrl-C, caller token) stopped the run.
  kCanceled,
  /// Some per-database checks failed and were skipped; the verdict is
  /// bounded to the databases that completed.
  kPartialFailure,
  /// The sweep reached the end of its assigned index range (--db-range /
  /// --valuation-range) with more work remaining beyond it; the shard's
  /// verdict covers exactly its range.
  kRangeEnd,
  /// The run hit a memory budget (simulated OOM via the arena fault site,
  /// or a real allocation failure during arena growth); results are
  /// partial but sound, like a deadline stop.
  kMemoryBudget,
};

/// Returns a human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, in the style of absl::Status.
/// The library does not use exceptions; fallible operations return Status or
/// Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status InvalidSpec(std::string m) {
    return Status(StatusCode::kInvalidSpec, std::move(m));
  }
  static Status UndecidableRegime(std::string m) {
    return Status(StatusCode::kUndecidableRegime, std::move(m));
  }
  static Status BudgetExceeded(std::string m) {
    return Status(StatusCode::kBudgetExceeded, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Canceled(std::string m) {
    return Status(StatusCode::kCanceled, std::move(m));
  }
  static Status PartialFailure(std::string m) {
    return Status(StatusCode::kPartialFailure, std::move(m));
  }
  static Status RangeEnd(std::string m) {
    return Status(StatusCode::kRangeEnd, std::move(m));
  }
  static Status MemoryBudget(std::string m) {
    return Status(StatusCode::kMemoryBudget, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "code: message" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error holder, in the style of absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT: implicit
  /// Constructs a failed result; `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression, absl-style.
#define WSV_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::wsv::Status _wsv_status = (expr);      \
    if (!_wsv_status.ok()) return _wsv_status; \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors; on success binds the
/// moved value to `lhs`.
#define WSV_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto WSV_CONCAT_(_wsv_result, __LINE__) = (expr);     \
  if (!WSV_CONCAT_(_wsv_result, __LINE__).ok())         \
    return WSV_CONCAT_(_wsv_result, __LINE__).status(); \
  lhs = std::move(WSV_CONCAT_(_wsv_result, __LINE__)).value()

#define WSV_CONCAT_INNER_(a, b) a##b
#define WSV_CONCAT_(a, b) WSV_CONCAT_INNER_(a, b)

}  // namespace wsv

#endif  // WSVERIFY_COMMON_STATUS_H_
