#include "common/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace wsv {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task, Completion done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(task), std::move(done)});
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  std::deque<Task> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped.swap(queue_);
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
  if (dropped.empty()) return;
  std::exception_ptr canceled = std::make_exception_ptr(
      std::runtime_error("task canceled: ThreadPool::Shutdown dropped it "
                         "before it started"));
  for (Task& task : dropped) {
    if (task.done) task.done(canceled);
  }
}

std::exception_ptr ThreadPool::first_exception() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_exception_;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    // The exception boundary: a throw here would otherwise escape the
    // thread and std::terminate the whole process.
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    if (task.done) task.done(error);
    lock.lock();
    if (error && !task.done && !first_exception_) first_exception_ = error;
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadPool::ResolveJobs(size_t jobs) {
  if (jobs != 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace wsv
