#include "common/thread_pool.h"

namespace wsv {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadPool::ResolveJobs(size_t jobs) {
  if (jobs != 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace wsv
