#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/fault.h"
#include "common/ledger.h"

namespace wsv {

namespace {

/// Shared state of one ParallelChunks call. Held by shared_ptr from every
/// drainer closure so an abandoned drainer that the pool runs after the
/// call returned still finds valid memory (it only reads its state slot).
struct ChunkRun {
  enum LaneState : uint8_t { kPending = 0, kRunning = 1, kAbandoned = 2 };

  explicit ChunkRun(size_t helpers) : lane_state(helpers) {
    for (auto& s : lane_state) s.store(kPending, std::memory_order_relaxed);
  }

  std::atomic<size_t> cursor{0};
  size_t count = 0;
  /// Only lanes that won the kPending -> kRunning race may touch `fn`; the
  /// caller waits for exactly those, so `fn` (and whatever caller-local
  /// state it captures) is alive for them.
  const std::function<void(size_t, size_t)>* fn = nullptr;
  std::vector<std::atomic<uint8_t>> lane_state;

  std::mutex mu;
  std::condition_variable exit_cv;
  size_t exited_running = 0;
  std::exception_ptr first_error;
  size_t first_error_chunk = 0;

  void DrainFrom(size_t lane) {
    WorkerLedger* ledger = LedgerRegistry::Current();
    int64_t start = ledger != nullptr ? LedgerRegistry::WallNanos() : 0;
    DrainLoop(lane);
    if (ledger != nullptr) {
      uint64_t dur = static_cast<uint64_t>(LedgerRegistry::WallNanos() - start);
      ledger->drain_ns.fetch_add(dur, std::memory_order_relaxed);
      // A pool worker's drain runs inside a drainer task whose exec bucket
      // already covers it; the caller thread (lane 0, outside any task)
      // books its drain as exec so utilization sees caller participation.
      if (!ledger->in_task) {
        ledger->exec_ns.fetch_add(dur, std::memory_order_relaxed);
      }
    }
  }

  void DrainLoop(size_t lane) {
    size_t chunk;
    while ((chunk = cursor.fetch_add(1, std::memory_order_relaxed)) < count) {
      try {
        (*fn)(lane, chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error || chunk < first_error_chunk) {
          first_error = std::current_exception();
          first_error_chunk = chunk;
        }
        // Stop claiming new work; lanes already in fn finish their chunk.
        cursor.store(count, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task, Completion done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(task), std::move(done)});
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  std::deque<Task> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped.swap(queue_);
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
  if (dropped.empty()) return;
  std::exception_ptr canceled = std::make_exception_ptr(
      std::runtime_error("task canceled: ThreadPool::Shutdown dropped it "
                         "before it started"));
  for (Task& task : dropped) {
    if (task.done) task.done(canceled);
  }
}

std::exception_ptr ThreadPool::first_exception() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_exception_;
}

void ThreadPool::WorkerLoop() {
  // Ledger registration is decided at thread birth: pools created while
  // profiling collection is off (unit tests, disabled runs) never touch
  // the clock in this loop.
  LedgerRegistry& ledgers = LedgerRegistry::Global();
  WorkerLedger* ledger =
      ledgers.enabled()
          ? ledgers.RegisterCurrentThread(ledgers.NextWorkerName())
          : nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (ledger != nullptr) {
      int64_t idle_start = LedgerRegistry::WallNanos();
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      ledger->idle_ns.fetch_add(
          static_cast<uint64_t>(LedgerRegistry::WallNanos() - idle_start),
          std::memory_order_relaxed);
    } else {
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    }
    if (stop_ && queue_.empty()) return;
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    // The exception boundary: a throw here would otherwise escape the
    // thread and std::terminate the whole process.
    std::exception_ptr error;
    int64_t exec_start = ledger != nullptr ? LedgerRegistry::WallNanos() : 0;
    if (ledger != nullptr) ledger->in_task = true;
    try {
      // The task boundary doubles as a fault site: an injected throw here
      // exercises exactly the isolation a misbehaving task would.
      if (WSV_FAULT_POINT("pool.task")) {
        throw std::runtime_error(
            "pool task failed (injected fault 'pool.task')");
      }
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    if (ledger != nullptr) {
      ledger->in_task = false;
      ledger->exec_ns.fetch_add(
          static_cast<uint64_t>(LedgerRegistry::WallNanos() - exec_start),
          std::memory_order_relaxed);
      ledger->tasks.fetch_add(1, std::memory_order_relaxed);
    }
    if (task.done) task.done(error);
    lock.lock();
    if (error && !task.done && !first_exception_) first_exception_ = error;
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

size_t ThreadPool::ResolveJobs(size_t jobs) {
  if (jobs != 0) return jobs;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::ParallelChunks(
    ThreadPool* pool, size_t helpers, size_t count,
    const std::function<void(size_t lane, size_t chunk)>& fn) {
  if (count == 0) return;
  size_t drainers = std::min(helpers, count - 1);
  if (pool == nullptr || drainers == 0) {
    for (size_t chunk = 0; chunk < count; ++chunk) fn(0, chunk);
    return;
  }

  auto run = std::make_shared<ChunkRun>(drainers);
  run->count = count;
  run->fn = &fn;
  for (size_t i = 0; i < drainers; ++i) {
    pool->Submit([run, i] {
      uint8_t expected = ChunkRun::kPending;
      if (!run->lane_state[i].compare_exchange_strong(
              expected, ChunkRun::kRunning, std::memory_order_acq_rel)) {
        return;  // Abandoned: the caller already finished this run.
      }
      run->DrainFrom(/*lane=*/i + 1);
      {
        std::lock_guard<std::mutex> lock(run->mu);
        ++run->exited_running;
      }
      run->exit_cv.notify_all();
    });
  }

  run->DrainFrom(/*lane=*/0);

  // Abandon drainers that never started; wait out the ones that did (they
  // are on their last claimed chunk at most, since the cursor is spent).
  size_t running = 0;
  for (size_t i = 0; i < drainers; ++i) {
    uint8_t expected = ChunkRun::kPending;
    if (!run->lane_state[i].compare_exchange_strong(
            expected, ChunkRun::kAbandoned, std::memory_order_acq_rel)) {
      ++running;
    }
  }
  std::unique_lock<std::mutex> lock(run->mu);
  run->exit_cv.wait(lock, [&] { return run->exited_running == running; });
  if (run->first_error) std::rethrow_exception(run->first_error);
}

}  // namespace wsv
