#ifndef WSVERIFY_COMMON_LEDGER_H_
#define WSVERIFY_COMMON_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wsv {

/// Per-thread time ledger: nanosecond buckets recording where a worker spent
/// its wall time. The buckets attribute time, they do not partition it:
/// `drain` time spent inside a pool task is also part of that task's `exec`
/// time, and `lock_wait` overlaps whichever bucket the waiting code ran
/// under. Utilization is exec / wall, where wall runs from registration to
/// the snapshot.
struct WorkerLedger {
  std::string name;
  int64_t registered_nanos = 0;
  std::atomic<uint64_t> exec_ns{0};       // running submitted tasks
  std::atomic<uint64_t> idle_ns{0};       // blocked on the work queue
  std::atomic<uint64_t> lock_wait_ns{0};  // contended TimedMutex waits
  std::atomic<uint64_t> drain_ns{0};      // inside ParallelChunks drains
  std::atomic<uint64_t> tasks{0};         // tasks executed

  /// True while the owning thread is inside a pool task (owner-thread
  /// only, never exported): lets nested drains know their time is already
  /// covered by the surrounding task's exec bucket.
  bool in_task = false;
};

/// Value snapshot of one ledger, taken at export time.
struct WorkerLedgerSnapshot {
  std::string name;
  uint64_t wall_ns = 0;
  uint64_t exec_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t lock_wait_ns = 0;
  uint64_t drain_ns = 0;
  uint64_t tasks = 0;
};

/// Process-wide ledger table. Ledgers are created when a thread registers
/// and never destroyed (same lifetime rule as obs counters), so recording is
/// lock-free after registration. Recording is gated on `enabled()`: the
/// pool registers worker ledgers only while the registry is enabled, which
/// `wsvc` turns on alongside stats collection.
class LedgerRegistry {
 public:
  static LedgerRegistry& Global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Creates a ledger named `name` and installs it as the calling thread's
  /// current ledger (replacing any previous one). The pointer stays valid
  /// for the process lifetime.
  WorkerLedger* RegisterCurrentThread(std::string name);

  /// Returns a process-unique worker name ("worker.0", "worker.1", ...).
  std::string NextWorkerName();

  /// The calling thread's ledger, or nullptr when it never registered.
  static WorkerLedger* Current();

  /// Adds contended-lock wait time to the calling thread's ledger, if any.
  static void AddLockWait(uint64_t nanos);

  /// Wall time source for ledgers (steady clock, ns since arbitrary epoch).
  static int64_t WallNanos();

  std::vector<WorkerLedgerSnapshot> Snapshot() const;

  /// Zeroes every bucket and restarts every wall clock (bench reruns).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<WorkerLedger>> ledgers_;
  std::atomic<bool> enabled_{false};
  uint64_t next_worker_ = 0;
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_LEDGER_H_
