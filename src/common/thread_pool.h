#ifndef WSVERIFY_COMMON_THREAD_POOL_H_
#define WSVERIFY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsv {

/// A fixed-size worker pool over a FIFO task queue. Built for the parallel
/// database sweep (long-running worker loops that pull shared work), but
/// generic: any () -> void task can be submitted.
///
/// Exceptions: a throwing task never escapes its worker thread (that would
/// std::terminate the process). The worker catches everything and hands the
/// std::exception_ptr to the task's completion callback when one was
/// submitted; otherwise the pool retains the first such exception, exposed
/// via first_exception() after Wait().
///
/// Lifecycle: Submit() enqueues; Wait() blocks until the queue is drained
/// and every worker is idle (tasks submitted from within tasks are
/// honored); Shutdown() drops queued-but-unstarted tasks (their completions
/// fire with a cancellation exception) so Wait() and the destructor only
/// wait for tasks already running; the destructor Wait()s and joins. The
/// pool is not reentrant from its own workers' Wait() calls.
class ThreadPool {
 public:
  /// Called when the task finishes: nullptr on success, the captured
  /// exception on throw, a std::runtime_error("task canceled: ...") pointer
  /// when Shutdown() dropped the task before it started.
  using Completion = std::function<void(std::exception_ptr)>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task, Completion done = nullptr);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  /// Stop-draining shutdown: discards queued tasks that have not started
  /// (invoking their completions with a cancellation exception_ptr) without
  /// touching tasks already running. After this, Wait() and the destructor
  /// block only behind in-flight work. The pool remains usable: new
  /// Submit() calls are accepted.
  void Shutdown();

  /// The first exception thrown by a completion-less task since
  /// construction, or nullptr. Stable only after Wait().
  std::exception_ptr first_exception() const;

  size_t size() const { return workers_.size(); }

  /// Resolves a user-facing jobs value: 0 selects the hardware concurrency
  /// (at least 1); anything else passes through.
  static size_t ResolveJobs(size_t jobs);

  /// Cooperative fan-out of `count` chunk indices over the calling thread
  /// plus idle pool workers. `fn(lane, chunk)` runs exactly once per chunk
  /// in [0, count); chunks are claimed in increasing order from a shared
  /// cursor, and `lane` (0 = caller, 1..helpers = pool drainers) lets
  /// callers keep per-lane accumulators without locks.
  ///
  /// The caller always participates, so the call completes even when every
  /// pool worker is pinned by long-running tasks (no deadlock on a shared
  /// pool); idle workers pick up drainer tasks and join in. At most
  /// `helpers` drainer tasks are submitted to `pool`. Drainers still queued
  /// when the caller exhausts the cursor are abandoned (they no-op when the
  /// pool eventually runs them), so a saturated pool costs nothing beyond
  /// the caller's own serial pass.
  ///
  /// If `fn` throws, the first exception (lowest chunk index) is rethrown
  /// on the calling thread after all started lanes finish; remaining chunks
  /// are skipped. Pass pool == nullptr or helpers == 0 for a plain serial
  /// loop on the caller (lane 0).
  static void ParallelChunks(
      ThreadPool* pool, size_t helpers, size_t count,
      const std::function<void(size_t lane, size_t chunk)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    Completion done;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // Wait(): queue empty and none active
  std::deque<Task> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_exception_;
  std::vector<std::thread> workers_;
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_THREAD_POOL_H_
