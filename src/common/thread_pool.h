#ifndef WSVERIFY_COMMON_THREAD_POOL_H_
#define WSVERIFY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsv {

/// A fixed-size worker pool over a FIFO task queue. Built for the parallel
/// database sweep (long-running worker loops that pull shared work), but
/// generic: any () -> void task can be submitted. Tasks must not throw.
///
/// Lifecycle: Submit() enqueues; Wait() blocks until the queue is drained
/// and every worker is idle (tasks submitted from within tasks are
/// honored); the destructor Wait()s and joins. The pool is not reentrant
/// from its own workers' Wait() calls.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  size_t size() const { return workers_.size(); }

  /// Resolves a user-facing jobs value: 0 selects the hardware concurrency
  /// (at least 1); anything else passes through.
  static size_t ResolveJobs(size_t jobs);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // Wait(): queue empty and none active
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_THREAD_POOL_H_
