#include "common/interner.h"

#include <cassert>

namespace wsv {

SymbolId Interner::Intern(std::string_view text) {
  auto it = ids_.find(std::string(text));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(texts_.size());
  texts_.emplace_back(text);
  ids_.emplace(texts_.back(), id);
  return id;
}

SymbolId Interner::Lookup(std::string_view text) const {
  auto it = ids_.find(std::string(text));
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

const std::string& Interner::Text(SymbolId id) const {
  assert(id < texts_.size());
  return texts_[id];
}

}  // namespace wsv
