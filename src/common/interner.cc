#include "common/interner.h"

#include <cassert>
#include <functional>

namespace wsv {

SymbolId Interner::Intern(std::string_view text) {
  size_t hash = std::hash<std::string_view>{}(text);
  SymbolId found =
      ids_.Find(hash, [&](uint32_t id) { return texts_[id] == text; });
  if (found != FlatIdSet::kEmpty) return found;
  SymbolId id = static_cast<SymbolId>(texts_.size());
  texts_.emplace_back(text);
  ids_.Insert(hash, id);
  return id;
}

SymbolId Interner::Lookup(std::string_view text) const {
  size_t hash = std::hash<std::string_view>{}(text);
  SymbolId found =
      ids_.Find(hash, [&](uint32_t id) { return texts_[id] == text; });
  return found == FlatIdSet::kEmpty ? kInvalidSymbol : found;
}

const std::string& Interner::Text(SymbolId id) const {
  assert(id < texts_.size());
  return texts_[id];
}

}  // namespace wsv
