#ifndef WSVERIFY_COMMON_INTERNER_H_
#define WSVERIFY_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"

namespace wsv {

/// An interned symbol id. Ids are dense, starting at 0, and are only
/// meaningful relative to the Interner that produced them.
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

/// Bidirectional string <-> dense-id mapping. Domain values, relation names
/// and variable names are interned so that tuples and formulas compare and
/// hash as integer vectors.
///
/// Hash-consed: each string is stored exactly once (in `texts_`), and the
/// id table is a FlatIdSet probed with the string_view's hash — both hit
/// and miss paths run without constructing a temporary std::string. The
/// table holds only ids and hashes, so Interners copy and move freely.
///
/// Not thread-safe; each verification task owns its interners.
class Interner {
 public:
  Interner() = default;

  /// Returns the id for `text`, interning it on first use.
  SymbolId Intern(std::string_view text);

  /// Returns the id for `text`, or kInvalidSymbol if it was never interned.
  SymbolId Lookup(std::string_view text) const;

  /// Returns the text for `id`; `id` must have been produced by this
  /// interner.
  const std::string& Text(SymbolId id) const;

  /// Number of distinct symbols interned.
  size_t size() const { return texts_.size(); }

 private:
  FlatIdSet ids_;
  std::vector<std::string> texts_;
};

}  // namespace wsv

#endif  // WSVERIFY_COMMON_INTERNER_H_
