#ifndef WSVERIFY_COMMON_STRINGS_H_
#define WSVERIFY_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wsv {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace wsv

#endif  // WSVERIFY_COMMON_STRINGS_H_
