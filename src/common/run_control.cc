#include "common/run_control.h"

#include <chrono>
#include <cstring>

namespace wsv {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kComplete:
      return "complete";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCanceled:
      return "canceled";
    case StopReason::kDbFailures:
      return "db-failures";
    case StopReason::kRangeEnd:
      return "range-end";
    case StopReason::kMemoryBudget:
      return "memory-budget";
  }
  return "complete";
}

bool ParseStopReason(const char* text, StopReason* out) {
  for (StopReason r : {StopReason::kComplete, StopReason::kBudget,
                       StopReason::kDeadline, StopReason::kCanceled,
                       StopReason::kDbFailures, StopReason::kRangeEnd,
                       StopReason::kMemoryBudget}) {
    if (std::strcmp(text, StopReasonName(r)) == 0) {
      *out = r;
      return true;
    }
  }
  return false;
}

StopReason StopReasonFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kBudgetExceeded:
      return StopReason::kBudget;
    case StatusCode::kDeadlineExceeded:
      return StopReason::kDeadline;
    case StatusCode::kCanceled:
      return StopReason::kCanceled;
    case StatusCode::kPartialFailure:
      return StopReason::kDbFailures;
    case StatusCode::kRangeEnd:
      return StopReason::kRangeEnd;
    case StatusCode::kMemoryBudget:
      return StopReason::kMemoryBudget;
    default:
      return StopReason::kComplete;
  }
}

void RunControl::ArmDeadlineMs(uint64_t ms) {
  if (ms == 0) {
    deadline_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  deadline_ns_.store(
      SteadyNowNs() + static_cast<int64_t>(ms) * 1'000'000,
      std::memory_order_relaxed);
}

Status RunControl::Check() const {
  if (cancel_.load(std::memory_order_relaxed)) {
    return Status::Canceled(
        "cancellation requested; results cover the completed prefix only");
  }
  if (deadline_hit_.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded(
        "wall-clock deadline exceeded; results cover the completed prefix "
        "only");
  }
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && SteadyNowNs() >= deadline) {
    deadline_hit_.store(true, std::memory_order_relaxed);
    return Status::DeadlineExceeded(
        "wall-clock deadline exceeded; results cover the completed prefix "
        "only");
  }
  return Status::Ok();
}

void RunControl::Reset() {
  cancel_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
  deadline_hit_.store(false, std::memory_order_relaxed);
}

RunControl& RunControl::Global() {
  static RunControl* control = new RunControl();
  return *control;
}

}  // namespace wsv
