#include <string>
#include <vector>

#include "fo/lexer.h"
#include "fo/parser.h"
#include "ltl/property.h"

namespace wsv::ltl {

namespace {

using fo::Token;
using fo::TokenCursor;
using fo::TokenKind;

bool IsKeyword(const Token& t, const char* word) {
  return t.kind == TokenKind::kIdent && t.text == word;
}

/// Smart constructors that keep maximal pure-FO regions collapsed into
/// single leaves (fewer propositions for the automaton translation).
LtlPtr MkNot(LtlPtr a) {
  if (a->kind() == LtlKind::kLeaf) {
    return LtlFormula::Leaf(fo::Formula::Not(a->leaf()));
  }
  return LtlFormula::Not(std::move(a));
}

LtlPtr MkAnd(LtlPtr a, LtlPtr b) {
  if (a->kind() == LtlKind::kLeaf && b->kind() == LtlKind::kLeaf) {
    return LtlFormula::Leaf(fo::Formula::And(a->leaf(), b->leaf()));
  }
  return LtlFormula::And(std::move(a), std::move(b));
}

LtlPtr MkOr(LtlPtr a, LtlPtr b) {
  if (a->kind() == LtlKind::kLeaf && b->kind() == LtlKind::kLeaf) {
    return LtlFormula::Leaf(fo::Formula::Or(a->leaf(), b->leaf()));
  }
  return LtlFormula::Or(std::move(a), std::move(b));
}

LtlPtr MkImplies(LtlPtr a, LtlPtr b) {
  if (a->kind() == LtlKind::kLeaf && b->kind() == LtlKind::kLeaf) {
    return LtlFormula::Leaf(fo::Formula::Implies(a->leaf(), b->leaf()));
  }
  return LtlFormula::Implies(std::move(a), std::move(b));
}

class LtlParser {
 public:
  explicit LtlParser(TokenCursor& cursor, bool allow_temporal_quantifiers)
      : cur_(cursor),
        allow_temporal_quantifiers_(allow_temporal_quantifiers) {}

  Result<LtlPtr> ParseImplies() {
    WSV_ASSIGN_OR_RETURN(LtlPtr lhs, ParseOr());
    if (cur_.TryConsume(TokenKind::kArrow)) {
      WSV_ASSIGN_OR_RETURN(LtlPtr rhs, ParseImplies());
      return MkImplies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

 private:
  Result<LtlPtr> ParseOr() {
    WSV_ASSIGN_OR_RETURN(LtlPtr acc, ParseAnd());
    while (cur_.TryConsumeIdent("or")) {
      WSV_ASSIGN_OR_RETURN(LtlPtr next, ParseAnd());
      acc = MkOr(std::move(acc), std::move(next));
    }
    return acc;
  }

  Result<LtlPtr> ParseAnd() {
    WSV_ASSIGN_OR_RETURN(LtlPtr acc, ParseUntil());
    while (cur_.TryConsumeIdent("and")) {
      WSV_ASSIGN_OR_RETURN(LtlPtr next, ParseUntil());
      acc = MkAnd(std::move(acc), std::move(next));
    }
    return acc;
  }

  Result<LtlPtr> ParseUntil() {
    WSV_ASSIGN_OR_RETURN(LtlPtr lhs, ParseUnary());
    if (IsKeyword(cur_.Peek(), "U")) {
      cur_.Next();
      WSV_ASSIGN_OR_RETURN(LtlPtr rhs, ParseUntil());
      return LtlFormula::Until(std::move(lhs), std::move(rhs));
    }
    if (IsKeyword(cur_.Peek(), "R")) {
      cur_.Next();
      WSV_ASSIGN_OR_RETURN(LtlPtr rhs, ParseUntil());
      return LtlFormula::Release(std::move(lhs), std::move(rhs));
    }
    if (IsKeyword(cur_.Peek(), "B")) {
      // phi B psi ("phi must hold before psi fails") == phi R psi.
      cur_.Next();
      WSV_ASSIGN_OR_RETURN(LtlPtr rhs, ParseUntil());
      return LtlFormula::Before(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<LtlPtr> ParseUnary() {
    const Token& t = cur_.Peek();
    if (IsKeyword(t, "not")) {
      cur_.Next();
      WSV_ASSIGN_OR_RETURN(LtlPtr inner, ParseUnary());
      return MkNot(std::move(inner));
    }
    if (IsKeyword(t, "X")) {
      cur_.Next();
      WSV_ASSIGN_OR_RETURN(LtlPtr inner, ParseUnary());
      return LtlFormula::Next(std::move(inner));
    }
    if (IsKeyword(t, "G")) {
      cur_.Next();
      WSV_ASSIGN_OR_RETURN(LtlPtr inner, ParseUnary());
      return LtlFormula::Globally(std::move(inner));
    }
    if (IsKeyword(t, "F")) {
      cur_.Next();
      WSV_ASSIGN_OR_RETURN(LtlPtr inner, ParseUnary());
      return LtlFormula::Finally(std::move(inner));
    }
    if (IsKeyword(t, "exists") || IsKeyword(t, "forall")) {
      bool is_exists = cur_.Next().text == "exists";
      std::vector<std::string> vars;
      while (true) {
        WSV_ASSIGN_OR_RETURN(Token v,
                             cur_.Expect(TokenKind::kIdent, "variable list"));
        vars.push_back(v.text);
        if (!cur_.TryConsume(TokenKind::kComma)) break;
      }
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kColon, "quantifier").status());
      WSV_ASSIGN_OR_RETURN(LtlPtr body, ParseImplies());
      if (body->kind() != LtlKind::kLeaf) {
        if (allow_temporal_quantifiers_) {
          return is_exists
                     ? LtlFormula::ExistsQ(std::move(vars), std::move(body))
                     : LtlFormula::ForallQ(std::move(vars), std::move(body));
        }
        return cur_.ErrorHere(
            "quantifier over temporal operators: only the top-level "
            "universal closure may quantify across X/U/G/F/B (Definition "
            "3.1)");
      }
      fo::FormulaPtr fo_body =
          is_exists ? fo::Formula::Exists(std::move(vars), body->leaf())
                    : fo::Formula::Forall(std::move(vars), body->leaf());
      return LtlFormula::Leaf(std::move(fo_body));
    }
    return ParsePrimary();
  }

  Result<LtlPtr> ParsePrimary() {
    const Token& t = cur_.Peek();
    switch (t.kind) {
      case TokenKind::kLParen: {
        cur_.Next();
        WSV_ASSIGN_OR_RETURN(LtlPtr inner, ParseImplies());
        WSV_RETURN_IF_ERROR(
            cur_.Expect(TokenKind::kRParen, "parenthesized formula").status());
        return inner;
      }
      case TokenKind::kLBracket: {
        cur_.Next();
        WSV_ASSIGN_OR_RETURN(LtlPtr inner, ParseImplies());
        WSV_RETURN_IF_ERROR(
            cur_.Expect(TokenKind::kRBracket, "bracketed formula").status());
        return inner;
      }
      case TokenKind::kString:
      case TokenKind::kNumber: {
        fo::Term lhs = fo::Term::Constant(cur_.Next().text);
        return ParseEqualityTail(std::move(lhs));
      }
      case TokenKind::kIdent: {
        if (t.text == "true") {
          cur_.Next();
          return LtlFormula::Leaf(fo::Formula::True());
        }
        if (t.text == "false") {
          cur_.Next();
          return LtlFormula::Leaf(fo::Formula::False());
        }
        std::string name = cur_.Next().text;
        if (cur_.Peek().kind == TokenKind::kLParen) {
          cur_.Next();
          std::vector<fo::Term> terms;
          if (cur_.Peek().kind != TokenKind::kRParen) {
            while (true) {
              WSV_ASSIGN_OR_RETURN(fo::Term term, ParseTerm());
              terms.push_back(std::move(term));
              if (!cur_.TryConsume(TokenKind::kComma)) break;
            }
          }
          WSV_RETURN_IF_ERROR(cur_.Expect(TokenKind::kRParen, "atom").status());
          return LtlFormula::Leaf(fo::Formula::Atom(
              fo::NormalizeRelationName(name), std::move(terms)));
        }
        if (cur_.Peek().kind == TokenKind::kEquals ||
            cur_.Peek().kind == TokenKind::kNotEquals) {
          return ParseEqualityTail(fo::Term::Variable(name));
        }
        return LtlFormula::Leaf(
            fo::Formula::Atom(fo::NormalizeRelationName(name), {}));
      }
      default:
        return cur_.ErrorHere("expected an LTL-FO formula, found '" + t.text +
                              "'");
    }
  }

  Result<LtlPtr> ParseEqualityTail(fo::Term lhs) {
    bool negated = false;
    if (cur_.TryConsume(TokenKind::kNotEquals)) {
      negated = true;
    } else {
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kEquals, "equality").status());
    }
    WSV_ASSIGN_OR_RETURN(fo::Term rhs, ParseTerm());
    fo::FormulaPtr eq = fo::Formula::Equality(std::move(lhs), std::move(rhs));
    if (negated) eq = fo::Formula::Not(std::move(eq));
    return LtlFormula::Leaf(std::move(eq));
  }

  Result<fo::Term> ParseTerm() {
    const Token& t = cur_.Peek();
    switch (t.kind) {
      case TokenKind::kIdent:
        return fo::Term::Variable(cur_.Next().text);
      case TokenKind::kString:
      case TokenKind::kNumber:
        return fo::Term::Constant(cur_.Next().text);
      default:
        return cur_.ErrorHere("expected a term, found '" + t.text + "'");
    }
  }

  TokenCursor& cur_;
  bool allow_temporal_quantifiers_;
};

}  // namespace

Result<LtlPtr> ParseLtlAt(fo::TokenCursor& cursor) {
  LtlParser parser(cursor, /*allow_temporal_quantifiers=*/false);
  return parser.ParseImplies();
}

Result<LtlPtr> ParseEnvironmentLtl(std::string_view source) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, fo::Tokenize(source));
  TokenCursor cursor(std::move(tokens));
  LtlParser parser(cursor, /*allow_temporal_quantifiers=*/true);
  WSV_ASSIGN_OR_RETURN(LtlPtr formula, parser.ParseImplies());
  if (!cursor.AtEnd()) {
    return cursor.ErrorHere("trailing input after environment specification");
  }
  return formula;
}

Result<Property> Property::Parse(std::string_view source) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, fo::Tokenize(source));
  TokenCursor cursor(std::move(tokens));

  std::vector<std::string> closure;
  if (IsKeyword(cursor.Peek(), "forall")) {
    // Tentatively read a closure prefix; if the body turns out pure-FO the
    // quantifier folds back into the leaf.
    cursor.Next();
    while (true) {
      WSV_ASSIGN_OR_RETURN(Token v,
                           cursor.Expect(TokenKind::kIdent, "closure"));
      closure.push_back(v.text);
      if (!cursor.TryConsume(TokenKind::kComma)) break;
    }
    WSV_RETURN_IF_ERROR(
        cursor.Expect(TokenKind::kColon, "universal closure").status());
  }

  WSV_ASSIGN_OR_RETURN(LtlPtr body, ParseLtlAt(cursor));
  if (!cursor.AtEnd()) {
    return cursor.ErrorHere("trailing input after property");
  }
  if (!closure.empty() && body->kind() == LtlKind::kLeaf) {
    // Pure FO: fold the closure into the leaf, leaving a strict sentence.
    body = LtlFormula::Leaf(
        fo::Formula::Forall(std::move(closure), body->leaf()));
    closure = {};
  }
  return Property(std::move(closure), std::move(body));
}

Status Property::CheckInputBounded(
    const fo::SymbolClassifier& classifier,
    const fo::InputBoundedOptions& options) const {
  std::vector<fo::FormulaPtr> leaves;
  formula_->CollectLeaves(leaves);
  for (const fo::FormulaPtr& leaf : leaves) {
    WSV_RETURN_IF_ERROR(fo::CheckInputBounded(leaf, classifier, options));
  }
  return Status::Ok();
}

Result<LtlPtr> Property::Ground(const std::vector<std::string>& values) const {
  if (values.size() != closure_variables_.size()) {
    return Status::Internal("Ground: expected " +
                            std::to_string(closure_variables_.size()) +
                            " values, got " + std::to_string(values.size()));
  }
  LtlPtr grounded = formula_;
  for (size_t i = 0; i < values.size(); ++i) {
    grounded = SubstituteVariable(grounded, closure_variables_[i],
                                  fo::Term::Constant(values[i]));
  }
  return grounded;
}

std::string Property::ToString() const {
  std::string out;
  if (!closure_variables_.empty()) {
    out += "forall ";
    for (size_t i = 0; i < closure_variables_.size(); ++i) {
      if (i > 0) out += ", ";
      out += closure_variables_[i];
    }
    out += ": ";
  }
  out += formula_->ToString();
  return out;
}

}  // namespace wsv::ltl
