#include "ltl/grounding.h"

#include <cassert>

namespace wsv::ltl {

namespace {

class Grounder {
 public:
  Grounder(GroundLtl& out, bool allow_free_leaves)
      : out_(out), allow_free_leaves_(allow_free_leaves) {}

  Result<automata::PRef> Lower(const LtlPtr& f) {
    switch (f->kind()) {
      case LtlKind::kLeaf:
        return LowerLeaf(f->leaf(), /*negated=*/false);
      case LtlKind::kNot: {
        // After NNF, negation sits directly over a leaf.
        const LtlPtr& inner = f->child(0);
        if (inner->kind() != LtlKind::kLeaf) {
          return Status::Internal(
              "GroundToPropositional expects negation normal form");
        }
        return LowerLeaf(inner->leaf(), /*negated=*/true);
      }
      case LtlKind::kAnd: {
        WSV_ASSIGN_OR_RETURN(automata::PRef a, Lower(f->child(0)));
        WSV_ASSIGN_OR_RETURN(automata::PRef b, Lower(f->child(1)));
        return out_.manager.And(a, b);
      }
      case LtlKind::kOr: {
        WSV_ASSIGN_OR_RETURN(automata::PRef a, Lower(f->child(0)));
        WSV_ASSIGN_OR_RETURN(automata::PRef b, Lower(f->child(1)));
        return out_.manager.Or(a, b);
      }
      case LtlKind::kNext: {
        WSV_ASSIGN_OR_RETURN(automata::PRef a, Lower(f->child(0)));
        return out_.manager.Next(a);
      }
      case LtlKind::kUntil: {
        WSV_ASSIGN_OR_RETURN(automata::PRef a, Lower(f->child(0)));
        WSV_ASSIGN_OR_RETURN(automata::PRef b, Lower(f->child(1)));
        return out_.manager.Until(a, b);
      }
      case LtlKind::kRelease: {
        WSV_ASSIGN_OR_RETURN(automata::PRef a, Lower(f->child(0)));
        WSV_ASSIGN_OR_RETURN(automata::PRef b, Lower(f->child(1)));
        return out_.manager.Release(a, b);
      }
      case LtlKind::kImplies:
        return Status::Internal(
            "GroundToPropositional expects negation normal form (no "
            "implications)");
      case LtlKind::kForallQ:
      case LtlKind::kExistsQ:
        return Status::Internal(
            "GroundToPropositional: expand temporal quantifiers over the "
            "pseudo-domain first (ExpandTemporalQuantifiers)");
    }
    return Status::Internal("unhandled LTL kind");
  }

 private:
  Result<automata::PRef> LowerLeaf(const fo::FormulaPtr& leaf, bool negated) {
    if (!allow_free_leaves_ && !leaf->FreeVariables().empty()) {
      return Status::Internal(
          "GroundToPropositional requires closed leaves; free variables in " +
          leaf->ToString());
    }
    if (leaf->kind() == fo::FormulaKind::kTrue) {
      return negated ? out_.manager.False() : out_.manager.True();
    }
    if (leaf->kind() == fo::FormulaKind::kFalse) {
      return negated ? out_.manager.True() : out_.manager.False();
    }
    std::string key = leaf->ToString();
    auto it = prop_ids_.find(key);
    automata::PropId id;
    if (it != prop_ids_.end()) {
      id = it->second;
    } else {
      id = static_cast<automata::PropId>(out_.propositions.size());
      out_.propositions.push_back(leaf);
      prop_ids_.emplace(std::move(key), id);
    }
    return out_.manager.Lit(id, negated);
  }

  GroundLtl& out_;
  bool allow_free_leaves_;
  std::map<std::string, automata::PropId> prop_ids_;
};

}  // namespace

Result<GroundLtl> GroundToPropositional(const LtlPtr& formula, bool negate,
                                        bool allow_free_leaves) {
  LtlPtr nnf = ToNegationNormalForm(
      negate ? LtlFormula::Not(formula) : formula);
  GroundLtl out;
  Grounder grounder(out, allow_free_leaves);
  WSV_ASSIGN_OR_RETURN(out.root, grounder.Lower(nnf));
  return out;
}

}  // namespace wsv::ltl
