#include "ltl/ltl_formula.h"

#include <cassert>

namespace wsv::ltl {

// LtlFormula members are private; factories construct through a thin
// builder so nodes stay immutable after creation.
struct LtlNodeBuilder {
  static LtlPtr Make(LtlKind kind, fo::FormulaPtr leaf,
                     std::vector<LtlPtr> kids,
                     std::vector<std::string> vars = {}) {
    auto node = std::shared_ptr<LtlFormula>(new LtlFormula());
    node->kind_ = kind;
    node->leaf_ = std::move(leaf);
    node->children_ = std::move(kids);
    node->vars_ = std::move(vars);
    return node;
  }
};

LtlPtr LtlFormula::Leaf(fo::FormulaPtr f) {
  assert(f != nullptr);
  return LtlNodeBuilder::Make(LtlKind::kLeaf, std::move(f), {});
}

LtlPtr LtlFormula::Not(LtlPtr f) {
  return LtlNodeBuilder::Make(LtlKind::kNot, nullptr, {std::move(f)});
}

LtlPtr LtlFormula::And(LtlPtr a, LtlPtr b) {
  return LtlNodeBuilder::Make(LtlKind::kAnd, nullptr,
                              {std::move(a), std::move(b)});
}

LtlPtr LtlFormula::Or(LtlPtr a, LtlPtr b) {
  return LtlNodeBuilder::Make(LtlKind::kOr, nullptr,
                              {std::move(a), std::move(b)});
}

LtlPtr LtlFormula::Implies(LtlPtr a, LtlPtr b) {
  return LtlNodeBuilder::Make(LtlKind::kImplies, nullptr,
                              {std::move(a), std::move(b)});
}

LtlPtr LtlFormula::Next(LtlPtr f) {
  return LtlNodeBuilder::Make(LtlKind::kNext, nullptr, {std::move(f)});
}

LtlPtr LtlFormula::Until(LtlPtr a, LtlPtr b) {
  return LtlNodeBuilder::Make(LtlKind::kUntil, nullptr,
                              {std::move(a), std::move(b)});
}

LtlPtr LtlFormula::Release(LtlPtr a, LtlPtr b) {
  return LtlNodeBuilder::Make(LtlKind::kRelease, nullptr,
                              {std::move(a), std::move(b)});
}

LtlPtr LtlFormula::Globally(LtlPtr f) {
  return Release(Leaf(fo::Formula::False()), std::move(f));
}

LtlPtr LtlFormula::Finally(LtlPtr f) {
  return Until(Leaf(fo::Formula::True()), std::move(f));
}

LtlPtr LtlFormula::Before(LtlPtr a, LtlPtr b) {
  return Release(std::move(a), std::move(b));
}

LtlPtr LtlFormula::ForallQ(std::vector<std::string> vars, LtlPtr body) {
  return LtlNodeBuilder::Make(LtlKind::kForallQ, nullptr, {std::move(body)},
                              std::move(vars));
}

LtlPtr LtlFormula::ExistsQ(std::vector<std::string> vars, LtlPtr body) {
  return LtlNodeBuilder::Make(LtlKind::kExistsQ, nullptr, {std::move(body)},
                              std::move(vars));
}

std::set<std::string> LtlFormula::FreeVariables() const {
  std::set<std::string> out;
  if (kind_ == LtlKind::kLeaf) return leaf_->FreeVariables();
  for (const LtlPtr& c : children_) {
    auto sub = c->FreeVariables();
    out.insert(sub.begin(), sub.end());
  }
  for (const std::string& v : vars_) out.erase(v);
  return out;
}

std::set<std::string> LtlFormula::Constants() const {
  std::set<std::string> out;
  if (kind_ == LtlKind::kLeaf) return leaf_->Constants();
  for (const LtlPtr& c : children_) {
    auto sub = c->Constants();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

void LtlFormula::CollectLeaves(std::vector<fo::FormulaPtr>& out) const {
  if (kind_ == LtlKind::kLeaf) {
    out.push_back(leaf_);
    return;
  }
  for (const LtlPtr& c : children_) c->CollectLeaves(out);
}

std::string LtlFormula::ToString() const {
  switch (kind_) {
    case LtlKind::kLeaf:
      return "(" + leaf_->ToString() + ")";
    case LtlKind::kNot:
      return "not " + children_[0]->ToString();
    case LtlKind::kAnd:
      return "(" + children_[0]->ToString() + " and " +
             children_[1]->ToString() + ")";
    case LtlKind::kOr:
      return "(" + children_[0]->ToString() + " or " +
             children_[1]->ToString() + ")";
    case LtlKind::kImplies:
      return "(" + children_[0]->ToString() + " -> " +
             children_[1]->ToString() + ")";
    case LtlKind::kNext:
      return "X " + children_[0]->ToString();
    case LtlKind::kUntil:
      return "(" + children_[0]->ToString() + " U " +
             children_[1]->ToString() + ")";
    case LtlKind::kRelease:
      return "(" + children_[0]->ToString() + " R " +
             children_[1]->ToString() + ")";
    case LtlKind::kForallQ:
    case LtlKind::kExistsQ: {
      std::string out = kind_ == LtlKind::kForallQ ? "forall " : "exists ";
      for (size_t i = 0; i < vars_.size(); ++i) {
        if (i > 0) out += ", ";
        out += vars_[i];
      }
      return out + ": " + children_[0]->ToString();
    }
  }
  return "?";
}

LtlPtr SubstituteVariable(const LtlPtr& f, const std::string& var,
                          const fo::Term& replacement) {
  if (f->kind() == LtlKind::kForallQ || f->kind() == LtlKind::kExistsQ) {
    for (const std::string& v : f->bound_variables()) {
      if (v == var) return f;  // shadowed
    }
    LtlPtr body = SubstituteVariable(f->body(), var, replacement);
    if (body == f->body()) return f;
    return f->kind() == LtlKind::kForallQ
               ? LtlFormula::ForallQ(f->bound_variables(), std::move(body))
               : LtlFormula::ExistsQ(f->bound_variables(), std::move(body));
  }
  if (f->kind() == LtlKind::kLeaf) {
    fo::FormulaPtr sub = fo::SubstituteVariable(f->leaf(), var, replacement);
    if (sub == f->leaf()) return f;
    return LtlFormula::Leaf(std::move(sub));
  }
  bool touched = false;
  std::vector<LtlPtr> kids;
  kids.reserve(f->children().size());
  for (const LtlPtr& c : f->children()) {
    LtlPtr nc = SubstituteVariable(c, var, replacement);
    if (nc != c) touched = true;
    kids.push_back(std::move(nc));
  }
  if (!touched) return f;
  switch (f->kind()) {
    case LtlKind::kNot:
      return LtlFormula::Not(kids[0]);
    case LtlKind::kAnd:
      return LtlFormula::And(kids[0], kids[1]);
    case LtlKind::kOr:
      return LtlFormula::Or(kids[0], kids[1]);
    case LtlKind::kImplies:
      return LtlFormula::Implies(kids[0], kids[1]);
    case LtlKind::kNext:
      return LtlFormula::Next(kids[0]);
    case LtlKind::kUntil:
      return LtlFormula::Until(kids[0], kids[1]);
    case LtlKind::kRelease:
      return LtlFormula::Release(kids[0], kids[1]);
    case LtlKind::kLeaf:
    case LtlKind::kForallQ:
    case LtlKind::kExistsQ:
      break;  // handled above
  }
  assert(false && "unreachable");
  return f;
}

namespace {

LtlPtr Nnf(const LtlPtr& f, bool negated) {
  switch (f->kind()) {
    case LtlKind::kLeaf:
      return negated ? LtlFormula::Not(f) : f;
    case LtlKind::kNot:
      return Nnf(f->child(0), !negated);
    case LtlKind::kAnd: {
      LtlPtr a = Nnf(f->child(0), negated);
      LtlPtr b = Nnf(f->child(1), negated);
      return negated ? LtlFormula::Or(a, b) : LtlFormula::And(a, b);
    }
    case LtlKind::kOr: {
      LtlPtr a = Nnf(f->child(0), negated);
      LtlPtr b = Nnf(f->child(1), negated);
      return negated ? LtlFormula::And(a, b) : LtlFormula::Or(a, b);
    }
    case LtlKind::kImplies: {
      // a -> b == not a or b.
      LtlPtr a = Nnf(f->child(0), !negated);
      LtlPtr b = Nnf(f->child(1), negated);
      return negated ? LtlFormula::And(a, b) : LtlFormula::Or(a, b);
    }
    case LtlKind::kNext:
      return LtlFormula::Next(Nnf(f->child(0), negated));
    case LtlKind::kUntil: {
      LtlPtr a = Nnf(f->child(0), negated);
      LtlPtr b = Nnf(f->child(1), negated);
      return negated ? LtlFormula::Release(a, b) : LtlFormula::Until(a, b);
    }
    case LtlKind::kRelease: {
      LtlPtr a = Nnf(f->child(0), negated);
      LtlPtr b = Nnf(f->child(1), negated);
      return negated ? LtlFormula::Until(a, b) : LtlFormula::Release(a, b);
    }
    case LtlKind::kForallQ: {
      LtlPtr body = Nnf(f->body(), negated);
      return negated ? LtlFormula::ExistsQ(f->bound_variables(), body)
                     : LtlFormula::ForallQ(f->bound_variables(), body);
    }
    case LtlKind::kExistsQ: {
      LtlPtr body = Nnf(f->body(), negated);
      return negated ? LtlFormula::ForallQ(f->bound_variables(), body)
                     : LtlFormula::ExistsQ(f->bound_variables(), body);
    }
  }
  assert(false && "unreachable");
  return f;
}

}  // namespace

LtlPtr ToNegationNormalForm(const LtlPtr& f) { return Nnf(f, false); }

LtlPtr ExpandTemporalQuantifiers(const LtlPtr& f,
                                 const std::vector<std::string>& domain) {
  switch (f->kind()) {
    case LtlKind::kLeaf:
      return f;
    case LtlKind::kForallQ:
    case LtlKind::kExistsQ: {
      LtlPtr body = ExpandTemporalQuantifiers(f->body(), domain);
      // Expand one variable at a time over the domain spellings.
      std::vector<LtlPtr> grounded{body};
      for (const std::string& var : f->bound_variables()) {
        std::vector<LtlPtr> next;
        for (const LtlPtr& g : grounded) {
          for (const std::string& value : domain) {
            next.push_back(
                SubstituteVariable(g, var, fo::Term::Constant(value)));
          }
        }
        grounded = std::move(next);
      }
      bool conj = f->kind() == LtlKind::kForallQ;
      LtlPtr acc = grounded.empty()
                       ? LtlFormula::Leaf(conj ? fo::Formula::True()
                                               : fo::Formula::False())
                       : grounded[0];
      for (size_t i = 1; i < grounded.size(); ++i) {
        acc = conj ? LtlFormula::And(acc, grounded[i])
                   : LtlFormula::Or(acc, grounded[i]);
      }
      return acc;
    }
    default: {
      bool touched = false;
      std::vector<LtlPtr> kids;
      kids.reserve(f->children().size());
      for (const LtlPtr& c : f->children()) {
        LtlPtr nc = ExpandTemporalQuantifiers(c, domain);
        if (nc != c) touched = true;
        kids.push_back(std::move(nc));
      }
      if (!touched) return f;
      switch (f->kind()) {
        case LtlKind::kNot:
          return LtlFormula::Not(kids[0]);
        case LtlKind::kAnd:
          return LtlFormula::And(kids[0], kids[1]);
        case LtlKind::kOr:
          return LtlFormula::Or(kids[0], kids[1]);
        case LtlKind::kImplies:
          return LtlFormula::Implies(kids[0], kids[1]);
        case LtlKind::kNext:
          return LtlFormula::Next(kids[0]);
        case LtlKind::kUntil:
          return LtlFormula::Until(kids[0], kids[1]);
        case LtlKind::kRelease:
          return LtlFormula::Release(kids[0], kids[1]);
        default:
          return f;
      }
    }
  }
}

LtlPtr LiftLeaf(const fo::FormulaPtr& f) {
  switch (f->kind()) {
    case fo::FormulaKind::kTrue:
    case fo::FormulaKind::kFalse:
    case fo::FormulaKind::kAtom:
    case fo::FormulaKind::kEquality:
      return LtlFormula::Leaf(f);
    case fo::FormulaKind::kNot:
      return LtlFormula::Not(LiftLeaf(f->child(0)));
    case fo::FormulaKind::kAnd: {
      LtlPtr acc = LiftLeaf(f->child(0));
      for (size_t i = 1; i < f->children().size(); ++i) {
        acc = LtlFormula::And(std::move(acc), LiftLeaf(f->child(i)));
      }
      return acc;
    }
    case fo::FormulaKind::kOr: {
      LtlPtr acc = LiftLeaf(f->child(0));
      for (size_t i = 1; i < f->children().size(); ++i) {
        acc = LtlFormula::Or(std::move(acc), LiftLeaf(f->child(i)));
      }
      return acc;
    }
    case fo::FormulaKind::kImplies:
      return LtlFormula::Implies(LiftLeaf(f->child(0)), LiftLeaf(f->child(1)));
    case fo::FormulaKind::kExists:
      return LtlFormula::ExistsQ(f->bound_variables(), LiftLeaf(f->body()));
    case fo::FormulaKind::kForall:
      return LtlFormula::ForallQ(f->bound_variables(), LiftLeaf(f->body()));
  }
  assert(false && "unreachable");
  return LtlFormula::Leaf(f);
}

LtlPtr LiftAllLeaves(const LtlPtr& f) {
  if (f->kind() == LtlKind::kLeaf) return LiftLeaf(f->leaf());
  bool touched = false;
  std::vector<LtlPtr> kids;
  kids.reserve(f->children().size());
  for (const LtlPtr& c : f->children()) {
    LtlPtr nc = LiftAllLeaves(c);
    if (nc != c) touched = true;
    kids.push_back(std::move(nc));
  }
  if (!touched) return f;
  switch (f->kind()) {
    case LtlKind::kNot:
      return LtlFormula::Not(kids[0]);
    case LtlKind::kAnd:
      return LtlFormula::And(kids[0], kids[1]);
    case LtlKind::kOr:
      return LtlFormula::Or(kids[0], kids[1]);
    case LtlKind::kImplies:
      return LtlFormula::Implies(kids[0], kids[1]);
    case LtlKind::kNext:
      return LtlFormula::Next(kids[0]);
    case LtlKind::kUntil:
      return LtlFormula::Until(kids[0], kids[1]);
    case LtlKind::kRelease:
      return LtlFormula::Release(kids[0], kids[1]);
    case LtlKind::kForallQ:
      return LtlFormula::ForallQ(f->bound_variables(), kids[0]);
    case LtlKind::kExistsQ:
      return LtlFormula::ExistsQ(f->bound_variables(), kids[0]);
    case LtlKind::kLeaf:
      break;
  }
  assert(false && "unreachable");
  return f;
}

bool IsPureFo(const LtlPtr& f) {
  switch (f->kind()) {
    case LtlKind::kLeaf:
      return true;
    case LtlKind::kNot:
    case LtlKind::kAnd:
    case LtlKind::kOr:
    case LtlKind::kImplies: {
      for (const LtlPtr& c : f->children()) {
        if (!IsPureFo(c)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace wsv::ltl
