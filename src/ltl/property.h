#ifndef WSVERIFY_LTL_PROPERTY_H_
#define WSVERIFY_LTL_PROPERTY_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fo/classify.h"
#include "fo/input_bounded.h"
#include "fo/lexer.h"
#include "ltl/ltl_formula.h"

namespace wsv::ltl {

/// An LTL-FO sentence (Definition 3.1): the universal closure
/// `forall x̄: phi` of an LTL-FO formula phi. The closure variables are kept
/// separate; verification enumerates their valuations over the run domain
/// (pseudo-domain) and checks each grounded instance.
class Property {
 public:
  Property(std::vector<std::string> closure_variables, LtlPtr formula)
      : closure_variables_(std::move(closure_variables)),
        formula_(std::move(formula)) {}

  /// Parses a property such as
  ///   forall id, l: G(apply(id, l) -> F letter(id, l, "approved"))
  /// A leading `forall` whose body contains temporal operators is the
  /// universal closure; quantifiers over pure-FO subformulas fold into FO
  /// leaves. Temporal syntax: prefix X/G/F, infix U/R/B, plus not/and/or/->.
  static Result<Property> Parse(std::string_view source);

  const std::vector<std::string>& closure_variables() const {
    return closure_variables_;
  }
  const LtlPtr& formula() const { return formula_; }

  /// Strictly input-bounded sentences have no quantification over temporal
  /// operators (Section 5): i.e. no closure variables.
  bool IsStrict() const { return closure_variables_.empty(); }

  /// All constants in the property (must be interned into the verification
  /// domain).
  std::set<std::string> Constants() const { return formula_->Constants(); }

  /// Checks that all FO subformulas are input-bounded (Section 3.1).
  Status CheckInputBounded(const fo::SymbolClassifier& classifier,
                           const fo::InputBoundedOptions& options = {}) const;

  /// Grounds the formula by substituting `values[i]` (a constant spelling)
  /// for closure variable i; the result has no free variables.
  Result<LtlPtr> Ground(const std::vector<std::string>& values) const;

  std::string ToString() const;

 private:
  std::vector<std::string> closure_variables_;
  LtlPtr formula_;
};

/// Parses an LTL-FO formula (without closure handling) starting at `cursor`.
Result<LtlPtr> ParseLtlAt(fo::TokenCursor& cursor);

/// Parses an environment-specification formula (Section 5): like LTL-FO,
/// but quantifiers may scope over temporal operators (kForallQ/kExistsQ
/// nodes), which the modular verifier expands over the pseudo-domain.
Result<LtlPtr> ParseEnvironmentLtl(std::string_view source);

}  // namespace wsv::ltl

#endif  // WSVERIFY_LTL_PROPERTY_H_
