#ifndef WSVERIFY_LTL_GROUNDING_H_
#define WSVERIFY_LTL_GROUNDING_H_

#include <map>
#include <string>
#include <vector>

#include "automata/gpvw.h"
#include "automata/pltl.h"
#include "common/status.h"
#include "ltl/ltl_formula.h"

namespace wsv::ltl {

/// A closed LTL-FO formula lowered to propositional LTL: every distinct FO
/// sentence leaf becomes a proposition; the verifier evaluates the
/// propositions on each run snapshot and feeds the valuations to the Büchi
/// automaton built from `root`.
struct GroundLtl {
  automata::PLtlManager manager;
  automata::PRef root = automata::PLtlManager::kTrueRef;
  /// Proposition table: propositions[i] is the FO sentence for PropId i.
  std::vector<fo::FormulaPtr> propositions;

  /// Builds the (degeneralized) Büchi automaton for `root`.
  Result<automata::BuchiAutomaton> BuildAutomaton(size_t max_nodes = 200000) {
    return automata::TranslateToBuchi(manager, root, propositions.size(),
                                      max_nodes);
  }
};

/// Lowers `formula` into propositional LTL in negation normal form. When
/// `negate` is true, the negation is lowered instead (verification searches
/// for runs of the negated property).
///
/// By default leaves must be FO sentences (ground the property first). With
/// `allow_free_leaves`, leaves may carry free variables (the property's
/// closure variables): the resulting propositions are *symbolic* — one
/// automaton serves every valuation, with per-valuation proposition truth
/// supplied at search time (verifier::SymbolicTask).
Result<GroundLtl> GroundToPropositional(const LtlPtr& formula, bool negate,
                                        bool allow_free_leaves = false);

}  // namespace wsv::ltl

#endif  // WSVERIFY_LTL_GROUNDING_H_
