#ifndef WSVERIFY_LTL_LTL_FORMULA_H_
#define WSVERIFY_LTL_LTL_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fo/formula.h"

namespace wsv::ltl {

class LtlFormula;
using LtlPtr = std::shared_ptr<const LtlFormula>;

/// Node kinds of LTL-FO formulas (Definition 3.1): FO formulas closed under
/// negation, disjunction, X and U. Release (R) is the dual of U, used for
/// negation normal form; the paper's B ("before") operator coincides with R
/// (phi B psi == not(not phi U not psi) == phi R psi). G and F are expanded
/// at construction: G f = false R f, F f = true U f.
enum class LtlKind {
  kLeaf,  // an FO formula evaluated on the current snapshot
  kNot,
  kAnd,
  kOr,
  kImplies,
  kNext,     // X f
  kUntil,    // f U g
  kRelease,  // f R g
  /// Quantifiers over temporal formulas. Plain LTL-FO sentences never
  /// contain these (Definition 3.1 confines quantifiers to FO leaves); they
  /// arise in environment specifications, whose observer-at-recipient
  /// translation pushes an X under a quantifier (Section 5). The verifier
  /// eliminates them by expansion over the finite pseudo-domain.
  kForallQ,
  kExistsQ,
};

/// An immutable LTL-FO formula tree. Quantifiers appear only inside leaves
/// (Definition 3.1 allows no temporal operator in the scope of a
/// quantifier); the universal closure of free variables is carried
/// separately by ltl::Property.
class LtlFormula {
 public:
  LtlKind kind() const { return kind_; }

  /// Leaf accessor (kind == kLeaf).
  const fo::FormulaPtr& leaf() const { return leaf_; }

  const std::vector<LtlPtr>& children() const { return children_; }
  const LtlPtr& child(size_t i) const { return children_[i]; }

  /// Quantifier accessors (kind == kForallQ / kExistsQ).
  const std::vector<std::string>& bound_variables() const { return vars_; }
  const LtlPtr& body() const { return children_[0]; }

  /// Free variables across all leaves.
  std::set<std::string> FreeVariables() const;

  /// Constant spellings across all leaves.
  std::set<std::string> Constants() const;

  /// All FO leaf formulas (in syntax order, duplicates preserved).
  void CollectLeaves(std::vector<fo::FormulaPtr>& out) const;

  /// Re-parseable rendering.
  std::string ToString() const;

  // --- Factories ---
  static LtlPtr Leaf(fo::FormulaPtr f);
  static LtlPtr Not(LtlPtr f);
  static LtlPtr And(LtlPtr a, LtlPtr b);
  static LtlPtr Or(LtlPtr a, LtlPtr b);
  static LtlPtr Implies(LtlPtr a, LtlPtr b);
  static LtlPtr Next(LtlPtr f);
  static LtlPtr Until(LtlPtr a, LtlPtr b);
  static LtlPtr Release(LtlPtr a, LtlPtr b);
  /// G f == false R f.
  static LtlPtr Globally(LtlPtr f);
  /// F f == true U f.
  static LtlPtr Finally(LtlPtr f);
  /// f B g ("f must hold before g fails") == f R g.
  static LtlPtr Before(LtlPtr a, LtlPtr b);
  /// Quantifiers over temporal formulas (environment specs only).
  static LtlPtr ForallQ(std::vector<std::string> vars, LtlPtr body);
  static LtlPtr ExistsQ(std::vector<std::string> vars, LtlPtr body);

 private:
  LtlFormula() = default;
  friend struct LtlNodeBuilder;

  LtlKind kind_ = LtlKind::kLeaf;
  fo::FormulaPtr leaf_;
  std::vector<LtlPtr> children_;
  std::vector<std::string> vars_;
};

/// Substitutes a variable by a term in every leaf.
LtlPtr SubstituteVariable(const LtlPtr& f, const std::string& var,
                          const fo::Term& replacement);

/// Rewrites to negation normal form: negations appear only directly over
/// leaves; Implies is eliminated. Temporal dualities: not X f = X not f,
/// not (a U b) = not a R not b, not (a R b) = not a U not b; quantifier
/// nodes dualize (not forall = exists not).
LtlPtr ToNegationNormalForm(const LtlPtr& f);

/// Eliminates kForallQ/kExistsQ nodes by expanding them into conjunctions /
/// disjunctions over the given domain element spellings — exact over the
/// finite pseudo-domain (used for environment specs, Section 5).
LtlPtr ExpandTemporalQuantifiers(const LtlPtr& f,
                                 const std::vector<std::string>& domain);

/// Expands an FO formula into LTL connective structure whose leaves are
/// atomic (atoms, equalities, true/false); FO quantifiers become temporal
/// quantifier nodes. Inverse of the parser's leaf collapsing; used when a
/// transformation must reach individual atoms (observer-at-recipient
/// translation, protocol channel-event mapping).
LtlPtr LiftLeaf(const fo::FormulaPtr& f);

/// LiftLeaf applied to every leaf of an LTL formula.
LtlPtr LiftAllLeaves(const LtlPtr& f);

/// True iff `f` contains no temporal operator (such formulas collapse into a
/// single FO leaf during parsing).
bool IsPureFo(const LtlPtr& f);

}  // namespace wsv::ltl

#endif  // WSVERIFY_LTL_LTL_FORMULA_H_
