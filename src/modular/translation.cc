#include "modular/translation.h"

#include <cassert>

#include "common/strings.h"

namespace wsv::modular {

using ltl::LtlFormula;
using ltl::LtlKind;
using ltl::LtlPtr;

ltl::LtlPtr RelativizeToMove(const ltl::LtlPtr& f,
                             const std::string& alpha_proposition) {
  auto alpha = [&]() {
    return LtlFormula::Leaf(fo::Formula::Atom(alpha_proposition, {}));
  };
  auto not_alpha = [&]() {
    return LtlFormula::Leaf(
        fo::Formula::Not(fo::Formula::Atom(alpha_proposition, {})));
  };
  auto recurse = [&](const LtlPtr& g) {
    return RelativizeToMove(g, alpha_proposition);
  };

  switch (f->kind()) {
    case LtlKind::kLeaf:
      return f;
    case LtlKind::kNot:
      return LtlFormula::Not(recurse(f->child(0)));
    case LtlKind::kAnd:
      return LtlFormula::And(recurse(f->child(0)), recurse(f->child(1)));
    case LtlKind::kOr:
      return LtlFormula::Or(recurse(f->child(0)), recurse(f->child(1)));
    case LtlKind::kImplies:
      return LtlFormula::Implies(recurse(f->child(0)), recurse(f->child(1)));
    case LtlKind::kNext: {
      // X_a f == X(not a U (a and f)).
      LtlPtr body = recurse(f->child(0));
      return LtlFormula::Next(LtlFormula::Until(
          not_alpha(), LtlFormula::And(alpha(), std::move(body))));
    }
    case LtlKind::kUntil: {
      // f U_a g == (a -> f) U (a and g).
      LtlPtr a = recurse(f->child(0));
      LtlPtr b = recurse(f->child(1));
      return LtlFormula::Until(LtlFormula::Implies(alpha(), std::move(a)),
                               LtlFormula::And(alpha(), std::move(b)));
    }
    case LtlKind::kRelease: {
      // f R_a g == not (not f U_a not g).
      LtlPtr a = recurse(f->child(0));
      LtlPtr b = recurse(f->child(1));
      LtlPtr until = LtlFormula::Until(
          LtlFormula::Implies(alpha(), LtlFormula::Not(std::move(a))),
          LtlFormula::And(alpha(), LtlFormula::Not(std::move(b))));
      return LtlFormula::Not(std::move(until));
    }
    case LtlKind::kForallQ:
      return LtlFormula::ForallQ(f->bound_variables(), recurse(f->body()));
    case LtlKind::kExistsQ:
      return LtlFormula::ExistsQ(f->bound_variables(), recurse(f->body()));
  }
  assert(false && "unreachable");
  return f;
}

namespace {

/// Does this FO formula mention an atom over a queue the environment feeds?
bool MentionsEnvOutAtom(const fo::FormulaPtr& f,
                        const spec::Composition& comp) {
  for (const std::string& rel : f->RelationNames()) {
    if (!StartsWith(rel, "env.")) continue;
    const spec::Channel* ch = comp.FindChannel(rel.substr(4));
    if (ch != nullptr && ch->FromEnvironment()) return true;
  }
  return false;
}

Result<LtlPtr> TranslateRec(const LtlPtr& f, const spec::Composition& comp) {
  if (f->kind() == LtlKind::kLeaf) {
    const fo::FormulaPtr& leaf = f->leaf();
    if (!MentionsEnvOutAtom(leaf, comp)) return LtlPtr(f);
    if (leaf->kind() == fo::FormulaKind::kAtom) {
      // env.Q atom with Q in E.Qout: (received_Q -> atom).
      //
      // The paper writes X(received_Q -> Q(x̄)) because its moveE labels the
      // *pre-move* snapshot, with the enqueue observable one step later. In
      // this library the run propositions (move_*, received_*) describe the
      // transition INTO a snapshot, so the environment's send and the
      // recipient's observation coincide at the same (post-move) alpha
      // position and no X is needed (DESIGN.md, semantic alignment).
      const spec::Channel* ch = comp.FindChannel(leaf->relation().substr(4));
      assert(ch != nullptr && ch->FromEnvironment());
      LtlPtr received = LtlFormula::Leaf(fo::Formula::Atom(
          spec::Composition::ReceivedPropName(ch->name), {}));
      return LtlFormula::Implies(std::move(received), LtlPtr(f));
    }
    // Composite leaf containing such an atom: lift into LTL structure and
    // recurse so the rewrite lands on the atoms.
    return TranslateRec(ltl::LiftLeaf(leaf), comp);
  }
  bool touched = false;
  std::vector<LtlPtr> kids;
  kids.reserve(f->children().size());
  for (const LtlPtr& c : f->children()) {
    WSV_ASSIGN_OR_RETURN(LtlPtr nc, TranslateRec(c, comp));
    if (nc != c) touched = true;
    kids.push_back(std::move(nc));
  }
  if (!touched) return LtlPtr(f);
  switch (f->kind()) {
    case LtlKind::kNot:
      return LtlFormula::Not(kids[0]);
    case LtlKind::kAnd:
      return LtlFormula::And(kids[0], kids[1]);
    case LtlKind::kOr:
      return LtlFormula::Or(kids[0], kids[1]);
    case LtlKind::kImplies:
      return LtlFormula::Implies(kids[0], kids[1]);
    case LtlKind::kNext:
      return LtlFormula::Next(kids[0]);
    case LtlKind::kUntil:
      return LtlFormula::Until(kids[0], kids[1]);
    case LtlKind::kRelease:
      return LtlFormula::Release(kids[0], kids[1]);
    case LtlKind::kForallQ:
      return LtlFormula::ForallQ(f->bound_variables(), kids[0]);
    case LtlKind::kExistsQ:
      return LtlFormula::ExistsQ(f->bound_variables(), kids[0]);
    case LtlKind::kLeaf:
      break;
  }
  return Status::Internal("unreachable in TranslateRec");
}

}  // namespace

Result<ltl::LtlPtr> ObserverAtRecipientTranslate(
    const ltl::LtlPtr& f, const spec::Composition& comp) {
  return TranslateRec(f, comp);
}

}  // namespace wsv::modular
