#include "modular/env_spec.h"

#include "common/strings.h"
#include "ltl/property.h"

namespace wsv::modular {

Result<EnvironmentSpec> EnvironmentSpec::Parse(std::string_view source) {
  WSV_ASSIGN_OR_RETURN(ltl::LtlPtr formula, ltl::ParseEnvironmentLtl(source));
  return EnvironmentSpec(std::move(formula));
}

namespace {

bool HasTemporalQuantifier(const ltl::LtlPtr& f) {
  if (f->kind() == ltl::LtlKind::kForallQ ||
      f->kind() == ltl::LtlKind::kExistsQ) {
    return true;
  }
  for (const ltl::LtlPtr& c : f->children()) {
    if (HasTemporalQuantifier(c)) return true;
  }
  return false;
}

}  // namespace

bool EnvironmentSpec::IsStrict() const {
  return !HasTemporalQuantifier(formula_);
}

Status EnvironmentSpec::ValidateAgainst(const spec::Composition& comp) const {
  std::vector<fo::FormulaPtr> leaves;
  formula_->CollectLeaves(leaves);
  for (const fo::FormulaPtr& leaf : leaves) {
    for (const std::string& rel : leaf->RelationNames()) {
      if (StartsWith(rel, "env.")) {
        const spec::Channel* ch = comp.FindChannel(rel.substr(4));
        if (ch == nullptr || (!ch->FromEnvironment() && !ch->ToEnvironment())) {
          return Status::InvalidSpec(
              "environment spec references '" + rel +
              "' which is not an environment-facing queue");
        }
        continue;
      }
      fo::RelClass c = comp.Classify(rel);
      if (c == fo::RelClass::kReceived || c == fo::RelClass::kMove) continue;
      return Status::InvalidSpec(
          "environment spec may only reference environment-facing queues "
          "(env.Q), received_Q and move propositions; found '" +
          rel + "'");
    }
  }
  return Status::Ok();
}

}  // namespace wsv::modular
