#ifndef WSVERIFY_MODULAR_ENV_SPEC_H_
#define WSVERIFY_MODULAR_ENV_SPEC_H_

#include <set>
#include <string>
#include <string_view>

#include "common/status.h"
#include "ltl/ltl_formula.h"
#include "spec/composition.h"

namespace wsv::modular {

/// An environment specification (Section 5): an LTL-FO formula over the
/// environment-facing queues of an open composition, describing the
/// input-output behavior of the undisclosed outside peers.
///
/// Naming convention: the environment's view of channel Q is written
/// `env.Q` — the first message (what the environment consumes) for channels
/// flowing to the environment, the most recently enqueued message (what the
/// environment produced) for channels flowing from it. Example 5.1's spec
/// reads:
///
///   G forall ssn: env.getRating(ssn) ->
///       (env.rating(ssn, "poor") or env.rating(ssn, "fair") or
///        env.rating(ssn, "good") or env.rating(ssn, "excellent"))
class EnvironmentSpec {
 public:
  /// Parses an environment spec. Unlike LTL-FO sentences, quantifiers may
  /// scope over temporal operators (the non-strict case of Theorem 5.5 —
  /// flagged by the regime check, still verifiable boundedly).
  static Result<EnvironmentSpec> Parse(std::string_view source);

  explicit EnvironmentSpec(ltl::LtlPtr formula)
      : formula_(std::move(formula)) {}

  const ltl::LtlPtr& formula() const { return formula_; }

  /// Strictly input-bounded specs have no temporal operator in the scope of
  /// a quantifier (Theorem 5.4's decidability requirement).
  bool IsStrict() const;

  std::set<std::string> Constants() const { return formula_->Constants(); }

  /// Checks that the spec only references environment-facing queues of
  /// `comp` (via env.Q atoms and received_Q/move_env propositions).
  Status ValidateAgainst(const spec::Composition& comp) const;

 private:
  ltl::LtlPtr formula_;
};

}  // namespace wsv::modular

#endif  // WSVERIFY_MODULAR_ENV_SPEC_H_
