#ifndef WSVERIFY_MODULAR_TRANSLATION_H_
#define WSVERIFY_MODULAR_TRANSLATION_H_

#include "common/status.h"
#include "ltl/ltl_formula.h"
#include "spec/composition.h"

namespace wsv::modular {

/// psi -> psi-bar (Definition 5.3): relativizes every X and U (and R, their
/// dual) to configurations where `alpha` holds (alpha = move_env):
///   X_a f     == X(not a U (a and f))
///   f U_a g   == (a -> f) U (a and g)
///   f R_a g   == not(not f U_a not g)
/// Boolean structure, leaves and quantifier nodes are traversed unchanged.
ltl::LtlPtr RelativizeToMove(const ltl::LtlPtr& f,
                             const std::string& alpha_proposition);

/// psi-bar -> psi-bar-r (Section 5, observer-at-recipient translation):
/// every atom over a queue the environment feeds (env.Q with Q in E.Qout)
/// becomes (received_Q -> atom). The paper writes X(received_Q -> Q(x̄))
/// under its pre-move moveE convention; this library's run propositions
/// describe the transition INTO a snapshot, which places the send and its
/// observation at the same position (no X; see DESIGN.md). FO leaves
/// containing such atoms are first lifted into LTL structure (quantifiers
/// become kForallQ/kExistsQ nodes) so the rewrite lands on the atom; either
/// way the rewrite happens AFTER relativization (the paper notes the
/// translation order matters).
Result<ltl::LtlPtr> ObserverAtRecipientTranslate(
    const ltl::LtlPtr& f, const spec::Composition& comp);

}  // namespace wsv::modular

#endif  // WSVERIFY_MODULAR_TRANSLATION_H_
