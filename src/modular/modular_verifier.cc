#include "modular/modular_verifier.h"

#include "ltl/grounding.h"
#include "modular/translation.h"
#include "obs/timer.h"
#include "verifier/engine.h"
#include "verifier/validate.h"

namespace wsv::modular {

ModularVerifier::ModularVerifier(const spec::Composition* comp,
                                 ModularVerifierOptions options)
    : comp_(comp), options_(std::move(options)) {
  options_.run.allow_env_moves = true;
}

Status ModularVerifier::CheckDecidableRegime(
    const ltl::Property& property, const EnvironmentSpec& env) const {
  if (comp_->IsClosed()) {
    return Status::UndecidableRegime(
        "composition is closed; modular verification applies to open "
        "compositions (Section 5) — use Verifier instead");
  }
  if (options_.run.queue_bound == 0) {
    return Status::UndecidableRegime(
        "unbounded queues (Corollary 3.6 applies to modular verification "
        "too)");
  }
  if (!options_.run.lossy) {
    return Status::UndecidableRegime(
        "perfect channels (Theorem 3.7); Theorem 5.4 requires bounded lossy "
        "queues");
  }
  if (!env.IsStrict()) {
    return Status::UndecidableRegime(
        "non-strict environment specification: quantifiers scope over "
        "temporal operators, undecidable in general (Theorem 5.5); the "
        "verdict is bounded-sound");
  }
  WSV_RETURN_IF_ERROR(env.ValidateAgainst(*comp_));
  // Theorem 5.4 restricts the env spec to flat environment-facing queues.
  std::vector<fo::FormulaPtr> leaves;
  env.formula()->CollectLeaves(leaves);
  for (const fo::FormulaPtr& leaf : leaves) {
    for (const std::string& rel : leaf->RelationNames()) {
      if (rel.rfind("env.", 0) == 0) {
        const spec::Channel* ch = comp_->FindChannel(rel.substr(4));
        if (ch != nullptr && ch->kind == spec::QueueKind::kNested) {
          return Status::UndecidableRegime(
              "environment spec references nested queue '" + ch->name +
              "'; Theorem 5.4 covers flat environment-facing queues only");
        }
      }
    }
  }
  WSV_RETURN_IF_ERROR(comp_->CheckInputBounded(options_.ib_options));
  WSV_RETURN_IF_ERROR(
      property.CheckInputBounded(*comp_, options_.ib_options));
  return Status::Ok();
}

Result<verifier::VerificationResult> ModularVerifier::Verify(
    const ltl::Property& property, const EnvironmentSpec& env) {
  WSV_RETURN_IF_ERROR(verifier::ValidateProperty(*comp_, property));
  WSV_RETURN_IF_ERROR(verifier::ValidateLtlSchema(*comp_, env.formula()));
  verifier::VerificationResult result;
  result.regime = CheckDecidableRegime(property, env);
  if (!result.regime.ok() && options_.require_decidable_regime) {
    return result.regime;
  }

  std::set<std::string> extra = property.Constants();
  for (const std::string& c : env.Constants()) extra.insert(c);
  verifier::PseudoDomain pd = verifier::BuildPseudoDomain(
      *comp_, extra, options_.fresh_domain_size);
  interner_ = std::move(pd.interner);

  std::optional<std::vector<data::Instance>> fixed;
  if (options_.fixed_databases.has_value()) {
    WSV_ASSIGN_OR_RETURN(
        std::vector<data::Instance> dbs,
        verifier::MaterializeDatabases(*comp_, *options_.fixed_databases,
                                       interner_, pd.domain));
    fixed = std::move(dbs);
  }

  // psi -> psi-bar -> psi-bar-r -> quantifier-free over the pseudo-domain.
  ltl::LtlPtr env_bar = RelativizeToMove(
      env.formula(), spec::Composition::EnvMovePropName());
  WSV_ASSIGN_OR_RETURN(ltl::LtlPtr env_bar_r,
                       ObserverAtRecipientTranslate(env_bar, *comp_));
  // Environment message candidates must be interned before the engine runs.
  for (const auto& [channel, rows] : options_.run.env_message_candidates) {
    (void)channel;
    for (const std::vector<std::string>& row : rows) {
      for (const std::string& spelling : row) interner_.Intern(spelling);
    }
  }

  std::vector<std::string> domain_spellings = options_.env_quantifier_domain;
  if (domain_spellings.empty()) {
    for (data::Value v : pd.domain) {
      domain_spellings.push_back(interner_.Text(v));
    }
  } else {
    for (const std::string& c : domain_spellings) interner_.Intern(c);
  }
  ltl::LtlPtr env_expanded =
      ltl::ExpandTemporalQuantifiers(env_bar_r, domain_spellings);

  // Search for a run with (env_expanded and not phi), phi's closure
  // variables symbolic — one instance per valuation.
  ltl::LtlPtr violation = ltl::LtlFormula::And(
      env_expanded, ltl::LtlFormula::Not(property.formula()));
  verifier::SymbolicTask task;
  {
    obs::PhaseTimer automaton_phase("automaton");
    WSV_ASSIGN_OR_RETURN(
        ltl::GroundLtl ground,
        ltl::GroundToPropositional(violation, /*negate=*/false,
                                   /*allow_free_leaves=*/true));
    WSV_ASSIGN_OR_RETURN(task.automaton, ground.BuildAutomaton());
    task.leaves = std::move(ground.propositions);
  }
  task.closure_variables = property.closure_variables();
  task.valuations = verifier::ValuationSpace(
      pd.domain, interner_, task.closure_variables.size());
  result.stats.valuations_checked = task.valuations.size();

  verifier::EngineOptions engine_options;
  engine_options.run = options_.run;
  engine_options.iso_reduction = options_.iso_reduction;
  engine_options.max_databases = options_.max_databases;
  engine_options.db_range_lo = options_.db_range_lo;
  engine_options.db_range_hi = options_.db_range_hi;
  engine_options.count_only = options_.count_only;
  engine_options.valuation_mode = options_.valuation_mode;
  engine_options.budget = options_.budget;
  engine_options.jobs = options_.jobs;
  engine_options.fixed_databases = std::move(fixed);
  engine_options.control = options_.control;
  engine_options.on_db_error = options_.on_db_error;
  engine_options.checkpoint_path = options_.checkpoint_path;
  engine_options.checkpoint_fingerprint = options_.checkpoint_fingerprint;
  engine_options.checkpoint_every = options_.checkpoint_every;
  engine_options.resume_prefix = options_.resume_prefix;
  engine_options.resume_failed = options_.resume_failed;
  engine_options.resume_covered = options_.resume_covered;
  verifier::VerificationEngine engine(comp_, &interner_, pd.domain, pd.fresh,
                                      engine_options);
  WSV_ASSIGN_OR_RETURN(verifier::EngineOutcome outcome, engine.Run(task));

  if (options_.count_only) {
    result.enumeration_count = outcome.enumeration_count;
    result.coverage.unit = outcome.coverage_unit;
    result.stats.timings = outcome.timings;
    result.holds = true;  // nothing verified; callers key off count_only
    return result;
  }

  result.stats.databases_checked = outcome.databases_checked;
  result.stats.searches = outcome.searches;
  result.stats.prefiltered = outcome.prefiltered;
  result.stats.prefilter_memo_misses = outcome.prefilter_memo_misses;
  result.stats.prefilter_memo_hits = outcome.prefilter_memo_hits;
  result.stats.search = outcome.search_stats;
  result.stats.jobs = outcome.jobs;
  result.stats.timings = outcome.timings;
  result.holds = !outcome.violation_found;
  if (outcome.violation_found) {
    verifier::Counterexample ce;
    ce.databases = std::move(outcome.databases);
    ce.closure_valuation = std::move(outcome.label);
    ce.lasso = std::move(outcome.lasso);
    ce.database_index = outcome.violation_db_index;
    ce.valuation_index = outcome.violation_valuation_index;
    result.counterexample = std::move(ce);
  }
  result.coverage.stop_reason = outcome.stop_reason;
  result.coverage.stop_status = outcome.stop_status;
  result.coverage.completed_prefix = outcome.completed_prefix;
  result.coverage.covered = std::move(outcome.covered);
  result.coverage.unit = outcome.coverage_unit;
  result.coverage.range_lo = options_.db_range_lo;
  result.coverage.range_hi = options_.db_range_hi;
  result.coverage.failed_db_indices = std::move(outcome.failed_db_indices);
  result.coverage.db_retries = outcome.db_retries;
  if (!outcome.stop_status.ok() && result.holds && result.regime.ok()) {
    result.regime = outcome.stop_status;
  }
  result.complete = false;  // bounded pseudo-domain by construction
  return result;
}

}  // namespace wsv::modular
