#ifndef WSVERIFY_MODULAR_MODULAR_VERIFIER_H_
#define WSVERIFY_MODULAR_MODULAR_VERIFIER_H_

#include "modular/env_spec.h"
#include "verifier/engine.h"
#include "verifier/verifier.h"

namespace wsv::modular {

struct ModularVerifierOptions {
  /// Channel semantics; allow_env_moves is forced on (environment
  /// transitions are part of open-composition runs, Section 5).
  runtime::RunOptions run;
  size_t fresh_domain_size = 2;
  bool iso_reduction = true;
  /// Absolute-index enumeration bound and shard range (see VerifierOptions
  /// for the full semantics).
  size_t max_databases = static_cast<size_t>(-1);
  size_t db_range_lo = 0;
  size_t db_range_hi = static_cast<size_t>(-1);
  /// Count the canonical databases instead of verifying (see
  /// VerifierOptions::count_only).
  bool count_only = false;
  /// Valuation coverage strategy (see verifier::ValuationMode).
  verifier::ValuationMode valuation_mode = verifier::ValuationMode::kConcrete;
  verifier::SearchBudget budget;
  /// Worker threads for the database sweep (1 = serial, 0 = hardware
  /// concurrency); see VerifierOptions::jobs.
  size_t jobs = 1;
  fo::InputBoundedOptions ib_options;
  bool require_decidable_regime = false;
  std::optional<std::vector<verifier::NamedDatabase>> fixed_databases;

  /// Domain (constant spellings) over which the environment spec's
  /// quantifiers are expanded; empty = the full pseudo-domain. Narrowing it
  /// to the values that can actually occur in the affected message
  /// positions keeps the expanded formula (and its Büchi automaton) small;
  /// narrowing *strengthens* the check: the environment is constrained for
  /// fewer values, so more runs count as environment-conforming.
  std::vector<std::string> env_quantifier_domain;

  /// Robustness knobs (deadline/cancel token, fault isolation, checkpoint +
  /// resume); see VerifierOptions for semantics.
  RunControl* control = nullptr;
  verifier::OnDbError on_db_error = verifier::OnDbError::kAbort;
  std::string checkpoint_path;
  std::string checkpoint_fingerprint;
  size_t checkpoint_every = 64;
  size_t resume_prefix = 0;
  std::vector<size_t> resume_failed;
  std::vector<verifier::IndexInterval> resume_covered;
};

/// Modular verification (Theorem 5.4): checks C |=_psi phi — every run of
/// the open composition C whose environment behavior satisfies the spec psi
/// also satisfies phi. Implemented by searching for a run satisfying
/// (psi-bar-r and not phi), where psi-bar-r is psi relativized to
/// environment moves and translated to observer-at-recipient form, with
/// temporal quantifiers expanded over the pseudo-domain.
class ModularVerifier {
 public:
  explicit ModularVerifier(const spec::Composition* comp,
                           ModularVerifierOptions options = {});

  /// Theorem 5.4's decidable class: open composition, bounded lossy queues,
  /// input-bounded phi, *strictly* input-bounded psi over flat
  /// environment-facing queues; non-strict specs fall under Theorem 5.5
  /// (undecidable in general, still explored boundedly).
  Status CheckDecidableRegime(const ltl::Property& property,
                              const EnvironmentSpec& env) const;

  Result<verifier::VerificationResult> Verify(const ltl::Property& property,
                                              const EnvironmentSpec& env);

  const Interner& interner() const { return interner_; }

 private:
  const spec::Composition* comp_;
  ModularVerifierOptions options_;
  Interner interner_;
};

}  // namespace wsv::modular

#endif  // WSVERIFY_MODULAR_MODULAR_VERIFIER_H_
