#ifndef WSVERIFY_CFSM_CFSM_H_
#define WSVERIFY_CFSM_CFSM_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace wsv::cfsm {

/// Communicating finite-state machines (Brand & Zafiropulo [6]; lossy
/// variant Abdulla & Jonsson [2]): the classical model the paper
/// generalizes. "The CFSM model is a special case of ours in which all
/// schemas are propositional and there is no user input or database"
/// (Section 6). This substrate provides (a) an exact explicit-state
/// explorer used by the decidability-boundary benchmarks (Corollary 3.6,
/// Theorem 3.7), and (b) an embedding into data-driven compositions.
struct CfsmTransition {
  enum class Kind { kSend, kReceive };

  size_t from = 0;
  size_t to = 0;
  Kind kind = Kind::kSend;
  size_t channel = 0;
  std::string letter;
};

struct CfsmMachine {
  std::string name;
  size_t num_states = 0;
  size_t initial = 0;
  std::vector<CfsmTransition> transitions;
};

struct CfsmChannel {
  std::string name;
  size_t sender = 0;    // machine index
  size_t receiver = 0;  // machine index
};

struct CfsmSystem {
  std::vector<CfsmMachine> machines;
  std::vector<CfsmChannel> channels;

  /// Structural checks: indices in range, send/receive transitions use
  /// channels the machine actually owns.
  Status Validate() const;
};

/// A global configuration: one control state per machine plus the channel
/// contents.
struct CfsmConfig {
  std::vector<size_t> states;
  std::vector<std::vector<std::string>> queues;

  bool operator==(const CfsmConfig& other) const {
    return states == other.states && queues == other.queues;
  }
  size_t Hash() const;
};

struct CfsmConfigHash {
  size_t operator()(const CfsmConfig& c) const { return c.Hash(); }
};

struct ExploreOptions {
  /// 0 = unbounded queues (the undecidable regime — exploration may
  /// diverge; bounded only by max_configs).
  size_t queue_bound = 1;
  /// Lossy channels: sends may be dropped.
  bool lossy = true;
  /// Exploration budget.
  size_t max_configs = 1000000;
};

struct ExploreResult {
  size_t configs_visited = 0;
  size_t transitions_taken = 0;
  bool budget_exhausted = false;
  /// Set when a target was given: whether some configuration with the
  /// target control states (any queue contents) was reached.
  bool target_reached = false;
};

/// Exact explicit-state reachability exploration of a CFSM system.
class CfsmExplorer {
 public:
  CfsmExplorer(const CfsmSystem* system, ExploreOptions options);

  /// Explores from the initial configuration. If `target_states` is given
  /// (one control state per machine), stops early when it is reached.
  Result<ExploreResult> Explore(const std::optional<std::vector<size_t>>&
                                    target_states = std::nullopt) const;

 private:
  std::vector<CfsmConfig> Successors(const CfsmConfig& config) const;

  const CfsmSystem* system_;
  ExploreOptions options_;
};

}  // namespace wsv::cfsm

#endif  // WSVERIFY_CFSM_CFSM_H_
