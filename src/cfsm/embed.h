#ifndef WSVERIFY_CFSM_EMBED_H_
#define WSVERIFY_CFSM_EMBED_H_

#include "cfsm/cfsm.h"
#include "common/status.h"
#include "spec/composition.h"

namespace wsv::cfsm {

/// Embeds a CFSM system as a data-driven composition, witnessing the
/// paper's observation (Section 6) that CFSMs are the special case with
/// propositional schemas, no database and no (semantically relevant) user
/// input:
///
///  * each machine becomes a peer whose control state is encoded in 0-ary
///    state relations at_<s> (the initial state is "all at_* false");
///  * each channel becomes a flat arity-1 queue carrying letter constants;
///  * receive transitions fire automatically when their letter heads the
///    queue (a peer's input is frozen between its own moves, Definitions
///    2.3/2.6, so input-gated receives would lag one move behind arrivals);
///  * the choice among enabled *send* transitions is a user input `step`
///    whose options rule offers exactly the enabled transition ids — an
///    existential, ground-state formula, so the embedding is input-bounded;
///  * receives preempt sends within one move, keeping the control-state
///    encoding single-valued.
///
/// Faithfulness caveats (documented in DESIGN.md): (a) Definition 2.4
/// dequeues every in-queue mentioned in the peer's rules on every move, so
/// a move that fires no receive still drains one message per in-queue —
/// under lossy semantics every embedded run maps to a lossy-CFSM run (the
/// drain is a loss); (b) the embedding requires receive-deterministic
/// machines (at most one receive transition enabled per configuration) and
/// gives receives priority over sends.
Result<spec::Composition> EmbedAsComposition(const CfsmSystem& system);

/// The options-consistent transition-id constant for machine `m`'s i-th
/// transition ("<machine>_t<i>").
std::string TransitionConstant(const CfsmMachine& machine, size_t index);

/// The 0-ary control-state relation name for state `s` ("at_<s>").
std::string StateRelationName(size_t state);

/// FO formula asserting machine control is at `state` (conjunction of
/// negated at_* for the initial state, a single at_<s> atom otherwise).
fo::FormulaPtr AtStateFormula(const CfsmMachine& machine, size_t state);

}  // namespace wsv::cfsm

#endif  // WSVERIFY_CFSM_EMBED_H_
