#include "cfsm/cfsm.h"

#include <deque>
#include <unordered_set>

#include "common/hash.h"

namespace wsv::cfsm {

Status CfsmSystem::Validate() const {
  for (const CfsmChannel& ch : channels) {
    if (ch.sender >= machines.size() || ch.receiver >= machines.size()) {
      return Status::InvalidSpec("channel '" + ch.name +
                                 "' references missing machine");
    }
  }
  for (size_t m = 0; m < machines.size(); ++m) {
    const CfsmMachine& machine = machines[m];
    if (machine.initial >= machine.num_states) {
      return Status::InvalidSpec("machine '" + machine.name +
                                 "' has out-of-range initial state");
    }
    for (const CfsmTransition& t : machine.transitions) {
      if (t.from >= machine.num_states || t.to >= machine.num_states) {
        return Status::InvalidSpec("machine '" + machine.name +
                                   "' has out-of-range transition state");
      }
      if (t.channel >= channels.size()) {
        return Status::InvalidSpec("machine '" + machine.name +
                                   "' uses missing channel");
      }
      const CfsmChannel& ch = channels[t.channel];
      if (t.kind == CfsmTransition::Kind::kSend && ch.sender != m) {
        return Status::InvalidSpec("machine '" + machine.name +
                                   "' sends on channel '" + ch.name +
                                   "' it does not own");
      }
      if (t.kind == CfsmTransition::Kind::kReceive && ch.receiver != m) {
        return Status::InvalidSpec("machine '" + machine.name +
                                   "' receives on channel '" + ch.name +
                                   "' it does not own");
      }
    }
  }
  return Status::Ok();
}

size_t CfsmConfig::Hash() const {
  size_t seed = 0xcf53ULL;
  for (size_t s : states) HashCombine(seed, s);
  for (const auto& queue : queues) {
    HashCombine(seed, queue.size());
    for (const std::string& letter : queue) {
      HashCombine(seed, std::hash<std::string>()(letter));
    }
  }
  return seed;
}

CfsmExplorer::CfsmExplorer(const CfsmSystem* system, ExploreOptions options)
    : system_(system), options_(options) {}

std::vector<CfsmConfig> CfsmExplorer::Successors(
    const CfsmConfig& config) const {
  std::vector<CfsmConfig> out;
  for (size_t m = 0; m < system_->machines.size(); ++m) {
    for (const CfsmTransition& t : system_->machines[m].transitions) {
      if (config.states[m] != t.from) continue;
      if (t.kind == CfsmTransition::Kind::kReceive) {
        const auto& queue = config.queues[t.channel];
        if (queue.empty() || queue.front() != t.letter) continue;
        CfsmConfig next = config;
        next.states[m] = t.to;
        next.queues[t.channel].erase(next.queues[t.channel].begin());
        out.push_back(std::move(next));
      } else {
        bool full = options_.queue_bound > 0 &&
                    config.queues[t.channel].size() >= options_.queue_bound;
        // Delivered branch.
        if (!full) {
          CfsmConfig next = config;
          next.states[m] = t.to;
          next.queues[t.channel].push_back(t.letter);
          out.push_back(std::move(next));
        }
        // Lost branch (lossy channels, or full bounded queue).
        if (options_.lossy || full) {
          CfsmConfig next = config;
          next.states[m] = t.to;
          out.push_back(std::move(next));
        }
      }
    }
    // Lossy channel systems additionally allow spontaneous message loss; we
    // model loss at send time, which reaches the same control states
    // (Abdulla & Jonsson's loss-before-receive is equivalent for
    // reachability).
  }
  return out;
}

Result<ExploreResult> CfsmExplorer::Explore(
    const std::optional<std::vector<size_t>>& target_states) const {
  ExploreResult result;
  CfsmConfig initial;
  for (const CfsmMachine& m : system_->machines) {
    initial.states.push_back(m.initial);
  }
  initial.queues.assign(system_->channels.size(), {});

  std::unordered_set<CfsmConfig, CfsmConfigHash> visited;
  std::deque<CfsmConfig> frontier;
  visited.insert(initial);
  frontier.push_back(std::move(initial));

  while (!frontier.empty()) {
    CfsmConfig config = std::move(frontier.front());
    frontier.pop_front();
    ++result.configs_visited;
    if (target_states.has_value() && config.states == *target_states) {
      result.target_reached = true;
      return result;
    }
    for (CfsmConfig& next : Successors(config)) {
      ++result.transitions_taken;
      if (visited.size() >= options_.max_configs) {
        result.budget_exhausted = true;
        result.configs_visited = visited.size();
        return result;
      }
      if (visited.insert(next).second) {
        frontier.push_back(std::move(next));
      }
    }
  }
  result.configs_visited = visited.size();
  return result;
}

}  // namespace wsv::cfsm
