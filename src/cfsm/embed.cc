#include "cfsm/embed.h"

namespace wsv::cfsm {

std::string TransitionConstant(const CfsmMachine& machine, size_t index) {
  return machine.name + "_t" + std::to_string(index);
}

std::string StateRelationName(size_t state) {
  return "at_" + std::to_string(state);
}

fo::FormulaPtr AtStateFormula(const CfsmMachine& machine, size_t state) {
  if (state != machine.initial) {
    return fo::Formula::Atom(StateRelationName(state), {});
  }
  // Initial state: no at_* relation holds.
  std::vector<fo::FormulaPtr> parts;
  for (size_t s = 0; s < machine.num_states; ++s) {
    if (s == machine.initial) continue;
    parts.push_back(
        fo::Formula::Not(fo::Formula::Atom(StateRelationName(s), {})));
  }
  if (parts.empty()) return fo::Formula::True();
  return fo::Formula::And(std::move(parts));
}

namespace {

/// Firing condition of a receive transition: control at its source and its
/// letter at the head of the channel queue. Receives fire automatically —
/// they cannot be input-gated, because a peer's input is chosen at its
/// previous move (Definitions 2.3/2.6) and would lag one move behind the
/// message arrival.
fo::FormulaPtr ReceiveFires(const CfsmSystem& system,
                            const CfsmMachine& machine,
                            const CfsmTransition& t) {
  return fo::Formula::And(
      AtStateFormula(machine, t.from),
      fo::Formula::Atom(system.channels[t.channel].name,
                        {fo::Term::Constant(t.letter)}));
}

/// "No receive transition of this machine fires now": send transitions are
/// preempted by receives so that at most one transition fires per move
/// (keeping the control-state encoding consistent).
fo::FormulaPtr NoReceiveEnabled(const CfsmSystem& system,
                                const CfsmMachine& machine) {
  std::vector<fo::FormulaPtr> parts;
  for (const CfsmTransition& t : machine.transitions) {
    if (t.kind != CfsmTransition::Kind::kReceive) continue;
    parts.push_back(fo::Formula::Not(ReceiveFires(system, machine, t)));
  }
  if (parts.empty()) return fo::Formula::True();
  return fo::Formula::And(std::move(parts));
}

/// Firing condition of a send transition: the user picked its id and no
/// receive preempts it.
fo::FormulaPtr SendFires(const CfsmSystem& system, const CfsmMachine& machine,
                         size_t index) {
  return fo::Formula::And(
      fo::Formula::Atom("step",
                        {fo::Term::Constant(
                            TransitionConstant(machine, index))}),
      NoReceiveEnabled(system, machine));
}

}  // namespace

Result<spec::Composition> EmbedAsComposition(const CfsmSystem& system) {
  WSV_RETURN_IF_ERROR(system.Validate());
  spec::Composition comp("cfsm_embedding");

  for (size_t m = 0; m < system.machines.size(); ++m) {
    const CfsmMachine& machine = system.machines[m];
    spec::Peer peer(machine.name);

    for (size_t s = 0; s < machine.num_states; ++s) {
      if (s == machine.initial) continue;
      WSV_RETURN_IF_ERROR(peer.AddStateRelation(StateRelationName(s), {}));
    }
    bool has_sends = false;
    for (const CfsmTransition& t : machine.transitions) {
      has_sends = has_sends || t.kind == CfsmTransition::Kind::kSend;
    }
    if (has_sends) {
      WSV_RETURN_IF_ERROR(peer.AddInputRelation("step", {"t"}));
    }
    for (size_t c = 0; c < system.channels.size(); ++c) {
      const CfsmChannel& ch = system.channels[c];
      if (ch.receiver == m) {
        WSV_RETURN_IF_ERROR(
            peer.AddInQueue(ch.name, spec::QueueKind::kFlat, {"letter"}));
      }
      if (ch.sender == m) {
        WSV_RETURN_IF_ERROR(
            peer.AddOutQueue(ch.name, spec::QueueKind::kFlat, {"letter"}));
      }
    }

    // Options rule: offer the send transitions enabled by the control state
    // (receives are automatic and not user-chosen).
    std::vector<fo::FormulaPtr> options;
    for (size_t i = 0; i < machine.transitions.size(); ++i) {
      const CfsmTransition& t = machine.transitions[i];
      if (t.kind != CfsmTransition::Kind::kSend) continue;
      options.push_back(fo::Formula::And(
          fo::Formula::Equality(
              fo::Term::Variable("t"),
              fo::Term::Constant(TransitionConstant(machine, i))),
          AtStateFormula(machine, t.from)));
    }
    if (!options.empty()) {
      WSV_RETURN_IF_ERROR(peer.AddRule(spec::RuleKind::kInputOptions, "step",
                                       {"t"},
                                       fo::Formula::Or(std::move(options))));
    }

    // State insert/delete rules per control state.
    for (size_t s = 0; s < machine.num_states; ++s) {
      if (s == machine.initial) continue;
      std::vector<fo::FormulaPtr> inserts;
      std::vector<fo::FormulaPtr> deletes;
      for (size_t i = 0; i < machine.transitions.size(); ++i) {
        const CfsmTransition& t = machine.transitions[i];
        fo::FormulaPtr fired =
            t.kind == CfsmTransition::Kind::kReceive
                ? ReceiveFires(system, machine, t)
                : SendFires(system, machine, i);
        if (t.to == s && t.from != s) inserts.push_back(fired);
        if (t.from == s && t.to != s) deletes.push_back(std::move(fired));
      }
      if (!inserts.empty()) {
        WSV_RETURN_IF_ERROR(
            peer.AddRule(spec::RuleKind::kStateInsert, StateRelationName(s),
                         {}, fo::Formula::Or(std::move(inserts))));
      }
      if (!deletes.empty()) {
        WSV_RETURN_IF_ERROR(
            peer.AddRule(spec::RuleKind::kStateDelete, StateRelationName(s),
                         {}, fo::Formula::Or(std::move(deletes))));
      }
    }

    // Send rules per owned channel.
    for (size_t c = 0; c < system.channels.size(); ++c) {
      if (system.channels[c].sender != m) continue;
      std::vector<fo::FormulaPtr> sends;
      for (size_t i = 0; i < machine.transitions.size(); ++i) {
        const CfsmTransition& t = machine.transitions[i];
        if (t.kind != CfsmTransition::Kind::kSend || t.channel != c) continue;
        sends.push_back(fo::Formula::And(
            SendFires(system, machine, i),
            fo::Formula::Equality(fo::Term::Variable("x"),
                                  fo::Term::Constant(t.letter))));
      }
      if (!sends.empty()) {
        WSV_RETURN_IF_ERROR(peer.AddRule(spec::RuleKind::kSend,
                                         system.channels[c].name, {"x"},
                                         fo::Formula::Or(std::move(sends))));
      }
    }

    WSV_RETURN_IF_ERROR(comp.AddPeer(std::move(peer)));
  }

  WSV_RETURN_IF_ERROR(comp.Validate());
  return comp;
}

}  // namespace wsv::cfsm
