#ifndef WSVERIFY_RUNTIME_TRANSITION_H_
#define WSVERIFY_RUNTIME_TRANSITION_H_

#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "data/instance.h"
#include "data/value.h"
#include "fo/eval.h"
#include "runtime/run_options.h"
#include "runtime/snapshot.h"
#include "spec/composition.h"

namespace wsv::runtime {

/// Generates the legal successor snapshots of a composition configuration
/// (Definition 2.4 lifted to serialized runs, Definition 2.6).
///
/// A transition picks one mover (a peer, or the environment for open
/// compositions) and branches over: the user's input choices (at most one
/// option tuple per input relation), nondeterministic flat-send picks,
/// lossy-channel drops, and — for environment moves — arbitrary
/// domain-bounded message injections (Section 5).
class TransitionGenerator {
 public:
  /// `comp` must be validated and outlive the generator. `databases` is one
  /// instance of each peer's database schema, aligned with comp.peers().
  /// `domain` is the evaluation domain for rule quantifiers (the
  /// pseudo-domain during verification, or the active domain during
  /// simulation); `interner` resolves rule constants.
  TransitionGenerator(const spec::Composition* comp,
                      std::vector<data::Instance> databases,
                      data::Domain domain, const Interner* interner,
                      RunOptions options);

  const spec::Composition& composition() const { return *comp_; }
  const std::vector<data::Instance>& databases() const { return databases_; }
  const data::Domain& domain() const { return domain_; }
  const RunOptions& options() const { return options_; }

  /// All legal initial snapshots (Definition 2.6): states, previous inputs,
  /// actions and queues empty; every peer's current input is any
  /// options-consistent choice at the empty configuration (Definition 2.3
  /// requires each configuration to carry its input).
  Result<std::vector<Snapshot>> InitialSnapshots() const;

  /// All successors across all movers (peers, plus the environment when
  /// options().allow_env_moves).
  Result<std::vector<Snapshot>> Successors(const Snapshot& snap) const;

  /// Successors where peer `peer_index` moves.
  Result<std::vector<Snapshot>> SuccessorsForPeer(const Snapshot& snap,
                                                  size_t peer_index) const;

  /// Successors where the environment moves (open compositions only).
  Result<std::vector<Snapshot>> EnvSuccessors(const Snapshot& snap) const;

  /// The evaluation structure a peer's rules see in `snap` (database, state,
  /// queue-states, first messages of in-queues, previous inputs); inputs are
  /// layered on top by the caller. Exposed for testing.
  Result<fo::MapStructure> BuildRuleStructure(const Snapshot& snap,
                                              size_t peer_index,
                                              bool include_input) const;

 private:
  struct PeerWiring {
    /// Composition channel index per in-queue / out-queue (aligned with the
    /// peer's in_queues() / out_queues()).
    std::vector<size_t> in_channel;
    std::vector<size_t> out_channel;
    /// In-queues mentioned in some rule body (these are dequeued on every
    /// move of the peer, Definition 2.4).
    std::vector<bool> consumes;
  };

  /// A message produced by a send rule, before channel delivery.
  struct OutgoingMessage {
    size_t channel;
    spec::QueueKind kind;
    data::Relation content;  // singleton for flat
  };

  /// Enumerates the options-consistent input instances of `peer` at the
  /// configuration whose rule structure (without inputs) is `base`
  /// (Definition 2.3: at most one option tuple per input relation).
  Result<std::vector<data::Instance>> EnumerateInputChoices(
      const spec::Peer& peer, const fo::MapStructure& base) const;

  /// Applies channel delivery (lossy branching, bounds) of `messages` to
  /// `base`, appending all resulting snapshots to `out`.
  void DeliverMessages(Snapshot base,
                       const std::vector<OutgoingMessage>& messages,
                       size_t message_index,
                       std::vector<Snapshot>& out) const;

  bool ChannelIsLossy(spec::QueueKind kind) const;

  /// Candidate environment-message contents for a channel (configured
  /// finite domain, or every tuple over the evaluation domain).
  std::vector<data::Relation> EnvCandidates(size_t channel_index) const;

  const spec::Composition* comp_;
  std::vector<data::Instance> databases_;
  data::Domain domain_;
  const Interner* interner_;
  RunOptions options_;
  fo::Evaluator evaluator_;
  std::vector<PeerWiring> wiring_;
};

}  // namespace wsv::runtime

#endif  // WSVERIFY_RUNTIME_TRANSITION_H_
