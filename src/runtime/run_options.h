#ifndef WSVERIFY_RUNTIME_RUN_OPTIONS_H_
#define WSVERIFY_RUNTIME_RUN_OPTIONS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace wsv::runtime {

/// Communication semantics knobs explored by the paper (Sections 2, 3.2):
/// queue bounds, lossy vs perfect channels, deterministic flat sends
/// (Theorem 3.8), perfect nested channels (remark after Theorem 3.4), and
/// environment transitions for open compositions (Section 5).
struct RunOptions {
  /// k-bounded queues: each queue holds at most k messages; messages
  /// arriving at a full queue are dropped (Section 3.1). The decidability
  /// results require a finite bound; 0 is invalid.
  size_t queue_bound = 1;

  /// Lossy channels: a sent message may nondeterministically fail to be
  /// enqueued (Section 2). Theorem 3.4's decidability requires lossy
  /// channels; perfect flat channels are undecidable even 1-bounded
  /// (Theorem 3.7) — the verifier still explores them soundly within the
  /// bounded configuration space.
  bool lossy = true;

  /// Keep nested channels perfect while flat channels stay lossy (the
  /// decidability of Theorem 3.4 survives this relaxation; see the remark
  /// "Perfect nested message channels").
  bool perfect_nested = false;

  /// Theorem 3.8 semantics: when a flat send rule yields several candidate
  /// tuples, no message is sent and the error flag error_<Q> is set, instead
  /// of nondeterministically picking one tuple.
  bool deterministic_flat_sends = false;

  /// Pragmatic divergence from Definition 2.4 (documented in DESIGN.md):
  /// when true, a nested send rule whose result is empty does not enqueue an
  /// empty message. The paper enqueues unconditionally, which floods bounded
  /// queues with empty messages on every move; examples enable skipping.
  bool skip_empty_nested_sends = true;

  /// Open compositions (Section 5): allow environment transitions that
  /// consume from the composition's environment-facing out-queues and feed
  /// its environment-facing in-queues.
  bool allow_env_moves = false;

  /// Cap on tuples per environment-generated nested message (environment
  /// specs in Theorem 5.4 only constrain flat queues, so a small cap
  /// suffices).
  size_t env_nested_max_tuples = 1;

  /// Serialize environment transitions: each environment move performs at
  /// most one action (consume one head message, or feed one message into
  /// one queue, or stutter). Definition-faithful multi-queue environment
  /// transitions are sequences of such moves reaching the same
  /// configurations, while the branching factor drops from the product of
  /// all queues' choices to their sum.
  bool env_single_action = true;

  /// The finite domain of environment-generated messages (Section 5 assumes
  /// environment transitions draw tuples "from some finite domain"). Keyed
  /// by channel name; each entry lists the candidate tuples (constant
  /// spellings, which the verifier interns). Channels without an entry
  /// default to every tuple over the evaluation domain — exhaustive but
  /// often intractably large; restricting the candidates restricts the
  /// modeled environment.
  std::map<std::string, std::vector<std::vector<std::string>>>
      env_message_candidates;
};

}  // namespace wsv::runtime

#endif  // WSVERIFY_RUNTIME_RUN_OPTIONS_H_
