#include "runtime/transition.h"

#include <cassert>

namespace wsv::runtime {

namespace {

/// Sets a 0-ary relation to the given truth value.
data::Relation PropRelation(bool value) {
  data::Relation r(0);
  if (value) r.Insert(data::Tuple{});
  return r;
}

}  // namespace

TransitionGenerator::TransitionGenerator(const spec::Composition* comp,
                                         std::vector<data::Instance> databases,
                                         data::Domain domain,
                                         const Interner* interner,
                                         RunOptions options)
    : comp_(comp),
      databases_(std::move(databases)),
      domain_(std::move(domain)),
      interner_(interner),
      options_(options),
      evaluator_(interner) {
  assert(databases_.size() == comp_->peers().size());
  // Precompute channel wiring per peer.
  wiring_.resize(comp_->peers().size());
  for (size_t p = 0; p < comp_->peers().size(); ++p) {
    const spec::Peer& peer = comp_->peers()[p];
    PeerWiring& w = wiring_[p];
    w.in_channel.resize(peer.in_queues().size());
    w.out_channel.resize(peer.out_queues().size());
    w.consumes.assign(peer.in_queues().size(), false);
    for (size_t q = 0; q < peer.in_queues().size(); ++q) {
      for (size_t c = 0; c < comp_->channels().size(); ++c) {
        if (comp_->channels()[c].name == peer.in_queues()[q].name) {
          w.in_channel[q] = c;
          break;
        }
      }
    }
    for (size_t q = 0; q < peer.out_queues().size(); ++q) {
      for (size_t c = 0; c < comp_->channels().size(); ++c) {
        if (comp_->channels()[c].name == peer.out_queues()[q].name) {
          w.out_channel[q] = c;
          break;
        }
      }
    }
    // In-queues mentioned anywhere in the peer's rules get dequeued on every
    // move (Definition 2.4).
    std::set<std::string> mentioned;
    for (const spec::Rule& rule : peer.rules()) {
      auto names = rule.body->RelationNames();
      mentioned.insert(names.begin(), names.end());
    }
    for (size_t q = 0; q < peer.in_queues().size(); ++q) {
      if (mentioned.count(peer.in_queues()[q].name) > 0) w.consumes[q] = true;
    }
  }
}

bool TransitionGenerator::ChannelIsLossy(spec::QueueKind kind) const {
  if (!options_.lossy) return false;
  if (kind == spec::QueueKind::kNested && options_.perfect_nested) {
    return false;
  }
  return true;
}

Result<fo::MapStructure> TransitionGenerator::BuildRuleStructure(
    const Snapshot& snap, size_t peer_index, bool include_input) const {
  const spec::Peer& peer = comp_->peers()[peer_index];
  const PeerConfig& cfg = snap.peers[peer_index];
  fo::MapStructure structure;
  structure.SetDomain(domain_);

  const data::Instance& db = databases_[peer_index];
  for (size_t i = 0; i < db.schema()->size(); ++i) {
    structure.Set(db.schema()->relation(i).name, db.relation(i));
  }
  for (size_t i = 0; i < cfg.state.schema()->size(); ++i) {
    structure.Set(cfg.state.schema()->relation(i).name, cfg.state.relation(i));
  }
  for (size_t i = 0; i < cfg.prev.schema()->size(); ++i) {
    structure.Set(cfg.prev.schema()->relation(i).name, cfg.prev.relation(i));
  }
  if (include_input) {
    for (size_t i = 0; i < cfg.input.schema()->size(); ++i) {
      structure.Set(cfg.input.schema()->relation(i).name,
                    cfg.input.relation(i));
    }
  }
  // Queue views: f(Q) (first message) and the empty_Q queue-state.
  for (size_t q = 0; q < peer.in_queues().size(); ++q) {
    const spec::QueueDecl& decl = peer.in_queues()[q];
    const auto& queue = snap.channels[wiring_[peer_index].in_channel[q]];
    structure.Set(decl.name, queue.empty() ? data::Relation(decl.arity())
                                           : queue.front());
    structure.Set(spec::QueueEmptyStateName(decl.name),
                  PropRelation(queue.empty()));
  }
  // Send-error flags (Theorem 3.8: consultable by rules and properties;
  // constant false outside the deterministic-send semantics).
  for (size_t q = 0; q < peer.out_queues().size(); ++q) {
    if (peer.out_queues()[q].kind != spec::QueueKind::kFlat) continue;
    structure.Set("error_" + peer.out_queues()[q].name,
                  PropRelation(q < cfg.send_errors.size() &&
                               cfg.send_errors[q]));
  }
  return structure;
}

Result<std::vector<data::Instance>> TransitionGenerator::EnumerateInputChoices(
    const spec::Peer& peer, const fo::MapStructure& base) const {
  // Evaluate the options rule of every input relation, then form all
  // combinations of "no input" plus each option tuple (Definition 2.3).
  std::vector<data::Instance> combos;
  combos.emplace_back(&peer.input_schema());
  for (size_t i = 0; i < peer.input_schema().size(); ++i) {
    const data::RelationSchema& rel = peer.input_schema().relation(i);
    const spec::Rule* rule =
        peer.FindRule(spec::RuleKind::kInputOptions, rel.name);
    data::Relation options(rel.arity());
    if (rule != nullptr) {
      WSV_ASSIGN_OR_RETURN(
          options, evaluator_.EvaluateQuery(rule->body, rule->head_vars, base));
    }
    if (options.empty()) continue;  // only "no input" possible
    std::vector<data::Instance> expanded;
    expanded.reserve(combos.size() * (options.size() + 1));
    for (const data::Instance& combo : combos) {
      expanded.push_back(combo);  // pick nothing
      for (const data::Tuple& t : options) {
        data::Instance with = combo;
        with.relation(i).Insert(t);
        expanded.push_back(std::move(with));
      }
    }
    combos = std::move(expanded);
  }
  return combos;
}

void TransitionGenerator::DeliverMessages(
    Snapshot base, const std::vector<OutgoingMessage>& messages,
    size_t message_index, std::vector<Snapshot>& out) const {
  if (message_index == messages.size()) {
    out.push_back(std::move(base));
    return;
  }
  const OutgoingMessage& msg = messages[message_index];
  base.sent[msg.channel] = true;

  // Drop branch (lossy channel) — also the only branch when the queue is
  // full (k-bounded semantics, Section 3.1).
  bool full = base.channels[msg.channel].size() >= options_.queue_bound;
  bool lossy = ChannelIsLossy(msg.kind);
  if (full || lossy) {
    Snapshot dropped = base;
    DeliverMessages(std::move(dropped), messages, message_index + 1, out);
  }
  if (!full) {
    Snapshot delivered = std::move(base);
    delivered.channels[msg.channel].push_back(msg.content);
    delivered.received[msg.channel] = true;
    DeliverMessages(std::move(delivered), messages, message_index + 1, out);
  }
}

Result<std::vector<Snapshot>> TransitionGenerator::SuccessorsForPeer(
    const Snapshot& snap, size_t peer_index) const {
  const spec::Peer& peer = comp_->peers()[peer_index];
  const PeerWiring& wiring = wiring_[peer_index];

  // Definition 2.4: the transition consumes the input *stored in the
  // current configuration* (Definition 2.3 requires it to be
  // options-consistent there); the successor's input is re-chosen below
  // against the successor configuration.
  WSV_ASSIGN_OR_RETURN(fo::MapStructure structure,
                       BuildRuleStructure(snap, peer_index,
                                          /*include_input=*/true));

  Snapshot next = snap;
  next.mover = static_cast<int>(peer_index);
  next.received.assign(next.received.size(), false);
  next.sent.assign(next.sent.size(), false);
  PeerConfig& cfg = next.peers[peer_index];

  // --- State updates (snapshot semantics: all rules read `structure`,
  // which reflects the *current* configuration). ---
  data::Instance new_state = cfg.state;
  for (size_t s = 0; s < peer.declared_state_schema().size(); ++s) {
    const std::string& name = peer.declared_state_schema().relation(s).name;
    const spec::Rule* ins = peer.FindRule(spec::RuleKind::kStateInsert, name);
    const spec::Rule* del = peer.FindRule(spec::RuleKind::kStateDelete, name);
    if (ins == nullptr && del == nullptr) continue;  // state unchanged
    data::Relation plus(cfg.state.relation(s).arity());
    data::Relation minus(cfg.state.relation(s).arity());
    if (ins != nullptr) {
      WSV_ASSIGN_OR_RETURN(
          plus,
          evaluator_.EvaluateQuery(ins->body, ins->head_vars, structure));
    }
    if (del != nullptr) {
      WSV_ASSIGN_OR_RETURN(
          minus,
          evaluator_.EvaluateQuery(del->body, del->head_vars, structure));
    }
    // (phi+ and not phi-) or (S and phi+ and phi-) or (S and not phi+ and
    // not phi-)  — conflicting insert+delete is a no-op (Definition 2.4).
    const data::Relation& current = cfg.state.relation(s);
    data::Relation result = plus.Difference(minus);
    result = result.Union(current.Intersection(plus.Intersection(minus)));
    result = result.Union(current.Difference(plus.Union(minus)));
    new_state.SetRelation(s, std::move(result));
  }

  // --- Actions. ---
  data::Instance new_action(&peer.action_schema());
  for (size_t a = 0; a < peer.action_schema().size(); ++a) {
    const std::string& name = peer.action_schema().relation(a).name;
    const spec::Rule* rule = peer.FindRule(spec::RuleKind::kAction, name);
    if (rule == nullptr) continue;
    WSV_ASSIGN_OR_RETURN(
        data::Relation result,
        evaluator_.EvaluateQuery(rule->body, rule->head_vars, structure));
    new_action.SetRelation(a, std::move(result));
  }

  // --- Sends. ---
  std::vector<std::vector<OutgoingMessage>> send_alternatives;
  send_alternatives.emplace_back();  // start with "messages so far" = none
  std::vector<bool> new_errors(peer.out_queues().size(), false);
  for (size_t q = 0; q < peer.out_queues().size(); ++q) {
    const spec::QueueDecl& decl = peer.out_queues()[q];
    const spec::Rule* rule = peer.FindRule(spec::RuleKind::kSend, decl.name);
    if (rule == nullptr) continue;
    WSV_ASSIGN_OR_RETURN(
        data::Relation result,
        evaluator_.EvaluateQuery(rule->body, rule->head_vars, structure));
    size_t channel = wiring.out_channel[q];
    if (decl.kind == spec::QueueKind::kNested) {
      if (result.empty() && options_.skip_empty_nested_sends) continue;
      for (auto& alt : send_alternatives) {
        alt.push_back(OutgoingMessage{channel, decl.kind, result});
      }
    } else {
      if (result.empty()) continue;
      if (result.size() == 1) {
        data::Relation msg(decl.arity());
        msg.Insert(result.tuples()[0]);
        for (auto& alt : send_alternatives) {
          alt.push_back(OutgoingMessage{channel, decl.kind, std::move(msg)});
        }
      } else if (options_.deterministic_flat_sends) {
        // Theorem 3.8 semantics: runtime error, no message.
        new_errors[q] = true;
      } else {
        // Nondeterministically pick one tuple (Definition 2.4).
        std::vector<std::vector<OutgoingMessage>> expanded;
        for (const auto& alt : send_alternatives) {
          for (const data::Tuple& t : result) {
            data::Relation msg(decl.arity());
            msg.Insert(t);
            auto with = alt;
            with.push_back(OutgoingMessage{channel, decl.kind,
                                           std::move(msg)});
            expanded.push_back(std::move(with));
          }
        }
        send_alternatives = std::move(expanded);
      }
    }
  }

  // --- Dequeue consumed in-queues. ---
  for (size_t q = 0; q < peer.in_queues().size(); ++q) {
    if (!wiring.consumes[q]) continue;
    auto& queue = next.channels[wiring.in_channel[q]];
    if (!queue.empty()) queue.erase(queue.begin());
  }

  // --- Previous-input window update (shift the lookback window with the
  // input this transition consumed). ---
  data::Instance new_prev = cfg.prev;
  for (size_t i = 0; i < peer.input_schema().size(); ++i) {
    const std::string& iname = peer.input_schema().relation(i).name;
    if (cfg.input.relation(i).empty()) continue;  // window unchanged
    for (int k = peer.lookback(); k >= 2; --k) {
      new_prev.relation(spec::PrevInputName(iname, k)) =
          new_prev.relation(spec::PrevInputName(iname, k - 1));
    }
    new_prev.relation(spec::PrevInputName(iname, 1)) = cfg.input.relation(i);
  }

  cfg.state = std::move(new_state);
  cfg.input.Clear();  // re-chosen per delivered successor below
  cfg.prev = std::move(new_prev);
  cfg.action = std::move(new_action);
  cfg.send_errors = std::move(new_errors);

  // --- Deliver messages with lossy/bounded branching. ---
  std::vector<Snapshot> delivered;
  for (auto& alt : send_alternatives) {
    DeliverMessages(next, alt, 0, delivered);
  }

  // --- Choose the successor configuration's input (Definition 2.3). ---
  std::vector<Snapshot> successors;
  for (Snapshot& d : delivered) {
    WSV_ASSIGN_OR_RETURN(fo::MapStructure succ_structure,
                         BuildRuleStructure(d, peer_index,
                                            /*include_input=*/false));
    WSV_ASSIGN_OR_RETURN(std::vector<data::Instance> choices,
                         EnumerateInputChoices(peer, succ_structure));
    for (data::Instance& input : choices) {
      Snapshot with_input = d;
      with_input.peers[peer_index].input = std::move(input);
      successors.push_back(std::move(with_input));
    }
  }
  return successors;
}

Result<std::vector<Snapshot>> TransitionGenerator::InitialSnapshots() const {
  // States, previous inputs, actions and queues empty; each peer's input is
  // any options-consistent choice at the empty configuration.
  std::vector<Snapshot> initials{MakeInitialSnapshot(*comp_)};
  for (size_t p = 0; p < comp_->peers().size(); ++p) {
    const spec::Peer& peer = comp_->peers()[p];
    if (peer.input_schema().size() == 0) continue;
    WSV_ASSIGN_OR_RETURN(fo::MapStructure structure,
                         BuildRuleStructure(initials.front(), p,
                                            /*include_input=*/false));
    WSV_ASSIGN_OR_RETURN(std::vector<data::Instance> choices,
                         EnumerateInputChoices(peer, structure));
    if (choices.size() <= 1) continue;  // only the empty input
    std::vector<Snapshot> expanded;
    expanded.reserve(initials.size() * choices.size());
    for (const Snapshot& base : initials) {
      for (const data::Instance& input : choices) {
        Snapshot with_input = base;
        with_input.peers[p].input = input;
        expanded.push_back(std::move(with_input));
      }
    }
    initials = std::move(expanded);
  }
  return initials;
}

std::vector<data::Relation> TransitionGenerator::EnvCandidates(
    size_t channel_index) const {
  const spec::Channel& channel = comp_->channels()[channel_index];
  // The configured finite domain for this channel (Section 5's finite-domain
  // assumption), or every tuple over the evaluation domain.
  std::vector<data::Relation> candidates;
  auto configured = options_.env_message_candidates.find(channel.name);
  if (configured != options_.env_message_candidates.end()) {
    for (const std::vector<std::string>& spelling_row : configured->second) {
      if (spelling_row.size() != channel.arity()) continue;
      std::vector<data::Value> row;
      bool ok = true;
      for (const std::string& spelling : spelling_row) {
        SymbolId v = interner_->Lookup(spelling);
        if (v == kInvalidSymbol) {
          ok = false;  // spelling outside the task's domain: skip
          break;
        }
        row.push_back(v);
      }
      if (!ok) continue;
      data::Relation msg(channel.arity());
      msg.Insert(data::Tuple(std::move(row)));
      candidates.push_back(std::move(msg));
    }
    return candidates;
  }
  if (channel.kind == spec::QueueKind::kFlat ||
      options_.env_nested_max_tuples <= 1) {
    // All single tuples over domain^arity.
    std::vector<size_t> idx(channel.arity(), 0);
    if (!domain_.empty() || channel.arity() == 0) {
      while (true) {
        std::vector<data::Value> row(channel.arity());
        for (size_t i = 0; i < channel.arity(); ++i) {
          row[i] = domain_.values()[idx[i]];
        }
        data::Relation msg(channel.arity());
        msg.Insert(data::Tuple(std::move(row)));
        candidates.push_back(std::move(msg));
        size_t i = 0;
        while (i < idx.size()) {
          if (++idx[i] < domain_.size()) break;
          idx[i] = 0;
          ++i;
        }
        if (i == idx.size()) break;
      }
    }
  }
  return candidates;
}

Result<std::vector<Snapshot>> TransitionGenerator::EnvSuccessors(
    const Snapshot& snap) const {
  std::vector<Snapshot> successors;
  if (!options_.allow_env_moves) return successors;

  // Channels the environment consumes from (peer -> environment) and feeds
  // (environment -> peer).
  std::vector<size_t> env_consume;
  std::vector<size_t> env_feed;
  for (size_t c = 0; c < comp_->channels().size(); ++c) {
    if (comp_->channels()[c].ToEnvironment()) env_consume.push_back(c);
    if (comp_->channels()[c].FromEnvironment()) env_feed.push_back(c);
  }

  Snapshot stutter = snap;
  stutter.mover = kEnvMover;
  stutter.received.assign(stutter.received.size(), false);
  stutter.sent.assign(stutter.sent.size(), false);

  if (options_.env_single_action) {
    // One action per environment move: stutter, consume one head, or feed
    // one message (delivered or dropped) into one queue.
    std::vector<Snapshot> successors{stutter};
    for (size_t c : env_consume) {
      if (snap.channels[c].empty()) continue;
      Snapshot consumed = stutter;
      consumed.channels[c].erase(consumed.channels[c].begin());
      successors.push_back(std::move(consumed));
    }
    for (size_t c : env_feed) {
      const spec::Channel& channel = comp_->channels()[c];
      bool full = stutter.channels[c].size() >= options_.queue_bound;
      bool lossy = ChannelIsLossy(channel.kind);
      for (const data::Relation& msg : EnvCandidates(c)) {
        if (lossy || full) {
          Snapshot dropped = stutter;
          dropped.sent[c] = true;
          successors.push_back(std::move(dropped));
        }
        if (!full) {
          Snapshot fed = stutter;
          fed.sent[c] = true;
          fed.channels[c].push_back(msg);
          fed.received[c] = true;
          successors.push_back(std::move(fed));
        }
      }
    }
    return successors;
  }

  // Definition-faithful multi-queue environment transition: consume any
  // subset of front messages, then feed any combination of messages.
  std::vector<Snapshot> bases;
  {
    size_t combos = static_cast<size_t>(1) << env_consume.size();
    for (size_t mask = 0; mask < combos; ++mask) {
      Snapshot base = stutter;
      for (size_t i = 0; i < env_consume.size(); ++i) {
        if (((mask >> i) & 1) == 0) continue;
        auto& queue = base.channels[env_consume[i]];
        if (!queue.empty()) queue.erase(queue.begin());
      }
      bases.push_back(std::move(base));
    }
  }

  // For each feed channel: nothing, or one message over the candidate set.
  for (size_t c : env_feed) {
    const spec::Channel& channel = comp_->channels()[c];
    std::vector<data::Relation> candidates = EnvCandidates(c);
    std::vector<Snapshot> expanded;
    for (const Snapshot& base : bases) {
      expanded.push_back(base);  // feed nothing
      bool full = base.channels[c].size() >= options_.queue_bound;
      bool lossy = ChannelIsLossy(channel.kind);
      for (const data::Relation& msg : candidates) {
        // "sent but dropped" branch.
        if (lossy || full) {
          Snapshot dropped = base;
          dropped.sent[c] = true;
          expanded.push_back(std::move(dropped));
        }
        if (!full) {
          Snapshot fed = base;
          fed.sent[c] = true;
          fed.channels[c].push_back(msg);
          fed.received[c] = true;
          expanded.push_back(std::move(fed));
        }
      }
    }
    bases = std::move(expanded);
  }
  return bases;
}

Result<std::vector<Snapshot>> TransitionGenerator::Successors(
    const Snapshot& snap) const {
  std::vector<Snapshot> all;
  for (size_t p = 0; p < comp_->peers().size(); ++p) {
    WSV_ASSIGN_OR_RETURN(std::vector<Snapshot> succ,
                         SuccessorsForPeer(snap, p));
    for (Snapshot& s : succ) all.push_back(std::move(s));
  }
  if (options_.allow_env_moves) {
    WSV_ASSIGN_OR_RETURN(std::vector<Snapshot> succ, EnvSuccessors(snap));
    for (Snapshot& s : succ) all.push_back(std::move(s));
  }
  return all;
}

}  // namespace wsv::runtime
