#ifndef WSVERIFY_RUNTIME_SNAPSHOT_H_
#define WSVERIFY_RUNTIME_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "data/instance.h"
#include "data/relation.h"
#include "spec/composition.h"

namespace wsv::runtime {

/// Mover values beyond peer indices.
inline constexpr int kNoMover = -1;   // initial snapshot
inline constexpr int kEnvMover = -2;  // environment transition (Section 5)

/// The per-peer part of a configuration (Definition 2.3), excluding the
/// fixed database (held once per run, not per snapshot) and the queues
/// (held at composition level, since channels are shared between sender and
/// receiver).
struct PeerConfig {
  data::Instance state;   // declared states (queue-states are derived)
  data::Instance input;   // current input; each relation holds <= 1 tuple
  data::Instance prev;    // previous non-empty inputs (lookback window)
  data::Instance action;  // actions performed entering this configuration
  /// error_<Q> flags for deterministic flat sends (Theorem 3.8), aligned
  /// with the peer's out_queues().
  std::vector<bool> send_errors;

  bool operator==(const PeerConfig& other) const;
  size_t Hash() const;
};

/// A snapshot of a run (Definition 2.6): every peer's configuration plus the
/// shared channel contents and bookkeeping for the run propositions
/// (move_<peer>, received_<queue>) and protocol events.
struct Snapshot {
  std::vector<PeerConfig> peers;
  /// channels[c] is the message sequence of composition channel c
  /// (front = index 0 = next message to consume).
  std::vector<std::vector<data::Relation>> channels;
  /// Which peer moved to produce this snapshot (kNoMover / kEnvMover).
  int mover = kNoMover;
  /// received[c]: a new message was enqueued on channel c in the transition
  /// into this snapshot (observer-at-recipient events; received_<Q>).
  std::vector<bool> received;
  /// sent[c]: a send rule emitted a message on channel c in the transition
  /// into this snapshot, whether or not it was enqueued
  /// (observer-at-source events, Theorem 4.3).
  std::vector<bool> sent;

  bool operator==(const Snapshot& other) const;
  size_t Hash() const;

  /// Multi-line rendering (for counterexample traces).
  std::string ToString(const spec::Composition& comp,
                       const Interner& interner) const;
};

struct SnapshotHash {
  size_t operator()(const Snapshot& s) const { return s.Hash(); }
};

/// Builds the initial snapshot: empty states, inputs, actions and queues
/// (Definition 2.6). `comp` must be validated.
Snapshot MakeInitialSnapshot(const spec::Composition& comp);

}  // namespace wsv::runtime

#endif  // WSVERIFY_RUNTIME_SNAPSHOT_H_
