#ifndef WSVERIFY_RUNTIME_FLAT_SNAPSHOT_H_
#define WSVERIFY_RUNTIME_FLAT_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "runtime/snapshot.h"
#include "spec/composition.h"

namespace wsv::runtime {

/// A canonical flat encoding of a (normalized) Snapshot: one contiguous
/// uint32 span. Because relations keep their tuples sorted and unique and
/// the layout below is prefix-decodable, the encoding is injective — two
/// snapshots of the same composition are equal exactly when their spans are
/// word-for-word equal. That turns the intern hot path into one hash pass
/// plus one memcmp, with no per-member traversal of the
/// vector<vector<Relation>>-of-Tuple object graph.
///
/// Layout (all words uint32):
///   [0]              mover + 2 (kEnvMover maps to 0, kNoMover to 1)
///   [1..f]           received/sent/send_errors event bits, packed 32/word
///                    in that order, peers' send_errors in peer order
///   then, per peer, per state/input/prev/action relation in schema order:
///                    [tuple_count, values...] (tuples sorted, arity fixed)
///   then, per channel:
///                    [message_count, per message [tuple_count, values...]]
struct FlatSnapshot {
  const uint32_t* data = nullptr;
  uint32_t size = 0;  // in words

  friend bool operator==(const FlatSnapshot& a, const FlatSnapshot& b) {
    return a.size == b.size &&
           (a.size == 0 ||
            std::memcmp(a.data, b.data, a.size * sizeof(uint32_t)) == 0);
  }
};

/// One-pass FNV-1a over the span words. Ids assigned by SnapshotGraph do
/// not depend on hash values (interning is ordered by frontier position),
/// so this hash does not need to match runtime::SnapshotHash.
inline size_t HashFlatSnapshot(const uint32_t* data, size_t words) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < words; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  // Final avalanche: FNV's low bits are weak and the intern table is
  // power-of-two masked.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h);
}

/// Encoder/decoder for one composition's snapshots. The codec captures the
/// fixed shape (peer schemas, queue wiring, channel count) once, so
/// encoding is a single append pass and decoding rebuilds structure without
/// schema lookups. `comp` must be validated and outlive the codec.
class FlatSnapshotCodec {
 public:
  explicit FlatSnapshotCodec(const spec::Composition* comp);

  const spec::Composition& composition() const { return *comp_; }

  /// Serializes `snap` into `out` (cleared first). The buffer is reusable
  /// across calls — the intern loop encodes ~16x more candidates than it
  /// keeps, so candidates must not allocate.
  void Encode(const Snapshot& snap, std::vector<uint32_t>* out) const;

  /// Rebuilds a Snapshot from a span produced by Encode. `out` is
  /// overwritten in place, reusing its relation storage where possible;
  /// pass the same scratch snapshot across calls to avoid reallocation.
  /// `out` must either be default-constructed or a previous Decode/
  /// MakeInitialSnapshot result for the same composition.
  void Decode(FlatSnapshot flat, Snapshot* out) const;

  /// Convenience: decode into a fresh Snapshot.
  Snapshot Decode(FlatSnapshot flat) const {
    Snapshot snap = MakeInitialSnapshot(*comp_);
    Decode(flat, &snap);
    return snap;
  }

  /// Number of event-bit words in the header (received + sent +
  /// send_errors packed together).
  size_t event_words() const { return event_words_; }

 private:
  const spec::Composition* comp_;
  /// Arity per (peer, part, relation), flattened in encode order.
  std::vector<uint32_t> part_arities_;
  /// Arity per channel.
  std::vector<uint32_t> channel_arities_;
  /// send_errors lengths per peer (out_queues count).
  std::vector<uint32_t> send_error_counts_;
  size_t event_bits_ = 0;
  size_t event_words_ = 0;
};

}  // namespace wsv::runtime

#endif  // WSVERIFY_RUNTIME_FLAT_SNAPSHOT_H_
