#ifndef WSVERIFY_RUNTIME_SNAPSHOT_VIEW_H_
#define WSVERIFY_RUNTIME_SNAPSHOT_VIEW_H_

#include <vector>

#include "data/instance.h"
#include "data/value.h"
#include "fo/structure.h"
#include "runtime/flat_snapshot.h"
#include "runtime/snapshot.h"
#include "spec/composition.h"

namespace wsv::runtime {

/// Builds the relational structure over which composition-level LTL-FO
/// properties are evaluated at a snapshot (Section 3, "Semantics of LTL-FO
/// Properties"):
///
///  * every peer relation under "Peer.name" (database, state, input,
///    previous input, action);
///  * in-queue symbols as f(q) — the first message — under
///    "<receiver>.<queue>", and out-queue symbols as l(q) — the most
///    recently enqueued message — under "<sender>.<queue>";
///  * environment-facing queues under "env.<queue>" (f(q) for queues the
///    environment consumes, l(q) for queues it feeds — Section 5);
///  * queue-state propositions "Peer.empty_<queue>";
///  * run propositions "move_<peer>", "move_env", "received_<queue>",
///    "sent_<queue>".
fo::MapStructure BuildPropertyStructure(
    const spec::Composition& comp,
    const std::vector<data::Instance>& databases, const Snapshot& snap,
    const data::Domain& domain);

/// As above, but from a canonical flat encoding: decodes into a local
/// scratch snapshot and builds the same structure. Thread-safe (no shared
/// mutable state), so parallel leaf evaluation can call it concurrently on
/// arena-backed spans.
fo::MapStructure BuildPropertyStructure(
    const spec::Composition& comp,
    const std::vector<data::Instance>& databases,
    const FlatSnapshotCodec& codec, FlatSnapshot flat,
    const data::Domain& domain);

}  // namespace wsv::runtime

#endif  // WSVERIFY_RUNTIME_SNAPSHOT_VIEW_H_
