#include "runtime/snapshot.h"

#include "common/hash.h"

namespace wsv::runtime {

bool PeerConfig::operator==(const PeerConfig& other) const {
  return state == other.state && input == other.input && prev == other.prev &&
         action == other.action && send_errors == other.send_errors;
}

size_t PeerConfig::Hash() const {
  size_t seed = 0x9e377ULL;
  HashCombine(seed, state.Hash());
  HashCombine(seed, input.Hash());
  HashCombine(seed, prev.Hash());
  HashCombine(seed, action.Hash());
  for (bool b : send_errors) HashCombine(seed, b ? 2 : 1);
  return seed;
}

bool Snapshot::operator==(const Snapshot& other) const {
  return mover == other.mover && received == other.received &&
         sent == other.sent && peers == other.peers &&
         channels == other.channels;
}

size_t Snapshot::Hash() const {
  size_t seed = 0x5eedULL + static_cast<size_t>(mover + 3);
  for (const PeerConfig& p : peers) HashCombine(seed, p.Hash());
  for (const auto& queue : channels) {
    HashCombine(seed, queue.size());
    for (const data::Relation& msg : queue) HashCombine(seed, msg.Hash());
  }
  for (bool b : received) HashCombine(seed, b ? 2 : 1);
  for (bool b : sent) HashCombine(seed, b ? 2 : 1);
  return seed;
}

std::string Snapshot::ToString(const spec::Composition& comp,
                               const Interner& interner) const {
  std::string out;
  if (mover == kNoMover) {
    out += "[initial]\n";
  } else if (mover == kEnvMover) {
    out += "[environment moved]\n";
  } else {
    out += "[" + comp.peers()[mover].name() + " moved]\n";
  }
  for (size_t i = 0; i < peers.size(); ++i) {
    const spec::Peer& spec_peer = comp.peers()[i];
    const PeerConfig& cfg = peers[i];
    std::string body;
    auto append = [&](const char* tag, const data::Instance& inst) {
      std::string s = inst.ToString(interner);
      if (!s.empty()) {
        body += "    " + std::string(tag) + ": ";
        // Indent continuation lines.
        for (char c : s) {
          body += c;
          if (c == '\n') body += "    ";
        }
        if (!body.empty() && body.back() != '\n') body += "\n";
      }
    };
    append("state", cfg.state);
    append("input", cfg.input);
    append("prev", cfg.prev);
    append("action", cfg.action);
    if (!body.empty()) {
      out += "  " + spec_peer.name() + ":\n" + body;
    }
  }
  for (size_t c = 0; c < channels.size(); ++c) {
    if (channels[c].empty()) continue;
    out += "  queue " + comp.channels()[c].name + ": ";
    for (size_t m = 0; m < channels[c].size(); ++m) {
      if (m > 0) out += " | ";
      out += channels[c][m].ToString(interner);
    }
    out += "\n";
  }
  return out;
}

Snapshot MakeInitialSnapshot(const spec::Composition& comp) {
  Snapshot snap;
  snap.peers.reserve(comp.peers().size());
  for (const spec::Peer& peer : comp.peers()) {
    PeerConfig cfg;
    cfg.state = data::Instance(&peer.declared_state_schema());
    cfg.input = data::Instance(&peer.input_schema());
    cfg.prev = data::Instance(&peer.prev_input_schema());
    cfg.action = data::Instance(&peer.action_schema());
    cfg.send_errors.assign(peer.out_queues().size(), false);
    snap.peers.push_back(std::move(cfg));
  }
  snap.channels.assign(comp.channels().size(), {});
  snap.received.assign(comp.channels().size(), false);
  snap.sent.assign(comp.channels().size(), false);
  snap.mover = kNoMover;
  return snap;
}

}  // namespace wsv::runtime
