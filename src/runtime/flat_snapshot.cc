#include "runtime/flat_snapshot.h"

#include <cassert>

#include "data/schema.h"

namespace wsv::runtime {

namespace {

/// The four per-peer instance parts, in encode order.
const data::Schema& PartSchema(const spec::Peer& peer, size_t part) {
  switch (part) {
    case 0:
      return peer.declared_state_schema();
    case 1:
      return peer.input_schema();
    case 2:
      return peer.prev_input_schema();
    default:
      return peer.action_schema();
  }
}

const data::Instance& PartInstance(const PeerConfig& cfg, size_t part) {
  switch (part) {
    case 0:
      return cfg.state;
    case 1:
      return cfg.input;
    case 2:
      return cfg.prev;
    default:
      return cfg.action;
  }
}

data::Instance& PartInstance(PeerConfig& cfg, size_t part) {
  switch (part) {
    case 0:
      return cfg.state;
    case 1:
      return cfg.input;
    case 2:
      return cfg.prev;
    default:
      return cfg.action;
  }
}

void AppendRelation(const data::Relation& rel, std::vector<uint32_t>* out) {
  out->push_back(static_cast<uint32_t>(rel.size()));
  for (const data::Tuple& t : rel.tuples()) {
    for (data::Value v : t) out->push_back(v);
  }
}

}  // namespace

FlatSnapshotCodec::FlatSnapshotCodec(const spec::Composition* comp)
    : comp_(comp) {
  for (const spec::Peer& peer : comp_->peers()) {
    for (size_t part = 0; part < 4; ++part) {
      const data::Schema& schema = PartSchema(peer, part);
      for (size_t r = 0; r < schema.size(); ++r) {
        part_arities_.push_back(
            static_cast<uint32_t>(schema.relation(r).arity()));
      }
    }
    send_error_counts_.push_back(
        static_cast<uint32_t>(peer.out_queues().size()));
  }
  for (const spec::Channel& channel : comp_->channels()) {
    channel_arities_.push_back(static_cast<uint32_t>(channel.arity()));
  }
  event_bits_ = 2 * channel_arities_.size();  // received + sent
  for (uint32_t n : send_error_counts_) event_bits_ += n;
  event_words_ = (event_bits_ + 31) / 32;
}

void FlatSnapshotCodec::Encode(const Snapshot& snap,
                               std::vector<uint32_t>* out) const {
  out->clear();
  out->push_back(static_cast<uint32_t>(snap.mover + 2));

  // Event bits: received, sent, then every peer's send_errors.
  size_t bit = 0;
  size_t base = out->size();
  out->resize(base + event_words_, 0);
  auto push_bit = [&](bool value) {
    if (value) (*out)[base + bit / 32] |= 1u << (bit % 32);
    ++bit;
  };
  for (bool b : snap.received) push_bit(b);
  for (bool b : snap.sent) push_bit(b);
  for (const PeerConfig& cfg : snap.peers) {
    for (bool b : cfg.send_errors) push_bit(b);
  }
  assert(bit == event_bits_ && "snapshot shape does not match composition");

  for (const PeerConfig& cfg : snap.peers) {
    for (size_t part = 0; part < 4; ++part) {
      const data::Instance& inst = PartInstance(cfg, part);
      for (size_t r = 0; r < inst.size(); ++r) {
        AppendRelation(inst.relation(r), out);
      }
    }
  }
  for (const auto& queue : snap.channels) {
    out->push_back(static_cast<uint32_t>(queue.size()));
    for (const data::Relation& msg : queue) AppendRelation(msg, out);
  }
}

void FlatSnapshotCodec::Decode(FlatSnapshot flat, Snapshot* out) const {
  const uint32_t* p = flat.data;
  [[maybe_unused]] const uint32_t* end = flat.data + flat.size;
  out->mover = static_cast<int>(*p++) - 2;

  const uint32_t* events = p;
  p += event_words_;
  size_t bit = 0;
  auto read_bit = [&]() {
    bool value = (events[bit / 32] >> (bit % 32)) & 1u;
    ++bit;
    return value;
  };

  size_t num_channels = channel_arities_.size();
  out->received.resize(num_channels);
  out->sent.resize(num_channels);
  for (size_t c = 0; c < num_channels; ++c) out->received[c] = read_bit();
  for (size_t c = 0; c < num_channels; ++c) out->sent[c] = read_bit();

  const auto& peers = comp_->peers();
  out->peers.resize(peers.size());
  for (size_t i = 0; i < peers.size(); ++i) {
    PeerConfig& cfg = out->peers[i];
    cfg.send_errors.resize(send_error_counts_[i]);
    for (size_t q = 0; q < send_error_counts_[i]; ++q) {
      cfg.send_errors[q] = read_bit();
    }
  }

  auto read_tuples = [&](uint32_t arity) {
    uint32_t count = *p++;
    std::vector<data::Tuple> tuples;
    tuples.reserve(count);
    for (uint32_t t = 0; t < count; ++t) {
      tuples.emplace_back(p, arity);
      p += arity;
    }
    return tuples;
  };

  size_t flat_rel = 0;
  for (size_t i = 0; i < peers.size(); ++i) {
    PeerConfig& cfg = out->peers[i];
    for (size_t part = 0; part < 4; ++part) {
      const data::Schema& schema = PartSchema(peers[i], part);
      data::Instance& inst = PartInstance(cfg, part);
      if (inst.schema() != &schema) inst = data::Instance(&schema);
      for (size_t r = 0; r < schema.size(); ++r, ++flat_rel) {
        inst.relation(r).AssignSorted(read_tuples(part_arities_[flat_rel]));
      }
    }
  }

  out->channels.resize(num_channels);
  for (size_t c = 0; c < num_channels; ++c) {
    uint32_t arity = channel_arities_[c];
    uint32_t messages = *p++;
    auto& queue = out->channels[c];
    queue.clear();
    queue.reserve(messages);
    for (uint32_t m = 0; m < messages; ++m) {
      data::Relation msg(arity);
      msg.AssignSorted(read_tuples(arity));
      queue.push_back(std::move(msg));
    }
  }
  assert(p == end && "flat snapshot span length mismatch");
}

}  // namespace wsv::runtime
