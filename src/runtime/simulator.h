#ifndef WSVERIFY_RUNTIME_SIMULATOR_H_
#define WSVERIFY_RUNTIME_SIMULATOR_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "runtime/transition.h"

namespace wsv::runtime {

/// Executes concrete runs of a composition over given databases: at each
/// step a random legal successor (random mover, random input choice, random
/// message fate) is taken. Used by the example programs to exercise
/// specifications end-to-end, and by tests as a differential oracle against
/// the verifier's reachability.
class Simulator {
 public:
  /// `comp` and `interner` must outlive the simulator; `databases` aligns
  /// with comp.peers(). The evaluation domain is the active domain of the
  /// databases plus all specification constants.
  Simulator(const spec::Composition* comp,
            std::vector<data::Instance> databases, const Interner* interner,
            RunOptions options, uint64_t seed = 42);

  const Snapshot& current() const { return current_; }
  const TransitionGenerator& generator() const { return generator_; }

  /// Takes one random step; returns the number of successor choices that
  /// were available (0 means deadlock, current() unchanged — note that per
  /// Definition 2.4 a peer can always move, so 0 only occurs on internal
  /// error).
  Result<size_t> Step();

  /// Runs `steps` steps, recording each snapshot (including the initial one
  /// on the first call).
  Result<std::vector<Snapshot>> Run(size_t steps);

  /// Resets to the initial snapshot.
  void Reset();

 private:
  static data::Domain ComputeDomain(
      const spec::Composition& comp,
      const std::vector<data::Instance>& databases, const Interner* interner);

  TransitionGenerator generator_;
  Snapshot current_;
  std::mt19937_64 rng_;
};

}  // namespace wsv::runtime

#endif  // WSVERIFY_RUNTIME_SIMULATOR_H_
