#include "runtime/snapshot_view.h"

namespace wsv::runtime {

namespace {

data::Relation PropRelation(bool value) {
  data::Relation r(0);
  if (value) r.Insert(data::Tuple{});
  return r;
}

void AddInstance(fo::MapStructure& structure, const std::string& prefix,
                 const data::Instance& inst) {
  for (size_t i = 0; i < inst.schema()->size(); ++i) {
    structure.Set(prefix + inst.schema()->relation(i).name, inst.relation(i));
  }
}

}  // namespace

fo::MapStructure BuildPropertyStructure(
    const spec::Composition& comp,
    const std::vector<data::Instance>& databases, const Snapshot& snap,
    const data::Domain& domain) {
  fo::MapStructure structure;
  structure.SetDomain(domain);

  // Single-peer compositions also expose unqualified names (matching
  // Composition::Classify's resolution rule).
  bool single_peer = comp.peers().size() == 1;
  for (size_t p = 0; p < comp.peers().size(); ++p) {
    const spec::Peer& peer = comp.peers()[p];
    const PeerConfig& cfg = snap.peers[p];
    const std::string prefix = peer.name() + ".";
    for (const std::string& pfx :
         single_peer ? std::vector<std::string>{prefix, ""}
                     : std::vector<std::string>{prefix}) {
      AddInstance(structure, pfx, databases[p]);
      AddInstance(structure, pfx, cfg.state);
      AddInstance(structure, pfx, cfg.input);
      AddInstance(structure, pfx, cfg.prev);
      AddInstance(structure, pfx, cfg.action);
    }
    structure.Set(spec::Composition::MovePropName(peer.name()),
                  PropRelation(snap.mover == static_cast<int>(p)));
    if (!peer.out_queues().empty()) {
      for (size_t q = 0; q < peer.out_queues().size(); ++q) {
        structure.Set(prefix + "error_" + peer.out_queues()[q].name,
                      PropRelation(q < cfg.send_errors.size() &&
                                   cfg.send_errors[q]));
      }
    }
  }
  structure.Set(spec::Composition::EnvMovePropName(),
                PropRelation(snap.mover == kEnvMover));

  for (size_t c = 0; c < comp.channels().size(); ++c) {
    const spec::Channel& channel = comp.channels()[c];
    const auto& queue = snap.channels[c];
    data::Relation first = queue.empty() ? data::Relation(channel.arity())
                                         : queue.front();
    data::Relation last = queue.empty() ? data::Relation(channel.arity())
                                        : queue.back();
    if (channel.receiver != spec::Channel::kEnvironment) {
      const std::string& rname = comp.peers()[channel.receiver].name();
      structure.Set(rname + "." + channel.name, first);
      structure.Set(rname + "." + spec::QueueEmptyStateName(channel.name),
                    PropRelation(queue.empty()));
    } else {
      structure.Set("env." + channel.name, first);
    }
    if (channel.sender != spec::Channel::kEnvironment) {
      const std::string& sname = comp.peers()[channel.sender].name();
      structure.Set(sname + "." + channel.name, last);
    } else {
      structure.Set("env." + channel.name, last);
    }
    structure.Set(spec::Composition::ReceivedPropName(channel.name),
                  PropRelation(snap.received[c]));
    structure.Set("sent_" + channel.name, PropRelation(snap.sent[c]));
  }
  return structure;
}

fo::MapStructure BuildPropertyStructure(
    const spec::Composition& comp,
    const std::vector<data::Instance>& databases,
    const FlatSnapshotCodec& codec, FlatSnapshot flat,
    const data::Domain& domain) {
  Snapshot snap;
  codec.Decode(flat, &snap);
  return BuildPropertyStructure(comp, databases, snap, domain);
}

}  // namespace wsv::runtime
