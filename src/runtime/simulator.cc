#include "runtime/simulator.h"

#include "obs/metrics.h"

namespace wsv::runtime {

data::Domain Simulator::ComputeDomain(
    const spec::Composition& comp,
    const std::vector<data::Instance>& databases, const Interner* interner) {
  data::Domain domain;
  for (const data::Instance& db : databases) {
    db.CollectActiveDomain(domain);
  }
  for (const std::string& c : comp.Constants()) {
    SymbolId id = interner->Lookup(c);
    if (id != kInvalidSymbol) domain.Add(id);
  }
  return domain;
}

Simulator::Simulator(const spec::Composition* comp,
                     std::vector<data::Instance> databases,
                     const Interner* interner, RunOptions options,
                     uint64_t seed)
    : generator_(comp, databases, ComputeDomain(*comp, databases, interner),
                 interner, options),
      current_(MakeInitialSnapshot(*comp)),
      rng_(seed) {
  Reset();
}

Result<size_t> Simulator::Step() {
  WSV_ASSIGN_OR_RETURN(std::vector<Snapshot> successors,
                       generator_.Successors(current_));
  obs::Registry& registry = obs::Registry::Global();
  static obs::Counter& steps = registry.counter("sim.steps");
  static obs::Histogram& branching = registry.histogram("sim.branching");
  steps.Add(1);
  branching.Record(successors.size());
  if (successors.empty()) return static_cast<size_t>(0);
  std::uniform_int_distribution<size_t> pick(0, successors.size() - 1);
  current_ = std::move(successors[pick(rng_)]);
  return successors.size();
}

Result<std::vector<Snapshot>> Simulator::Run(size_t steps) {
  std::vector<Snapshot> trace{current_};
  for (size_t i = 0; i < steps; ++i) {
    WSV_ASSIGN_OR_RETURN(size_t choices, Step());
    if (choices == 0) break;
    trace.push_back(current_);
  }
  return trace;
}

void Simulator::Reset() {
  // Pick a random options-consistent initial snapshot (Definition 2.6).
  Result<std::vector<Snapshot>> initials = generator_.InitialSnapshots();
  if (initials.ok() && !initials->empty()) {
    std::uniform_int_distribution<size_t> pick(0, initials->size() - 1);
    current_ = std::move((*initials)[pick(rng_)]);
  } else {
    current_ = MakeInitialSnapshot(generator_.composition());
  }
}

}  // namespace wsv::runtime
