#ifndef WSVERIFY_FO_BDD_H_
#define WSVERIFY_FO_BDD_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash.h"

namespace wsv::fo::bdd {

/// A node reference. 0 and 1 are the terminals kFalse / kTrue; every other
/// id names a hash-consed decision node owned by the Manager that created
/// it. Ids are never recycled, so a NodeRef stays valid for the Manager's
/// lifetime (or until Clear()).
using NodeRef = uint32_t;

inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

/// A reduced ordered *mixed-radix* decision diagram manager: the symbolic
/// backend of the valuation fan-out. There is one decision variable per
/// closure-variable position of the `ValuationSpace`, each ranging over the
/// full domain (`radix` = |domain|), so a path from the root to kTrue is a
/// partial mixed-radix index and a diagram denotes a set of valuation
/// indices.
///
/// Variable order is MOST-significant digit first: level 0 (tested at the
/// root) is closure position `num_vars - 1`, the most significant digit of
/// `index = sum_i digit_i * radix^i`. With that order the lexicographically
/// least member of a set — the deterministic witness the engine must report
/// — is a single greedy descent (MinIndex).
///
/// Nodes are hash-consed through a FlatIdSet over an Arena (the same
/// flat-table design as the snapshot interner), so structural equality is
/// pointer equality and the usual ROBDD reductions apply: a node whose
/// children are all equal is collapsed to that child, and no two live nodes
/// have the same (level, children) signature. Binary operations go through
/// a memoized apply; `bdd.nodes` counts unique nodes ever consed and
/// `bdd.cache_hits` counts apply-cache hits.
///
/// Not thread-safe: the engine builds and queries diagrams from the
/// partition phase only (single-threaded, before the class fan-out).
class Manager {
 public:
  /// `num_vars` closure positions, each with `radix` possible digits.
  /// radix == 0 is only legal with num_vars == 0 (the space of the single
  /// empty valuation).
  Manager(size_t num_vars, size_t radix);

  size_t num_vars() const { return num_vars_; }
  size_t radix() const { return radix_; }
  /// Unique decision nodes consed so far (terminals excluded).
  size_t node_count() const { return node_count_; }
  /// Apply-cache hits so far (the memoization win of hash-consing).
  size_t cache_hits() const { return cache_hits_; }

  /// The decision node at `level` whose children are `kids` (size radix),
  /// reduced and hash-consed. Children must be terminals or nodes at a
  /// deeper level.
  NodeRef MakeNode(size_t level, const NodeRef* kids);

  /// digit(position) == value, as a one-level diagram.
  NodeRef Literal(size_t position, uint32_t value);

  /// The conjunction "digit(positions[k]) == digits[k] for all k" — one
  /// valuation-row cube. Positions must be distinct; order is free.
  NodeRef Cube(const std::vector<size_t>& positions,
               const std::vector<uint32_t>& digits);

  NodeRef And(NodeRef a, NodeRef b);
  NodeRef Or(NodeRef a, NodeRef b);
  NodeRef Not(NodeRef a);

  /// The set of indices in [lo, hi), as a diagram over all variables.
  NodeRef Interval(size_t lo, size_t hi);

  /// Number of satisfying full assignments (= valuation indices) of `a`.
  /// Saturates at SIZE_MAX.
  size_t SatCount(NodeRef a);

  /// The least index (mixed-radix value of the digit assignment) satisfying
  /// `a`; undefined for kFalse (callers must check). Unconstrained levels
  /// take digit 0.
  size_t MinIndex(NodeRef a) const;

  /// Invokes `fn(index)` for every satisfying index of `a`, in increasing
  /// order. Expands unconstrained levels over the whole radix — intended
  /// for tests over small spaces, not production sweeps.
  void ForEachIndex(NodeRef a, const std::function<void(size_t)>& fn) const;

  /// Drops every node and cache entry (terminals survive). Outstanding
  /// NodeRefs become invalid.
  void Clear();

 private:
  struct NodeView {
    size_t level;
    const NodeRef* kids;
  };

  NodeView View(NodeRef n) const;
  size_t LevelOf(NodeRef n) const;
  NodeRef Apply(uint32_t op, NodeRef a, NodeRef b);
  NodeRef ApplyTerminal(uint32_t op, NodeRef a, NodeRef b) const;
  size_t PowRadix(size_t exp) const;
  void EnumerateFrom(NodeRef n, size_t level, size_t prefix_index,
                     const std::function<void(size_t)>& fn) const;

  size_t num_vars_;
  size_t radix_;

  /// Node storage: nodes_[id - 2] points at (radix + 1) arena words:
  /// [level, kid_0, ..., kid_{radix-1}].
  std::vector<const uint32_t*> nodes_;
  Arena arena_;
  FlatIdSet unique_;
  size_t node_count_ = 0;

  /// Apply cache: (op, a, b) -> result. Cleared with the manager.
  std::unordered_map<uint64_t, NodeRef> apply_cache_;
  /// SatCount memo: node -> count of assignments below its level.
  std::unordered_map<NodeRef, size_t> count_cache_;
  size_t cache_hits_ = 0;
};

}  // namespace wsv::fo::bdd

#endif  // WSVERIFY_FO_BDD_H_
