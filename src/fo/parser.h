#ifndef WSVERIFY_FO_PARSER_H_
#define WSVERIFY_FO_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "fo/formula.h"
#include "fo/lexer.h"

namespace wsv::fo {

/// Strips queue sigils from a (possibly qualified) relation name:
/// "?apply" -> "apply", "Officer.!rating" -> "Officer.rating".
///
/// Sigils are display sugar from the paper (?R = in-queue, !R = out-queue);
/// relation-symbol sets are disjoint within a peer (Definition 2.1) and
/// qualified by peer name at composition level, so the bare name is
/// unambiguous.
std::string NormalizeRelationName(std::string_view name);

/// Parses a complete FO formula from `source`.
///
/// Grammar (precedence from loosest): implication (right-assoc) < or < and <
/// not/quantifier < primary. Quantifier bodies extend as far right as
/// possible: `exists x, y: p(x) and q(y)` binds both conjuncts. Terms:
/// identifiers are variables; quoted strings and numbers are constants.
Result<FormulaPtr> ParseFormula(std::string_view source);

/// Parses one FO formula starting at `cursor` (used by the LTL-FO and spec
/// parsers to embed FO subformulas). Stops at the first token that cannot
/// continue the formula.
Result<FormulaPtr> ParseFormulaAt(TokenCursor& cursor);

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_PARSER_H_
