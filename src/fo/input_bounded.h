#ifndef WSVERIFY_FO_INPUT_BOUNDED_H_
#define WSVERIFY_FO_INPUT_BOUNDED_H_

#include "common/status.h"
#include "fo/classify.h"
#include "fo/formula.h"

namespace wsv::fo {

/// Options for the input-boundedness analysis.
struct InputBoundedOptions {
  /// Whether database atoms may serve as quantification guards in addition
  /// to the guard classes of Section 3.1 (inputs, previous inputs, flat
  /// in/out queues).
  ///
  /// The paper's formation rule lists only I, PrevI, Qf_in, Qf_out, but its
  /// own Example 2.2 (asserted input-bounded in Example 3.3) quantifies ssn
  /// through the database atom customer(id, ssn, name) in rules (3), (4) and
  /// (8). Since the database is fixed throughout a run and the pseudo-domain
  /// construction bounds its active domain, database guards preserve the
  /// finite-model argument; we accept them by default and expose this switch
  /// for the strict reading.
  bool allow_database_guards = true;
};

/// Checks that `formula` is an input-bounded FO formula (Section 3.1):
/// every quantifier occurrence has the shape
///     exists x̄: (guards and phi)    or    forall x̄: (guards -> phi)
/// where the guards are a conjunction of atoms over the guard classes such
/// that every bound variable occurs in some guard atom, and no bound
/// variable occurs in any state, action, or nested in-queue atom in the
/// quantifier body.
///
/// Returns kUndecidableRegime with an explanatory message on violation.
Status CheckInputBounded(const FormulaPtr& formula,
                         const SymbolClassifier& classifier,
                         const InputBoundedOptions& options = {});

/// Checks the condition for input rules and flat-queue send rules
/// (Section 3.1, condition 2): the formula is existential (no universal
/// quantifiers, no implications hiding them... implications are permitted as
/// plain boolean combinations since ∃*FO matrices are closed under boolean
/// operations on atoms) and every state or nested-queue atom is ground.
Status CheckExistentialGroundRule(const FormulaPtr& formula,
                                  const SymbolClassifier& classifier);

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_INPUT_BOUNDED_H_
