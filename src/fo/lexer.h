#ifndef WSVERIFY_FO_LEXER_H_
#define WSVERIFY_FO_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wsv::fo {

/// Token kinds shared by the FO, LTL-FO and specification-DSL parsers.
enum class TokenKind {
  kIdent,     // customer, Officer.customer, ?apply, !getRating
  kString,    // "excellent" (a constant)
  kNumber,    // 42 (an uninterpreted constant)
  kLParen,    // (
  kRParen,    // )
  kLBrace,    // {
  kRBrace,    // }
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kSemicolon, // ;
  kColon,     // :
  kColonDash, // :-
  kEquals,    // =
  kNotEquals, // !=
  kArrow,     // ->
  kEnd,       // end of input
};

/// Returns a printable name for a token kind (for diagnostics).
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

/// Tokenizes `source`. Identifiers may start with `?` or `!` (queue sigils)
/// and may contain `.` separators for peer qualification. `//` and `#` start
/// line comments.
Result<std::vector<Token>> Tokenize(std::string_view source);

/// A cursor over a token stream with the helpers recursive-descent parsers
/// need. Parsers for FO, LTL-FO and the spec DSL all drive one of these.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t lookahead = 0) const;
  const Token& Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// True (and advances) iff the current token has the given kind.
  bool TryConsume(TokenKind kind);
  /// True (and advances) iff the current token is the identifier `word`.
  bool TryConsumeIdent(std::string_view word);

  /// Consumes a token of `kind` or returns a parse error mentioning
  /// `context`.
  Result<Token> Expect(TokenKind kind, std::string_view context);
  /// Consumes the exact identifier `word` or errors.
  Status ExpectIdent(std::string_view word, std::string_view context);

  /// Builds a parse error anchored at the current token.
  Status ErrorHere(std::string message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_LEXER_H_
