#include "fo/formula.h"

#include <algorithm>
#include <cassert>

namespace wsv::fo {

FormulaPtr MakeNode(FormulaKind kind, std::string relation,
                    std::vector<Term> terms, std::vector<FormulaPtr> children,
                    std::vector<std::string> vars) {
  auto node = std::shared_ptr<Formula>(new Formula());
  node->kind_ = kind;
  node->relation_ = std::move(relation);
  node->terms_ = std::move(terms);
  node->children_ = std::move(children);
  node->vars_ = std::move(vars);
  return node;
}

FormulaPtr Formula::True() { return MakeNode(FormulaKind::kTrue, "", {}, {}, {}); }

FormulaPtr Formula::False() {
  return MakeNode(FormulaKind::kFalse, "", {}, {}, {});
}

FormulaPtr Formula::Atom(std::string relation, std::vector<Term> terms) {
  return MakeNode(FormulaKind::kAtom, std::move(relation), std::move(terms),
                  {}, {});
}

FormulaPtr Formula::Equality(Term lhs, Term rhs) {
  return MakeNode(FormulaKind::kEquality, "", {std::move(lhs), std::move(rhs)},
                  {}, {});
}

FormulaPtr Formula::Not(FormulaPtr f) {
  return MakeNode(FormulaKind::kNot, "", {}, {std::move(f)}, {});
}

FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  return MakeNode(FormulaKind::kAnd, "", {}, {std::move(a), std::move(b)}, {});
}

FormulaPtr Formula::And(std::vector<FormulaPtr> fs) {
  assert(!fs.empty());
  if (fs.size() == 1) return fs[0];
  return MakeNode(FormulaKind::kAnd, "", {}, std::move(fs), {});
}

FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  return MakeNode(FormulaKind::kOr, "", {}, {std::move(a), std::move(b)}, {});
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> fs) {
  assert(!fs.empty());
  if (fs.size() == 1) return fs[0];
  return MakeNode(FormulaKind::kOr, "", {}, std::move(fs), {});
}

FormulaPtr Formula::Implies(FormulaPtr a, FormulaPtr b) {
  return MakeNode(FormulaKind::kImplies, "", {},
                  {std::move(a), std::move(b)}, {});
}

FormulaPtr Formula::Exists(std::vector<std::string> vars, FormulaPtr body) {
  return MakeNode(FormulaKind::kExists, "", {}, {std::move(body)},
                  std::move(vars));
}

FormulaPtr Formula::Forall(std::vector<std::string> vars, FormulaPtr body) {
  return MakeNode(FormulaKind::kForall, "", {}, {std::move(body)},
                  std::move(vars));
}

namespace {

void CollectFreeVariables(const Formula& f, std::set<std::string>& bound,
                          std::set<std::string>& out) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kAtom:
    case FormulaKind::kEquality:
      for (const Term& t : f.terms()) {
        if (t.is_variable() && bound.count(t.text) == 0) out.insert(t.text);
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::vector<std::string> added;
      for (const std::string& v : f.bound_variables()) {
        if (bound.insert(v).second) added.push_back(v);
      }
      CollectFreeVariables(*f.body(), bound, out);
      for (const std::string& v : added) bound.erase(v);
      return;
    }
    default:
      for (const FormulaPtr& c : f.children()) {
        CollectFreeVariables(*c, bound, out);
      }
      return;
  }
}

void CollectConstants(const Formula& f, std::set<std::string>& out) {
  for (const Term& t : f.terms()) {
    if (t.is_constant()) out.insert(t.text);
  }
  for (const FormulaPtr& c : f.children()) CollectConstants(*c, out);
}

void CollectRelations(const Formula& f, std::set<std::string>& out) {
  if (f.kind() == FormulaKind::kAtom) out.insert(f.relation());
  for (const FormulaPtr& c : f.children()) CollectRelations(*c, out);
}

std::string JoinVars(const std::vector<std::string>& vars) {
  std::string out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ", ";
    out += vars[i];
  }
  return out;
}

}  // namespace

std::set<std::string> Formula::FreeVariables() const {
  std::set<std::string> bound;
  std::set<std::string> out;
  CollectFreeVariables(*this, bound, out);
  return out;
}

std::set<std::string> Formula::Constants() const {
  std::set<std::string> out;
  CollectConstants(*this, out);
  return out;
}

std::set<std::string> Formula::RelationNames() const {
  std::set<std::string> out;
  CollectRelations(*this, out);
  return out;
}

std::string Formula::ToString() const {
  switch (kind_) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kAtom: {
      std::string out = relation_;
      if (!terms_.empty()) {
        out += "(";
        for (size_t i = 0; i < terms_.size(); ++i) {
          if (i > 0) out += ", ";
          out += terms_[i].ToString();
        }
        out += ")";
      }
      return out;
    }
    case FormulaKind::kEquality:
      return terms_[0].ToString() + " = " + terms_[1].ToString();
    case FormulaKind::kNot:
      return "not (" + children_[0]->ToString() + ")";
    case FormulaKind::kAnd: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " and ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case FormulaKind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " or ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case FormulaKind::kImplies:
      return "(" + children_[0]->ToString() + " -> " +
             children_[1]->ToString() + ")";
    case FormulaKind::kExists:
      return "exists " + JoinVars(vars_) + ": (" + children_[0]->ToString() +
             ")";
    case FormulaKind::kForall:
      return "forall " + JoinVars(vars_) + ": (" + children_[0]->ToString() +
             ")";
  }
  return "?";
}

FormulaPtr SubstituteVariable(const FormulaPtr& f, const std::string& var,
                              const Term& replacement) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kAtom:
    case FormulaKind::kEquality: {
      bool touched = false;
      std::vector<Term> terms = f->terms();
      for (Term& t : terms) {
        if (t.is_variable() && t.text == var) {
          t = replacement;
          touched = true;
        }
      }
      if (!touched) return f;
      if (f->kind() == FormulaKind::kAtom) {
        return Formula::Atom(f->relation(), std::move(terms));
      }
      return Formula::Equality(terms[0], terms[1]);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // A quantifier rebinding `var` shadows the substitution.
      for (const std::string& v : f->bound_variables()) {
        if (v == var) return f;
      }
      FormulaPtr body = SubstituteVariable(f->body(), var, replacement);
      if (body == f->body()) return f;
      if (f->kind() == FormulaKind::kExists) {
        return Formula::Exists(f->bound_variables(), std::move(body));
      }
      return Formula::Forall(f->bound_variables(), std::move(body));
    }
    default: {
      bool touched = false;
      std::vector<FormulaPtr> children;
      children.reserve(f->children().size());
      for (const FormulaPtr& c : f->children()) {
        FormulaPtr nc = SubstituteVariable(c, var, replacement);
        if (nc != c) touched = true;
        children.push_back(std::move(nc));
      }
      if (!touched) return f;
      switch (f->kind()) {
        case FormulaKind::kNot:
          return Formula::Not(children[0]);
        case FormulaKind::kAnd:
          return Formula::And(std::move(children));
        case FormulaKind::kOr:
          return Formula::Or(std::move(children));
        case FormulaKind::kImplies:
          return Formula::Implies(children[0], children[1]);
        default:
          assert(false && "unreachable");
          return f;
      }
    }
  }
}

bool FormulaEquals(const FormulaPtr& a, const FormulaPtr& b) {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  if (a->relation() != b->relation()) return false;
  if (!(a->terms() == b->terms())) return false;
  if (a->bound_variables() != b->bound_variables()) return false;
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!FormulaEquals(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

}  // namespace wsv::fo
