#ifndef WSVERIFY_FO_STRUCTURE_H_
#define WSVERIFY_FO_STRUCTURE_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/instance.h"
#include "data/relation.h"
#include "data/value.h"

namespace wsv::fo {

/// A relational structure against which FO formulas are evaluated.
///
/// Implementations map relation names to relation instances and fix the
/// element domain over which quantifiers range. In the paper's semantics,
/// quantifiers range over the active domain of the run; during verification,
/// the evaluation domain is the pseudo-domain computed from the
/// specification (Section 3.1 / DESIGN.md §5).
class StructureView {
 public:
  virtual ~StructureView() = default;

  /// Returns the relation named `name`, or nullptr if this structure does
  /// not define it.
  virtual const data::Relation* Find(const std::string& name) const = 0;

  /// Domain of quantification.
  virtual const data::Domain& EvaluationDomain() const = 0;
};

/// A structure backed by an explicit name -> relation map.
class MapStructure : public StructureView {
 public:
  MapStructure() = default;

  /// Registers `relation` under `name` (replacing any previous binding).
  void Set(std::string name, data::Relation relation) {
    relations_[std::move(name)] = std::move(relation);
  }

  data::Domain& mutable_domain() { return domain_; }
  void SetDomain(data::Domain domain) { domain_ = std::move(domain); }

  const data::Relation* Find(const std::string& name) const override {
    auto it = relations_.find(name);
    return it == relations_.end() ? nullptr : &it->second;
  }

  const data::Domain& EvaluationDomain() const override { return domain_; }

 private:
  std::unordered_map<std::string, data::Relation> relations_;
  data::Domain domain_;
};

/// A structure that exposes several instances, each under a name prefix
/// (e.g. "Officer." for peer qualification, "" for peer-local access),
/// without copying relations. Later layers shadow earlier ones.
class LayeredStructure : public StructureView {
 public:
  /// Adds `instance` whose relations are visible as `prefix` + name.
  /// `instance` must outlive this view.
  void AddLayer(std::string prefix, const data::Instance* instance) {
    layers_.emplace_back(std::move(prefix), instance);
  }

  /// Adds a single named relation (e.g. a queue view). `relation` must
  /// outlive this view.
  void AddRelation(std::string name, const data::Relation* relation) {
    extra_[std::move(name)] = relation;
  }

  void SetDomain(data::Domain domain) { domain_ = std::move(domain); }
  data::Domain& mutable_domain() { return domain_; }

  const data::Relation* Find(const std::string& name) const override;

  const data::Domain& EvaluationDomain() const override { return domain_; }

 private:
  std::vector<std::pair<std::string, const data::Instance*>> layers_;
  std::unordered_map<std::string, const data::Relation*> extra_;
  data::Domain domain_;
};

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_STRUCTURE_H_
