#ifndef WSVERIFY_FO_EVAL_H_
#define WSVERIFY_FO_EVAL_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "data/relation.h"
#include "fo/formula.h"
#include "fo/structure.h"

namespace wsv::fo {

/// A set of valuations of a fixed variable list (kept sorted by name).
/// This is the intermediate result of FO evaluation: each row assigns a
/// domain element to each variable, in the order of `variables()`.
class ValuationSet {
 public:
  /// Constructs the empty set (no rows) over `variables` (sorted on entry).
  explicit ValuationSet(std::vector<std::string> variables);

  /// The TRUE set over no variables: one empty row.
  static ValuationSet UnitTrue();
  /// The FALSE set over no variables: no rows.
  static ValuationSet UnitFalse();

  const std::vector<std::string>& variables() const { return variables_; }
  const data::Relation& rows() const { return rows_; }
  bool IsSatisfiable() const { return !rows_.empty(); }
  size_t size() const { return rows_.size(); }

  /// Adds a row aligned with `variables()`.
  void AddRow(data::Tuple row) { rows_.Insert(row); }

  /// Natural join with `other` on shared variables.
  ValuationSet Join(const ValuationSet& other) const;

  /// Extends the variable list with `extra` (ignoring ones already present),
  /// filling new columns with every combination of `domain` elements.
  ValuationSet Extend(const std::vector<std::string>& extra,
                      const data::Domain& domain) const;

  /// Union with `other`; both are first extended to the union of the two
  /// variable lists over `domain`.
  ValuationSet UnionWith(const ValuationSet& other,
                         const data::Domain& domain) const;

  /// All valuations over the current variables NOT in this set, relative to
  /// `domain`^variables.
  ValuationSet ComplementWithin(const data::Domain& domain) const;

  /// Removes the given variables (projecting rows, deduplicating).
  ValuationSet ProjectAway(const std::vector<std::string>& away) const;

  /// Reorders (and possibly extends over `domain`) into the column order
  /// `out_vars`; used to produce rule-head tuples in head order.
  data::Relation ToRelation(const std::vector<std::string>& out_vars,
                            const data::Domain& domain) const;

 private:
  std::vector<std::string> variables_;  // sorted
  data::Relation rows_;                 // arity == variables_.size()
};

/// Evaluates FO formulas against a StructureView using active-domain
/// semantics with the view's EvaluationDomain as quantification range.
///
/// The evaluation strategy is bottom-up relational: each subformula yields
/// the ValuationSet of its satisfying assignments, combined by join (and),
/// extended union (or), complement (not) and projection (exists). This keeps
/// cost proportional to the data actually matched by atoms rather than
/// |domain|^#variables.
class Evaluator {
 public:
  /// `interner` resolves constant spellings to domain elements; every
  /// constant in an evaluated formula must already be interned. Must outlive
  /// the evaluator.
  explicit Evaluator(const Interner* interner) : interner_(interner) {}

  /// Satisfying assignments of `formula`'s free variables.
  Result<ValuationSet> Evaluate(const FormulaPtr& formula,
                                const StructureView& structure) const;

  /// Truth value of a sentence (formula with no free variables).
  Result<bool> EvaluateSentence(const FormulaPtr& formula,
                                const StructureView& structure) const;

  /// Evaluates a rule body `formula` and returns the result relation with
  /// columns in `head_vars` order (Definition 2.1's "result of evaluating
  /// phi"). Head variables that are not free in the body range over the
  /// whole evaluation domain.
  Result<data::Relation> EvaluateQuery(
      const FormulaPtr& formula, const std::vector<std::string>& head_vars,
      const StructureView& structure) const;

 private:
  Result<data::Value> ResolveConstant(const std::string& spelling) const;
  Result<ValuationSet> EvalAtom(const Formula& atom,
                                const StructureView& structure) const;
  Result<ValuationSet> EvalEquality(const Formula& eq,
                                    const StructureView& structure) const;

  const Interner* interner_;
};

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_EVAL_H_
