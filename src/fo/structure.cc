#include "fo/structure.h"

#include "common/strings.h"

namespace wsv::fo {

const data::Relation* LayeredStructure::Find(const std::string& name) const {
  auto it = extra_.find(name);
  if (it != extra_.end()) return it->second;
  // Search layers back-to-front so later layers shadow earlier ones.
  for (auto layer = layers_.rbegin(); layer != layers_.rend(); ++layer) {
    const std::string& prefix = layer->first;
    if (!StartsWith(name, prefix)) continue;
    std::string local = name.substr(prefix.size());
    size_t idx = layer->second->schema()->IndexOf(local);
    if (idx != data::Schema::kNpos) return &layer->second->relation(idx);
  }
  return nullptr;
}

}  // namespace wsv::fo
