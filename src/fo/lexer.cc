#include "fo/lexer.h"

#include <cctype>

namespace wsv::fo {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string constant";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kNotEquals: return "'!='";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text) {
    tokens.push_back(Token{kind, std::move(text), line, column});
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (source[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  while (i < source.size()) {
    char c = source[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      advance(1);
      continue;
    }
    // Comments: // or # to end of line.
    if (c == '#' || (c == '/' && i + 1 < source.size() &&
                     source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    // String constants.
    if (c == '"') {
      size_t start = i + 1;
      size_t j = start;
      while (j < source.size() && source[j] != '"' && source[j] != '\n') ++j;
      if (j >= source.size() || source[j] != '"') {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(line));
      }
      push(TokenKind::kString, std::string(source.substr(start, j - start)));
      advance(j + 1 - i);
      continue;
    }
    // Numbers (uninterpreted constants).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[j]))) {
        ++j;
      }
      push(TokenKind::kNumber, std::string(source.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    // Identifiers, possibly sigil-prefixed (?R, !R) and dotted (P.R).
    if (IsIdentStart(c) || ((c == '?' || c == '!') && i + 1 < source.size() &&
                            IsIdentStart(source[i + 1]))) {
      size_t j = i;
      if (source[j] == '?' || source[j] == '!') ++j;
      while (j < source.size() && IsIdentChar(source[j])) ++j;
      // Dotted qualification segments.
      while (j + 1 < source.size() && source[j] == '.' &&
             (IsIdentStart(source[j + 1]) || source[j + 1] == '?' ||
              source[j + 1] == '!')) {
        ++j;  // consume '.'
        if (source[j] == '?' || source[j] == '!') ++j;
        while (j < source.size() && IsIdentChar(source[j])) ++j;
      }
      push(TokenKind::kIdent, std::string(source.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    // '!' as start of '!='.
    if (c == '!' && i + 1 < source.size() && source[i + 1] == '=') {
      push(TokenKind::kNotEquals, "!=");
      advance(2);
      continue;
    }
    // Punctuation.
    switch (c) {
      case '(': push(TokenKind::kLParen, "("); advance(1); continue;
      case ')': push(TokenKind::kRParen, ")"); advance(1); continue;
      case '{': push(TokenKind::kLBrace, "{"); advance(1); continue;
      case '}': push(TokenKind::kRBrace, "}"); advance(1); continue;
      case '[': push(TokenKind::kLBracket, "["); advance(1); continue;
      case ']': push(TokenKind::kRBracket, "]"); advance(1); continue;
      case ',': push(TokenKind::kComma, ","); advance(1); continue;
      case ';': push(TokenKind::kSemicolon, ";"); advance(1); continue;
      case '=': push(TokenKind::kEquals, "="); advance(1); continue;
      case ':':
        if (i + 1 < source.size() && source[i + 1] == '-') {
          push(TokenKind::kColonDash, ":-");
          advance(2);
        } else {
          push(TokenKind::kColon, ":");
          advance(1);
        }
        continue;
      case '-':
        if (i + 1 < source.size() && source[i + 1] == '>') {
          push(TokenKind::kArrow, "->");
          advance(2);
          continue;
        }
        break;
      default:
        break;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line) +
                              ", column " + std::to_string(column));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line, column});
  return tokens;
}

const Token& TokenCursor::Peek(size_t lookahead) const {
  size_t idx = pos_ + lookahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[idx];
}

const Token& TokenCursor::Next() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenCursor::TryConsume(TokenKind kind) {
  if (Peek().kind != kind) return false;
  Next();
  return true;
}

bool TokenCursor::TryConsumeIdent(std::string_view word) {
  if (Peek().kind != TokenKind::kIdent || Peek().text != word) return false;
  Next();
  return true;
}

Result<Token> TokenCursor::Expect(TokenKind kind, std::string_view context) {
  if (Peek().kind != kind) {
    return ErrorHere("expected " + std::string(TokenKindName(kind)) + " in " +
                     std::string(context) + ", found '" + Peek().text + "'");
  }
  return Next();
}

Status TokenCursor::ExpectIdent(std::string_view word,
                                std::string_view context) {
  if (Peek().kind != TokenKind::kIdent || Peek().text != word) {
    return ErrorHere("expected '" + std::string(word) + "' in " +
                     std::string(context) + ", found '" + Peek().text + "'");
  }
  Next();
  return Status::Ok();
}

Status TokenCursor::ErrorHere(std::string message) const {
  const Token& t = Peek();
  return Status::ParseError(message + " (line " + std::to_string(t.line) +
                            ", column " + std::to_string(t.column) + ")");
}

}  // namespace wsv::fo
