#ifndef WSVERIFY_FO_TERM_H_
#define WSVERIFY_FO_TERM_H_

#include <string>

namespace wsv::fo {

/// A first-order term: a variable or an (uninterpreted) constant.
///
/// Syntactic convention throughout the library: plain identifiers in term
/// position are variables; quoted strings and numeric literals are constants
/// (e.g. rule (4) in the paper uses the constants "excellent", "approved").
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  /// Variable name, or constant spelling (without quotes).
  std::string text;

  static Term Variable(std::string name) {
    return Term{Kind::kVariable, std::move(name)};
  }
  static Term Constant(std::string spelling) {
    return Term{Kind::kConstant, std::move(spelling)};
  }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.text == b.text;
  }

  /// Renders the term: variables bare, constants quoted.
  std::string ToString() const {
    return is_variable() ? text : "\"" + text + "\"";
  }
};

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_TERM_H_
