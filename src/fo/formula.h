#ifndef WSVERIFY_FO_FORMULA_H_
#define WSVERIFY_FO_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fo/term.h"

namespace wsv::fo {

class Formula;
/// Formulas are immutable trees shared by pointer; subtrees are reused
/// freely (e.g. when grounding a property under many valuations).
using FormulaPtr = std::shared_ptr<const Formula>;

/// Node kinds of the FO fragment used by peer rules and property leaves
/// (Definition 2.1, Section 3).
enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,      // R(t1, ..., tk)
  kEquality,  // t1 = t2
  kNot,
  kAnd,
  kOr,
  kImplies,
  kExists,  // exists x1,...,xn: child
  kForall,  // forall x1,...,xn: child
};

/// An immutable first-order formula node.
///
/// Relation names are stored as written in the source after normalization:
/// queue sigils (`?R` for in-queues, `!R` for out-queues in the paper's
/// display notation) are stripped by the parser; peer qualification
/// ("Officer.customer") is kept as part of the name.
class Formula {
 public:
  FormulaKind kind() const { return kind_; }

  // --- Atom accessors (kind == kAtom) ---
  const std::string& relation() const { return relation_; }
  const std::vector<Term>& terms() const { return terms_; }

  // --- Equality accessors (kind == kEquality): terms()[0] = terms()[1] ---

  // --- Connective accessors ---
  const std::vector<FormulaPtr>& children() const { return children_; }
  const FormulaPtr& child(size_t i) const { return children_[i]; }

  // --- Quantifier accessors (kind == kExists/kForall) ---
  const std::vector<std::string>& bound_variables() const { return vars_; }
  const FormulaPtr& body() const { return children_[0]; }

  /// Free variables of the formula, sorted.
  std::set<std::string> FreeVariables() const;

  /// All constant spellings appearing in the formula.
  std::set<std::string> Constants() const;

  /// All relation names appearing in atoms.
  std::set<std::string> RelationNames() const;

  /// Renders the formula in the library's input syntax (re-parseable).
  std::string ToString() const;

  // --- Factories ---
  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Atom(std::string relation, std::vector<Term> terms);
  static FormulaPtr Equality(Term lhs, Term rhs);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr And(std::vector<FormulaPtr> fs);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(std::vector<FormulaPtr> fs);
  static FormulaPtr Implies(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Exists(std::vector<std::string> vars, FormulaPtr body);
  static FormulaPtr Forall(std::vector<std::string> vars, FormulaPtr body);

 private:
  Formula() = default;
  friend FormulaPtr MakeNode(FormulaKind kind, std::string relation,
                             std::vector<Term> terms,
                             std::vector<FormulaPtr> children,
                             std::vector<std::string> vars);

  FormulaKind kind_ = FormulaKind::kTrue;
  std::string relation_;
  std::vector<Term> terms_;
  std::vector<FormulaPtr> children_;
  std::vector<std::string> vars_;
};

/// Replaces every free occurrence of variable `var` by `replacement`
/// (capture is avoided by skipping subtrees that rebind `var`).
FormulaPtr SubstituteVariable(const FormulaPtr& f, const std::string& var,
                              const Term& replacement);

/// Structural equality of formulas.
bool FormulaEquals(const FormulaPtr& a, const FormulaPtr& b);

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_FORMULA_H_
