#ifndef WSVERIFY_FO_CLASSIFY_H_
#define WSVERIFY_FO_CLASSIFY_H_

#include <string>

namespace wsv::fo {

/// Classification of a relation symbol according to the peer schema classes
/// of Definition 2.1 plus the auxiliary propositions introduced by the
/// semantics (queue states, moveW, receivedQ). The input-boundedness checker
/// keys off these classes.
enum class RelClass {
  kDatabase,    // W.D
  kState,       // W.S (except queue states)
  kQueueState,  // emptyQ propositions
  kInput,       // W.I
  kPrevInput,   // prev_I relations
  kAction,      // W.A
  kInFlat,      // W.Qin, flat
  kInNested,    // W.Qin, nested
  kOutFlat,     // W.Qout, flat
  kOutNested,   // W.Qout, nested
  kMove,        // move_W propositions (run semantics, Section 3)
  kReceived,    // received_Q propositions (Section 5)
  kUnknown,     // not declared anywhere
};

/// Returns a printable name for diagnostics.
const char* RelClassName(RelClass c);

/// Maps relation names (peer-local or composition-qualified) to their
/// schema class. Implemented by spec::Peer (local names) and
/// spec::Composition (qualified names).
class SymbolClassifier {
 public:
  virtual ~SymbolClassifier() = default;
  virtual RelClass Classify(const std::string& relation_name) const = 0;
};

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_CLASSIFY_H_
