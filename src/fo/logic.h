#ifndef WSVERIFY_FO_LOGIC_H_
#define WSVERIFY_FO_LOGIC_H_

#include <map>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "data/relation.h"
#include "data/value.h"
#include "fo/bdd.h"
#include "fo/formula.h"
#include "fo/structure.h"

namespace wsv::fo {

/// The boolean-backend concept the FO evaluation path is templated over
/// (the shape of clou's `fol::Logic<bool>` / `Logic<z3::expr>` relation
/// algebra): a carrier type `Bool`, the constants and connectives, and one
/// domain-specific hook — `SlotEq(slot, value)`, the truth of "symbolic
/// slot `slot` equals domain value `value`".
///
/// `Logic<bool>` is the identity backend: every connective compiles to the
/// corresponding branch-free boolean operator, so the concrete
/// instantiation of the templated evaluator is exactly the eager evaluation
/// the engine has always performed (the differential fuzz test asserts
/// agreement with both the handwritten oracle and the relational
/// evaluator). `Logic<bdd::NodeRef>` interprets the same formula over a
/// mixed-radix decision diagram whose variables are the valuation's digit
/// slots, which is how the engine turns one FO leaf into a set of
/// valuation indices.
template <class B>
struct Logic;

template <>
struct Logic<bool> {
  using Bool = bool;

  bool True() const { return true; }
  bool False() const { return false; }
  bool And(bool a, bool b) const { return a && b; }
  bool Or(bool a, bool b) const { return a || b; }
  bool Not(bool a) const { return !a; }
  bool IsTrue(bool a) const { return a; }
  bool IsFalse(bool a) const { return !a; }

  /// Concrete evaluation never reaches a symbolic slot: PointEvaluator
  /// resolves every binding before calling the backend. Kept so the
  /// template instantiates; returning False is the sound default.
  bool SlotEq(size_t, data::Value) const { return false; }
};

/// The symbolic backend: formulas evaluate to decision diagrams over the
/// valuation digit variables. `values` fixes the digit encoding — digit d
/// of slot s means "closure variable s takes values[d]" — and must be the
/// exact value order of the engine's ValuationSpace so that diagram indices
/// and valuation indices coincide.
struct BddLogic {
  using Bool = bdd::NodeRef;

  bdd::Manager* mgr;
  /// The valuation domain in ValuationSpace order (digit d <-> values[d]).
  const std::vector<data::Value>* values;

  Bool True() const { return bdd::kTrue; }
  Bool False() const { return bdd::kFalse; }
  Bool And(Bool a, Bool b) const { return mgr->And(a, b); }
  Bool Or(Bool a, Bool b) const { return mgr->Or(a, b); }
  Bool Not(Bool a) const { return mgr->Not(a); }
  bool IsTrue(Bool a) const { return a == bdd::kTrue; }
  bool IsFalse(Bool a) const { return a == bdd::kFalse; }

  /// Digit index of `v` in the valuation domain, or -1 when no valuation
  /// can produce it (a structure value outside the pseudo-domain).
  int DigitOf(data::Value v) const {
    for (size_t d = 0; d < values->size(); ++d) {
      if ((*values)[d] == v) return static_cast<int>(d);
    }
    return -1;
  }

  Bool SlotEq(size_t slot, data::Value v) const {
    int d = DigitOf(v);
    if (d < 0) return bdd::kFalse;
    return mgr->Literal(slot, static_cast<uint32_t>(d));
  }
};

/// Membership of a symbolic row in a concrete relation: OR over the
/// relation's tuples of AND over columns "slot_k == tuple[k]". This is the
/// symbolic evaluation of one property leaf at one snapshot — `rows` is the
/// leaf's (already relationally computed) satisfying set and `slots[k]` the
/// closure position its k-th free variable projects from — and the building
/// block of the engine's leaf-signature partition.
template <class L>
typename L::Bool RelationMembership(L& logic, const data::Relation& rows,
                                    const std::vector<size_t>& slots) {
  typename L::Bool out = logic.False();
  for (const data::Tuple& row : rows) {
    typename L::Bool cube = logic.True();
    for (size_t k = 0; k < slots.size() && !logic.IsFalse(cube); ++k) {
      cube = logic.And(cube, logic.SlotEq(slots[k], row[k]));
    }
    out = logic.Or(out, cube);
  }
  return out;
}

/// Point-evaluates an FO formula under a variable environment, templated
/// over the boolean backend. Quantifiers enumerate the structure's
/// evaluation domain (active-domain semantics, same as fo::Evaluator);
/// environment bindings are either concrete domain values or symbolic
/// slots that the backend interprets (digit variables under BddLogic).
///
/// This is deliberately the naive enumeration evaluator: the relational
/// Evaluator remains the production path for computing full satisfying
/// sets, while this body — ONE body for both backends — is the semantics
/// the differential fuzz test pins both against.
template <class L>
class PointEvaluator {
 public:
  using Bool = typename L::Bool;

  /// A variable binding: a concrete value, or the backend's symbolic slot.
  struct Binding {
    bool symbolic = false;
    data::Value value = 0;
    size_t slot = 0;

    static Binding Concrete(data::Value v) { return Binding{false, v, 0}; }
    static Binding Slot(size_t s) { return Binding{true, 0, s}; }
  };

  using Env = std::map<std::string, Binding>;

  PointEvaluator(L logic, const Interner* interner)
      : logic_(logic), interner_(interner) {}

  Result<Bool> Evaluate(const FormulaPtr& f, const StructureView& structure,
                        Env& env) const {
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return logic_.True();
      case FormulaKind::kFalse:
        return logic_.False();
      case FormulaKind::kAtom: {
        const data::Relation* rel = structure.Find(f->relation());
        if (rel == nullptr) {
          return Status::Internal("relation '" + f->relation() +
                                  "' is not defined in the structure");
        }
        Bool out = logic_.False();
        for (const data::Tuple& row : *rel) {
          Bool match = logic_.True();
          for (size_t i = 0; i < f->terms().size(); ++i) {
            if (logic_.IsFalse(match)) break;
            WSV_ASSIGN_OR_RETURN(Bool eq,
                                 TermEqValue(f->terms()[i], row[i], env));
            match = logic_.And(match, eq);
          }
          out = logic_.Or(out, match);
        }
        return out;
      }
      case FormulaKind::kEquality:
        return TermEqTerm(f->terms()[0], f->terms()[1], structure, env);
      case FormulaKind::kNot: {
        WSV_ASSIGN_OR_RETURN(Bool a, Evaluate(f->child(0), structure, env));
        return logic_.Not(a);
      }
      case FormulaKind::kAnd: {
        Bool out = logic_.True();
        for (const FormulaPtr& c : f->children()) {
          WSV_ASSIGN_OR_RETURN(Bool a, Evaluate(c, structure, env));
          out = logic_.And(out, a);
        }
        return out;
      }
      case FormulaKind::kOr: {
        Bool out = logic_.False();
        for (const FormulaPtr& c : f->children()) {
          WSV_ASSIGN_OR_RETURN(Bool a, Evaluate(c, structure, env));
          out = logic_.Or(out, a);
        }
        return out;
      }
      case FormulaKind::kImplies: {
        WSV_ASSIGN_OR_RETURN(Bool a, Evaluate(f->child(0), structure, env));
        WSV_ASSIGN_OR_RETURN(Bool b, Evaluate(f->child(1), structure, env));
        return logic_.Or(logic_.Not(a), b);
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        const bool exists = f->kind() == FormulaKind::kExists;
        Bool out = exists ? logic_.False() : logic_.True();
        WSV_RETURN_IF_ERROR(
            Quantify(f, structure, env, /*var=*/0, exists, &out));
        return out;
      }
    }
    return Status::Internal("unhandled formula kind");
  }

 private:
  /// Enumerates domain assignments of the quantifier's variable block,
  /// folding the body's truth into `*out` with Or (exists) or And (forall).
  Status Quantify(const FormulaPtr& f, const StructureView& structure,
                  Env& env, size_t var, bool exists, Bool* out) const {
    if (var == f->bound_variables().size()) {
      WSV_ASSIGN_OR_RETURN(Bool body, Evaluate(f->body(), structure, env));
      *out = exists ? logic_.Or(*out, body) : logic_.And(*out, body);
      return Status::Ok();
    }
    const std::string& name = f->bound_variables()[var];
    auto saved = env.find(name);
    Binding old;
    bool had = saved != env.end();
    if (had) old = saved->second;
    for (data::Value v : structure.EvaluationDomain()) {
      env[name] = Binding::Concrete(v);
      WSV_RETURN_IF_ERROR(Quantify(f, structure, env, var + 1, exists, out));
    }
    if (had) {
      env[name] = old;
    } else {
      env.erase(name);
    }
    return Status::Ok();
  }

  Result<Bool> TermEqValue(const Term& t, data::Value v, const Env& env) const {
    if (t.is_constant()) {
      SymbolId id = interner_->Lookup(t.text);
      if (id == kInvalidSymbol) {
        return Status::Internal("constant \"" + t.text +
                                "\" was not interned before evaluation");
      }
      return id == v ? logic_.True() : logic_.False();
    }
    auto it = env.find(t.text);
    if (it == env.end()) {
      return Status::Internal("unbound variable '" + t.text + "'");
    }
    if (!it->second.symbolic) {
      return it->second.value == v ? logic_.True() : logic_.False();
    }
    return logic_.SlotEq(it->second.slot, v);
  }

  Result<Bool> TermEqTerm(const Term& a, const Term& b,
                          const StructureView& structure, const Env& env) const {
    // Resolve whichever side is concrete and delegate to TermEqValue; two
    // symbolic slots compare by enumerating the evaluation domain.
    auto concrete = [&](const Term& t) -> Result<std::pair<bool, data::Value>> {
      if (t.is_constant()) {
        SymbolId id = interner_->Lookup(t.text);
        if (id == kInvalidSymbol) {
          return Status::Internal("constant \"" + t.text +
                                  "\" was not interned before evaluation");
        }
        return std::make_pair(true, static_cast<data::Value>(id));
      }
      auto it = env.find(t.text);
      if (it == env.end()) {
        return Status::Internal("unbound variable '" + t.text + "'");
      }
      if (it->second.symbolic) return std::make_pair(false, data::Value{0});
      return std::make_pair(true, it->second.value);
    };
    WSV_ASSIGN_OR_RETURN(auto ca, concrete(a));
    WSV_ASSIGN_OR_RETURN(auto cb, concrete(b));
    if (ca.first) return TermEqValue(b, ca.second, env);
    if (cb.first) return TermEqValue(a, cb.second, env);
    Bool out = logic_.False();
    for (data::Value v : structure.EvaluationDomain()) {
      WSV_ASSIGN_OR_RETURN(Bool ea, TermEqValue(a, v, env));
      WSV_ASSIGN_OR_RETURN(Bool eb, TermEqValue(b, v, env));
      out = logic_.Or(out, logic_.And(ea, eb));
    }
    return out;
  }

  L logic_;
  const Interner* interner_;
};

}  // namespace wsv::fo

#endif  // WSVERIFY_FO_LOGIC_H_
