#include "fo/bdd.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wsv::fo::bdd {

namespace {

constexpr uint32_t kOpAnd = 0;
constexpr uint32_t kOpOr = 1;
constexpr uint32_t kOpNot = 2;

/// Saturating multiply (counts are valuation-index counts, which the
/// engine already saturates at SIZE_MAX).
size_t SatMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > static_cast<size_t>(-1) / b) return static_cast<size_t>(-1);
  return a * b;
}

size_t SatAdd(size_t a, size_t b) {
  size_t s = a + b;
  return s < a ? static_cast<size_t>(-1) : s;
}

size_t HashNode(size_t level, const NodeRef* kids, size_t radix) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ level;
  for (size_t d = 0; d < radix; ++d) {
    h = HashKey64(h ^ (static_cast<uint64_t>(kids[d]) + 0x165667b19e3779f9ULL));
  }
  return static_cast<size_t>(h);
}

}  // namespace

Manager::Manager(size_t num_vars, size_t radix)
    : num_vars_(num_vars), radix_(radix) {
  assert(radix_ > 0 || num_vars_ == 0);
}

Manager::NodeView Manager::View(NodeRef n) const {
  const uint32_t* words = nodes_[n - 2];
  return NodeView{words[0], words + 1};
}

size_t Manager::LevelOf(NodeRef n) const {
  // Terminals sit below every decision level.
  if (n <= kTrue) return num_vars_;
  return View(n).level;
}

NodeRef Manager::MakeNode(size_t level, const NodeRef* kids) {
  // Reduction: a node whose children all agree decides nothing.
  bool uniform = true;
  for (size_t d = 1; d < radix_; ++d) uniform = uniform && kids[d] == kids[0];
  if (uniform) return kids[0];

  size_t hash = HashNode(level, kids, radix_);
  uint32_t found = unique_.Find(hash, [&](uint32_t id) {
    NodeView v = View(static_cast<NodeRef>(id) + 2);
    if (v.level != level) return false;
    for (size_t d = 0; d < radix_; ++d) {
      if (v.kids[d] != kids[d]) return false;
    }
    return true;
  });
  if (found != FlatIdSet::kEmpty) return static_cast<NodeRef>(found) + 2;

  uint32_t* words = arena_.AllocWords(radix_ + 1);
  words[0] = static_cast<uint32_t>(level);
  for (size_t d = 0; d < radix_; ++d) words[d + 1] = kids[d];
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(words);
  unique_.Insert(hash, id);
  ++node_count_;
  return static_cast<NodeRef>(id) + 2;
}

NodeRef Manager::Literal(size_t position, uint32_t value) {
  assert(position < num_vars_ && value < radix_);
  std::vector<NodeRef> kids(radix_, kFalse);
  kids[value] = kTrue;
  return MakeNode(num_vars_ - 1 - position, kids.data());
}

NodeRef Manager::Cube(const std::vector<size_t>& positions,
                      const std::vector<uint32_t>& digits) {
  assert(positions.size() == digits.size());
  // Build bottom-up: the most significant constrained digit ends up at the
  // shallowest level, so sort by position ascending (deepest level first).
  std::vector<std::pair<size_t, uint32_t>> by_pos;
  by_pos.reserve(positions.size());
  for (size_t k = 0; k < positions.size(); ++k) {
    by_pos.emplace_back(positions[k], digits[k]);
  }
  std::sort(by_pos.begin(), by_pos.end());
  NodeRef cur = kTrue;
  std::vector<NodeRef> kids(radix_);
  for (const auto& [pos, digit] : by_pos) {
    std::fill(kids.begin(), kids.end(), kFalse);
    kids[digit] = cur;
    cur = MakeNode(num_vars_ - 1 - pos, kids.data());
  }
  return cur;
}

NodeRef Manager::ApplyTerminal(uint32_t op, NodeRef a, NodeRef b) const {
  switch (op) {
    case kOpAnd:
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
      if (a == b) return a;
      break;
    case kOpOr:
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return a;
      break;
    case kOpNot:
      if (a == kFalse) return kTrue;
      if (a == kTrue) return kFalse;
      break;
    default:
      break;
  }
  return static_cast<NodeRef>(-1);  // not a terminal case
}

NodeRef Manager::Apply(uint32_t op, NodeRef a, NodeRef b) {
  NodeRef shortcut = ApplyTerminal(op, a, b);
  if (shortcut != static_cast<NodeRef>(-1)) return shortcut;
  // And/Or are commutative: canonicalize the operand order so (a,b) and
  // (b,a) share one cache entry. Node ids stay far below 2^31 (the node
  // table would exhaust memory long before), so the packed key is unique.
  if (op != kOpNot && a > b) std::swap(a, b);
  uint64_t key = (static_cast<uint64_t>(op) << 62) |
                 (static_cast<uint64_t>(a) << 31) | b;
  auto it = apply_cache_.find(key);
  if (it != apply_cache_.end()) {
    ++cache_hits_;
    return it->second;
  }

  size_t la = LevelOf(a);
  size_t lb = LevelOf(b);
  size_t level = std::min(la, lb);
  std::vector<NodeRef> kids(radix_);
  for (size_t d = 0; d < radix_; ++d) {
    NodeRef ad = la == level ? View(a).kids[d] : a;
    NodeRef bd = op == kOpNot ? kFalse : (lb == level ? View(b).kids[d] : b);
    kids[d] = op == kOpNot ? Apply(kOpNot, ad, kFalse) : Apply(op, ad, bd);
  }
  NodeRef out = MakeNode(level, kids.data());
  apply_cache_.emplace(key, out);
  return out;
}

NodeRef Manager::And(NodeRef a, NodeRef b) { return Apply(kOpAnd, a, b); }
NodeRef Manager::Or(NodeRef a, NodeRef b) { return Apply(kOpOr, a, b); }
NodeRef Manager::Not(NodeRef a) { return Apply(kOpNot, a, kFalse); }

size_t Manager::PowRadix(size_t exp) const {
  size_t out = 1;
  for (size_t i = 0; i < exp; ++i) out = SatMul(out, radix_);
  return out;
}

NodeRef Manager::Interval(size_t lo, size_t hi) {
  if (lo >= hi) return kFalse;
  if (num_vars_ == 0) return lo == 0 ? kTrue : kFalse;
  const size_t space = PowRadix(num_vars_);
  std::vector<NodeRef> kids(radix_);

  // x < hi, built bottom-up over MSB-first digit comparison. hi >= space
  // constrains nothing.
  NodeRef lt = kTrue;
  if (hi < space) {
    lt = kFalse;
    for (size_t level = num_vars_; level-- > 0;) {
      // Digit of `hi` at this level (position num_vars-1-level).
      size_t pos = num_vars_ - 1 - level;
      size_t digit = (hi / PowRadix(pos)) % radix_;
      for (size_t d = 0; d < radix_; ++d) {
        kids[d] = d < digit ? kTrue : (d == digit ? lt : kFalse);
      }
      lt = MakeNode(level, kids.data());
    }
  }

  // x >= lo. lo == 0 constrains nothing.
  NodeRef ge = kTrue;
  if (lo > 0) {
    ge = kTrue;
    for (size_t level = num_vars_; level-- > 0;) {
      size_t pos = num_vars_ - 1 - level;
      size_t digit = (lo / PowRadix(pos)) % radix_;
      for (size_t d = 0; d < radix_; ++d) {
        kids[d] = d < digit ? kFalse : (d == digit ? ge : kTrue);
      }
      ge = MakeNode(level, kids.data());
    }
  }
  return And(ge, lt);
}

size_t Manager::SatCount(NodeRef a) {
  // C(n) = assignments of levels [LevelOf(n), num_vars) satisfying n;
  // levels above the root are unconstrained.
  std::function<size_t(NodeRef)> count = [&](NodeRef n) -> size_t {
    if (n == kFalse) return 0;
    if (n == kTrue) return 1;
    auto it = count_cache_.find(n);
    if (it != count_cache_.end()) return it->second;
    NodeView v = View(n);
    size_t total = 0;
    for (size_t d = 0; d < radix_; ++d) {
      size_t below = count(v.kids[d]);
      // Unconstrained levels between this node and the child.
      size_t gap = LevelOf(v.kids[d]) - v.level - 1;
      total = SatAdd(total, SatMul(below, PowRadix(gap)));
    }
    count_cache_.emplace(n, total);
    return total;
  };
  return SatMul(count(a), PowRadix(LevelOf(a)));
}

size_t Manager::MinIndex(NodeRef a) const {
  assert(a != kFalse);
  size_t index = 0;
  NodeRef cur = a;
  while (cur != kTrue) {
    NodeView v = View(cur);
    size_t pos = num_vars_ - 1 - v.level;
    for (size_t d = 0; d < radix_; ++d) {
      if (v.kids[d] != kFalse) {
        // Digit weight radix^pos; unconstrained levels contribute digit 0.
        size_t weight = 1;
        for (size_t i = 0; i < pos; ++i) weight *= radix_;
        index += d * weight;
        cur = v.kids[d];
        break;
      }
    }
  }
  return index;
}

void Manager::EnumerateFrom(NodeRef n, size_t level, size_t prefix_index,
                            const std::function<void(size_t)>& fn) const {
  if (n == kFalse) return;
  if (level == num_vars_) {
    fn(prefix_index);
    return;
  }
  size_t pos = num_vars_ - 1 - level;
  size_t weight = 1;
  for (size_t i = 0; i < pos; ++i) weight *= radix_;
  size_t node_level = LevelOf(n);
  for (size_t d = 0; d < radix_; ++d) {
    NodeRef next = node_level == level ? View(n).kids[d] : n;
    EnumerateFrom(next, level + 1, prefix_index + d * weight, fn);
  }
}

void Manager::ForEachIndex(NodeRef a,
                           const std::function<void(size_t)>& fn) const {
  EnumerateFrom(a, 0, 0, fn);
}

void Manager::Clear() {
  nodes_.clear();
  arena_.Reset();
  unique_ = FlatIdSet();
  apply_cache_.clear();
  count_cache_.clear();
  node_count_ = 0;
  cache_hits_ = 0;
}

}  // namespace wsv::fo::bdd
