#include "fo/eval.h"

#include <algorithm>
#include <cassert>

namespace wsv::fo {

namespace {

/// Positions of `needles` inside `haystack` (both sorted variable lists);
/// kNpos for absent entries.
constexpr size_t kNpos = static_cast<size_t>(-1);

size_t IndexOfVar(const std::vector<std::string>& vars,
                  const std::string& name) {
  auto it = std::lower_bound(vars.begin(), vars.end(), name);
  if (it == vars.end() || *it != name) return kNpos;
  return static_cast<size_t>(it - vars.begin());
}

std::vector<std::string> SortedUnion(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

ValuationSet::ValuationSet(std::vector<std::string> variables)
    : variables_(std::move(variables)), rows_(0) {
  std::sort(variables_.begin(), variables_.end());
  variables_.erase(std::unique(variables_.begin(), variables_.end()),
                   variables_.end());
  rows_ = data::Relation(variables_.size());
}

ValuationSet ValuationSet::UnitTrue() {
  ValuationSet s((std::vector<std::string>()));
  s.AddRow(data::Tuple{});
  return s;
}

ValuationSet ValuationSet::UnitFalse() {
  return ValuationSet(std::vector<std::string>());
}

ValuationSet ValuationSet::Join(const ValuationSet& other) const {
  std::vector<std::string> out_vars = SortedUnion(variables_, other.variables_);
  ValuationSet out(out_vars);

  // Column maps: for each output column, where it comes from.
  std::vector<size_t> from_left(out_vars.size(), kNpos);
  std::vector<size_t> from_right(out_vars.size(), kNpos);
  for (size_t i = 0; i < out_vars.size(); ++i) {
    from_left[i] = IndexOfVar(variables_, out_vars[i]);
    from_right[i] = IndexOfVar(other.variables_, out_vars[i]);
  }
  // Shared columns to check for agreement.
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < out_vars.size(); ++i) {
    if (from_left[i] != kNpos && from_right[i] != kNpos) {
      shared.emplace_back(from_left[i], from_right[i]);
    }
  }

  for (const data::Tuple& l : rows_) {
    for (const data::Tuple& r : other.rows_) {
      bool match = true;
      for (const auto& [li, ri] : shared) {
        if (l[li] != r[ri]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<data::Value> row(out_vars.size());
      for (size_t i = 0; i < out_vars.size(); ++i) {
        row[i] = from_left[i] != kNpos ? l[from_left[i]] : r[from_right[i]];
      }
      out.AddRow(data::Tuple(std::move(row)));
    }
  }
  return out;
}

ValuationSet ValuationSet::Extend(const std::vector<std::string>& extra,
                                  const data::Domain& domain) const {
  std::vector<std::string> fresh;
  for (const std::string& v : extra) {
    if (IndexOfVar(variables_, v) == kNpos) fresh.push_back(v);
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  if (fresh.empty()) return *this;

  std::vector<std::string> out_vars = SortedUnion(variables_, fresh);
  ValuationSet out(out_vars);

  std::vector<size_t> from_old(out_vars.size(), kNpos);
  std::vector<size_t> fresh_slot(out_vars.size(), kNpos);
  for (size_t i = 0; i < out_vars.size(); ++i) {
    from_old[i] = IndexOfVar(variables_, out_vars[i]);
    if (from_old[i] == kNpos) {
      fresh_slot[i] = IndexOfVar(fresh, out_vars[i]);
    }
  }

  // Enumerate domain^fresh.
  std::vector<data::Value> combo(fresh.size());
  for (const data::Tuple& base : rows_) {
    // Odometer over fresh columns.
    std::vector<size_t> idx(fresh.size(), 0);
    if (domain.empty() && !fresh.empty()) break;
    while (true) {
      for (size_t k = 0; k < fresh.size(); ++k) {
        combo[k] = domain.values()[idx[k]];
      }
      std::vector<data::Value> row(out_vars.size());
      for (size_t i = 0; i < out_vars.size(); ++i) {
        row[i] =
            from_old[i] != kNpos ? base[from_old[i]] : combo[fresh_slot[i]];
      }
      out.AddRow(data::Tuple(std::move(row)));
      // Advance odometer.
      size_t k = 0;
      while (k < idx.size()) {
        if (++idx[k] < domain.size()) break;
        idx[k] = 0;
        ++k;
      }
      if (k == idx.size()) break;
      if (idx.empty()) break;
    }
    if (fresh.empty()) {
      break;  // only one iteration needed (shouldn't happen: fresh nonempty)
    }
  }
  return out;
}

ValuationSet ValuationSet::UnionWith(const ValuationSet& other,
                                     const data::Domain& domain) const {
  ValuationSet left = Extend(other.variables_, domain);
  ValuationSet right = other.Extend(variables_, domain);
  assert(left.variables_ == right.variables_);
  ValuationSet out(left.variables_);
  out.rows_ = left.rows_.Union(right.rows_);
  return out;
}

ValuationSet ValuationSet::ComplementWithin(const data::Domain& domain) const {
  ValuationSet out(variables_);
  // Enumerate domain^variables and keep rows not present.
  if (variables_.empty()) {
    if (rows_.empty()) out.AddRow(data::Tuple{});
    return out;
  }
  if (domain.empty()) return out;
  std::vector<size_t> idx(variables_.size(), 0);
  while (true) {
    std::vector<data::Value> row(variables_.size());
    for (size_t k = 0; k < variables_.size(); ++k) {
      row[k] = domain.values()[idx[k]];
    }
    data::Tuple t(std::move(row));
    if (!rows_.Contains(t)) out.AddRow(std::move(t));
    size_t k = 0;
    while (k < idx.size()) {
      if (++idx[k] < domain.size()) break;
      idx[k] = 0;
      ++k;
    }
    if (k == idx.size()) break;
  }
  return out;
}

ValuationSet ValuationSet::ProjectAway(
    const std::vector<std::string>& away) const {
  std::vector<std::string> keep;
  for (const std::string& v : variables_) {
    if (std::find(away.begin(), away.end(), v) == away.end()) {
      keep.push_back(v);
    }
  }
  if (keep.size() == variables_.size()) return *this;
  std::vector<size_t> keep_idx;
  for (const std::string& v : keep) {
    keep_idx.push_back(IndexOfVar(variables_, v));
  }
  ValuationSet out(keep);
  for (const data::Tuple& t : rows_) {
    std::vector<data::Value> row(keep_idx.size());
    for (size_t i = 0; i < keep_idx.size(); ++i) row[i] = t[keep_idx[i]];
    out.AddRow(data::Tuple(std::move(row)));
  }
  return out;
}

data::Relation ValuationSet::ToRelation(
    const std::vector<std::string>& out_vars,
    const data::Domain& domain) const {
  ValuationSet extended = Extend(out_vars, domain);
  std::vector<size_t> order;
  order.reserve(out_vars.size());
  for (const std::string& v : out_vars) {
    size_t i = IndexOfVar(extended.variables_, v);
    assert(i != kNpos && "output variable missing after extension");
    order.push_back(i);
  }
  data::Relation out(out_vars.size());
  for (const data::Tuple& t : extended.rows_) {
    std::vector<data::Value> row(order.size());
    for (size_t i = 0; i < order.size(); ++i) row[i] = t[order[i]];
    out.Insert(data::Tuple(std::move(row)));
  }
  return out;
}

Result<data::Value> Evaluator::ResolveConstant(
    const std::string& spelling) const {
  SymbolId id = interner_->Lookup(spelling);
  if (id == kInvalidSymbol) {
    return Status::Internal("constant \"" + spelling +
                            "\" was not interned before evaluation");
  }
  return id;
}

Result<ValuationSet> Evaluator::EvalAtom(const Formula& atom,
                                         const StructureView& structure) const {
  const data::Relation* rel = structure.Find(atom.relation());
  if (rel == nullptr) {
    return Status::NotFound("relation '" + atom.relation() +
                            "' not defined in evaluation structure");
  }
  if (rel->arity() != atom.terms().size()) {
    return Status::InvalidSpec(
        "atom " + atom.ToString() + " has arity " +
        std::to_string(atom.terms().size()) + " but relation '" +
        atom.relation() + "' has arity " + std::to_string(rel->arity()));
  }

  // Distinct variables of the atom, sorted.
  std::vector<std::string> vars;
  for (const Term& t : atom.terms()) {
    if (t.is_variable()) vars.push_back(t.text);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

  // Resolve constants once.
  std::vector<data::Value> const_vals(atom.terms().size(), 0);
  std::vector<bool> is_const(atom.terms().size(), false);
  std::vector<size_t> var_slot(atom.terms().size(), 0);
  for (size_t i = 0; i < atom.terms().size(); ++i) {
    const Term& t = atom.terms()[i];
    if (t.is_constant()) {
      WSV_ASSIGN_OR_RETURN(const_vals[i], ResolveConstant(t.text));
      is_const[i] = true;
    } else {
      var_slot[i] = IndexOfVar(vars, t.text);
    }
  }

  ValuationSet out(vars);
  for (const data::Tuple& tuple : *rel) {
    std::vector<data::Value> row(vars.size(), data::Value{0});
    std::vector<bool> bound(vars.size(), false);
    bool match = true;
    for (size_t i = 0; i < atom.terms().size() && match; ++i) {
      if (is_const[i]) {
        match = tuple[i] == const_vals[i];
      } else {
        size_t slot = var_slot[i];
        if (bound[slot]) {
          match = row[slot] == tuple[i];  // repeated variable must agree
        } else {
          row[slot] = tuple[i];
          bound[slot] = true;
        }
      }
    }
    if (match) out.AddRow(data::Tuple(std::move(row)));
  }
  return out;
}

Result<ValuationSet> Evaluator::EvalEquality(
    const Formula& eq, const StructureView& structure) const {
  const Term& lhs = eq.terms()[0];
  const Term& rhs = eq.terms()[1];
  if (lhs.is_constant() && rhs.is_constant()) {
    WSV_ASSIGN_OR_RETURN(data::Value lv, ResolveConstant(lhs.text));
    WSV_ASSIGN_OR_RETURN(data::Value rv, ResolveConstant(rhs.text));
    return lv == rv ? ValuationSet::UnitTrue() : ValuationSet::UnitFalse();
  }
  if (lhs.is_variable() && rhs.is_variable()) {
    if (lhs.text == rhs.text) {
      // x = x: true for every domain element.
      ValuationSet out({lhs.text});
      for (data::Value v : structure.EvaluationDomain()) {
        out.AddRow(data::Tuple{v});
      }
      return out;
    }
    ValuationSet out({lhs.text, rhs.text});
    for (data::Value v : structure.EvaluationDomain()) {
      out.AddRow(data::Tuple{v, v});
    }
    return out;
  }
  // One variable, one constant.
  const Term& var = lhs.is_variable() ? lhs : rhs;
  const Term& con = lhs.is_constant() ? lhs : rhs;
  WSV_ASSIGN_OR_RETURN(data::Value cv, ResolveConstant(con.text));
  ValuationSet out({var.text});
  out.AddRow(data::Tuple{cv});
  return out;
}

Result<ValuationSet> Evaluator::Evaluate(const FormulaPtr& formula,
                                         const StructureView& structure) const {
  const data::Domain& domain = structure.EvaluationDomain();
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return ValuationSet::UnitTrue();
    case FormulaKind::kFalse:
      return ValuationSet::UnitFalse();
    case FormulaKind::kAtom:
      return EvalAtom(*formula, structure);
    case FormulaKind::kEquality:
      return EvalEquality(*formula, structure);
    case FormulaKind::kNot: {
      WSV_ASSIGN_OR_RETURN(ValuationSet inner,
                           Evaluate(formula->child(0), structure));
      return inner.ComplementWithin(domain);
    }
    case FormulaKind::kAnd: {
      WSV_ASSIGN_OR_RETURN(ValuationSet acc,
                           Evaluate(formula->child(0), structure));
      for (size_t i = 1; i < formula->children().size(); ++i) {
        // Short-circuit: joining with an empty set stays empty only if the
        // remaining conjuncts introduce no new variables, so only skip work
        // when provably empty regardless.
        WSV_ASSIGN_OR_RETURN(ValuationSet next,
                             Evaluate(formula->child(i), structure));
        acc = acc.Join(next);
      }
      return acc;
    }
    case FormulaKind::kOr: {
      WSV_ASSIGN_OR_RETURN(ValuationSet acc,
                           Evaluate(formula->child(0), structure));
      for (size_t i = 1; i < formula->children().size(); ++i) {
        WSV_ASSIGN_OR_RETURN(ValuationSet next,
                             Evaluate(formula->child(i), structure));
        acc = acc.UnionWith(next, domain);
      }
      return acc;
    }
    case FormulaKind::kImplies: {
      // a -> b  ==  not a or b.
      WSV_ASSIGN_OR_RETURN(ValuationSet a,
                           Evaluate(formula->child(0), structure));
      WSV_ASSIGN_OR_RETURN(ValuationSet b,
                           Evaluate(formula->child(1), structure));
      return a.ComplementWithin(domain).UnionWith(b, domain);
    }
    case FormulaKind::kExists: {
      WSV_ASSIGN_OR_RETURN(ValuationSet body,
                           Evaluate(formula->body(), structure));
      return body.ProjectAway(formula->bound_variables());
    }
    case FormulaKind::kForall: {
      // forall x: phi  ==  not exists x: not phi, computed relationally:
      // extend phi's valuations with the bound variables, complement,
      // project the bound variables away, complement again.
      WSV_ASSIGN_OR_RETURN(ValuationSet body,
                           Evaluate(formula->body(), structure));
      ValuationSet extended = body.Extend(formula->bound_variables(), domain);
      ValuationSet violations = extended.ComplementWithin(domain)
                                    .ProjectAway(formula->bound_variables());
      return violations.ComplementWithin(domain);
    }
  }
  return Status::Internal("unhandled formula kind");
}

Result<bool> Evaluator::EvaluateSentence(const FormulaPtr& formula,
                                         const StructureView& structure) const {
  WSV_ASSIGN_OR_RETURN(ValuationSet result, Evaluate(formula, structure));
  if (!result.variables().empty()) {
    return Status::InvalidSpec("formula is not a sentence; free variables: " +
                               formula->ToString());
  }
  return result.IsSatisfiable();
}

Result<data::Relation> Evaluator::EvaluateQuery(
    const FormulaPtr& formula, const std::vector<std::string>& head_vars,
    const StructureView& structure) const {
  WSV_ASSIGN_OR_RETURN(ValuationSet result, Evaluate(formula, structure));
  // Free variables of the body must all be head variables (checked by spec
  // validation); head variables missing from the body range over the domain.
  return result.ToRelation(head_vars, structure.EvaluationDomain());
}

}  // namespace wsv::fo
