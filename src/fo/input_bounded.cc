#include "fo/input_bounded.h"

#include <set>
#include <string>
#include <vector>

namespace wsv::fo {

const char* RelClassName(RelClass c) {
  switch (c) {
    case RelClass::kDatabase: return "database";
    case RelClass::kState: return "state";
    case RelClass::kQueueState: return "queue-state";
    case RelClass::kInput: return "input";
    case RelClass::kPrevInput: return "previous-input";
    case RelClass::kAction: return "action";
    case RelClass::kInFlat: return "flat in-queue";
    case RelClass::kInNested: return "nested in-queue";
    case RelClass::kOutFlat: return "flat out-queue";
    case RelClass::kOutNested: return "nested out-queue";
    case RelClass::kMove: return "move";
    case RelClass::kReceived: return "received";
    case RelClass::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

bool IsGuardClass(RelClass c, const InputBoundedOptions& options) {
  switch (c) {
    case RelClass::kInput:
    case RelClass::kPrevInput:
    case RelClass::kInFlat:
    case RelClass::kOutFlat:
      return true;
    case RelClass::kDatabase:
      return options.allow_database_guards;
    default:
      return false;
  }
}

/// Classes whose atoms may not contain bound variables (the β atoms of the
/// formation rule).
bool IsRestrictedClass(RelClass c) {
  return c == RelClass::kState || c == RelClass::kAction ||
         c == RelClass::kInNested;
}

/// Collects the top-level positive atom conjuncts of `f` into `atoms`
/// (flattening nested conjunctions).
void CollectConjunctAtoms(const FormulaPtr& f, std::vector<FormulaPtr>& atoms) {
  if (f->kind() == FormulaKind::kAtom) {
    atoms.push_back(f);
    return;
  }
  if (f->kind() == FormulaKind::kAnd) {
    for (const FormulaPtr& c : f->children()) CollectConjunctAtoms(c, atoms);
  }
}

/// Checks that no atom of a restricted class anywhere inside `f` uses a
/// variable from `bound`.
Status CheckRestrictedAtoms(const FormulaPtr& f,
                            const std::set<std::string>& bound,
                            const SymbolClassifier& classifier) {
  if (f->kind() == FormulaKind::kAtom) {
    RelClass c = classifier.Classify(f->relation());
    if (IsRestrictedClass(c)) {
      for (const Term& t : f->terms()) {
        if (t.is_variable() && bound.count(t.text) > 0) {
          return Status::UndecidableRegime(
              "not input-bounded: quantified variable '" + t.text +
              "' occurs in " + std::string(RelClassName(c)) + " atom " +
              f->ToString() +
              " (Section 3.1 forbids quantification into state, action and "
              "nested in-queue atoms)");
        }
      }
    }
    return Status::Ok();
  }
  if (f->kind() == FormulaKind::kExists || f->kind() == FormulaKind::kForall) {
    // Inner quantifiers shadowing a bound variable remove it from scope.
    std::set<std::string> inner = bound;
    for (const std::string& v : f->bound_variables()) inner.erase(v);
    return CheckRestrictedAtoms(f->body(), inner, classifier);
  }
  for (const FormulaPtr& c : f->children()) {
    WSV_RETURN_IF_ERROR(CheckRestrictedAtoms(c, bound, classifier));
  }
  return Status::Ok();
}

Status CheckQuantifierNode(const FormulaPtr& f,
                           const SymbolClassifier& classifier,
                           const InputBoundedOptions& options) {
  // Identify the guard region: for exists, the whole body's top-level
  // conjuncts; for forall, the antecedent of the body implication.
  FormulaPtr guard_region;
  if (f->kind() == FormulaKind::kExists) {
    guard_region = f->body();
  } else {
    if (f->body()->kind() != FormulaKind::kImplies) {
      return Status::UndecidableRegime(
          "not input-bounded: universal quantifier body must have the form "
          "'guard -> phi', got: " +
          f->body()->ToString());
    }
    guard_region = f->body()->child(0);
  }

  std::vector<FormulaPtr> guard_atoms;
  CollectConjunctAtoms(guard_region, guard_atoms);

  // Every bound variable must occur in some guard-class atom.
  for (const std::string& v : f->bound_variables()) {
    bool covered = false;
    for (const FormulaPtr& atom : guard_atoms) {
      if (!IsGuardClass(classifier.Classify(atom->relation()), options)) {
        continue;
      }
      for (const Term& t : atom->terms()) {
        if (t.is_variable() && t.text == v) {
          covered = true;
          break;
        }
      }
      if (covered) break;
    }
    if (!covered) {
      return Status::UndecidableRegime(
          "not input-bounded: quantified variable '" + v +
          "' is not covered by any input, previous-input, or flat-queue "
          "guard atom in " +
          f->ToString());
    }
  }

  // No bound variable may appear in a restricted-class atom in the body.
  std::set<std::string> bound(f->bound_variables().begin(),
                              f->bound_variables().end());
  return CheckRestrictedAtoms(f->body(), bound, classifier);
}

}  // namespace

Status CheckInputBounded(const FormulaPtr& formula,
                         const SymbolClassifier& classifier,
                         const InputBoundedOptions& options) {
  switch (formula->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
    case FormulaKind::kEquality:
      return Status::Ok();
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      WSV_RETURN_IF_ERROR(CheckQuantifierNode(formula, classifier, options));
      return CheckInputBounded(formula->body(), classifier, options);
    default:
      for (const FormulaPtr& c : formula->children()) {
        WSV_RETURN_IF_ERROR(CheckInputBounded(c, classifier, options));
      }
      return Status::Ok();
  }
}

namespace {

/// Polarity-aware scan: rejects universal quantification (and existential
/// quantification under negative polarity, which is universal in disguise),
/// and requires ground state/nested-queue atoms.
Status CheckExistentialGround(const FormulaPtr& f, bool positive,
                              const SymbolClassifier& classifier) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquality:
      return Status::Ok();
    case FormulaKind::kAtom: {
      RelClass c = classifier.Classify(f->relation());
      if (c == RelClass::kState || c == RelClass::kInNested ||
          c == RelClass::kOutNested) {
        for (const Term& t : f->terms()) {
          if (t.is_variable()) {
            return Status::UndecidableRegime(
                "input/flat-send rule is not input-bounded: " +
                std::string(RelClassName(c)) + " atom " + f->ToString() +
                " must be ground (Section 3.1, condition 2; relaxation is "
                "undecidable per Theorem 3.10)");
          }
        }
      }
      return Status::Ok();
    }
    case FormulaKind::kNot:
      return CheckExistentialGround(f->child(0), !positive, classifier);
    case FormulaKind::kImplies:
      WSV_RETURN_IF_ERROR(
          CheckExistentialGround(f->child(0), !positive, classifier));
      return CheckExistentialGround(f->child(1), positive, classifier);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f->children()) {
        WSV_RETURN_IF_ERROR(CheckExistentialGround(c, positive, classifier));
      }
      return Status::Ok();
    case FormulaKind::kExists:
      if (!positive) {
        return Status::UndecidableRegime(
            "input/flat-send rule is not an exists-only formula: existential "
            "quantifier under negation in " +
            f->ToString());
      }
      return CheckExistentialGround(f->body(), positive, classifier);
    case FormulaKind::kForall:
      if (positive) {
        return Status::UndecidableRegime(
            "input/flat-send rule is not an exists-only formula: universal "
            "quantifier in " +
            f->ToString());
      }
      return CheckExistentialGround(f->body(), positive, classifier);
  }
  return Status::Internal("unhandled formula kind");
}

}  // namespace

Status CheckExistentialGroundRule(const FormulaPtr& formula,
                                  const SymbolClassifier& classifier) {
  return CheckExistentialGround(formula, /*positive=*/true, classifier);
}

}  // namespace wsv::fo
