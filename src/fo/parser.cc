#include "fo/parser.h"

#include <vector>

namespace wsv::fo {

std::string NormalizeRelationName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool at_segment_start = true;
  for (char c : name) {
    if (at_segment_start && (c == '?' || c == '!')) {
      at_segment_start = false;
      continue;
    }
    if (c == '.') {
      at_segment_start = true;
    } else {
      at_segment_start = false;
    }
    out.push_back(c);
  }
  return out;
}

namespace {

class FoParser {
 public:
  explicit FoParser(TokenCursor& cursor) : cur_(cursor) {}

  Result<FormulaPtr> ParseImplies() {
    WSV_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseOr());
    if (cur_.TryConsume(TokenKind::kArrow)) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseImplies());
      return Formula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

 private:
  Result<FormulaPtr> ParseOr() {
    WSV_ASSIGN_OR_RETURN(FormulaPtr first, ParseAnd());
    std::vector<FormulaPtr> parts{std::move(first)};
    while (cur_.TryConsumeIdent("or")) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Formula::Or(std::move(parts));
  }

  Result<FormulaPtr> ParseAnd() {
    WSV_ASSIGN_OR_RETURN(FormulaPtr first, ParseUnary());
    std::vector<FormulaPtr> parts{std::move(first)};
    while (cur_.TryConsumeIdent("and")) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return Formula::And(std::move(parts));
  }

  Result<FormulaPtr> ParseUnary() {
    if (cur_.TryConsumeIdent("not")) {
      WSV_ASSIGN_OR_RETURN(FormulaPtr inner, ParseUnary());
      return Formula::Not(std::move(inner));
    }
    if (cur_.Peek().kind == TokenKind::kIdent &&
        (cur_.Peek().text == "exists" || cur_.Peek().text == "forall")) {
      bool is_exists = cur_.Next().text == "exists";
      WSV_ASSIGN_OR_RETURN(std::vector<std::string> vars, ParseVarList());
      WSV_RETURN_IF_ERROR(
          cur_.Expect(TokenKind::kColon, "quantifier").status());
      // Quantifier bodies extend maximally to the right.
      WSV_ASSIGN_OR_RETURN(FormulaPtr body, ParseImplies());
      return is_exists ? Formula::Exists(std::move(vars), std::move(body))
                       : Formula::Forall(std::move(vars), std::move(body));
    }
    return ParsePrimary();
  }

  Result<std::vector<std::string>> ParseVarList() {
    std::vector<std::string> vars;
    while (true) {
      WSV_ASSIGN_OR_RETURN(Token t,
                           cur_.Expect(TokenKind::kIdent, "variable list"));
      vars.push_back(t.text);
      if (!cur_.TryConsume(TokenKind::kComma)) break;
    }
    return vars;
  }

  Result<FormulaPtr> ParsePrimary() {
    const Token& t = cur_.Peek();
    switch (t.kind) {
      case TokenKind::kLParen: {
        cur_.Next();
        WSV_ASSIGN_OR_RETURN(FormulaPtr inner, ParseImplies());
        WSV_RETURN_IF_ERROR(
            cur_.Expect(TokenKind::kRParen, "parenthesized formula").status());
        return inner;
      }
      case TokenKind::kLBracket: {
        // '[' ... ']' is an alternative grouping (the paper's display style).
        cur_.Next();
        WSV_ASSIGN_OR_RETURN(FormulaPtr inner, ParseImplies());
        WSV_RETURN_IF_ERROR(
            cur_.Expect(TokenKind::kRBracket, "bracketed formula").status());
        return inner;
      }
      case TokenKind::kString:
      case TokenKind::kNumber: {
        // Constant on the left of an equality.
        Term lhs = Term::Constant(cur_.Next().text);
        return ParseEqualityTail(std::move(lhs));
      }
      case TokenKind::kIdent: {
        if (t.text == "true") {
          cur_.Next();
          return Formula::True();
        }
        if (t.text == "false") {
          cur_.Next();
          return Formula::False();
        }
        std::string name = cur_.Next().text;
        if (cur_.Peek().kind == TokenKind::kLParen) {
          cur_.Next();
          std::vector<Term> terms;
          if (cur_.Peek().kind != TokenKind::kRParen) {
            while (true) {
              WSV_ASSIGN_OR_RETURN(Term term, ParseTerm());
              terms.push_back(std::move(term));
              if (!cur_.TryConsume(TokenKind::kComma)) break;
            }
          }
          WSV_RETURN_IF_ERROR(
              cur_.Expect(TokenKind::kRParen, "atom").status());
          return Formula::Atom(NormalizeRelationName(name), std::move(terms));
        }
        if (cur_.Peek().kind == TokenKind::kEquals ||
            cur_.Peek().kind == TokenKind::kNotEquals) {
          return ParseEqualityTail(Term::Variable(name));
        }
        // Propositional (0-ary) atom.
        return Formula::Atom(NormalizeRelationName(name), {});
      }
      default:
        return cur_.ErrorHere("expected a formula, found '" + t.text + "'");
    }
  }

  Result<FormulaPtr> ParseEqualityTail(Term lhs) {
    bool negated = false;
    if (cur_.TryConsume(TokenKind::kNotEquals)) {
      negated = true;
    } else {
      WSV_RETURN_IF_ERROR(cur_.Expect(TokenKind::kEquals, "equality").status());
    }
    WSV_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    FormulaPtr eq = Formula::Equality(std::move(lhs), std::move(rhs));
    return negated ? Formula::Not(std::move(eq)) : eq;
  }

  Result<Term> ParseTerm() {
    const Token& t = cur_.Peek();
    switch (t.kind) {
      case TokenKind::kIdent:
        return Term::Variable(cur_.Next().text);
      case TokenKind::kString:
      case TokenKind::kNumber:
        return Term::Constant(cur_.Next().text);
      default:
        return cur_.ErrorHere("expected a term, found '" + t.text + "'");
    }
  }

  TokenCursor& cur_;
};

}  // namespace

Result<FormulaPtr> ParseFormulaAt(TokenCursor& cursor) {
  FoParser parser(cursor);
  return parser.ParseImplies();
}

Result<FormulaPtr> ParseFormula(std::string_view source) {
  WSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  TokenCursor cursor(std::move(tokens));
  WSV_ASSIGN_OR_RETURN(FormulaPtr formula, ParseFormulaAt(cursor));
  if (!cursor.AtEnd()) {
    return cursor.ErrorHere("trailing input after formula");
  }
  return formula;
}

}  // namespace wsv::fo
