#ifndef WSVERIFY_GEN_RNG_H_
#define WSVERIFY_GEN_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsv::gen {

/// Deterministic SplitMix64 generator. The standard <random> engines are
/// reproducible, but the distribution adaptors are not pinned across
/// standard libraries — and byte-identical generation across platforms,
/// runs and --jobs settings is the whole contract of the composition
/// generator — so the generator draws through this fixed algorithm only.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {
    // Decorrelate small consecutive seeds before the first draw.
    Next();
    Next();
  }

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish draw in [0, n); 0 when n == 0. Modulo bias is irrelevant
  /// for fuzzing draws over tiny ranges.
  size_t Below(size_t n) {
    return n == 0 ? 0 : static_cast<size_t>(Next() % n);
  }

  /// Inclusive range draw.
  size_t Between(size_t lo, size_t hi) {
    return lo >= hi ? lo : lo + Below(hi - lo + 1);
  }

  /// True with probability percent/100.
  bool Chance(size_t percent) { return Below(100) < percent; }

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

  /// Derives an independent stream (e.g. one per composition index) without
  /// correlating neighboring seeds.
  static uint64_t DeriveSeed(uint64_t base, uint64_t index) {
    Rng mix(base ^ (0xd1342543de82ef95ULL * (index + 1)));
    return mix.Next();
  }

 private:
  uint64_t state_;
};

}  // namespace wsv::gen

#endif  // WSVERIFY_GEN_RNG_H_
