#ifndef WSVERIFY_GEN_GENERATOR_H_
#define WSVERIFY_GEN_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cfsm/cfsm.h"
#include "common/status.h"
#include "runtime/run_options.h"

namespace wsv::gen {

/// Cells of the decidability map the generator can target. Each regime
/// fixes the communication semantics and the family of rule/property
/// shapes so that a generated composition provably sits in the chosen
/// cell (see README "Differential fuzzing" for the map).
enum class Regime {
  /// Theorem 3.4's decidable core: closed composition, input-bounded
  /// rules and properties, lossy 1-bounded queues.
  kCore,
  /// Perfect flat channels (Theorem 3.7's undecidable boundary); the
  /// bounded exploration is still sound and fully deterministic, so every
  /// differential leg must agree on the explored space.
  kPerfect,
  /// Recency-bounded channels (Abdulla et al., PAPERS.md): lossy queues
  /// with bound R >= 2 and head-reactive rules, approximating the
  /// recency abstraction by bounded-lossy exploration — an additional
  /// decidable class beyond input-boundedness.
  kRecency,
  /// Theorem 3.8 semantics: deterministic flat sends — a send rule with
  /// several candidate tuples sends nothing and raises the error flag.
  kDetFlat,
  /// DCDS-style external services (Bagheri Hariri et al., PAPERS.md): an
  /// open composition whose source peer is replaced by the environment,
  /// verified modularly against a strict env spec (Theorem 5.4).
  kExternal,
  /// The CFSM special case (Section 6): propositional schemas, no
  /// database — a random communicating-FSM system embedded as a
  /// composition, cross-checked against the exact CFSM explorer.
  kCfsm,
};

inline constexpr size_t kNumRegimes = 6;

const char* RegimeName(Regime regime);
std::optional<Regime> RegimeFromName(const std::string& name);
/// All regimes in declaration order.
std::vector<Regime> AllRegimes();

/// The shrinkable size dials of a generated composition. Shrinking walks
/// these down (respecting the minimums) while a differential mismatch
/// persists, so the committed repro is minimal along every axis.
struct Dials {
  size_t num_peers = 3;        // chain length, >= 2
  size_t num_constants = 2;    // constant pool "c0".."c<n-1>", >= 1
  size_t max_extra_rules = 2;  // optional embellishments, >= 0
  size_t fresh = 1;            // fresh pseudo-domain elements, >= 1
  size_t queue_bound = 1;      // >= 1 (recency regime draws 2..3)

  bool operator==(const Dials&) const = default;
  std::string ToString() const;
};

struct GenOptions {
  uint64_t seed = 0;
  Regime regime = Regime::kCore;
  Dials dials;
};

/// One generated verification problem: the composition (as canonical DSL
/// text — the printer is the generator's only output path), the property
/// or protocol to check, and the run semantics of its regime. Everything a
/// differential leg needs; everything a corpus file records.
struct Scenario {
  GenOptions options;
  std::string name;  // "fuzz_<regime>_<seed>"

  /// Canonical spec text: PrintComposition of the generated composition.
  /// Guaranteed fixpoint: parse(spec_text) re-prints to the same bytes.
  std::string spec_text;

  /// LTL-FO property for the engine / modular legs (empty = none).
  std::string property;
  /// Protocol LTL over channel names (kCfsm scenarios).
  std::string protocol_ltl;
  /// Environment spec + message candidates + quantifier domain (kExternal
  /// scenarios, verified by the modular verifier).
  std::string env_spec;
  std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>
      env_messages;
  std::vector<std::string> env_domain;

  /// Pinned databases as "Peer.relation=v1,v2;v3,v4" flags (empty = sweep
  /// the canonical database enumeration).
  std::vector<std::string> pinned_dbs;

  runtime::RunOptions run;
  size_t fresh = 1;
  size_t max_states = 400000;
  bool use_modular = false;

  /// kCfsm cross-check payload: the source CFSM system and the control
  /// target the property negates (property holds iff target unreachable).
  bool has_cfsm = false;
  cfsm::CfsmSystem cfsm_system;
  std::vector<size_t> cfsm_target;
};

/// Generates one scenario. Deterministic: the same options produce
/// byte-identical spec_text/property across runs, platforms and thread
/// counts. Fails (kInternal) only on a generator bug — every generated
/// composition must validate and round-trip through the parser.
Result<Scenario> GenerateScenario(const GenOptions& options);

}  // namespace wsv::gen

#endif  // WSVERIFY_GEN_GENERATOR_H_
