#ifndef WSVERIFY_GEN_DIFFER_H_
#define WSVERIFY_GEN_DIFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gen/generator.h"

namespace wsv::gen {

/// One verifier leg's observable outcome, normalized to what wsvc-merge
/// compares across shards: verdict, witness indices, covered intervals.
struct LegResult {
  std::string name;  // "engine", "engine-jobs2", "engine-symbolic", ...
  std::string verdict = "incomplete";  // "violated" | "holds" | "incomplete"
  bool has_witness = false;
  uint64_t witness_db_index = 0;
  uint64_t witness_valuation_index = 0;
  /// IntervalsToString of the covered set ("" when the leg has no coverage
  /// notion, e.g. the CFSM explorer).
  std::string covered;
  std::string unit;
  std::string stop_reason;
  /// Non-empty when the leg failed to run at all (spec/property rejected,
  /// internal error) — always a mismatch.
  std::string error;
};

struct DiffOptions {
  /// Thread count of the parallel legs (serial-vs-jobs differential).
  size_t jobs = 2;
  /// Shard count of the sharded + merged leg (whole-vs-sharded
  /// differential); sharding is skipped when the enumeration is smaller.
  size_t shards = 2;
  /// Test hook: flip this leg's verdict after it runs, simulating a buggy
  /// verifier so the mismatch -> shrink -> repro pipeline can be exercised
  /// end to end ("" = off). Also settable via the WSV_FUZZ_BREAK
  /// environment variable in wsvc-fuzz.
  std::string break_leg;
};

/// The outcome of running every applicable leg of one scenario.
struct ScenarioVerdict {
  /// True when every leg pair that must agree did agree.
  bool ok = false;
  /// Human-readable description of the first disagreement ("" when ok).
  std::string detail;
  std::vector<LegResult> legs;
};

/// Runs every verifier leg applicable to the scenario's regime and
/// cross-compares verdicts, witness indices and coverage:
///
///  * engine serial vs `jobs` vs symbolic valuations vs sharded + merged
///    (closed regimes; the CFSM embedding adds the exact explorer and a
///    data-agnostic protocol leg);
///  * modular serial vs `jobs` vs symbolic vs sharded + merged (external
///    regime, against the scenario's environment spec).
///
/// A Status error means the harness itself could not run (generator bug);
/// verifier disagreements are reported in ScenarioVerdict, not as errors.
Result<ScenarioVerdict> RunDifferential(const Scenario& scenario,
                                        const DiffOptions& options);

/// Greedy minimization: re-generates the scenario's (seed, regime) at
/// smaller dials — fewer peers, fewer constants, fewer extra rules, smaller
/// domain, smaller queue bound — accepting each step while the mismatch
/// persists. Returns the smallest still-failing scenario.
struct ShrinkResult {
  Scenario scenario;
  ScenarioVerdict verdict;
  size_t attempts = 0;
};
Result<ShrinkResult> Shrink(const Scenario& scenario,
                            const DiffOptions& options);

/// Renders a self-contained corpus repro: `//!` directive header (seed,
/// regime, dials, property, run semantics, pinned databases, diff options,
/// mismatch detail) followed by the spec text.
std::string RenderCorpusFile(const Scenario& scenario,
                             const DiffOptions& options,
                             const ScenarioVerdict& verdict);

/// Parses a corpus file back into a replayable scenario. When the
/// recorded (seed, regime, dials) still generate byte-identical spec text,
/// the full generated scenario is used (including the CFSM cross-check
/// payload); otherwise the recorded text and directives stand alone, so
/// committed repros outlive generator evolution. The recorded break-leg is
/// NOT replayed: a repro must reproduce honestly or pass.
struct CorpusCase {
  Scenario scenario;
  DiffOptions diff;
  /// True when the scenario was re-generated from (seed, regime, dials).
  bool regenerated = false;
};
Result<CorpusCase> ParseCorpusFile(const std::string& text);

}  // namespace wsv::gen

#endif  // WSVERIFY_GEN_DIFFER_H_
