#include "gen/differ.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "cfsm/cfsm.h"
#include "common/strings.h"
#include "ltl/property.h"
#include "modular/env_spec.h"
#include "modular/modular_verifier.h"
#include "protocol/ltl_protocol.h"
#include "protocol/protocol_verifier.h"
#include "spec/parser.h"
#include "verifier/checkpoint.h"
#include "verifier/merge.h"
#include "verifier/verifier.h"

namespace wsv::gen {
namespace {

using spec::Composition;
using verifier::IndexInterval;
using verifier::VerificationResult;

std::string Fingerprint(const Scenario& scenario) {
  return verifier::FingerprintParts(
      {scenario.spec_text, scenario.property, scenario.env_spec});
}

/// Maps a VerificationResult to the merge verdict vocabulary: a violation
/// is always "violated"; "holds" requires enumerator exhaustion (the same
/// attestation wsvc-merge demands before merging shards to "holds"), and
/// anything weaker — budget, deadline, range-end — is "incomplete".
std::string VerdictOf(const VerificationResult& result) {
  if (!result.holds) return "violated";
  return result.coverage.stop_reason == StopReason::kComplete ? "holds"
                                                              : "incomplete";
}

LegResult LegFromResult(std::string name, const VerificationResult& result) {
  LegResult leg;
  leg.name = std::move(name);
  leg.verdict = VerdictOf(result);
  if (result.counterexample.has_value()) {
    leg.has_witness = true;
    leg.witness_db_index = result.counterexample->database_index;
    leg.witness_valuation_index = result.counterexample->valuation_index;
  }
  leg.covered = verifier::IntervalsToString(result.coverage.covered);
  leg.unit = result.coverage.unit;
  leg.stop_reason = StopReasonName(result.coverage.stop_reason);
  return leg;
}

LegResult LegError(std::string name, const Status& status) {
  LegResult leg;
  leg.name = std::move(name);
  leg.error = status.ToString();
  return leg;
}

/// Parses "Peer.relation=v1,v2;v3" pinned-database flags (the wsvc --db
/// format) into per-peer NamedDatabase maps.
Result<std::vector<verifier::NamedDatabase>> BuildPinnedDatabases(
    const Composition& comp, const std::vector<std::string>& flags) {
  std::vector<verifier::NamedDatabase> dbs(comp.peers().size());
  for (const std::string& flag : flags) {
    size_t eq = flag.find('=');
    size_t dot = flag.find('.');
    if (eq == std::string::npos || dot == std::string::npos || dot > eq) {
      return Status::ParseError("bad pinned-db flag: " + flag);
    }
    std::string peer = flag.substr(0, dot);
    std::string relation = flag.substr(dot + 1, eq - dot - 1);
    size_t index = comp.PeerIndex(peer);
    if (index == Composition::kNpos) {
      return Status::NotFound("pinned-db flag names unknown peer: " + flag);
    }
    auto& rel = dbs[index][relation];
    for (const std::string& row : Split(flag.substr(eq + 1), ';')) {
      if (row.empty()) continue;
      rel.push_back(Split(row, ','));
    }
  }
  return dbs;
}

struct EngineLegConfig {
  size_t jobs = 1;
  verifier::ValuationMode mode = verifier::ValuationMode::kConcrete;
  size_t range_lo = 0;
  size_t range_hi = static_cast<size_t>(-1);
  bool count_only = false;
};

/// One engine run (closed compositions and the CFSM embedding).
Result<VerificationResult> RunEngine(const Composition& comp,
                                     const ltl::Property& property,
                                     const Scenario& scenario,
                                     const EngineLegConfig& config) {
  verifier::VerifierOptions options;
  options.run = scenario.run;
  options.fresh_domain_size = scenario.fresh;
  options.budget.max_states = scenario.max_states;
  options.jobs = config.jobs;
  options.valuation_mode = config.mode;
  options.count_only = config.count_only;
  bool pinned = !scenario.pinned_dbs.empty();
  if (pinned) {
    WSV_ASSIGN_OR_RETURN(auto dbs,
                         BuildPinnedDatabases(comp, scenario.pinned_dbs));
    options.fixed_databases = std::move(dbs);
    options.valuation_range_lo = config.range_lo;
    options.valuation_range_hi = config.range_hi;
  } else {
    options.db_range_lo = config.range_lo;
    options.db_range_hi = config.range_hi;
  }
  verifier::Verifier engine(&comp, std::move(options));
  return engine.Verify(property);
}

/// One modular run (the external-services regime).
Result<VerificationResult> RunModular(const Composition& comp,
                                      const ltl::Property& property,
                                      const modular::EnvironmentSpec& env,
                                      const Scenario& scenario,
                                      const EngineLegConfig& config) {
  modular::ModularVerifierOptions options;
  options.run = scenario.run;
  for (const auto& [channel, tuples] : scenario.env_messages) {
    options.run.env_message_candidates[channel] = tuples;
  }
  options.fresh_domain_size = scenario.fresh;
  options.budget.max_states = scenario.max_states;
  options.jobs = config.jobs;
  options.valuation_mode = config.mode;
  options.count_only = config.count_only;
  options.db_range_lo = config.range_lo;
  options.db_range_hi = config.range_hi;
  options.env_quantifier_domain = scenario.env_domain;
  modular::ModularVerifier verifier(&comp, std::move(options));
  return verifier.Verify(property, env);
}

using LegRunner =
    std::function<Result<VerificationResult>(const EngineLegConfig&)>;

/// Runs the sharded + merged leg: counts the enumeration, splits it into
/// ranges, runs each shard, and folds the ShardReports through the same
/// MergeShards wsvc-merge uses. Returns no leg when the space is too small
/// to shard or the base leg did not finish (shards re-explore with
/// independent budgets, so whole-vs-sharded is only a fair comparison on
/// finished runs).
Result<std::optional<LegResult>> RunShardedLeg(
    const std::string& name, const LegRunner& runner, const Scenario& scenario,
    const LegResult& base, size_t shards) {
  if (base.verdict == "incomplete" || !base.error.empty()) {
    return std::optional<LegResult>();
  }
  EngineLegConfig count_config;
  count_config.count_only = true;
  WSV_ASSIGN_OR_RETURN(VerificationResult counted, runner(count_config));
  const uint64_t total = counted.enumeration_count;
  if (total < 2 || shards < 2) return std::optional<LegResult>();
  const uint64_t num_shards = std::min<uint64_t>(shards, total);
  std::vector<verifier::ShardReport> reports;
  for (uint64_t s = 0; s < num_shards; ++s) {
    EngineLegConfig config;
    config.range_lo = total * s / num_shards;
    config.range_hi = s + 1 == num_shards ? static_cast<size_t>(-1)
                                          : total * (s + 1) / num_shards;
    WSV_ASSIGN_OR_RETURN(VerificationResult result, runner(config));
    verifier::ShardReport report;
    report.source = name + "[" + std::to_string(s) + "]";
    report.fingerprint = Fingerprint(scenario);
    report.holds = result.holds;
    if (result.counterexample.has_value()) {
      report.has_witness = true;
      report.witness_db_index = result.counterexample->database_index;
      report.witness_valuation_index = result.counterexample->valuation_index;
    }
    report.covered = result.coverage.covered;
    report.unit = result.coverage.unit;
    report.range_lo = result.coverage.range_lo;
    report.range_hi = result.coverage.range_hi;
    report.stop_reason = StopReasonName(result.coverage.stop_reason);
    reports.push_back(std::move(report));
  }
  WSV_ASSIGN_OR_RETURN(verifier::MergeReport merged,
                       verifier::MergeShards(reports));
  LegResult leg;
  leg.name = name;
  leg.verdict = merged.verdict;
  leg.has_witness = merged.has_witness;
  leg.witness_db_index = merged.witness_db_index;
  leg.witness_valuation_index = merged.witness_valuation_index;
  leg.covered = verifier::IntervalsToString(merged.covered);
  leg.unit = merged.unit;
  leg.stop_reason = merged.complete ? "complete" : "range-end";
  return std::optional<LegResult>(std::move(leg));
}

std::string DescribeLeg(const LegResult& leg) {
  std::ostringstream out;
  out << leg.name << "{verdict=" << leg.verdict;
  if (!leg.error.empty()) out << " error=" << leg.error;
  if (leg.has_witness) {
    out << " witness=" << leg.witness_db_index << "/"
        << leg.witness_valuation_index;
  }
  if (!leg.covered.empty()) {
    out << " covered=" << leg.covered << " unit=" << leg.unit
        << " stop=" << leg.stop_reason;
  }
  out << "}";
  return out.str();
}

/// Applies the broken-verifier test hook.
void MaybeBreak(const DiffOptions& options, LegResult* leg) {
  if (options.break_leg.empty() || leg->name != options.break_leg) return;
  if (leg->verdict == "violated") {
    leg->verdict = "holds";
    leg->has_witness = false;
  } else {
    leg->verdict = "violated";
    leg->has_witness = true;
    leg->witness_db_index = 0;
    leg->witness_valuation_index = 0;
  }
}

/// Cross-compares the legs of one family (same verification problem). The
/// first `whole` legs are full-space runs and must agree exactly; a merged
/// shard leg must agree on verdict and witness, and on coverage only for a
/// complete "holds" (a violated whole run caps its coverage at the witness
/// while shards beyond it finish their ranges — both are correct).
void CompareFamily(const std::vector<const LegResult*>& whole,
                   const LegResult* merged, std::string* detail) {
  if (!detail->empty() || whole.empty()) return;
  const LegResult& base = *whole[0];
  auto mismatch = [&](const LegResult& leg, const std::string& what) {
    *detail = what + ": " + DescribeLeg(base) + " vs " + DescribeLeg(leg);
  };
  for (const LegResult* leg : whole) {
    if (!leg->error.empty()) {
      *detail = "leg failed: " + DescribeLeg(*leg);
      return;
    }
  }
  for (size_t i = 1; i < whole.size(); ++i) {
    const LegResult& leg = *whole[i];
    if (leg.verdict != base.verdict) return mismatch(leg, "verdict mismatch");
    if (leg.has_witness != base.has_witness ||
        (leg.has_witness &&
         (leg.witness_db_index != base.witness_db_index ||
          leg.witness_valuation_index != base.witness_valuation_index))) {
      return mismatch(leg, "witness mismatch");
    }
    if (leg.covered != base.covered || leg.unit != base.unit ||
        leg.stop_reason != base.stop_reason) {
      return mismatch(leg, "coverage mismatch");
    }
  }
  if (merged != nullptr) {
    if (merged->verdict != base.verdict) {
      return mismatch(*merged, "sharded-merge verdict mismatch");
    }
    if (merged->has_witness != base.has_witness ||
        (merged->has_witness &&
         (merged->witness_db_index != base.witness_db_index ||
          merged->witness_valuation_index != base.witness_valuation_index))) {
      return mismatch(*merged, "sharded-merge witness mismatch");
    }
    if (base.verdict == "holds" && base.stop_reason == "complete" &&
        (merged->covered != base.covered || merged->unit != base.unit)) {
      return mismatch(*merged, "sharded-merge coverage mismatch");
    }
  }
}

}  // namespace

Result<ScenarioVerdict> RunDifferential(const Scenario& scenario,
                                        const DiffOptions& options) {
  WSV_ASSIGN_OR_RETURN(Composition comp,
                       spec::ParseComposition(scenario.spec_text));
  ScenarioVerdict verdict;
  const size_t jobs = options.jobs < 2 ? 2 : options.jobs;

  auto add_leg = [&](LegResult leg) -> const LegResult& {
    MaybeBreak(options, &leg);
    verdict.legs.push_back(std::move(leg));
    return verdict.legs.back();
  };

  // Verdict-producing legs over the LTL-FO property.
  if (!scenario.property.empty()) {
    WSV_ASSIGN_OR_RETURN(ltl::Property property,
                         ltl::Property::Parse(scenario.property));
    std::optional<modular::EnvironmentSpec> env;
    if (scenario.use_modular) {
      WSV_ASSIGN_OR_RETURN(modular::EnvironmentSpec parsed,
                           modular::EnvironmentSpec::Parse(scenario.env_spec));
      env = std::move(parsed);
    }
    const std::string family = scenario.use_modular ? "modular" : "engine";
    LegRunner runner = [&](const EngineLegConfig& config) {
      return scenario.use_modular
                 ? RunModular(comp, property, *env, scenario, config)
                 : RunEngine(comp, property, scenario, config);
    };
    auto run_whole = [&](const std::string& name,
                         const EngineLegConfig& config) {
      Result<VerificationResult> result = runner(config);
      add_leg(result.ok() ? LegFromResult(name, result.value())
                          : LegError(name, result.status()));
    };
    run_whole(family, {});
    EngineLegConfig parallel;
    parallel.jobs = jobs;
    run_whole(family + "-jobs" + std::to_string(jobs), parallel);
    EngineLegConfig symbolic;
    symbolic.mode = verifier::ValuationMode::kSymbolic;
    run_whole(family + "-symbolic", symbolic);

    // Sharded + merged leg, driven off the (possibly broken) base leg.
    std::optional<LegResult> merged_leg;
    {
      Result<std::optional<LegResult>> sharded = RunShardedLeg(
          family + "-shards", runner, scenario, verdict.legs[0],
          options.shards);
      if (!sharded.ok()) {
        add_leg(LegError(family + "-shards", sharded.status()));
      } else if (sharded.value().has_value()) {
        merged_leg = add_leg(std::move(*sharded.value()));
      }
    }

    std::vector<const LegResult*> whole = {&verdict.legs[0], &verdict.legs[1],
                                           &verdict.legs[2]};
    CompareFamily(whole, merged_leg ? &verdict.legs.back() : nullptr,
                  &verdict.detail);
  }

  // CFSM scenarios: the exact explorer and a data-agnostic protocol leg.
  if (scenario.has_cfsm && verdict.detail.empty()) {
    const LegResult* engine_leg =
        verdict.legs.empty() ? nullptr : &verdict.legs[0];
    cfsm::ExploreOptions explore;
    explore.queue_bound = scenario.run.queue_bound;
    explore.lossy = scenario.run.lossy;
    Result<cfsm::ExploreResult> explored =
        cfsm::CfsmExplorer(&scenario.cfsm_system, explore)
            .Explore(scenario.cfsm_target);
    LegResult explorer;
    explorer.name = "cfsm-explorer";
    if (!explored.ok()) {
      explorer.error = explored.status().ToString();
    } else if (explored->budget_exhausted) {
      explorer.verdict = "incomplete";
    } else {
      explorer.verdict = explored->target_reached ? "violated" : "holds";
    }
    const LegResult& explorer_leg = add_leg(std::move(explorer));
    if (!explorer_leg.error.empty()) {
      verdict.detail = "leg failed: " + DescribeLeg(explorer_leg);
    } else if (engine_leg != nullptr && engine_leg->verdict == "violated" &&
               explorer_leg.verdict == "holds") {
      // Embedded runs are lossy-CFSM runs (the per-move queue drain maps to
      // losses), so a control pair the embedding reaches must be reachable
      // for the explorer; the converse does not hold.
      verdict.detail =
          "embedding reached a control pair the CFSM explorer proves "
          "unreachable: " +
          DescribeLeg(*engine_leg) + " vs " + DescribeLeg(explorer_leg);
    }
  }
  if (scenario.has_cfsm && !scenario.protocol_ltl.empty() &&
      verdict.detail.empty()) {
    auto run_protocol = [&](const std::string& name, size_t leg_jobs) {
      Result<protocol::ConversationProtocol> proto =
          protocol::DataAgnosticProtocolFromLtl(comp, scenario.protocol_ltl);
      if (!proto.ok()) {
        add_leg(LegError(name, proto.status()));
        return;
      }
      protocol::ProtocolVerifierOptions popts;
      popts.run = scenario.run;
      popts.fresh_domain_size = scenario.fresh;
      popts.budget.max_states = scenario.max_states;
      popts.jobs = leg_jobs;
      protocol::ProtocolVerifier verifier(&comp, std::move(popts));
      Result<VerificationResult> result = verifier.Verify(proto.value());
      add_leg(result.ok() ? LegFromResult(name, result.value())
                          : LegError(name, result.status()));
    };
    size_t first = verdict.legs.size();
    run_protocol("protocol", 1);
    run_protocol("protocol-jobs" + std::to_string(jobs), jobs);
    std::vector<const LegResult*> whole = {&verdict.legs[first],
                                           &verdict.legs[first + 1]};
    CompareFamily(whole, nullptr, &verdict.detail);
  }

  verdict.ok = verdict.detail.empty();
  return verdict;
}

Result<ShrinkResult> Shrink(const Scenario& scenario,
                            const DiffOptions& options) {
  ShrinkResult best;
  best.scenario = scenario;
  WSV_ASSIGN_OR_RETURN(best.verdict, RunDifferential(scenario, options));
  if (best.verdict.ok) return best;

  struct Axis {
    size_t Dials::* field;
    size_t min;
  };
  static constexpr Axis kAxes[] = {
      {&Dials::num_peers, 2},  {&Dials::num_constants, 1},
      {&Dials::max_extra_rules, 0}, {&Dials::fresh, 1},
      {&Dials::queue_bound, 1},
  };
  constexpr size_t kMaxAttempts = 48;
  GenOptions current = scenario.options;
  bool progress = true;
  while (progress && best.attempts < kMaxAttempts) {
    progress = false;
    for (const Axis& axis : kAxes) {
      while (current.dials.*axis.field > axis.min &&
             best.attempts < kMaxAttempts) {
        GenOptions trial = current;
        trial.dials.*axis.field -= 1;
        Result<Scenario> smaller = GenerateScenario(trial);
        if (!smaller.ok()) break;
        Result<ScenarioVerdict> outcome =
            RunDifferential(smaller.value(), options);
        ++best.attempts;
        if (!outcome.ok() || outcome.value().ok) break;
        current = trial;
        best.scenario = std::move(smaller).value();
        best.verdict = std::move(outcome).value();
        progress = true;
      }
    }
  }
  return best;
}

namespace {

std::string FirstLine(const std::string& text) {
  size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

std::string RenderRunOptions(const runtime::RunOptions& run) {
  std::ostringstream out;
  out << "queue_bound=" << run.queue_bound << " lossy=" << (run.lossy ? 1 : 0)
      << " perfect_nested=" << (run.perfect_nested ? 1 : 0)
      << " detflat=" << (run.deterministic_flat_sends ? 1 : 0)
      << " env=" << (run.allow_env_moves ? 1 : 0);
  return out.str();
}

Result<size_t> ParseSize(const std::string& text) {
  size_t value = 0;
  std::istringstream in(text);
  in >> value;
  if (in.fail() || !in.eof()) {
    return Status::ParseError("bad number in corpus directive: " + text);
  }
  return value;
}

Status ApplyKeyValues(const std::string& text,
                      const std::map<std::string, size_t*>& fields) {
  for (const std::string& part : Split(text, ' ')) {
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("bad key=value in corpus directive: " + part);
    }
    auto it = fields.find(part.substr(0, eq));
    if (it == fields.end()) {
      return Status::ParseError("unknown corpus key: " + part);
    }
    WSV_ASSIGN_OR_RETURN(*it->second, ParseSize(part.substr(eq + 1)));
  }
  return Status::Ok();
}

}  // namespace

std::string RenderCorpusFile(const Scenario& scenario,
                             const DiffOptions& options,
                             const ScenarioVerdict& verdict) {
  const Dials& d = scenario.options.dials;
  std::ostringstream out;
  out << "//! wsvc-fuzz repro\n";
  out << "//! seed: " << scenario.options.seed << "\n";
  out << "//! regime: " << RegimeName(scenario.options.regime) << "\n";
  out << "//! dials: " << d.ToString() << "\n";
  if (!scenario.property.empty()) {
    out << "//! property: " << scenario.property << "\n";
  }
  if (!scenario.protocol_ltl.empty()) {
    out << "//! protocol: " << scenario.protocol_ltl << "\n";
  }
  if (!scenario.env_spec.empty()) {
    out << "//! envspec: " << scenario.env_spec << "\n";
  }
  for (const auto& [channel, tuples] : scenario.env_messages) {
    std::vector<std::string> rows;
    for (const std::vector<std::string>& tuple : tuples) {
      rows.push_back(Join(tuple, ","));
    }
    out << "//! envmsg: " << channel << "=" << Join(rows, ";") << "\n";
  }
  if (!scenario.env_domain.empty()) {
    out << "//! envdomain: " << Join(scenario.env_domain, ",") << "\n";
  }
  for (const std::string& flag : scenario.pinned_dbs) {
    out << "//! db: " << flag << "\n";
  }
  out << "//! run: " << RenderRunOptions(scenario.run) << "\n";
  out << "//! fresh: " << scenario.fresh << "\n";
  out << "//! max-states: " << scenario.max_states << "\n";
  if (scenario.use_modular) out << "//! modular: 1\n";
  out << "//! legs: jobs=" << options.jobs << " shards=" << options.shards
      << "\n";
  if (!options.break_leg.empty()) {
    out << "//! break-leg: " << options.break_leg << "\n";
  }
  if (!verdict.detail.empty()) {
    out << "//! detail: " << FirstLine(verdict.detail) << "\n";
  }
  out << scenario.spec_text;
  return out.str();
}

Result<CorpusCase> ParseCorpusFile(const std::string& text) {
  std::map<std::string, std::string> directives;
  std::vector<std::string> db_flags;
  std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>
      env_messages;
  std::string spec_text;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!StartsWith(line, "//!")) {
      spec_text += line;
      spec_text += "\n";
      continue;
    }
    std::string body(Trim(line.substr(3)));
    size_t colon = body.find(':');
    if (colon == std::string::npos) continue;  // the "wsvc-fuzz repro" banner
    std::string key(Trim(body.substr(0, colon)));
    std::string value(Trim(body.substr(colon + 1)));
    if (key == "db") {
      db_flags.push_back(value);
    } else if (key == "envmsg") {
      size_t eq = value.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("bad envmsg directive: " + value);
      }
      std::vector<std::vector<std::string>> tuples;
      for (const std::string& row : Split(value.substr(eq + 1), ';')) {
        if (!row.empty()) tuples.push_back(Split(row, ','));
      }
      env_messages.emplace_back(value.substr(0, eq), std::move(tuples));
    } else {
      directives[key] = value;
    }
  }

  CorpusCase corpus;
  Scenario& scenario = corpus.scenario;
  auto regime = RegimeFromName(directives.count("regime")
                                   ? directives["regime"]
                                   : std::string());
  if (!regime.has_value()) {
    return Status::ParseError("corpus file missing/bad regime directive");
  }
  scenario.options.regime = *regime;
  if (directives.count("seed")) {
    WSV_ASSIGN_OR_RETURN(size_t seed, ParseSize(directives["seed"]));
    scenario.options.seed = seed;
  }
  if (directives.count("dials")) {
    Dials& d = scenario.options.dials;
    WSV_RETURN_IF_ERROR(ApplyKeyValues(
        directives["dials"],
        {{"peers", &d.num_peers},
         {"consts", &d.num_constants},
         {"rules", &d.max_extra_rules},
         {"fresh", &d.fresh},
         {"qb", &d.queue_bound}}));
  }
  if (directives.count("legs")) {
    WSV_RETURN_IF_ERROR(ApplyKeyValues(directives["legs"],
                                       {{"jobs", &corpus.diff.jobs},
                                        {"shards", &corpus.diff.shards}}));
  }

  // Prefer regenerating: when (seed, regime, dials) still produce the
  // recorded bytes the full scenario — including the CFSM cross-check
  // payload — replays; otherwise the recorded directives stand alone.
  Result<Scenario> regenerated = GenerateScenario(scenario.options);
  if (regenerated.ok() && regenerated.value().spec_text == spec_text) {
    corpus.scenario = std::move(regenerated).value();
    corpus.regenerated = true;
    return corpus;
  }

  scenario.spec_text = spec_text;
  scenario.name = "corpus_" + std::string(RegimeName(*regime));
  if (directives.count("property")) scenario.property = directives["property"];
  if (directives.count("protocol")) {
    scenario.protocol_ltl = directives["protocol"];
  }
  if (directives.count("envspec")) scenario.env_spec = directives["envspec"];
  if (directives.count("envdomain")) {
    for (const std::string& value : Split(directives["envdomain"], ',')) {
      if (!value.empty()) scenario.env_domain.push_back(value);
    }
  }
  scenario.env_messages = std::move(env_messages);
  scenario.pinned_dbs = std::move(db_flags);
  if (directives.count("run")) {
    size_t lossy = 1, perfect_nested = 0, detflat = 0, env = 0;
    WSV_RETURN_IF_ERROR(
        ApplyKeyValues(directives["run"],
                       {{"queue_bound", &scenario.run.queue_bound},
                        {"lossy", &lossy},
                        {"perfect_nested", &perfect_nested},
                        {"detflat", &detflat},
                        {"env", &env}}));
    scenario.run.lossy = lossy != 0;
    scenario.run.perfect_nested = perfect_nested != 0;
    scenario.run.deterministic_flat_sends = detflat != 0;
    scenario.run.allow_env_moves = env != 0;
  }
  if (directives.count("fresh")) {
    WSV_ASSIGN_OR_RETURN(scenario.fresh, ParseSize(directives["fresh"]));
  }
  if (directives.count("max-states")) {
    WSV_ASSIGN_OR_RETURN(scenario.max_states,
                         ParseSize(directives["max-states"]));
  }
  scenario.use_modular = directives.count("modular") != 0;
  // The CFSM system is not serialized; a drifted cfsm repro replays the
  // engine + protocol legs against the recorded embedding only.
  scenario.has_cfsm = false;
  if (*regime == Regime::kCfsm) scenario.protocol_ltl.clear();
  return corpus;
}

}  // namespace wsv::gen
