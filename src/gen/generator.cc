#include "gen/generator.h"

#include <sstream>
#include <utility>

#include "cfsm/embed.h"
#include "fo/formula.h"
#include "fo/term.h"
#include "gen/rng.h"
#include "spec/composition.h"
#include "spec/parser.h"
#include "spec/printer.h"

namespace wsv::gen {
namespace {

using fo::Formula;
using fo::FormulaPtr;
using fo::Term;
using spec::Composition;
using spec::Peer;
using spec::QueueKind;
using spec::RuleKind;

constexpr const char* kRegimeNames[kNumRegimes] = {
    "core", "perfect", "recency", "detflat", "external", "cfsm",
};

std::string PeerName(size_t i) { return "P" + std::to_string(i); }
std::string StateName(size_t i) { return "s" + std::to_string(i); }
std::string ChannelName(size_t i) { return "q" + std::to_string(i); }
std::string ConstName(size_t i) { return "c" + std::to_string(i); }

FormulaPtr VarAtom(const std::string& rel, const std::string& var) {
  return Formula::Atom(rel, {Term::Variable(var)});
}

/// x = "c0" or x = "c1" or ... over the first `count` pool constants.
FormulaPtr ConstantDisjunction(const std::string& var, size_t count) {
  std::vector<FormulaPtr> alts;
  for (size_t i = 0; i < count; ++i) {
    alts.push_back(
        Formula::Equality(Term::Variable(var), Term::Constant(ConstName(i))));
  }
  return Formula::Or(std::move(alts));
}

std::string QualState(size_t peer, size_t state) {
  return Composition::Qualify(PeerName(peer), StateName(state));
}

/// Everything the chain builder decides before peers are materialized, so
/// the draw order stays independent of how peers are assembled.
struct ChainPlan {
  size_t num_peers = 2;
  size_t nested_from = static_cast<size_t>(-1);  // first nested channel index
  bool filter_options = false;    // constant filter on the source options
  size_t filter_width = 1;        // disjuncts in the filter
  bool guard_hop = false;         // "and not x = c0" on one hop insert
  size_t guard_index = 1;         // which hop
  bool delete_hop = false;        // oscillating delete rule on one hop
  size_t delete_index = 1;
  bool sink_action = false;       // action rule on the sink
  bool ack_ring = false;          // sink -> source acknowledgement channel
};

bool ChannelNested(const ChainPlan& plan, size_t channel) {
  return channel >= plan.nested_from;
}

QueueKind KindOf(const ChainPlan& plan, size_t channel) {
  return ChannelNested(plan, channel) ? QueueKind::kNested : QueueKind::kFlat;
}

ChainPlan DrawChainPlan(Rng& rng, Regime regime, const Dials& dials) {
  ChainPlan plan;
  plan.num_peers = dials.num_peers < 2 ? 2 : dials.num_peers;
  // Nested-channel suffix: once a hop forwards from a nested in-queue its
  // send rule is a nested-send rule (a flat send from a nested atom with a
  // free variable is not existential-ground), so nestedness is monotone
  // along the chain. detflat stays flat (Theorem 3.8 is about flat sends);
  // external stays flat (Theorem 5.4 specs constrain flat env queues).
  bool may_nest = regime == Regime::kCore || regime == Regime::kPerfect ||
                  regime == Regime::kRecency;
  if (may_nest && rng.Chance(30)) {
    plan.nested_from = rng.Below(plan.num_peers - 1);
  }
  size_t budget = dials.max_extra_rules;
  bool closed = regime != Regime::kExternal;
  auto take = [&](bool want) {
    if (!want || budget == 0) return false;
    --budget;
    return true;
  };
  if (closed && dials.num_constants > 0) {
    plan.filter_options = take(rng.Chance(50));
    plan.filter_width = rng.Between(1, dials.num_constants);
  }
  if (plan.num_peers >= 2 && dials.num_constants > 0) {
    plan.guard_hop = take(rng.Chance(50));
    plan.guard_index = rng.Between(1, plan.num_peers - 1);
  }
  plan.delete_hop = take(rng.Chance(50));
  plan.delete_index = rng.Between(1, plan.num_peers - 1);
  plan.sink_action = take(rng.Chance(50));
  // The acknowledgement ring needs a flat last channel: the source's done
  // rule quantifies through the ack atom, and only flat queue atoms are
  // input-bounded quantification guards.
  plan.ack_ring =
      take(closed && rng.Chance(40) && !ChannelNested(plan, plan.num_peers - 2));
  return plan;
}

/// Builds the source peer P0: database d0, input go, options + send.
Status BuildSource(const ChainPlan& plan, Regime regime, Peer* peer) {
  WSV_RETURN_IF_ERROR(peer->AddDatabaseRelation("d0", {"a0"}));
  WSV_RETURN_IF_ERROR(peer->AddInputRelation("go", {"v0"}));
  WSV_RETURN_IF_ERROR(
      peer->AddOutQueue(ChannelName(0), KindOf(plan, 0), {"m0"}));
  FormulaPtr options_body = VarAtom("d0", "x");
  if (plan.filter_options) {
    options_body = Formula::And(options_body,
                                ConstantDisjunction("x", plan.filter_width));
  }
  WSV_RETURN_IF_ERROR(peer->AddRule(RuleKind::kInputOptions, "go", {"x"},
                                    std::move(options_body)));
  // Theorem 3.8 scenarios send straight from the database: several tuples
  // may satisfy the body, so the deterministic-flat-send semantics (no send
  // + error flag) actually differs from the nondeterministic-pick default.
  FormulaPtr send_body = regime == Regime::kDetFlat ? VarAtom("d0", "x")
                                                    : VarAtom("go", "x");
  WSV_RETURN_IF_ERROR(peer->AddRule(RuleKind::kSend, ChannelName(0), {"x"},
                                    std::move(send_body)));
  if (plan.ack_ring) {
    WSV_RETURN_IF_ERROR(peer->AddInQueue("ack", QueueKind::kFlat, {"m0"}));
    WSV_RETURN_IF_ERROR(peer->AddStateRelation("done", {}));
    WSV_RETURN_IF_ERROR(peer->AddRule(
        RuleKind::kStateInsert, "done", {},
        Formula::Exists({"x"}, VarAtom("ack", "x"))));
  }
  return Status::Ok();
}

/// Builds hop/sink peer P<i> (i >= 1): consumes q<i-1> into s<i>, forwards
/// to q<i> unless it is the sink. `env_guard_db` adds the external-regime
/// allowlist database d<i> and guards the insert with it.
Status BuildHop(const ChainPlan& plan, size_t i, bool is_sink,
                bool env_guard_db, Peer* peer) {
  const std::string in = ChannelName(i - 1);
  WSV_RETURN_IF_ERROR(peer->AddInQueue(in, KindOf(plan, i - 1), {"m0"}));
  WSV_RETURN_IF_ERROR(peer->AddStateRelation(StateName(i), {"a0"}));
  FormulaPtr insert_body = VarAtom(in, "x");
  if (env_guard_db) {
    const std::string db = "d" + std::to_string(i);
    WSV_RETURN_IF_ERROR(peer->AddDatabaseRelation(db, {"a0"}));
    insert_body = Formula::And(std::move(insert_body), VarAtom(db, "x"));
  }
  if (plan.guard_hop && plan.guard_index == i) {
    insert_body = Formula::And(
        std::move(insert_body),
        Formula::Not(Formula::Equality(Term::Variable("x"),
                                       Term::Constant(ConstName(0)))));
  }
  WSV_RETURN_IF_ERROR(peer->AddRule(RuleKind::kStateInsert, StateName(i),
                                    {"x"}, std::move(insert_body)));
  if (plan.delete_hop && plan.delete_index == i) {
    WSV_RETURN_IF_ERROR(peer->AddRule(RuleKind::kStateDelete, StateName(i),
                                      {"x"}, VarAtom(StateName(i), "x")));
  }
  if (!is_sink) {
    WSV_RETURN_IF_ERROR(
        peer->AddOutQueue(ChannelName(i), KindOf(plan, i), {"m0"}));
    WSV_RETURN_IF_ERROR(peer->AddRule(RuleKind::kSend, ChannelName(i), {"x"},
                                      VarAtom(in, "x")));
  } else {
    if (plan.sink_action) {
      WSV_RETURN_IF_ERROR(peer->AddActionRelation("out", {"a0"}));
      WSV_RETURN_IF_ERROR(
          peer->AddRule(RuleKind::kAction, "out", {"x"}, VarAtom(in, "x")));
    }
    if (plan.ack_ring) {
      WSV_RETURN_IF_ERROR(peer->AddOutQueue("ack", QueueKind::kFlat, {"m0"}));
      WSV_RETURN_IF_ERROR(
          peer->AddRule(RuleKind::kSend, "ack", {"x"}, VarAtom(in, "x")));
    }
  }
  return Status::Ok();
}

/// Property templates for closed chain scenarios. All reference relations
/// that exist by construction; verdicts are free to differ per scenario —
/// the differential contract is only that every leg agrees.
std::string DrawChainProperty(Rng& rng, const ChainPlan& plan,
                              const Dials& dials) {
  const size_t sink = plan.num_peers - 1;
  const std::string sink_state = QualState(sink, sink);
  const std::string src_db = PeerName(0) + ".d0";
  std::vector<std::string> templates;
  // Provenance: everything the sink records came from the source database.
  templates.push_back("forall x: G(" + sink_state + "(x) -> " + src_db +
                      "(x))");
  // Unreachability of the sink state (usually violated — exercises witness
  // index agreement across legs).
  templates.push_back("forall x: G(not " + sink_state + "(x))");
  if (dials.num_constants > 0) {
    templates.push_back("G(not " + sink_state + "(\"" + ConstName(0) +
                        "\"))");
  }
  // Two closure variables: a 2-dimensional valuation space, so the
  // symbolic-vs-concrete leg has classes to collapse.
  templates.push_back("forall x, y: G(not (" + QualState(1, 1) + "(x) and " +
                      sink_state + "(y) and not x = y))");
  // Response shape the prefilter cannot discharge.
  templates.push_back("forall x: G(" + QualState(1, 1) + "(x) -> F " +
                      sink_state + "(x))");
  return rng.Pick(templates);
}

Result<Scenario> GenerateChainScenario(Rng& rng, const GenOptions& options) {
  const Dials& dials = options.dials;
  ChainPlan plan = DrawChainPlan(rng, options.regime, dials);

  Scenario scenario;
  scenario.options = options;
  scenario.fresh = dials.fresh < 1 ? 1 : dials.fresh;

  const bool external = options.regime == Regime::kExternal;
  Composition comp("Gen");
  const size_t first = external ? 1 : 0;
  for (size_t i = first; i < plan.num_peers; ++i) {
    Peer peer(PeerName(i));
    Status status =
        i == 0 ? BuildSource(plan, options.regime, &peer)
               : BuildHop(plan, i, /*is_sink=*/i + 1 == plan.num_peers,
                          /*env_guard_db=*/external && i == first, &peer);
    WSV_RETURN_IF_ERROR(status);
    if (external && i + 1 == plan.num_peers) {
      // The sink reports to the environment so the composition is open on
      // both sides (q0 flows in from the environment, final flows out).
      WSV_RETURN_IF_ERROR(peer.AddOutQueue("final", QueueKind::kFlat, {"m0"}));
      WSV_RETURN_IF_ERROR(peer.AddRule(RuleKind::kSend, "final", {"x"},
                                       VarAtom(ChannelName(i - 1), "x")));
    }
    WSV_RETURN_IF_ERROR(comp.AddPeer(std::move(peer)));
  }

  // Communication semantics per regime.
  switch (options.regime) {
    case Regime::kCore:
      scenario.run.queue_bound = dials.queue_bound < 1 ? 1 : dials.queue_bound;
      scenario.run.lossy = true;
      if (plan.nested_from != static_cast<size_t>(-1)) {
        scenario.run.perfect_nested = rng.Chance(30);
      }
      break;
    case Regime::kPerfect:
      scenario.run.queue_bound = rng.Between(1, 2);
      scenario.run.lossy = false;
      break;
    case Regime::kRecency:
      // Recency bound R >= 2: the newest R messages survive, older ones may
      // be lost — approximated by lossy R-bounded queues.
      scenario.run.queue_bound = rng.Between(2, 3);
      scenario.run.lossy = true;
      break;
    case Regime::kDetFlat:
      scenario.run.queue_bound = dials.queue_bound < 1 ? 1 : dials.queue_bound;
      scenario.run.lossy = true;
      scenario.run.deterministic_flat_sends = true;
      break;
    case Regime::kExternal:
      scenario.run.queue_bound = 1;
      scenario.run.lossy = true;
      scenario.run.allow_env_moves = true;
      break;
    case Regime::kCfsm:
      return Status(StatusCode::kInternal, "cfsm handled separately");
  }

  if (external) {
    scenario.use_modular = true;
    const size_t sink = plan.num_peers - 1;
    const std::string sink_state = QualState(sink, sink);
    const size_t candidates =
        dials.num_constants < 2 ? dials.num_constants + 1 : 2;
    std::vector<std::vector<std::string>> tuples;
    for (size_t i = 0; i < candidates; ++i) tuples.push_back({ConstName(i)});
    scenario.env_messages.emplace_back(ChannelName(0), tuples);
    for (size_t i = 0; i < candidates; ++i) {
      scenario.env_domain.push_back(ConstName(i));
    }
    // The spec either pins the environment to the first candidate or merely
    // restates the candidate set; the property sometimes asks exactly the
    // question the spec answers and sometimes a reachability question.
    const size_t allowed = rng.Chance(50) ? 1 : candidates;
    std::string alts;
    for (size_t i = 0; i < allowed; ++i) {
      if (i > 0) alts += " or ";
      alts += "x = \"" + ConstName(i) + "\"";
    }
    scenario.env_spec =
        "G (forall x: env." + ChannelName(0) + "(x) -> (" + alts + "))";
    std::vector<std::string> templates;
    templates.push_back("forall x: G(" + sink_state + "(x) -> (" + alts +
                        "))");
    templates.push_back("forall x: G(not " + sink_state + "(x))");
    if (candidates > 1) {
      templates.push_back("G(not " + sink_state + "(\"" +
                          ConstName(candidates - 1) + "\"))");
    }
    scenario.property = rng.Pick(templates);
  } else {
    scenario.property = DrawChainProperty(rng, plan, dials);
    // Sometimes pin the source database instead of sweeping: the engine
    // then shards the valuation space, which is the other merge leg.
    if (dials.num_constants > 0 && rng.Chance(40)) {
      const size_t count = rng.Between(1, dials.num_constants);
      std::string flag = PeerName(0) + ".d0=";
      for (size_t i = 0; i < count; ++i) {
        if (i > 0) flag += ";";
        flag += ConstName(i);
      }
      scenario.pinned_dbs.push_back(flag);
    }
  }

  WSV_RETURN_IF_ERROR(comp.Validate());
  WSV_RETURN_IF_ERROR(comp.CheckInputBounded());
  scenario.spec_text = spec::PrintComposition(comp);
  return scenario;
}

/// Random two-machine CFSM system: M0 sends on c0 / receives on c1, M1 the
/// reverse. Receive-deterministic by construction: per (state, channel) each
/// letter is used by at most one receive transition, and each machine owns a
/// single in-channel, so at most one receive is enabled per configuration.
Result<Scenario> GenerateCfsmScenario(Rng& rng, const GenOptions& options) {
  static const std::vector<std::string> kLetters = {"a", "b"};
  cfsm::CfsmSystem system;
  system.channels.push_back({"c0", 0, 1});
  system.channels.push_back({"c1", 1, 0});
  for (size_t m = 0; m < 2; ++m) {
    cfsm::CfsmMachine machine;
    machine.name = "M" + std::to_string(m);
    machine.num_states = rng.Between(2, 3);
    machine.initial = 0;
    const size_t send_channel = m;     // c0 for M0, c1 for M1
    const size_t receive_channel = 1 - m;
    for (size_t s = 0; s < machine.num_states; ++s) {
      std::vector<std::string> unused_receive_letters = kLetters;
      size_t count = rng.Between(s == 0 && m == 0 ? 1 : 0, 2);
      for (size_t t = 0; t < count; ++t) {
        cfsm::CfsmTransition tr;
        tr.from = s;
        tr.to = rng.Below(machine.num_states);
        bool receive = rng.Chance(m == 0 ? 35 : 65) &&
                       !unused_receive_letters.empty();
        if (receive) {
          tr.kind = cfsm::CfsmTransition::Kind::kReceive;
          tr.channel = receive_channel;
          size_t pick = rng.Below(unused_receive_letters.size());
          tr.letter = unused_receive_letters[pick];
          unused_receive_letters.erase(unused_receive_letters.begin() + pick);
        } else {
          tr.kind = cfsm::CfsmTransition::Kind::kSend;
          tr.channel = send_channel;
          tr.letter = rng.Pick(kLetters);
        }
        machine.transitions.push_back(std::move(tr));
      }
    }
    system.machines.push_back(std::move(machine));
  }
  WSV_RETURN_IF_ERROR(system.Validate());

  Scenario scenario;
  scenario.options = options;
  scenario.fresh = 1;
  scenario.run.queue_bound = rng.Between(1, 2);
  scenario.run.lossy = true;
  scenario.has_cfsm = true;

  // Target control pair: prefer non-initial states so reachability is a
  // real question, not "are we at the start".
  for (const cfsm::CfsmMachine& machine : system.machines) {
    scenario.cfsm_target.push_back(machine.num_states > 1
                                       ? rng.Between(1, machine.num_states - 1)
                                       : 0);
  }

  // Engine property: the target control pair is never reached. AtStateFormula
  // gives unqualified atoms; qualify them against the machine peers.
  std::vector<std::string> parts;
  for (size_t m = 0; m < system.machines.size(); ++m) {
    const cfsm::CfsmMachine& machine = system.machines[m];
    const size_t target = scenario.cfsm_target[m];
    if (target != machine.initial) {
      parts.push_back(machine.name + "." +
                      cfsm::StateRelationName(target) + "()");
    } else {
      for (size_t s = 0; s < machine.num_states; ++s) {
        if (s == machine.initial) continue;
        parts.push_back("not " + machine.name + "." +
                        cfsm::StateRelationName(s) + "()");
      }
    }
  }
  std::string conj;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) conj += " and ";
    conj += parts[i];
  }
  scenario.property = "G(not (" + conj + "))";
  // Protocol leg: LTL over channel names, data-agnostic (Example 4.1 shape).
  static const std::vector<std::string> kProtocols = {
      "G(c0 -> F c1)", "G(c1 -> F c0)", "not F c1", "F c0"};
  scenario.protocol_ltl = rng.Pick(kProtocols);

  Result<spec::Composition> embedded = cfsm::EmbedAsComposition(system);
  WSV_RETURN_IF_ERROR(embedded.status());
  scenario.spec_text = spec::PrintComposition(embedded.value());
  scenario.cfsm_system = std::move(system);
  return scenario;
}

}  // namespace

const char* RegimeName(Regime regime) {
  return kRegimeNames[static_cast<size_t>(regime)];
}

std::optional<Regime> RegimeFromName(const std::string& name) {
  for (size_t i = 0; i < kNumRegimes; ++i) {
    if (name == kRegimeNames[i]) return static_cast<Regime>(i);
  }
  return std::nullopt;
}

std::vector<Regime> AllRegimes() {
  std::vector<Regime> regimes;
  for (size_t i = 0; i < kNumRegimes; ++i) {
    regimes.push_back(static_cast<Regime>(i));
  }
  return regimes;
}

std::string Dials::ToString() const {
  std::ostringstream out;
  out << "peers=" << num_peers << " consts=" << num_constants
      << " rules=" << max_extra_rules << " fresh=" << fresh
      << " qb=" << queue_bound;
  return out.str();
}

Result<Scenario> GenerateScenario(const GenOptions& options) {
  Rng rng(Rng::DeriveSeed(options.seed,
                          static_cast<uint64_t>(options.regime) + 1));
  Result<Scenario> generated =
      options.regime == Regime::kCfsm ? GenerateCfsmScenario(rng, options)
                                      : GenerateChainScenario(rng, options);
  WSV_RETURN_IF_ERROR(generated.status());
  Scenario scenario = std::move(generated).value();

  std::ostringstream name;
  name << "fuzz_" << RegimeName(options.regime) << "_" << options.seed;
  scenario.name = name.str();

  // The printer is the generator's only output path: every leg re-parses
  // spec_text, so parse(print(comp)) must be a fixpoint. A mismatch is a
  // printer/parser asymmetry, i.e. a bug worth failing loudly over.
  Result<Composition> reparsed = spec::ParseComposition(scenario.spec_text);
  if (!reparsed.ok()) {
    return Status(StatusCode::kInternal,
                  "generated spec does not re-parse: " +
                      reparsed.status().message() + "\n" + scenario.spec_text);
  }
  std::string reprinted = spec::PrintComposition(reparsed.value());
  if (reprinted != scenario.spec_text) {
    return Status(StatusCode::kInternal,
                  "print/parse round-trip not a fixpoint:\n--- printed\n" +
                      scenario.spec_text + "\n--- reprinted\n" + reprinted);
  }
  return scenario;
}

}  // namespace wsv::gen
