#!/usr/bin/env python3
"""Time-boxed differential fuzzing sweep.

Usage: fuzz_sweep.py --fuzz-bin PATH --minutes N [options]

Repeatedly invokes `wsvc-fuzz run` in batches, advancing the base seed
each batch, until the time box expires. Prints a digest (batches,
compositions, comps/s, mismatches, corpus size) and exits non-zero if
any batch reported a mismatch or failed to run. Intended for long
background runs; the smoke test in ctest covers the short deterministic
sweep.

Example:
    tools/fuzz_sweep.py --fuzz-bin build/tools/wsvc-fuzz --minutes 30
"""

import argparse
import os
import re
import subprocess
import sys
import time


def main():
    parser = argparse.ArgumentParser(
        description="time-boxed wsvc-fuzz differential sweep")
    parser.add_argument("--fuzz-bin", required=True,
                        help="path to the wsvc-fuzz binary")
    parser.add_argument("--minutes", type=float, default=5.0,
                        help="time box in minutes (default 5)")
    parser.add_argument("--batch", type=int, default=200,
                        help="compositions per batch (default 200)")
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed of the first batch (default 1); "
                             "batch k uses seed+k")
    parser.add_argument("--regimes", default="",
                        help="comma-separated regime rotation "
                             "(default: all)")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--corpus", default="tests/corpus",
                        help="where mismatch repros accumulate")
    parser.add_argument("--max-states", type=int, default=0)
    opts = parser.parse_args()

    deadline = time.monotonic() + opts.minutes * 60.0
    batches = 0
    compositions = 0
    mismatches = 0
    errors = 0
    started = time.monotonic()

    while time.monotonic() < deadline:
        seed = opts.seed + batches
        cmd = [opts.fuzz_bin, "run", "--seed", str(seed),
               "--count", str(opts.batch),
               "--jobs", str(opts.jobs), "--shards", str(opts.shards),
               "--corpus", opts.corpus, "--quiet"]
        if opts.regimes:
            cmd += ["--regimes", opts.regimes]
        if opts.max_states > 0:
            cmd += ["--max-states", str(opts.max_states)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        batches += 1
        compositions += opts.batch
        summary = re.search(
            r"mismatches: (\d+), generator errors: (\d+)", proc.stdout)
        if summary:
            mismatches += int(summary.group(1))
            errors += int(summary.group(2))
        elif proc.returncode != 0:
            errors += 1
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            print(f"fuzz_sweep: batch seed={seed} exited "
                  f"{proc.returncode}", file=sys.stderr)

    elapsed = time.monotonic() - started
    corpus_size = 0
    if os.path.isdir(opts.corpus):
        corpus_size = sum(1 for name in os.listdir(opts.corpus)
                          if name.endswith(".wsv"))
    rate = compositions / elapsed if elapsed > 0 else 0.0
    print(f"fuzz_sweep: {batches} batches, {compositions} compositions "
          f"in {elapsed:.0f}s ({rate:.1f} comps/s), "
          f"mismatches: {mismatches}, errors: {errors}, "
          f"corpus: {corpus_size} files")
    return 0 if mismatches == 0 and errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
