// wsvc-merge — merges the verdicts of N range-sharded `wsvc` runs into one
// verdict over the union of their coverage (tools/shard_sweep.py drives it).
//
// Each shard is a PAIR: the shard's --stats-json document, then its
// --checkpoint file or "-" when the shard ran without one. The merge
// refuses shards whose fingerprints disagree (they verified different
// problems), deduplicates overlapping coverage with a warning, reports
// uncovered gaps, and never upgrades a gappy union to "holds".
//
// Batch mode (default) takes every pair at once. With --incremental STATE
// the given pairs are FOLDED into a persisted merge state (O(1) memory in
// the number of shards) and the process exits 0 without a verdict; adding
// --finalize derives the verdict from the accumulated state instead. A
// supervisor uses this to merge each shard lease as it finishes.
//
// Exit codes: 0 merged verdict holds over the complete enumeration,
// 3 violated (witness = globally lowest (db, valuation) index), 4 the
// union is violation-free but incomplete, 2 usage or incompatible shards.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "obs/obs.h"
#include "verifier/merge.h"

namespace {

using namespace wsv;

int Usage() {
  std::fprintf(
      stderr,
      "usage: wsvc-merge [--stats-json FILE] [--incremental STATE "
      "[--finalize]]\n"
      "                  [STATS1 CKPT1 [STATS2 CKPT2 ...]]\n"
      "\n"
      "  STATSi  a shard's `wsvc --stats-json` document\n"
      "  CKPTi   the shard's --checkpoint file, or '-' if it had none\n"
      "  --stats-json FILE    write the merged verdict as a stats document\n"
      "                       (schema v%d, generator \"wsvc-merge\")\n"
      "  --incremental STATE  fold the pairs into the merge state at STATE\n"
      "                       (created on first use) instead of merging\n"
      "                       everything at once; exits 0 without a verdict\n"
      "  --finalize           with --incremental: derive the verdict from\n"
      "                       the accumulated state (pairs may be empty)\n",
      obs::kStatsSchemaVersion);
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  if (WSV_FAULT_POINT("merge.io")) {
    return Status::Internal("read of '" + path +
                            "' failed (injected fault 'merge.io')");
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string state_path;
  bool finalize = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stats-json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wsvc-merge: --stats-json requires a value\n");
        return Usage();
      }
      out_path = argv[++i];
    } else if (arg == "--incremental") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wsvc-merge: --incremental requires a value\n");
        return Usage();
      }
      state_path = argv[++i];
    } else if (arg == "--finalize") {
      finalize = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "wsvc-merge: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (finalize && state_path.empty()) {
    std::fprintf(stderr, "wsvc-merge: --finalize requires --incremental\n");
    return Usage();
  }
  if (positional.size() % 2 != 0) {
    std::fprintf(stderr,
                 "wsvc-merge: expects STATS/CKPT pairs ('-' for a missing "
                 "checkpoint), got %zu argument(s)\n",
                 positional.size());
    return Usage();
  }
  if (positional.empty() && !finalize) {
    std::fprintf(stderr, "wsvc-merge: no shard pairs given\n");
    return Usage();
  }

  obs::Registry& registry = obs::Registry::Global();
  if (!out_path.empty()) registry.set_timing_enabled(true);

  // Resume the persisted fold state in incremental mode (a missing file is
  // a fresh state, anything else torn is a hard error — silently dropping
  // folded shards could upgrade an incomplete union to "holds").
  verifier::IncrementalMergeState state;
  if (!state_path.empty()) {
    auto loaded = verifier::LoadMergeState(state_path);
    if (loaded.ok()) {
      state = std::move(*loaded);
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "wsvc-merge: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
  }

  std::vector<verifier::ShardReport> shards;
  // Shard stats texts and their labels, kept for the observability roll-up
  // (counters/histograms/utilization aggregated across shards). Batch mode
  // only — the incremental state intentionally forgets per-shard documents.
  std::vector<std::string> shard_texts;
  std::vector<std::string> shard_sources;
  for (size_t i = 0; i < positional.size(); i += 2) {
    const std::string& stats_path = positional[i];
    const std::string& ckpt_path = positional[i + 1];
    auto text = ReadFile(stats_path);
    if (!text.ok()) {
      std::fprintf(stderr, "wsvc-merge: %s\n",
                   text.status().ToString().c_str());
      return 2;
    }
    shard_texts.push_back(*text);
    shard_sources.push_back(stats_path);
    auto shard = verifier::ShardFromStatsJson(*text, stats_path);
    if (!shard.ok()) {
      std::fprintf(stderr, "wsvc-merge: %s\n",
                   shard.status().ToString().c_str());
      return 2;
    }
    if (ckpt_path != "-") {
      Status applied = verifier::ApplyCheckpoint(ckpt_path, &*shard);
      if (!applied.ok()) {
        // A checkpoint both torn AND without a readable .bak only loses the
        // progress the shard persisted after its last verdict write — the
        // stats document's own coverage still counts, so degrade to a
        // warning. A fingerprint mismatch stays fatal: that checkpoint
        // belongs to a different problem and crediting it would be wrong.
        if (applied.code() == StatusCode::kInvalidSpec) {
          std::fprintf(stderr, "wsvc-merge: checkpoint '%s': %s\n",
                       ckpt_path.c_str(), applied.ToString().c_str());
          return 2;
        }
        std::fprintf(stderr,
                     "wsvc-merge: warning: checkpoint '%s' unusable (%s); "
                     "merging shard '%s' without checkpoint credit\n",
                     ckpt_path.c_str(), applied.ToString().c_str(),
                     stats_path.c_str());
      }
    }
    shards.push_back(std::move(*shard));
  }

  // Incremental fold: push the new shards into the state, persist, and
  // (unless finalizing) stop before any verdict is derived.
  if (!state_path.empty()) {
    for (const verifier::ShardReport& shard : shards) {
      Status folded = verifier::FoldShard(&state, shard);
      if (!folded.ok()) {
        std::fprintf(stderr, "wsvc-merge: %s\n", folded.ToString().c_str());
        return 2;
      }
    }
    Status saved = verifier::SaveMergeState(state_path, state);
    if (!saved.ok()) {
      std::fprintf(stderr, "wsvc-merge: %s\n", saved.ToString().c_str());
      return 2;
    }
    if (!finalize) {
      std::printf("merge-state: %llu shard(s) folded (%s coverage %s)\n",
                  static_cast<unsigned long long>(state.shards),
                  state.unit.c_str(),
                  verifier::IntervalsToString(state.covered).c_str());
      return 0;
    }
    if (state.shards == 0) {
      std::fprintf(stderr,
                   "wsvc-merge: --finalize on an empty merge state\n");
      return 2;
    }
  }

  verifier::MergeReport merged_report;
  {
    obs::PhaseTimer merge_phase("merge");
    if (!state_path.empty()) {
      merged_report = verifier::FinalizeMerge(state);
    } else {
      auto merged = verifier::MergeShards(shards);
      if (!merged.ok()) {
        std::fprintf(stderr, "wsvc-merge: %s\n",
                     merged.status().ToString().c_str());
        return 2;
      }
      merged_report = std::move(*merged);
    }
  }
  const verifier::MergeReport& merged = merged_report;
  int rc = verifier::MergeExitCode(merged);

  const uint64_t shard_count =
      state_path.empty() ? shards.size() : state.shards;
  for (const std::string& warning : merged.warnings) {
    std::fprintf(stderr, "wsvc-merge: warning: %s\n", warning.c_str());
  }
  std::printf("merge: %s (%llu shard(s), %s coverage %s",
              merged.verdict.c_str(),
              static_cast<unsigned long long>(shard_count),
              merged.unit.c_str(),
              verifier::IntervalsToString(merged.covered).c_str());
  if (!merged.gaps.empty()) {
    std::printf(", gaps %s",
                verifier::IntervalsToString(merged.gaps).c_str());
  }
  std::printf(")\n");
  if (merged.has_witness) {
    const std::string witness_source =
        state_path.empty() ? shards[merged.witness_shard].source
                           : state.witness_source;
    std::printf("  witness: database %llu, valuation %llu (shard %zu: %s)\n",
                static_cast<unsigned long long>(merged.witness_db_index),
                static_cast<unsigned long long>(
                    merged.witness_valuation_index),
                merged.witness_shard, witness_source.c_str());
  }

  // Per-shard counters for the obs stats document.
  registry.counter("merge.shards").Add(shard_count);
  registry.counter("merge.gaps").Add(merged.gaps.size());
  registry.counter("merge.overlap").Add(merged.overlap);
  if (merged.has_witness) {
    registry.counter("merge.witness_shard").Add(merged.witness_shard);
  }

  if (!out_path.empty()) {
    std::vector<std::pair<std::string, std::string>> extra;
    extra.emplace_back("verdict",
                       verifier::RenderMergeJson(merged, rc));
    // The per-shard observability roll-up needs every stats document in
    // hand; an incremental finalize only has the state, so it is skipped.
    if (state_path.empty()) {
      extra.emplace_back("shards", verifier::RenderShardStatsRollup(
                                       shard_texts, shard_sources));
    }
    Status written = obs::WriteStatsJson(registry, "wsvc-merge", out_path,
                                         extra);
    if (!written.ok()) {
      std::fprintf(stderr, "wsvc-merge: stats-json: %s\n",
                   written.ToString().c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
