// wsvc-merge — merges the verdicts of N range-sharded `wsvc` runs into one
// verdict over the union of their coverage (tools/shard_sweep.py drives it).
//
// Each shard is a PAIR: the shard's --stats-json document, then its
// --checkpoint file or "-" when the shard ran without one. The merge
// refuses shards whose fingerprints disagree (they verified different
// problems), deduplicates overlapping coverage with a warning, reports
// uncovered gaps, and never upgrades a gappy union to "holds".
//
// Exit codes: 0 merged verdict holds over the complete enumeration,
// 3 violated (witness = globally lowest (db, valuation) index), 4 the
// union is violation-free but incomplete, 2 usage or incompatible shards.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "verifier/merge.h"

namespace {

using namespace wsv;

int Usage() {
  std::fprintf(
      stderr,
      "usage: wsvc-merge [--stats-json FILE] STATS1 CKPT1 [STATS2 CKPT2 ...]\n"
      "\n"
      "  STATSi  a shard's `wsvc --stats-json` document\n"
      "  CKPTi   the shard's --checkpoint file, or '-' if it had none\n"
      "  --stats-json FILE  write the merged verdict as a stats document\n"
      "                     (schema v%d, generator \"wsvc-merge\")\n",
      obs::kStatsSchemaVersion);
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stats-json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wsvc-merge: --stats-json requires a value\n");
        return Usage();
      }
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "wsvc-merge: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.empty() || positional.size() % 2 != 0) {
    std::fprintf(stderr,
                 "wsvc-merge: expects STATS/CKPT pairs ('-' for a missing "
                 "checkpoint), got %zu argument(s)\n",
                 positional.size());
    return Usage();
  }

  obs::Registry& registry = obs::Registry::Global();
  if (!out_path.empty()) registry.set_timing_enabled(true);

  std::vector<verifier::ShardReport> shards;
  // Shard stats texts and their labels, kept for the observability roll-up
  // (counters/histograms/utilization aggregated across shards).
  std::vector<std::string> shard_texts;
  std::vector<std::string> shard_sources;
  for (size_t i = 0; i < positional.size(); i += 2) {
    const std::string& stats_path = positional[i];
    const std::string& ckpt_path = positional[i + 1];
    auto text = ReadFile(stats_path);
    if (!text.ok()) {
      std::fprintf(stderr, "wsvc-merge: %s\n",
                   text.status().ToString().c_str());
      return 2;
    }
    shard_texts.push_back(*text);
    shard_sources.push_back(stats_path);
    auto shard = verifier::ShardFromStatsJson(*text, stats_path);
    if (!shard.ok()) {
      std::fprintf(stderr, "wsvc-merge: %s\n",
                   shard.status().ToString().c_str());
      return 2;
    }
    if (ckpt_path != "-") {
      Status applied = verifier::ApplyCheckpoint(ckpt_path, &*shard);
      if (!applied.ok()) {
        std::fprintf(stderr, "wsvc-merge: checkpoint '%s': %s\n",
                     ckpt_path.c_str(), applied.ToString().c_str());
        return 2;
      }
    }
    shards.push_back(std::move(*shard));
  }

  auto merged = [&] {
    obs::PhaseTimer merge_phase("merge");
    return verifier::MergeShards(shards);
  }();
  if (!merged.ok()) {
    std::fprintf(stderr, "wsvc-merge: %s\n",
                 merged.status().ToString().c_str());
    return 2;
  }
  int rc = verifier::MergeExitCode(*merged);

  for (const std::string& warning : merged->warnings) {
    std::fprintf(stderr, "wsvc-merge: warning: %s\n", warning.c_str());
  }
  std::printf("merge: %s (%zu shard(s), %s coverage %s",
              merged->verdict.c_str(), shards.size(), merged->unit.c_str(),
              verifier::IntervalsToString(merged->covered).c_str());
  if (!merged->gaps.empty()) {
    std::printf(", gaps %s",
                verifier::IntervalsToString(merged->gaps).c_str());
  }
  std::printf(")\n");
  if (merged->has_witness) {
    std::printf("  witness: database %llu, valuation %llu (shard %zu: %s)\n",
                static_cast<unsigned long long>(merged->witness_db_index),
                static_cast<unsigned long long>(
                    merged->witness_valuation_index),
                merged->witness_shard, shards[merged->witness_shard].source.c_str());
  }

  // Per-shard counters for the obs stats document.
  registry.counter("merge.shards").Add(shards.size());
  registry.counter("merge.gaps").Add(merged->gaps.size());
  registry.counter("merge.overlap").Add(merged->overlap);
  if (merged->has_witness) {
    registry.counter("merge.witness_shard").Add(merged->witness_shard);
  }

  if (!out_path.empty()) {
    std::vector<std::pair<std::string, std::string>> extra;
    extra.emplace_back("verdict",
                       verifier::RenderMergeJson(*merged, rc));
    extra.emplace_back("shards", verifier::RenderShardStatsRollup(
                                     shard_texts, shard_sources));
    Status written = obs::WriteStatsJson(registry, "wsvc-merge", out_path,
                                         extra);
    if (!written.ok()) {
      std::fprintf(stderr, "wsvc-merge: stats-json: %s\n",
                   written.ToString().c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}
