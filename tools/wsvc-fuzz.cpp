// wsvc-fuzz — differential fuzzing across the decidability map.
//
// Generates seeded random compositions per regime (src/gen), runs every
// applicable verifier pair on each (engine vs CFSM explorer vs modular
// translation; serial vs --jobs; whole vs sharded + merged; concrete vs
// symbolic valuations) and fails loudly on any verdict/witness/coverage
// mismatch. Mismatches are shrunk and committed as self-contained repros
// under tests/corpus/. See README.md "Differential fuzzing".

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "gen/differ.h"
#include "gen/generator.h"
#include "gen/rng.h"

namespace {

using namespace wsv;

int Usage(FILE* out) {
  std::fprintf(out, R"(usage:
  wsvc-fuzz run [options]        seeded differential sweep
  wsvc-fuzz replay FILE...       re-run corpus repro files
  wsvc-fuzz generate [options]   print one generated scenario (debugging)

run options:
  --seed N          base seed (default 1); composition i uses a derived seed
  --count N         compositions to generate (default 200)
  --regimes a,b,c   regime rotation (default: all of core,perfect,recency,
                    detflat,external,cfsm)
  --jobs N          thread count of the parallel legs (default 2)
  --shards N        shard count of the sharded+merged leg (default 2)
  --corpus DIR      where shrunk repros are written (default tests/corpus)
  --break-leg LEG   test hook: flip LEG's verdict (e.g. engine-symbolic) to
                    prove the mismatch->shrink->repro pipeline end to end;
                    also read from the WSV_FUZZ_BREAK environment variable
  --max-states N    per-search state cap override
  --quiet           summary only

generate options: --seed N --regime NAME [--max-states N]

exit codes: 0 all legs agreed, 1 mismatch (repro written), 2 usage error
)");
  return out == stdout ? 0 : 2;
}

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  bool quiet = false;
};

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  if (argc < 2) return Status::ParseError("missing command");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quiet") {
      args.quiet = true;
    } else if (StartsWith(arg, "--")) {
      if (i + 1 >= argc) return Status::ParseError("flag needs value: " + arg);
      args.flags[arg] = argv[++i];
    } else {
      args.positional.push_back(std::move(arg));
    }
  }
  return args;
}

uint64_t FlagOr(const Args& args, const std::string& name, uint64_t fallback) {
  auto it = args.flags.find(name);
  if (it == args.flags.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0' ||
      it->second[0] == '-') {
    std::fprintf(stderr, "wsvc-fuzz: flag %s expects a number, got '%s'\n",
                 name.c_str(), it->second.c_str());
    std::exit(2);
  }
  return value;
}

Result<std::vector<gen::Regime>> ParseRegimes(const Args& args) {
  auto it = args.flags.find("--regimes");
  if (it == args.flags.end()) return gen::AllRegimes();
  std::vector<gen::Regime> regimes;
  for (const std::string& name : Split(it->second, ',')) {
    if (name.empty()) continue;
    auto regime = gen::RegimeFromName(name);
    if (!regime.has_value()) {
      return Status::ParseError("unknown regime: " + name);
    }
    regimes.push_back(*regime);
  }
  if (regimes.empty()) return Status::ParseError("--regimes lists no regime");
  return regimes;
}

gen::DiffOptions DiffFromArgs(const Args& args) {
  gen::DiffOptions diff;
  diff.jobs = FlagOr(args, "--jobs", 2);
  diff.shards = FlagOr(args, "--shards", 2);
  auto it = args.flags.find("--break-leg");
  if (it != args.flags.end()) {
    diff.break_leg = it->second;
  } else if (const char* env = std::getenv("WSV_FUZZ_BREAK")) {
    diff.break_leg = env;
  }
  return diff;
}

int RunCommand(const Args& args) {
  const uint64_t base_seed = FlagOr(args, "--seed", 1);
  const uint64_t count = FlagOr(args, "--count", 200);
  const uint64_t max_states = FlagOr(args, "--max-states", 0);
  auto regimes_result = ParseRegimes(args);
  if (!regimes_result.ok()) {
    std::fprintf(stderr, "wsvc-fuzz: %s\n",
                 regimes_result.status().ToString().c_str());
    return 2;
  }
  const std::vector<gen::Regime>& regimes = regimes_result.value();
  const gen::DiffOptions diff = DiffFromArgs(args);
  std::string corpus_dir = "tests/corpus";
  if (auto it = args.flags.find("--corpus"); it != args.flags.end()) {
    corpus_dir = it->second;
  }

  std::map<std::string, uint64_t> per_regime;
  uint64_t mismatches = 0, generator_errors = 0;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < count; ++i) {
    gen::GenOptions options;
    options.seed = gen::Rng::DeriveSeed(base_seed, i);
    options.regime = regimes[i % regimes.size()];
    Result<gen::Scenario> scenario = gen::GenerateScenario(options);
    if (!scenario.ok()) {
      ++generator_errors;
      std::fprintf(stderr, "wsvc-fuzz: generator error (seed=%llu, %s): %s\n",
                   static_cast<unsigned long long>(options.seed),
                   gen::RegimeName(options.regime),
                   scenario.status().ToString().c_str());
      continue;
    }
    if (max_states > 0) scenario.value().max_states = max_states;
    ++per_regime[gen::RegimeName(options.regime)];
    Result<gen::ScenarioVerdict> outcome =
        gen::RunDifferential(scenario.value(), diff);
    if (!outcome.ok()) {
      ++generator_errors;
      std::fprintf(stderr, "wsvc-fuzz: harness error on %s: %s\n",
                   scenario.value().name.c_str(),
                   outcome.status().ToString().c_str());
      continue;
    }
    if (outcome.value().ok) continue;

    ++mismatches;
    std::fprintf(stderr, "wsvc-fuzz: MISMATCH %s: %s\n",
                 scenario.value().name.c_str(),
                 outcome.value().detail.c_str());
    Result<gen::ShrinkResult> shrunk = gen::Shrink(scenario.value(), diff);
    const gen::Scenario& repro =
        shrunk.ok() ? shrunk.value().scenario : scenario.value();
    const gen::ScenarioVerdict& repro_verdict =
        shrunk.ok() ? shrunk.value().verdict : outcome.value();
    std::error_code ec;
    std::filesystem::create_directories(corpus_dir, ec);
    std::string path = corpus_dir + "/repro_" +
                       gen::RegimeName(options.regime) + "_" +
                       std::to_string(options.seed) + ".wsv";
    std::ofstream out(path);
    out << gen::RenderCorpusFile(repro, diff, repro_verdict);
    out.close();
    std::fprintf(stderr,
                 "wsvc-fuzz: minimized repro (%s, %zu shrink attempts) -> "
                 "%s\n",
                 repro.options.dials.ToString().c_str(),
                 shrunk.ok() ? shrunk.value().attempts : 0, path.c_str());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::ostringstream regime_list;
  for (const auto& [name, n] : per_regime) {
    regime_list << " " << name << "=" << n;
  }
  std::printf(
      "wsvc-fuzz: %llu compositions%s, mismatches: %llu, generator errors: "
      "%llu, %.1fs (%.1f comps/s)\n",
      static_cast<unsigned long long>(count), regime_list.str().c_str(),
      static_cast<unsigned long long>(mismatches),
      static_cast<unsigned long long>(generator_errors), seconds,
      seconds > 0 ? static_cast<double>(count) / seconds : 0.0);
  return mismatches == 0 && generator_errors == 0 ? 0 : 1;
}

int ReplayCommand(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "wsvc-fuzz: replay needs at least one file\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : args.positional) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "FAIL %s: cannot open\n", path.c_str());
      ++failures;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Result<gen::CorpusCase> corpus = gen::ParseCorpusFile(buffer.str());
    if (!corpus.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   corpus.status().ToString().c_str());
      ++failures;
      continue;
    }
    // The recorded break-leg is never replayed: a committed repro must
    // either reproduce a real disagreement or pass as a regression test.
    gen::DiffOptions diff = corpus.value().diff;
    diff.break_leg.clear();
    Result<gen::ScenarioVerdict> outcome =
        gen::RunDifferential(corpus.value().scenario, diff);
    if (!outcome.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   outcome.status().ToString().c_str());
      ++failures;
    } else if (!outcome.value().ok) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   outcome.value().detail.c_str());
      ++failures;
    } else if (!args.quiet) {
      std::printf("PASS %s (%zu legs%s)\n", path.c_str(),
                  outcome.value().legs.size(),
                  corpus.value().regenerated ? ", regenerated" : "");
    }
  }
  return failures == 0 ? 0 : 1;
}

int GenerateCommand(const Args& args) {
  gen::GenOptions options;
  options.seed = FlagOr(args, "--seed", 1);
  auto it = args.flags.find("--regime");
  if (it != args.flags.end()) {
    auto regime = gen::RegimeFromName(it->second);
    if (!regime.has_value()) {
      std::fprintf(stderr, "wsvc-fuzz: unknown regime: %s\n",
                   it->second.c_str());
      return 2;
    }
    options.regime = *regime;
  }
  Result<gen::Scenario> scenario = gen::GenerateScenario(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "wsvc-fuzz: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  const uint64_t max_states = FlagOr(args, "--max-states", 0);
  if (max_states > 0) scenario.value().max_states = max_states;
  std::fputs(
      gen::RenderCorpusFile(scenario.value(), DiffFromArgs(args), {}).c_str(),
      stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<Args> args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "wsvc-fuzz: %s\n", args.status().ToString().c_str());
    return Usage(stderr);
  }
  const std::string& command = args.value().command;
  if (command == "run") return RunCommand(args.value());
  if (command == "replay") return ReplayCommand(args.value());
  if (command == "generate") return GenerateCommand(args.value());
  if (command == "help" || command == "--help" || command == "-h") {
    return Usage(stdout);
  }
  std::fprintf(stderr, "wsvc-fuzz: unknown command '%s'\n", command.c_str());
  return Usage(stderr);
}
