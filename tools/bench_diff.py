#!/usr/bin/env python3
"""Compares two run_bench.py documents and fails on regression.

Usage:
  bench_diff.py OLD.json NEW.json [--threshold PCT] [--metric real|cpu]

Benchmarks are matched by (binary, name); real_time_ms (default) or
cpu_time_ms is compared. NEW regressing past --threshold percent (default
25 — single-run google-benchmark numbers on a busy host are noisy; tighten
it when the baselines are repetition-aggregated) on any matched benchmark
exits 1 and lists the offenders. Benchmarks present on only one side are
reported but never fail the diff — a renamed series should not masquerade
as a regression.

Peak memory is compared alongside time: when both sides carry the
process.max_rss_kb counter (run_bench.py documents recorded since the
bench harness started exporting it), the RSS delta is printed per
benchmark, and --rss-threshold PCT (off by default) turns RSS growth past
PCT percent into a failure too.

Self-comparing a document (`bench_diff.py BENCH_scaling.json
BENCH_scaling.json`) is the smoke test the profiling ctest label runs: it
exercises the full match/compare path and must always exit 0.
"""

import argparse
import json
import sys


def fail(msg, code=2):
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(code)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")
    if doc.get("schema_version") != 1:
        fail(f"{path}: unsupported schema_version "
             f"{doc.get('schema_version')!r} (want 1)")
    return doc


def flatten(doc, metric_key):
    """{(binary, benchmark name): (time_ms, max_rss_kb or None)}."""
    out = {}
    for run in doc.get("runs", []):
        binary = run.get("binary", "?")
        for bench in run.get("benchmarks", []):
            rss = bench.get("counters", {}).get("process.max_rss_kb")
            out[(binary, bench["name"])] = (bench[metric_key], rss)
    return out


def main():
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="regression tolerance in percent (default 25)")
    parser.add_argument("--metric", choices=("real", "cpu"), default="real")
    parser.add_argument("--rss-threshold", type=float, default=None,
                        help="also fail when peak RSS grows past this "
                             "percent (default: report only)")
    args = parser.parse_args()

    metric_key = f"{args.metric}_time_ms"
    old = flatten(load(args.old), metric_key)
    new = flatten(load(args.new), metric_key)

    regressions = []
    width = max((len(f"{b}:{n}") for b, n in old | new), default=4)
    print(f"bench_diff: {args.old} -> {args.new} "
          f"({metric_key}, threshold +{args.threshold:.0f}%)")
    for key in sorted(old | new):
        label = f"{key[0]}:{key[1]}"
        if key not in old:
            print(f"  {label:<{width}}  (new benchmark, skipped)")
            continue
        if key not in new:
            print(f"  {label:<{width}}  (dropped benchmark, skipped)")
            continue
        (o, o_rss), (n, n_rss) = old[key], new[key]
        delta = (100.0 * (n - o) / o) if o else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  REGRESSION"
            regressions.append(
                f"{label}: {o:.2f}ms -> {n:.2f}ms ({delta:+.1f}%)")
        rss_note = ""
        if o_rss and n_rss:
            rss_delta = 100.0 * (n_rss - o_rss) / o_rss
            rss_note = (f"  rss {o_rss/1024.0:6.1f}mb -> "
                        f"{n_rss/1024.0:6.1f}mb ({rss_delta:+6.1f}%)")
            if args.rss_threshold is not None \
                    and rss_delta > args.rss_threshold:
                flag = "  REGRESSION"
                regressions.append(
                    f"{label}: rss {o_rss:.0f}kb -> {n_rss:.0f}kb "
                    f"({rss_delta:+.1f}%)")
        print(f"  {label:<{width}}  {o:10.2f}ms -> {n:10.2f}ms "
              f"({delta:+6.1f}%){rss_note}{flag}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) past "
              f"+{args.threshold:.0f}%:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print("no regressions past threshold")


if __name__ == "__main__":
    main()
