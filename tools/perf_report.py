#!/usr/bin/env python3
"""Renders a wsv stats-JSON document as a human-readable performance report.

Usage:
  perf_report.py STATS.json                 render one report
  perf_report.py --diff OLD.json NEW.json   compare two documents
                 [--threshold PCT]          regression tolerance (default 10)

Works on any schema-v2 document the pipeline writes: a single `wsvc
--stats-json` run, a `wsvc-merge` roll-up (renders the cross-shard
"shards" section too), or a bench export converted by run_bench.py.

The report has four tables:
  phases   — the wall-clock tree (self/total per phase, call counts)
  workers  — per-worker time ledgers (exec/idle/lock-wait, utilization)
  locks    — contention per lock site (acquisitions, contended, wait)
  shards   — per-shard digest + straggler (wsvc-merge documents only)

--diff compares the phase totals and lock wait times of two documents and
exits 1 when NEW regresses over OLD by more than --threshold percent on
any phase whose share of the old total is at least 1% (tiny phases are
all noise). Use it to gate a profiling change on "did not slow down".
"""

import argparse
import json
import sys


def fail(msg, code=2):
    print(f"perf_report: {msg}", file=sys.stderr)
    sys.exit(code)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{path} is not valid JSON: {exc}")


def fmt_ns(ns):
    """Adaptive duration: ns under 10us, ms under 10s, else seconds."""
    if ns < 10_000:
        return f"{ns}ns"
    if ns < 10_000_000_000:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.2f}s"


def table(rows, headers):
    """Plain left/right-aligned text table (numbers right, text left)."""
    rows = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for n, row in enumerate(rows):
        cells = []
        for i, cell in enumerate(row):
            # First column (names) left-aligned, numbers right-aligned.
            cells.append(cell.ljust(widths[i]) if i == 0
                         else cell.rjust(widths[i]))
        lines.append("  " + "  ".join(cells).rstrip())
        if n == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_phases(doc):
    phases = doc.get("phases") or []
    if not phases:
        return None
    # Share denominator: the main thread's "total" phase when present
    # (worker-thread roots like a bare "leaf_eval" overlap it and can push
    # per-phase shares past 100% — that is attribution, not partition).
    root_total = next((p["total_ns"] for p in phases if p["path"] == "total"),
                      0) or sum(p["total_ns"] for p in phases
                                if "/" not in p["path"])
    rows = []
    for p in phases:
        depth = p["path"].count("/")
        name = "  " * depth + p["path"].rsplit("/", 1)[-1]
        share = (100.0 * p["total_ns"] / root_total) if root_total else 0.0
        rows.append([name, fmt_ns(p["total_ns"]), fmt_ns(p["self_ns"]),
                     p["count"], f"{share:.1f}%"])
    return "phases:\n" + table(
        rows, ["phase", "total", "self", "count", "share"])


def render_workers(doc):
    workers = doc.get("workers") or {}
    if not workers:
        return None
    rows = []
    for name, w in workers.items():
        rows.append([name, fmt_ns(w["wall_ns"]), fmt_ns(w["exec_ns"]),
                     fmt_ns(w["idle_ns"]), fmt_ns(w["lock_wait_ns"]),
                     w["tasks"], f"{100.0 * w['utilization']:.1f}%"])
    return "workers:\n" + table(
        rows, ["worker", "wall", "exec", "idle", "lock-wait", "tasks",
               "util"])


def render_locks(doc):
    locks = doc.get("locks") or {}
    if not locks:
        return None
    rows = []
    for site, c in sorted(locks.items(),
                          key=lambda kv: -kv[1]["wait_ns"]):
        acq = c["acquisitions"]
        share = (100.0 * c["contended"] / acq) if acq else 0.0
        rows.append([site, acq, c["contended"], f"{share:.1f}%",
                     fmt_ns(c["wait_ns"])])
    return "locks:\n" + table(
        rows, ["site", "acquisitions", "contended", "rate", "wait"])


def render_shards(doc):
    shards = doc.get("shards")
    if not shards or not shards.get("per_shard"):
        return None
    rows = []
    straggler = (shards.get("straggler") or {}).get("source")
    for s in shards["per_shard"]:
        mark = " *" if s["source"] == straggler else ""
        rows.append([s["source"] + mark, fmt_ns(s["wall_ns"]),
                     fmt_ns(s["exec_ns"]), fmt_ns(s["lock_wait_ns"]),
                     s["workers"], f"{100.0 * s['utilization']:.1f}%"])
    util = shards.get("utilization", {})
    out = "shards (* = straggler):\n" + table(
        rows, ["shard", "wall", "exec", "lock-wait", "workers", "util"])
    out += (f"\n  utilization over {util.get('workers', 0)} worker(s): "
            f"mean {100.0 * util.get('mean', 0):.1f}%, "
            f"min {100.0 * util.get('min', 0):.1f}%, "
            f"max {100.0 * util.get('max', 0):.1f}%")
    return out


def render(path):
    doc = load(path)
    gen = doc.get("generator", "?")
    ver = doc.get("schema_version", "?")
    sections = [f"report: {path} (generator {gen}, schema v{ver})"]
    for part in (render_phases(doc), render_workers(doc),
                 render_locks(doc), render_shards(doc)):
        if part:
            sections.append(part)
    if len(sections) == 1:
        sections.append("(no phases/workers/locks sections — run with "
                        "--stats-json on a WSV_PROFILE build)")
    print("\n\n".join(sections))


def phase_totals(doc):
    return {p["path"]: p["total_ns"] for p in doc.get("phases") or []}


def diff(old_path, new_path, threshold):
    old, new = load(old_path), load(new_path)
    old_phases, new_phases = phase_totals(old), phase_totals(new)
    old_total = sum(ns for path, ns in old_phases.items() if "/" not in path)
    regressions, rows = [], []
    for path in sorted(set(old_phases) | set(new_phases)):
        o, n = old_phases.get(path, 0), new_phases.get(path, 0)
        delta = (100.0 * (n - o) / o) if o else (float("inf") if n else 0.0)
        rows.append([path, fmt_ns(o), fmt_ns(n),
                     f"{delta:+.1f}%" if delta != float("inf") else "new"])
        share = (100.0 * o / old_total) if old_total else 0.0
        if o and share >= 1.0 and delta > threshold:
            regressions.append(f"{path}: {fmt_ns(o)} -> {fmt_ns(n)} "
                               f"({delta:+.1f}% > +{threshold:.0f}%)")
    print(f"diff: {old_path} -> {new_path} (threshold +{threshold:.0f}%)\n")
    print(table(rows, ["phase", "old", "new", "delta"]))

    old_locks, new_locks = old.get("locks") or {}, new.get("locks") or {}
    lock_rows = []
    for site in sorted(set(old_locks) | set(new_locks)):
        o = old_locks.get(site, {}).get("wait_ns", 0)
        n = new_locks.get(site, {}).get("wait_ns", 0)
        lock_rows.append([site, fmt_ns(o), fmt_ns(n)])
    if lock_rows:
        print("\nlock wait:\n" + table(lock_rows, ["site", "old", "new"]))

    if regressions:
        print("\nREGRESSIONS:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    print("\nno regressions past threshold")


def main():
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two stats documents")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression tolerance in percent (with --diff)")
    parser.add_argument("stats", nargs="?", help="stats JSON to render")
    args = parser.parse_args()

    if args.diff:
        diff(args.diff[0], args.diff[1], args.threshold)
    elif args.stats:
        render(args.stats)
    else:
        parser.print_usage(sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
