#!/usr/bin/env python3
"""Validates a `wsvc --stats-json` document against schema v4.

Usage: check_stats_schema.py [--require-counter NAME]... STATS_JSON [TRACE_JSON]

Checks the required top-level keys and their types (see
src/obs/stats_json.h) — schema v2 added the profiling sections: per-worker
time ledgers ("workers"), lock-contention counters ("locks"), and the
phase tree ("phases"); v3 added the "process" section (peak memory); v4
added the symbolic valuation counters (engine.valuation_classes, bdd.*)
with the invariant valuation_classes <= valuations_checked.
With a trace argument, also checks that the trace file is a well-formed
Chrome trace-event document. --require-counter (repeatable) additionally
fails unless the named counter is present, so perf-smoke ctest entries can
assert that instrumented paths actually ran. Exits non-zero with a message
on the first problem found, so it can run directly under ctest.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_stats_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def check_stats(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    expect(isinstance(doc, dict), "top level must be an object")

    required = {
        "schema_version": int,
        "generator": str,
        "counters": dict,
        "timers_ns": dict,
        "histograms": dict,
        "workers": dict,
        "locks": dict,
        "phases": list,
        "process": dict,
    }
    for key, ty in required.items():
        expect(key in doc, f"missing required key '{key}'")
        expect(isinstance(doc[key], ty),
               f"'{key}' must be {ty.__name__}, got {type(doc[key]).__name__}")
    expect(doc["schema_version"] == 4,
           f"unknown schema_version {doc['schema_version']}")

    for name, value in doc["counters"].items():
        expect(isinstance(value, int) and value >= 0,
               f"counter '{name}' must be a non-negative integer")
    check_fault_counters(doc["counters"], "counters")
    check_valuation_counters(doc["counters"], "counters")
    for name, timer in doc["timers_ns"].items():
        expect(isinstance(timer, dict), f"timer '{name}' must be an object")
        for field in ("total_ns", "count"):
            expect(isinstance(timer.get(field), int),
                   f"timer '{name}' missing integer '{field}'")
    for name, hist in doc["histograms"].items():
        expect(isinstance(hist, dict), f"histogram '{name}' must be an object")
        for field in ("count", "sum", "min", "max"):
            expect(isinstance(hist.get(field), int),
                   f"histogram '{name}' missing integer '{field}'")
        expect(isinstance(hist.get("buckets"), list),
               f"histogram '{name}' missing 'buckets' list")

    check_workers(doc["workers"])
    check_locks(doc["locks"])
    check_phases(doc["phases"])
    check_process(doc["process"])
    if "shards" in doc:
        check_shards_rollup(doc["shards"])
    if "supervisor" in doc:
        check_supervisor(doc["supervisor"])

    # wsvc-produced documents also carry command/spec/verdict sections;
    # wsvc-merge documents carry a merge-shaped verdict instead.
    if "verdict" in doc:
        verdict = doc["verdict"]
        expect(isinstance(verdict, dict), "'verdict' must be an object")
        expect(isinstance(verdict.get("exit_code"), int),
               "'verdict.exit_code' must be an integer")
        if verdict.get("kind") == "merge":
            check_merge_verdict(verdict)
            return doc
        if "witness_valuation_index" in verdict:
            expect(isinstance(verdict["witness_valuation_index"], int),
                   "'verdict.witness_valuation_index' must be an integer")
        if "fingerprint" in verdict:
            expect(isinstance(verdict["fingerprint"], str),
                   "'verdict.fingerprint' must be a string")
        if "enumeration_count" in verdict:
            expect(isinstance(verdict["enumeration_count"], int),
                   "'verdict.enumeration_count' must be an integer")
        if "stats" in verdict:
            expect(isinstance(verdict["stats"], dict),
                   "'verdict.stats' must be an object")
            jobs = verdict["stats"].get("jobs")
            expect(isinstance(jobs, int) and jobs >= 1,
                   "'verdict.stats.jobs' must be a positive integer")
        if "phase_ns" in verdict:
            for phase in ("db_enum", "graph_expand", "leaf_eval", "ndfs"):
                expect(isinstance(verdict["phase_ns"].get(phase), int),
                       f"'verdict.phase_ns.{phase}' must be an integer")
        if "coverage" in verdict:
            check_coverage(verdict["coverage"])
    return doc


def check_workers(workers):
    """Validates the per-worker time-ledger section (schema v2)."""
    fields = ("wall_ns", "exec_ns", "idle_ns", "lock_wait_ns", "drain_ns",
              "tasks")
    for name, ledger in workers.items():
        expect(isinstance(ledger, dict), f"worker '{name}' must be an object")
        for field in fields:
            expect(isinstance(ledger.get(field), int) and ledger[field] >= 0,
                   f"worker '{name}' needs non-negative integer '{field}'")
        util = ledger.get("utilization")
        expect(isinstance(util, (int, float)) and not isinstance(util, bool)
               and util >= 0,
               f"worker '{name}' needs non-negative number 'utilization'")
        # Buckets attribute rather than partition (a pool worker's drain
        # nests inside exec), but none may exceed the wall clock they
        # happened within — modulo the snapshot race between a bucket add
        # and the wall read, which stays far under a millisecond.
        slack = 1_000_000
        for field in ("exec_ns", "idle_ns", "lock_wait_ns", "drain_ns"):
            expect(ledger[field] <= ledger["wall_ns"] + slack,
                   f"worker '{name}': {field} exceeds wall_ns")


def check_locks(locks):
    """Validates the lock-contention section (schema v2)."""
    for site, counters in locks.items():
        expect(isinstance(counters, dict),
               f"lock site '{site}' must be an object")
        for field in ("acquisitions", "contended", "wait_ns"):
            expect(isinstance(counters.get(field), int)
                   and counters[field] >= 0,
                   f"lock site '{site}' needs non-negative integer "
                   f"'{field}'")
        expect(counters["contended"] <= counters["acquisitions"],
               f"lock site '{site}': contended exceeds acquisitions")
        expect(counters["contended"] > 0 or counters["wait_ns"] == 0,
               f"lock site '{site}': wait_ns without contended acquisitions")


def check_phases(phases):
    """Validates the phase-tree section (schema v2)."""
    paths = set()
    for i, entry in enumerate(phases):
        expect(isinstance(entry, dict), f"phases[{i}] must be an object")
        path = entry.get("path")
        expect(isinstance(path, str) and path,
               f"phases[{i}] needs a non-empty string 'path'")
        expect(path not in paths, f"duplicate phase path '{path}'")
        paths.add(path)
        for field in ("total_ns", "self_ns", "count"):
            expect(isinstance(entry.get(field), int) and entry[field] >= 0,
                   f"phase '{path}' needs non-negative integer '{field}'")
        expect(entry["self_ns"] <= entry["total_ns"],
               f"phase '{path}': self_ns exceeds total_ns")


def check_process(process):
    """Validates the process resource section (schema v3)."""
    rss = process.get("max_rss_kb")
    expect(isinstance(rss, int) and rss >= 0,
           "'process.max_rss_kb' must be a non-negative integer")


def check_shards_rollup(shards):
    """Validates the cross-shard roll-up a wsvc-merge document carries."""
    expect(isinstance(shards, dict), "'shards' must be an object")
    expect(isinstance(shards.get("count"), int) and shards["count"] >= 0,
           "'shards.count' must be a non-negative integer")
    for section in ("counters", "timers_ns", "histograms"):
        expect(isinstance(shards.get(section), dict),
               f"'shards.{section}' must be an object")
    check_fault_counters(shards["counters"], "shards.counters")
    check_valuation_counters(shards["counters"], "shards.counters")
    util = shards.get("utilization")
    expect(isinstance(util, dict), "'shards.utilization' must be an object")
    for field in ("mean", "min", "max"):
        value = util.get(field)
        expect(isinstance(value, (int, float))
               and not isinstance(value, bool) and value >= 0,
               f"'shards.utilization.{field}' must be a non-negative number")
    per_shard = shards.get("per_shard")
    expect(isinstance(per_shard, list), "'shards.per_shard' must be a list")
    for i, row in enumerate(per_shard):
        expect(isinstance(row, dict), f"per_shard[{i}] must be an object")
        expect(isinstance(row.get("source"), str),
               f"per_shard[{i}] needs string 'source'")
        for field in ("wall_ns", "exec_ns", "lock_wait_ns", "workers"):
            expect(isinstance(row.get(field), int) and row[field] >= 0,
                   f"per_shard[{i}] needs non-negative integer '{field}'")
    if per_shard:
        straggler = shards.get("straggler")
        expect(isinstance(straggler, dict), "'shards.straggler' missing")
        expect(straggler.get("source") in
               {row["source"] for row in per_shard},
               "'shards.straggler.source' must name a per_shard entry")
        expect(straggler.get("wall_ns") ==
               max(row["wall_ns"] for row in per_shard),
               "'shards.straggler.wall_ns' must be the per_shard maximum")


def check_fault_counters(counters, where):
    """Validates the fault-injection counters: 'fault.injected' must equal
    the sum of the per-site 'fault.injected.<site>' breakdown (both absent
    is fine — a run with no armed faults emits neither)."""
    per_site = sum(v for k, v in counters.items()
                   if k.startswith("fault.injected."))
    total = counters.get("fault.injected")
    if total is None:
        expect(per_site == 0,
               f"'{where}' has fault.injected.* sites but no "
               f"'fault.injected' total")
        return
    expect(total == per_site,
           f"'{where}.fault.injected' is {total} but the per-site "
           f"breakdown sums to {per_site}")


def check_valuation_counters(counters, where):
    """Validates the symbolic-valuation counters (schema v4): a class
    stands for >= 1 valuation indices, so 'engine.valuation_classes' can
    never exceed 'engine.valuations_checked' (both absent, or classes
    absent on a concrete-mode run, is fine)."""
    classes = counters.get("engine.valuation_classes")
    if classes is None:
        return
    checked = counters.get("engine.valuations_checked")
    expect(checked is not None,
           f"'{where}' has engine.valuation_classes but no "
           f"'engine.valuations_checked'")
    expect(classes <= checked,
           f"'{where}.engine.valuation_classes' is {classes}, which exceeds "
           f"engine.valuations_checked = {checked}")


def check_supervisor(sup):
    """Validates the supervisor roll-up a supervised shard_sweep merge
    document carries."""
    expect(isinstance(sup, dict), "'supervisor' must be an object")
    fields = ("leases", "relaunches", "watchdog_kills", "chaos_kills",
              "corruptions", "bak_recoveries", "splits", "abandoned",
              "retry_budget")
    for field in fields:
        expect(isinstance(sup.get(field), int) and sup[field] >= 0,
               f"'supervisor.{field}' must be a non-negative integer")
    expect(sup["leases"] >= 1, "'supervisor.leases' must be >= 1")
    expect(sup["abandoned"] <= sup["leases"],
           "'supervisor.abandoned' exceeds the lease count")
    expect(sup["corruptions"] == 0 or sup["relaunches"] + sup["abandoned"] > 0,
           "'supervisor.corruptions' without any relaunch or abandonment")


def check_intervals(value, what):
    """Validates a covered/gaps value: a list of [lo, hi] index pairs."""
    expect(isinstance(value, list), f"'{what}' must be a list")
    for pair in value:
        expect(isinstance(pair, list) and len(pair) == 2
               and all(isinstance(x, int) and x >= 0 for x in pair)
               and pair[0] <= pair[1],
               f"'{what}' entries must be [lo, hi] index pairs")


def check_coverage(cov):
    """Validates the verdict.coverage block written for sweep verdicts."""
    expect(isinstance(cov, dict), "'verdict.coverage' must be an object")
    reasons = ("complete", "budget", "deadline", "canceled", "db-failures",
               "range-end", "memory-budget")
    expect(cov.get("stop_reason") in reasons,
           f"'coverage.stop_reason' must be one of {reasons}, "
           f"got {cov.get('stop_reason')!r}")
    for field in ("stop_code", "stop_message"):
        expect(isinstance(cov.get(field), str),
               f"'coverage.{field}' must be a string")
    for field in ("completed_prefix", "databases_completed", "db_retries"):
        expect(isinstance(cov.get(field), int) and cov[field] >= 0,
               f"'coverage.{field}' must be a non-negative integer")
    if "covered" in cov:
        check_intervals(cov["covered"], "coverage.covered")
    if "unit" in cov:
        expect(cov["unit"] in ("database", "valuation"),
               "'coverage.unit' must be 'database' or 'valuation'")
    for field in ("range_lo", "range_hi"):
        if field in cov:
            expect(isinstance(cov[field], int) and cov[field] >= 0,
                   f"'coverage.{field}' must be a non-negative integer")
    failed = cov.get("failed_db_indices")
    expect(isinstance(failed, list), "'coverage.failed_db_indices' must be a list")
    for index in failed:
        # Indices ahead of the prefix are legal: a parallel sweep can record
        # an out-of-order failure before the prefix catches up to it.
        expect(isinstance(index, int) and index >= 0,
               "'coverage.failed_db_indices' entries must be non-negative "
               "integers")
    if cov["stop_reason"] == "complete":
        expect(cov["stop_code"] == "OK",
               "'coverage.stop_code' must be OK when the sweep completed")


def check_merge_verdict(verdict):
    """Validates a wsvc-merge verdict (kind == 'merge')."""
    expect(verdict.get("verdict") in ("holds", "violated", "incomplete"),
           "'verdict.verdict' must be holds/violated/incomplete, "
           f"got {verdict.get('verdict')!r}")
    for field in ("holds", "complete", "counterexample"):
        expect(isinstance(verdict.get(field), bool),
               f"'verdict.{field}' must be a boolean")
    if verdict["counterexample"]:
        for field in ("witness_db_index", "witness_valuation_index",
                      "witness_shard"):
            expect(isinstance(verdict.get(field), int),
                   f"'verdict.{field}' must be an integer")
    cov = verdict.get("coverage")
    expect(isinstance(cov, dict), "'verdict.coverage' must be an object")
    expect(cov.get("unit") in ("database", "valuation"),
           "'coverage.unit' must be 'database' or 'valuation'")
    check_intervals(cov.get("covered"), "coverage.covered")
    check_intervals(cov.get("gaps"), "coverage.gaps")
    expect(isinstance(cov.get("overlap"), int) and cov["overlap"] >= 0,
           "'coverage.overlap' must be a non-negative integer")
    expect(verdict.get("verdict") != "holds" or not cov["gaps"],
           "a merge must not report 'holds' over a coverage gap")
    expect(isinstance(verdict.get("warnings"), list),
           "'verdict.warnings' must be a list")


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    expect(isinstance(doc, dict), "trace top level must be an object")
    events = doc.get("traceEvents")
    expect(isinstance(events, list), "trace must contain 'traceEvents' list")
    for i, event in enumerate(events):
        expect(isinstance(event, dict), f"traceEvents[{i}] must be an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            expect(field in event, f"traceEvents[{i}] missing '{field}'")
        if event["ph"] == "X":
            expect("dur" in event,
                   f"traceEvents[{i}] is a complete span without 'dur'")
    return len(events)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="check_stats_schema.py",
        description="Validate a wsvc --stats-json document (schema v3).")
    parser.add_argument("stats", help="stats JSON file")
    parser.add_argument("trace", nargs="?", default=None,
                        help="optional Chrome trace-event JSON file")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this counter is present "
                             "(repeatable)")
    args = parser.parse_args(argv[1:])
    doc = check_stats(args.stats)
    for name in args.require_counter:
        expect(name in doc["counters"],
               f"required counter '{name}' missing from stats document")
    summary = (f"stats OK: {len(doc['counters'])} counters, "
               f"{len(doc['timers_ns'])} timers, "
               f"{len(doc['histograms'])} histograms, "
               f"{len(doc['workers'])} workers, "
               f"{len(doc['locks'])} lock sites, "
               f"{len(doc['phases'])} phases, "
               f"max_rss={doc['process']['max_rss_kb']}kb")
    if args.trace is not None:
        summary += f"; trace OK: {check_trace(args.trace)} events"
    print(summary)


if __name__ == "__main__":
    main(sys.argv)
