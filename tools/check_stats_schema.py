#!/usr/bin/env python3
"""Validates a `wsvc --stats-json` document against schema v1.

Usage: check_stats_schema.py STATS_JSON [TRACE_JSON]

Checks the required top-level keys and their types (see
src/obs/stats_json.h); with a second argument, also checks that the trace
file is a well-formed Chrome trace-event document. Exits non-zero with a
message on the first problem found, so it can run directly under ctest.
"""

import json
import sys


def fail(msg):
    print(f"check_stats_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def check_stats(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    expect(isinstance(doc, dict), "top level must be an object")

    required = {
        "schema_version": int,
        "generator": str,
        "counters": dict,
        "timers_ns": dict,
        "histograms": dict,
    }
    for key, ty in required.items():
        expect(key in doc, f"missing required key '{key}'")
        expect(isinstance(doc[key], ty),
               f"'{key}' must be {ty.__name__}, got {type(doc[key]).__name__}")
    expect(doc["schema_version"] == 1,
           f"unknown schema_version {doc['schema_version']}")

    for name, value in doc["counters"].items():
        expect(isinstance(value, int) and value >= 0,
               f"counter '{name}' must be a non-negative integer")
    for name, timer in doc["timers_ns"].items():
        expect(isinstance(timer, dict), f"timer '{name}' must be an object")
        for field in ("total_ns", "count"):
            expect(isinstance(timer.get(field), int),
                   f"timer '{name}' missing integer '{field}'")
    for name, hist in doc["histograms"].items():
        expect(isinstance(hist, dict), f"histogram '{name}' must be an object")
        for field in ("count", "sum", "min", "max"):
            expect(isinstance(hist.get(field), int),
                   f"histogram '{name}' missing integer '{field}'")
        expect(isinstance(hist.get("buckets"), list),
               f"histogram '{name}' missing 'buckets' list")

    # wsvc-produced documents also carry command/spec/verdict sections.
    if "verdict" in doc:
        verdict = doc["verdict"]
        expect(isinstance(verdict, dict), "'verdict' must be an object")
        expect(isinstance(verdict.get("exit_code"), int),
               "'verdict.exit_code' must be an integer")
        if "witness_valuation_index" in verdict:
            expect(isinstance(verdict["witness_valuation_index"], int),
                   "'verdict.witness_valuation_index' must be an integer")
        if "stats" in verdict:
            expect(isinstance(verdict["stats"], dict),
                   "'verdict.stats' must be an object")
            jobs = verdict["stats"].get("jobs")
            expect(isinstance(jobs, int) and jobs >= 1,
                   "'verdict.stats.jobs' must be a positive integer")
        if "phase_ns" in verdict:
            for phase in ("db_enum", "graph_expand", "leaf_eval", "ndfs"):
                expect(isinstance(verdict["phase_ns"].get(phase), int),
                       f"'verdict.phase_ns.{phase}' must be an integer")
        if "coverage" in verdict:
            check_coverage(verdict["coverage"])
    return doc


def check_coverage(cov):
    """Validates the verdict.coverage block written for sweep verdicts."""
    expect(isinstance(cov, dict), "'verdict.coverage' must be an object")
    reasons = ("complete", "budget", "deadline", "canceled", "db-failures")
    expect(cov.get("stop_reason") in reasons,
           f"'coverage.stop_reason' must be one of {reasons}, "
           f"got {cov.get('stop_reason')!r}")
    for field in ("stop_code", "stop_message"):
        expect(isinstance(cov.get(field), str),
               f"'coverage.{field}' must be a string")
    for field in ("completed_prefix", "databases_completed", "db_retries"):
        expect(isinstance(cov.get(field), int) and cov[field] >= 0,
               f"'coverage.{field}' must be a non-negative integer")
    failed = cov.get("failed_db_indices")
    expect(isinstance(failed, list), "'coverage.failed_db_indices' must be a list")
    for index in failed:
        # Indices ahead of the prefix are legal: a parallel sweep can record
        # an out-of-order failure before the prefix catches up to it.
        expect(isinstance(index, int) and index >= 0,
               "'coverage.failed_db_indices' entries must be non-negative "
               "integers")
    if cov["stop_reason"] == "complete":
        expect(cov["stop_code"] == "OK",
               "'coverage.stop_code' must be OK when the sweep completed")


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    expect(isinstance(doc, dict), "trace top level must be an object")
    events = doc.get("traceEvents")
    expect(isinstance(events, list), "trace must contain 'traceEvents' list")
    for i, event in enumerate(events):
        expect(isinstance(event, dict), f"traceEvents[{i}] must be an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            expect(field in event, f"traceEvents[{i}] missing '{field}'")
        if event["ph"] == "X":
            expect("dur" in event,
                   f"traceEvents[{i}] is a complete span without 'dur'")
    return len(events)


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        fail("usage: check_stats_schema.py STATS_JSON [TRACE_JSON]")
    doc = check_stats(argv[1])
    summary = (f"stats OK: {len(doc['counters'])} counters, "
               f"{len(doc['timers_ns'])} timers, "
               f"{len(doc['histograms'])} histograms")
    if len(argv) == 3:
        summary += f"; trace OK: {check_trace(argv[2])} events"
    print(summary)


if __name__ == "__main__":
    main(sys.argv)
