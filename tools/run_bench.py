#!/usr/bin/env python3
"""Runs google-benchmark binaries and aggregates their JSON output.

Usage: run_bench.py [--build-dir BUILD] [--out OUT.json]
                    [--filter REGEX] [BENCH_BINARY ...]

With no positional arguments, runs every `bench_*` executable found in
BUILD/bench (default: build/bench). Each binary is invoked with
`--benchmark_format=json`; per-benchmark results — real/cpu time plus the
user counters ExportObsCounters attached (the obs registry merged into the
benchmark output, same names as `wsvc --stats-json`) — are collected into
one document:

    {
      "schema_version": 1,
      "host": {"cpus": N, "cmdline_filter": ...},
      "runs": [
        {"binary": "bench_scaling",
         "max_rss_kb": ...,   # peak RSS over the binary's benchmarks
         "benchmarks": [{"name": ..., "real_time_ms": ...,
                         "counters": {...}}, ...]},
        ...
      ]
    }

Each benchmark's counters include process.max_rss_kb (exported by
ExportObsCounters); the per-run "max_rss_kb" is the maximum across the
binary's benchmarks and is echoed to stderr next to the run line.

The default output path is BENCH_scaling.json at the repository root, the
file EXPERIMENTS.md quotes for the scaling tables. Exits non-zero when a
binary fails to run or emits unparseable JSON.
"""

import argparse
import json
import os
import re
import subprocess
import sys


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_binaries(bench_dir):
    if not os.path.isdir(bench_dir):
        return []
    out = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if name.startswith("bench_") and os.access(path, os.X_OK) \
                and os.path.isfile(path):
            out.append(path)
    return out


def run_one(path, bench_filter, extra_args):
    cmd = [path, "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    cmd.extend(extra_args)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"{os.path.basename(path)} exited "
                           f"{proc.returncode}")
    # The banner helpers print a human-readable header to stdout before the
    # JSON document; the document itself starts at the first '{'. A filter
    # that matches nothing in this binary yields a clean exit with no JSON —
    # that is a skip, not an error.
    text = proc.stdout
    start = text.find("{")
    if start < 0:
        if "Failed to match any benchmarks" in text + proc.stderr:
            return None
        raise RuntimeError(f"{os.path.basename(path)}: no JSON in output")
    doc = json.loads(text[start:])
    benchmarks = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        known = {"name", "run_name", "run_type", "repetitions",
                 "repetition_index", "threads", "iterations", "real_time",
                 "cpu_time", "time_unit", "family_index",
                 "per_family_instance_index", "aggregate_name"}
        counters = {k: v for k, v in b.items()
                    if k not in known and isinstance(v, (int, float))}
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit, 1e-6)
        benchmarks.append({
            "name": b.get("name", "?"),
            "iterations": b.get("iterations", 0),
            "real_time_ms": b.get("real_time", 0.0) * scale,
            "cpu_time_ms": b.get("cpu_time", 0.0) * scale,
            "counters": counters,
        })
    max_rss = max((b["counters"].get("process.max_rss_kb", 0)
                   for b in benchmarks), default=0)
    return {
        "binary": os.path.basename(path),
        "max_rss_kb": int(max_rss),
        "context": {k: doc.get("context", {}).get(k)
                    for k in ("num_cpus", "mhz_per_cpu",
                              "cpu_scaling_enabled", "library_version")},
        "benchmarks": benchmarks,
    }


def main():
    parser = argparse.ArgumentParser(
        description="Run bench binaries, merge JSON + obs counters.")
    parser.add_argument("binaries", nargs="*",
                        help="bench executables (default: BUILD/bench/bench_*)")
    parser.add_argument("--build-dir",
                        default=os.path.join(repo_root(), "build"),
                        help="build tree holding bench/ (default: build)")
    parser.add_argument("--out",
                        default=os.path.join(repo_root(),
                                             "BENCH_scaling.json"),
                        help="output path (default: BENCH_scaling.json at "
                             "the repo root)")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter regex forwarded to every "
                             "binary")
    parser.add_argument("--bench-arg", action="append", default=[],
                        help="extra argument forwarded to every binary "
                             "(repeatable)")
    args = parser.parse_args()

    binaries = args.binaries or find_binaries(
        os.path.join(args.build_dir, "bench"))
    if not binaries:
        sys.stderr.write("run_bench: no bench binaries found; build them "
                         "first (cmake --build build)\n")
        return 1

    runs = []
    for path in binaries:
        sys.stderr.write(f"run_bench: {os.path.basename(path)}\n")
        try:
            run = run_one(path, args.filter, args.bench_arg)
        except (RuntimeError, json.JSONDecodeError) as e:
            sys.stderr.write(f"run_bench: {e}\n")
            return 1
        if run is None:
            sys.stderr.write(f"run_bench: {os.path.basename(path)}: "
                             "filter matched nothing, skipped\n")
            continue
        sys.stderr.write(f"run_bench: {os.path.basename(path)}: "
                         f"max_rss={run['max_rss_kb']}kb\n")
        runs.append(run)

    doc = {
        "schema_version": 1,
        "host": {
            "cpus": os.cpu_count(),
            "filter": args.filter,
        },
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    sys.stderr.write(f"run_bench: wrote {args.out}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
